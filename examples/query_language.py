"""The §2 query language and automatic time-interval selection.

Shows two conveniences layered on the core system:

1. queries written exactly as the paper writes them —
   ``SELECT AGGR(f(u)) FROM users WHERE ...`` — via ``parse_query``;
2. ``interval="auto"``: GRAPH-BUILDER's pilot-walk selection of the level
   bucket width T (§4.2.3), with the per-candidate scorecard printed.

Run:  python examples/query_language.py
"""

from repro import (
    MicroblogAnalyzer,
    PlatformConfig,
    build_platform,
    exact_value,
    parse_query,
    relative_error,
)
from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.core.graph_builder import QueryContext
from repro.core.interval import select_time_interval
from repro.platform.clock import HOUR

QUERIES = [
    "SELECT COUNT(*) FROM users WHERE timeline CONTAINS 'privacy'",
    "SELECT AVG(followers) FROM users WHERE timeline CONTAINS 'boston' "
    "AND time BETWEEN 100 AND 130",
    "SELECT SUM(matching_post_count) FROM users WHERE timeline CONTAINS 'new york' "
    "AND followers >= 10",
]


def main() -> None:
    print("Building platform (8k users)...")
    platform = build_platform(PlatformConfig(num_users=8_000, seed=42))

    print("\n-- the paper's query form, parsed and estimated --")
    for text in QUERIES:
        query = parse_query(text)
        analyzer = MicroblogAnalyzer(platform, algorithm="ma-tarw", seed=4)
        result = analyzer.estimate(query, budget=10_000)
        truth = exact_value(platform.store, query)
        error = relative_error(result.value, truth) if result.value else float("nan")
        print(f"\n  {text}")
        print(f"    estimate={result.value:,.1f}  truth={truth:,.1f}  "
              f"err={error:.1%}  cost={result.cost_total:,}")

    print("\n-- pilot-walk interval selection (§4.2.3) --")
    client = CachingClient(SimulatedMicroblogClient(platform))
    context = QueryContext(client, parse_query(QUERIES[0]))
    selection = select_time_interval(context, pilot_steps=60, seed=1)
    print(f"  candidate scorecard ({selection.method} scoring, mean over repeats):")
    for pilot in selection.pilots:
        marker = " <== chosen" if pilot.label == selection.label else ""
        print(f"    T={pilot.label:3s} score={selection.scores[pilot.label]:.4f} "
              f"retention={pilot.retention:.2f} levels={pilot.levels_spanned}"
              f"{marker}")
    print(f"  pilot cost: {client.total_cost:,} API calls "
          f"(charged against the same budget in a real run)")


if __name__ == "__main__":
    main()
