"""A social-science study: public attention to 'privacy' before and after
a leak event.

The paper's motivating example (§1): a researcher wants to measure how the
public's engagement with individual privacy changed around the Snowden
disclosures — from *historic* data that no search API will return, on a
budget no commercial data reseller requires.

Our simulated 'privacy' cascade has a large spike around day 157 (the
simulated "leak").  The study estimates, through the restricted API only:

1. COUNT of users who mentioned privacy in the 90 days before the leak;
2. COUNT of users who mentioned it in the 90 days after;
3. total mention volume (SUM of per-user matching posts) in each window;

and compares every estimate against exact ground truth.

Run:  python examples/privacy_study.py
"""

from repro import (
    MicroblogAnalyzer,
    PlatformConfig,
    build_platform,
    count_users,
    exact_value,
    relative_error,
    sum_of,
    MATCHING_POST_COUNT,
)
from repro.platform.clock import DAY

LEAK_DAY = 157


def estimate_and_report(platform, query, label, budget=15_000):
    analyzer = MicroblogAnalyzer(platform, algorithm="ma-tarw", seed=11)
    result = analyzer.estimate(query, budget=budget)
    truth = exact_value(platform.store, query)
    error = relative_error(result.value, truth) if result.value else float("nan")
    print(f"  {label:34s} estimate={result.value:10,.0f}  "
          f"truth={truth:10,.0f}  err={error:6.1%}  cost={result.cost_total:,}")
    return result.value, truth


def main() -> None:
    print("Building platform (10k users)...")
    platform = build_platform(PlatformConfig(num_users=10_000, seed=42))

    before = ((LEAK_DAY - 90) * DAY, LEAK_DAY * DAY)
    after = (LEAK_DAY * DAY, (LEAK_DAY + 90) * DAY)

    print(f"\nStudy windows: 90 days either side of the simulated leak "
          f"(day {LEAK_DAY})\n")

    est_before, truth_before = estimate_and_report(
        platform, count_users("privacy", window=before), "users mentioning (before)"
    )
    est_after, truth_after = estimate_and_report(
        platform, count_users("privacy", window=after), "users mentioning (after)"
    )
    estimate_and_report(
        platform, sum_of("privacy", MATCHING_POST_COUNT, window=before),
        "mention volume (before)",
    )
    estimate_and_report(
        platform, sum_of("privacy", MATCHING_POST_COUNT, window=after),
        "mention volume (after)",
    )

    print("\nConclusion of the (simulated) study:")
    estimated_lift = est_after / max(est_before, 1.0)
    true_lift = truth_after / max(truth_before, 1.0)
    print(f"  estimated attention lift after the leak: x{estimated_lift:.2f}")
    print(f"  true attention lift:                     x{true_lift:.2f}")
    same_direction = (estimated_lift > 1) == (true_lift > 1)
    print(f"  study reaches the correct direction:     {same_direction}")


if __name__ == "__main__":
    main()
