"""Using a real (SNAP-format) social graph as the platform substrate.

The estimators never care where the social graph came from — any SNAP
edge list (https://snap.stanford.edu/data/) can replace the synthetic
generators.  This example

1. writes a SNAP-format edge list to disk (here: a generated graph, since
   the environment is offline — drop in e.g. ``facebook_combined.txt``
   instead);
2. loads it back through the SNAP reader;
3. builds a platform *on top of that graph* (profiles, posts, cascades);
4. runs an estimation against ground truth.

Run:  python examples/snap_graph.py [path/to/edgelist.txt]
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    MicroblogAnalyzer,
    PlatformConfig,
    build_platform,
    count_users,
    exact_value,
    relative_error,
)
from repro._rng import ensure_rng
from repro.graph.generators import community_graph
from repro.graph.snap import read_snap_edgelist, write_snap_edgelist
from repro.platform.cascade import run_cascade
from repro.platform.simulator import SimulatedPlatform, _add_background_posts
from repro.platform.clock import SimulatedClock
from repro.platform.store import MicroblogStore
from repro.platform.users import generate_profile
from repro.platform.workload import keyword_catalogue_by_name


def platform_from_snap(path: Path, seed: int = 42) -> SimulatedPlatform:
    """Build a simulated platform over an arbitrary SNAP edge list."""
    graph = read_snap_edgelist(path)
    print(f"  loaded graph: {graph.num_nodes:,} nodes, {graph.num_edges:,} edges")
    config = PlatformConfig(num_users=max(graph.num_nodes, 2), seed=seed)
    store = MicroblogStore(graph)
    rng = ensure_rng(seed)
    for user_id in graph.nodes():
        store.add_user(generate_profile(user_id, seed=rng))
    store.refresh_follower_counts()
    _add_background_posts(store, config, rng)
    spec = keyword_catalogue_by_name()["privacy"]
    cascade = run_cascade(
        store, spec, horizon=config.horizon, seed=rng,
        intensity_scale=graph.num_nodes / config.intensity_reference_population,
    )
    return SimulatedPlatform(
        config=config,
        store=store,
        clock=SimulatedClock(config.horizon),
        cascades={"privacy": cascade},
    )


def main() -> None:
    if len(sys.argv) > 1:
        path = Path(sys.argv[1])
        print(f"Using supplied SNAP edge list: {path}")
    else:
        print("No edge list supplied; generating one (community graph, 6k nodes)...")
        path = Path(tempfile.gettempdir()) / "repro_snap_example.txt"
        write_snap_edgelist(
            community_graph(6_000, seed=1), path,
            header="synthetic stand-in for a SNAP dataset",
        )

    platform = platform_from_snap(path)
    query = count_users("privacy")
    truth = exact_value(platform.store, query)
    print(f"  'privacy' cascade reached {truth:,.0f} users")

    analyzer = MicroblogAnalyzer(platform, algorithm="ma-tarw", seed=9)
    result = analyzer.estimate(query, budget=15_000)
    print(f"\nMA-TARW estimate: {result.value:,.0f}  (truth {truth:,.0f}, "
          f"error {relative_error(result.value, truth):.1%}, "
          f"cost {result.cost_total:,} calls)")


if __name__ == "__main__":
    main()
