"""Cross-platform cost comparison: Twitter vs Google+ vs Tumblr.

The paper's §6.2 highlights how API constraints dominate practical costs:
Google+'s 20-results-per-call APIs inflate call counts, and Tumblr's
1-request-per-10-seconds limit turns modest call counts into days of
wall-clock waiting.  This example estimates the *same* aggregate over the
same underlying data exposed through each platform's API profile.

Run:  python examples/platform_comparison.py
"""

from repro import (
    DISPLAY_NAME_LENGTH,
    GOOGLE_PLUS,
    MicroblogAnalyzer,
    PlatformConfig,
    TUMBLR,
    TWITTER,
    avg_of,
    build_platform,
    exact_value,
    relative_error,
)


def main() -> None:
    print("Building platform (8k users)...")
    base = build_platform(PlatformConfig(num_users=8_000, seed=42))
    query = avg_of("privacy", DISPLAY_NAME_LENGTH)
    truth = exact_value(base.store, query)
    print(f"\nQuery: {query.describe()}   (truth: {truth:.2f})\n")
    header = (f"{'platform':10s} {'estimate':>9s} {'error':>7s} {'API calls':>10s} "
              f"{'rate-limit wait':>16s}")
    print(header)
    print("-" * len(header))

    for profile in (TWITTER, GOOGLE_PLUS, TUMBLR):
        platform = base.with_profile(profile)
        analyzer = MicroblogAnalyzer(platform, algorithm="ma-tarw", seed=5)
        result = analyzer.estimate(query, budget=25_000)
        error = relative_error(result.value, truth) if result.value else float("nan")
        wait_days = result.diagnostics["simulated_wait_seconds"] / 86_400
        print(f"{profile.name:10s} {result.value:9.2f} {error:7.1%} "
              f"{result.cost_total:10,} {wait_days:13.2f} days")

    print("\nSame data, same algorithm — the API profile alone drives the cost:")
    print(f"  Twitter : {TWITTER.timeline_page_size}/page timelines, "
          f"{TWITTER.rate_limit_calls} calls per {TWITTER.rate_limit_window / 60:.0f} min")
    print(f"  Google+ : {GOOGLE_PLUS.timeline_page_size}/page timelines, "
          f"{GOOGLE_PLUS.rate_limit_calls} calls per day")
    print(f"  Tumblr  : {TUMBLR.timeline_page_size}/page timelines, "
          f"1 call per {TUMBLR.rate_limit_window:.0f} s")


if __name__ == "__main__":
    main()
