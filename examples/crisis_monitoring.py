"""Crisis retrospective: measuring an event's reach after the fact.

The paper's 'boston' keyword models the April 15, 2013 Marathon bombing:
medium background chatter with one enormous spike.  A crisis researcher
who starts work *months later* cannot use the streaming API (it only sees
the future) nor the search API (it only sees last week).  MICROBLOG-
ANALYZER reconstructs the event's reach from user timelines:

* how many users talked about 'boston' in the event week vs a typical
  earlier week;
* the average audience size (followers) of the people spreading it —
  were they hubs or ordinary users?

Run:  python examples/crisis_monitoring.py
"""

from repro import (
    FOLLOWERS,
    MicroblogAnalyzer,
    PlatformConfig,
    avg_of,
    build_platform,
    count_users,
    exact_value,
    relative_error,
)
from repro.platform.clock import DAY

EVENT_DAY = 104  # the simulated marathon bombing


def report(platform, query, label, budget=15_000):
    analyzer = MicroblogAnalyzer(platform, algorithm="ma-tarw", seed=3)
    result = analyzer.estimate(query, budget=budget)
    truth = exact_value(platform.store, query)
    error = relative_error(result.value, truth) if result.value else float("nan")
    print(f"  {label:38s} estimate={result.value:9,.1f}  truth={truth:9,.1f}  "
          f"err={error:6.1%}  cost={result.cost_total:,}")
    return result.value


def main() -> None:
    print("Building platform (10k users)...")
    platform = build_platform(PlatformConfig(num_users=10_000, seed=42))

    event_week = (EVENT_DAY * DAY, (EVENT_DAY + 7) * DAY)
    quiet_week = ((EVENT_DAY - 60) * DAY, (EVENT_DAY - 53) * DAY)

    print(f"\nEvent retrospective for 'boston' (event at day {EVENT_DAY}):\n")
    quiet = report(platform, count_users("boston", window=quiet_week),
                   "users posting in a quiet week")
    event = report(platform, count_users("boston", window=event_week),
                   "users posting in the event week")
    report(platform, avg_of("boston", FOLLOWERS),
           "avg followers of all 'boston' users")
    report(platform, avg_of("boston", FOLLOWERS, window=event_week),
           "avg followers (event-week posters)")

    print("\nRetrospective finding:")
    if quiet and event:
        print(f"  the event multiplied weekly reach by ~x{event / max(quiet, 1.0):.1f}")
    print("  (all numbers obtained through the rate-limited API alone —")
    print("   no streaming archive, no commercial data reseller)")


if __name__ == "__main__":
    main()
