"""Quickstart: estimate one aggregate over a simulated microblog platform.

Builds a small platform, asks MICROBLOG-ANALYZER "how many users mentioned
'privacy'?" under a strict API budget, and compares the answer with the
exact ground truth the simulator knows.

Run:  python examples/quickstart.py
"""

from repro import (
    MicroblogAnalyzer,
    PlatformConfig,
    build_platform,
    count_users,
    exact_value,
    relative_error,
)

def main() -> None:
    # 1. Build a deterministic simulated platform: a community-structured
    #    social graph, 304 days of posts, and organic keyword cascades.
    print("Building platform (10k users, ~300 simulated days)...")
    platform = build_platform(PlatformConfig(num_users=10_000, seed=42))
    keyword_users = len(platform.store.users_mentioning("privacy"))
    print(f"  -> {platform.store.num_posts:,} posts; "
          f"{keyword_users:,} users ever mentioned 'privacy'")

    # 2. Pose the aggregate query of the paper's title example.
    query = count_users("privacy")
    print(f"\nQuery: {query.describe()}")

    # 3. Estimate it through the rate-limited API with MA-TARW.
    budget = 15_000
    analyzer = MicroblogAnalyzer(platform, algorithm="ma-tarw", seed=7)
    result = analyzer.estimate(query, budget=budget)

    # 4. Compare with exact ground truth (only the simulator can see it).
    truth = exact_value(platform.store, query)
    print(f"\nMA-TARW estimate : {result.value:,.0f}")
    print(f"Ground truth     : {truth:,.0f}")
    print(f"Relative error   : {relative_error(result.value, truth):.1%}")
    print(f"API calls spent  : {result.cost_total:,} of {budget:,} "
          f"({result.cost_by_kind})")
    print(f"Walk instances   : {result.diagnostics['instances']:.0f}, "
          f"seed set {result.diagnostics['seed_set_size']:.0f} users")
    wait_days = result.diagnostics["simulated_wait_seconds"] / 86_400
    print(f"Rate-limit wait  : {wait_days:.2f} simulated days "
          f"(Twitter: 180 calls / 15 min)")


if __name__ == "__main__":
    main()
