"""Figure 7 — ground-truth keyword frequency over time.

Paper: daily mention counts for ``privacy`` (low, occasional spikes),
``new york`` (perpetually high) and ``boston`` (medium, one huge spike at
the Apr 15, 2013 Marathon bombing, day ~104).

We print a monthly roll-up of the streaming collector's daily series and
assert the three archetype shapes.
"""

from repro.api.streaming import StreamingAPI
from repro.bench import bench_platform, emit, format_table
from repro.platform.clock import DAY

KEYWORDS = ("privacy", "new york", "boston")


def compute():
    platform = bench_platform()
    stream = StreamingAPI(platform.store)
    horizon = platform.now
    series = {
        keyword: stream.daily_frequency(keyword, 0.0, horizon) for keyword in KEYWORDS
    }
    months = int(horizon // (30 * DAY)) + 1
    rows = []
    for month in range(months):
        row = [f"month {month + 1}"]
        for keyword in KEYWORDS:
            count = sum(
                c for t, c in series[keyword] if month * 30 * DAY <= t < (month + 1) * 30 * DAY
            )
            row.append(count)
        rows.append(row)
    rows.append(["total"] + [sum(c for _, c in series[k]) for k in KEYWORDS])
    return rows, series


def test_fig7_keyword_frequencies(once):
    rows, series = once(compute)
    emit(
        "fig7",
        format_table(
            "Figure 7: keyword mention frequency (monthly roll-up of daily stream)",
            ["period"] + list(KEYWORDS),
            rows,
        ),
    )
    totals = {k: sum(c for _, c in series[k]) for k in KEYWORDS}
    # new york is the perpetually-popular keyword
    assert totals["new york"] > totals["privacy"]
    # boston spikes at the event day: its peak month dwarfs its first months
    boston_monthly = [row[3] for row in rows[:-1]]
    event_month = boston_monthly.index(max(boston_monthly))
    assert 2 <= event_month <= 5  # event day 104 falls in month 4 (index 3)
    assert max(boston_monthly) > 3 * max(boston_monthly[0], 1)
    # privacy has visible spikes over a low base
    privacy_daily = [c for _, c in series["privacy"]]
    base = sorted(privacy_daily)[len(privacy_daily) // 2]
    assert max(privacy_daily) > 3 * max(base, 1)
