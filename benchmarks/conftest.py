"""Benchmark-suite configuration.

``pytest benchmarks/ --benchmark-only`` runs each experiment once (the
interesting output is the printed paper-style table, persisted under
``benchmarks/results/``; wall-clock timing is secondary).
"""

import pathlib
import time

import pytest

_SESSION_START = time.time()
_RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return run


def pytest_terminal_summary(terminalreporter):
    """Echo every table regenerated this session into the terminal output.

    Benchmark tables are printed during the (captured) test body and
    persisted under ``benchmarks/results/``; repeating them here makes the
    plain ``pytest benchmarks/ --benchmark-only`` transcript self-contained.
    """
    if not _RESULTS_DIR.is_dir():
        return
    fresh = sorted(
        path
        for path in _RESULTS_DIR.glob("*.txt")
        if path.stat().st_mtime >= _SESSION_START - 1
    )
    if not fresh:
        return
    terminalreporter.section("reproduced tables and figures")
    for path in fresh:
        terminalreporter.write_line("")
        terminalreporter.write_line(path.read_text().rstrip())
