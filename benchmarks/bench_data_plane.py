"""Data-plane benchmark: build time and walk throughput per serving form.

Three data planes (see ``repro.platform.simulator.DATA_PLANES``):

* ``baseline`` — the pre-columnar scalar build and mutable serving path,
  kept as the historical reference point;
* ``legacy``   — vectorized columnar build, mutable dict/list serving;
* ``frozen``   — vectorized build compiled to FrozenStore + CSR graph.

For each platform scale this bench measures ``build_platform`` wall time
and random-walk throughput over the connections API (steps/sec through a
``CachingClient``, the estimators' serving path), then times an
end-to-end ``replicate_runs`` on the bench platform.  Results go to
``benchmarks/results/data_plane.txt`` and a machine-readable trajectory
file ``BENCH_data_plane.json`` at the repo root.

The baseline build is skipped at the largest scale (it would dominate the
bench's runtime for a number that extrapolates cleanly from 8k/30k); the
table marks it n/a rather than hiding the omission.
"""

import json
import pathlib
import time

from repro._rng import ensure_rng
from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.bench import BENCH_PLATFORM_SEED, emit, format_table, replicate_runs
from repro.core.query import count_users
from repro.platform.simulator import PlatformConfig, build_platform

SCALES = (
    # (num_users, background_posts_mean, include_baseline)
    (8_000, 45.0, True),
    (30_000, 45.0, True),
    (100_000, 6.0, False),
)
WALK_STEPS = 50_000
REPLICATES = 3
REPLICATE_BUDGET = 8_000
JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_data_plane.json"


def _build(num_users, mean, plane, repeats=1):
    """Build once per *repeats*, returning the last platform and the best
    wall time (min-of-N damps scheduler noise on the timing claim)."""
    config = PlatformConfig(
        num_users=num_users,
        background_posts_mean=mean,
        seed=BENCH_PLATFORM_SEED,
        data_plane=plane,
    )
    best = float("inf")
    platform = None
    for _ in range(repeats):
        del platform  # release the previous build before re-timing
        start = time.perf_counter()
        platform = build_platform(config)
        best = min(best, time.perf_counter() - start)
    return platform, best


def _walk_steps_per_sec(platform, steps=WALK_STEPS, seed=7):
    """Random walk over the connections API via a caching client.

    This is the estimators' hot serving path: uncached requests hit the
    store/graph, repeats hit the client cache — both legs are in the mix,
    as they are in a real walk.
    """
    client = CachingClient(SimulatedMicroblogClient(platform))
    rng = ensure_rng(seed)
    current = platform.store.user_ids()[0]
    start = time.perf_counter()
    for _ in range(steps):
        neighbors = client.user_connections(current)
        if not neighbors:
            current = rng.choice(platform.store.user_ids())
            continue
        current = neighbors[rng.randrange(len(neighbors))]
    return steps / (time.perf_counter() - start)


def compute():
    record = {"seed": BENCH_PLATFORM_SEED, "scales": [], "replicate_runs": {}}
    rows = []
    for num_users, mean, include_baseline in SCALES:
        planes = ("baseline", "legacy", "frozen") if include_baseline else ("legacy", "frozen")
        entry = {"num_users": num_users, "background_posts_mean": mean, "planes": {}}
        timings = {}
        for plane in planes:
            platform, build_seconds = _build(num_users, mean, plane, repeats=2)
            walk_rate = _walk_steps_per_sec(platform)
            timings[plane] = (build_seconds, walk_rate)
            entry["planes"][plane] = {
                "build_seconds": round(build_seconds, 3),
                "walk_steps_per_sec": round(walk_rate, 1),
                "num_posts": platform.store.num_posts,
            }
            del platform  # free before the next (possibly 100k-user) build
        reference = "baseline" if include_baseline else "legacy"
        speedup = timings[reference][0] / timings["frozen"][0]
        entry["build_speedup_frozen_vs_" + reference] = round(speedup, 2)
        record["scales"].append(entry)
        for plane in ("baseline", "legacy", "frozen"):
            timing = timings.get(plane)
            rows.append(
                [
                    f"{num_users:,}",
                    plane,
                    None if timing is None else timing[0],
                    None if timing is None else timing[1],
                    speedup if plane == "frozen" else None,
                ]
            )

    # End-to-end replicate_runs (build + replicates) on the bench-scale
    # platform, per plane.  The frozen plane shifts post materialisation
    # from build time to first serving access, so build and estimation are
    # reported separately but compared as a whole — the time a user waits
    # from cold start to results.
    query = count_users("privacy")
    for plane in ("baseline", "frozen"):
        platform, build_seconds = _build(8_000, 45.0, plane)
        start = time.perf_counter()
        replicate_runs(
            platform, query, "ma-tarw", replicates=REPLICATES, budget=REPLICATE_BUDGET
        )
        estimate_seconds = time.perf_counter() - start
        record["replicate_runs"][plane] = {
            "build_seconds": round(build_seconds, 3),
            "estimate_seconds": round(estimate_seconds, 3),
            "total_seconds": round(build_seconds + estimate_seconds, 3),
        }
        del platform
    record["replicate_runs"]["speedup"] = round(
        record["replicate_runs"]["baseline"]["total_seconds"]
        / record["replicate_runs"]["frozen"]["total_seconds"],
        2,
    )

    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return rows, record


def test_data_plane_speedups(once):
    rows, record = once(compute)
    emit(
        "data_plane",
        format_table(
            f"Columnar data plane: build time and walk throughput (seed {BENCH_PLATFORM_SEED})",
            ["users", "plane", "build s", "walk steps/s", "frozen speedup"],
            rows,
        )
        + "\n\n"
        + format_table(
            f"replicate_runs end-to-end (8k users, ma-tarw, {REPLICATES}x{REPLICATE_BUDGET} budget)",
            ["plane", "build s", "estimate s", "total s"],
            [
                [
                    plane,
                    record["replicate_runs"][plane]["build_seconds"],
                    record["replicate_runs"][plane]["estimate_seconds"],
                    record["replicate_runs"][plane]["total_seconds"],
                ]
                for plane in ("baseline", "frozen")
            ]
            + [["speedup", None, None, record["replicate_runs"]["speedup"]]],
        ),
    )
    by_scale = {entry["num_users"]: entry for entry in record["scales"]}
    # The PR's headline claim: >= 5x faster builds at 30k users.
    assert by_scale[30_000]["build_speedup_frozen_vs_baseline"] >= 5.0
    # And end-to-end estimation (cold start to results) must be faster.
    assert record["replicate_runs"]["speedup"] > 1.0
