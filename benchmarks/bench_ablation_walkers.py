"""Ablation — SRW vs Metropolis–Hastings on the same keyword subgraph.

The paper uses SRW as MA-SRW's walker because Gjoka et al. [13] found SRW
typically 1.5–8x faster than MHRW.  We verify the ordering: with identical
sample budgets on the materialised term-induced subgraph, SRW's reweighted
AVG should be at least as accurate as MHRW's plain mean, and MHRW wastes a
visible fraction of steps on rejections.
"""

import statistics

from repro.bench import bench_platform, emit, format_table
from repro.graph.components import largest_component
from repro.platform.clock import DAY
from repro.sampling.estimators import ratio_average
from repro.sampling.metropolis import MetropolisHastingsWalk, collect_uniform_samples
from repro.sampling.random_walk import collect_samples

KEYWORD = "privacy"
SAMPLES = 600
REPLICATES = 5


def compute():
    platform = bench_platform()
    mentions = platform.store.first_mention_times(KEYWORD)
    subgraph = platform.graph.subgraph(mentions)
    component = largest_component(subgraph)
    working = subgraph.subgraph(component)
    truth = statistics.fmean(
        platform.store.profile(user).followers for user in working
    )
    follower_of = {user: platform.store.profile(user).followers for user in working}
    start = next(iter(component))
    neighbor_fn = lambda node: sorted(working.neighbors_unsafe(node))

    srw_errors, mh_errors, rejection_rates = [], [], []
    for seed in range(REPLICATES):
        srw = collect_samples(neighbor_fn, start, SAMPLES, burn_in=200, seed=seed)
        estimate = ratio_average([follower_of[n] for n in srw.nodes], srw.degrees)
        srw_errors.append(abs(estimate - truth) / truth)

        mh = collect_uniform_samples(neighbor_fn, start, SAMPLES, burn_in=200,
                                     seed=seed)
        mh_estimate = statistics.fmean(follower_of[n] for n in mh.nodes)
        mh_errors.append(abs(mh_estimate - truth) / truth)

        walk = MetropolisHastingsWalk(neighbor_fn, start, seed=seed)
        list(walk.run(500))
        rejection_rates.append(walk.rejections / walk.steps)

    rows = [
        ["SRW + ratio reweighting", statistics.median(srw_errors)],
        ["MHRW + plain mean", statistics.median(mh_errors)],
        ["MHRW rejection rate", statistics.median(rejection_rates)],
    ]
    return rows


def test_srw_vs_mhrw(once):
    rows = once(compute)
    emit(
        "ablation_walkers",
        format_table(
            f"SRW vs MHRW on the {KEYWORD!r} term-induced subgraph "
            f"({SAMPLES} samples, AVG followers)",
            ["walker", "median rel. error / rate"],
            rows,
        ),
    )
    srw_error, mh_error, rejections = rows[0][1], rows[1][1], rows[2][1]
    assert rejections > 0.1  # MHRW pays real rejection overhead
    assert srw_error <= mh_error * 2.0  # SRW at least competitive
