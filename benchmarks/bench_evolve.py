"""Evolving-platform benchmark: freeze-then-append vs full rebuild.

Drives the same synthesized delta stream through both ingestion paths:

* **incremental** — ``OverlayStore.append`` per epoch (vectorised merge
  of timelines, keyword indexes and the CSR graph), plus one final
  ``compact()``;
* **rebuild** — apply each delta to a legacy mutable twin and
  ``freeze()`` it from scratch every epoch, which is what serving a
  fresh frozen store per delta costs without the overlay.

The headline number is rebuild-over-incremental ingestion time, with the
hard gate that the final overlay (and its compaction) is **bit-identical**
to the final rebuild — ``store_divergences`` over every post column,
timeline/keyword index and CSR row.  A speedup that changed any serving
byte would be a bug, not a win.

Tables land in ``benchmarks/results/evolve.txt`` and the machine-readable
summary in ``BENCH_evolve.json`` at the repo root.

``--quick`` is the CI perf-smoke mode: a small platform and two epochs,
asserting bit-identity end-to-end; the speedup is printed but not gated
(CI machines are noisy).
"""

import argparse
import dataclasses
import json
import pathlib
import sys
import time

from repro.bench import emit, format_table
from repro.platform.evolve import (
    OverlayStore,
    apply_delta_to_store,
    evolve_platform,
    store_divergences,
    synthesize_delta,
)
from repro.platform.simulator import PlatformConfig, build_platform

NUM_USERS = 30_000
EPOCHS = 5
NEW_USERS = 100
KEYWORD_POSTS = 400
BACKGROUND_POSTS = 1_500
SEED = 11
MIN_SPEEDUP = 3.0
"""The tentpole gate: per-epoch append (+ the amortised final compact)
must beat freezing the whole store from scratch every epoch by ≥3x —
the rebuild's python-loop CSR compile and full index re-sorts dominate,
while the overlay merges only what the delta touched."""

QUICK_NUM_USERS = 2_500
QUICK_EPOCHS = 2

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_evolve.json"


def build_twins(num_users):
    config = PlatformConfig(num_users=num_users, seed=SEED)
    overlay = evolve_platform(build_platform(config))
    legacy = build_platform(dataclasses.replace(config, data_plane="legacy"))
    return overlay, legacy


def run(num_users, epochs, quick):
    print(f"building twin {num_users:,}-user platforms (seed {SEED}) ...")
    overlay_platform, legacy_platform = build_twins(num_users)
    overlay = overlay_platform.store
    assert isinstance(overlay, OverlayStore)

    rows = []
    t_append_total = 0.0
    t_rebuild_total = 0.0
    delta_posts = 0
    rebuilt = None
    for epoch in range(1, epochs + 1):
        delta = synthesize_delta(
            overlay_platform,
            seed=SEED * 1_000 + epoch,
            new_users=NEW_USERS,
            keyword_posts=KEYWORD_POSTS,
            background_posts=BACKGROUND_POSTS,
        )
        delta_posts += delta.num_posts

        start = time.perf_counter()
        stats = overlay.append(delta)
        t_append = time.perf_counter() - start

        start = time.perf_counter()
        apply_delta_to_store(legacy_platform.store, delta)
        rebuilt = legacy_platform.store.freeze()
        t_rebuild = time.perf_counter() - start

        if stats.max_time is not None:
            overlay_platform.clock.sleep_until(stats.max_time)
            legacy_platform.clock.sleep_until(stats.max_time)
        t_append_total += t_append
        t_rebuild_total += t_rebuild
        rows.append(
            [epoch, delta.num_posts, len(delta.new_users),
             t_append, t_rebuild, t_rebuild / t_append]
        )

    start = time.perf_counter()
    compacted = overlay.compact()
    t_compact = time.perf_counter() - start

    problems = []
    for label, candidate in (("overlay", overlay), ("compacted", compacted)):
        divergences = store_divergences(candidate, rebuilt)
        if divergences:
            problems.append(f"{label} != final rebuild: {divergences[:3]}")
    if compacted.delta_epoch != epochs:
        problems.append(f"compaction dropped the epoch tag ({compacted.delta_epoch})")

    t_incremental = t_append_total + t_compact
    speedup = t_rebuild_total / t_incremental if t_incremental > 0 else float("inf")

    rows.append(["compact", "-", "-", t_compact, "-", "-"])
    table = format_table(
        f"Evolving platform: incremental append vs per-epoch full rebuild "
        f"({num_users:,} users, {epochs} epochs, {delta_posts:,} delta posts, "
        f"seed {SEED}; overlay ≡ rebuild bitwise; "
        f"speedup {speedup:.1f}x incl. final compact)",
        ["epoch", "posts", "users", "append s", "rebuild s", "ratio"],
        rows,
    )
    emit("evolve", table)

    if not quick and speedup < MIN_SPEEDUP:
        problems.append(f"incremental speedup {speedup:.2f}x < required {MIN_SPEEDUP}x")
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1

    if not quick:
        payload = {
            "num_users": num_users,
            "epochs": epochs,
            "seed": SEED,
            "delta_posts_total": delta_posts,
            "delta_users_per_epoch": NEW_USERS,
            "bit_identical_overlay_vs_rebuild": True,
            "bit_identical_compacted_vs_rebuild": True,
            "append_wall_seconds": round(t_append_total, 4),
            "compact_wall_seconds": round(t_compact, 4),
            "rebuild_wall_seconds": round(t_rebuild_total, 4),
            "speedup_rebuild_over_incremental": round(speedup, 2),
            "min_required_speedup": MIN_SPEEDUP,
        }
        JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"\nwrote {JSON_PATH.name}")
    else:
        print(
            f"perf-smoke OK: overlay ≡ rebuild bitwise over {epochs} epochs, "
            f"{speedup:.1f}x incremental speedup (not gated in quick mode)"
        )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI perf-smoke: small platform, bit-identity only",
    )
    args = parser.parse_args(argv)
    if args.quick:
        return run(QUICK_NUM_USERS, QUICK_EPOCHS, quick=True)
    return run(NUM_USERS, EPOCHS, quick=False)


if __name__ == "__main__":
    sys.exit(main())
