"""Table 2 — statistics of term-induced and level-by-level subgraphs.

Paper columns, per keyword: recall of the largest connected component of
the term-induced subgraph; average number of common neighbors for users
joined by an intra-level edge vs others; fraction of intra- and
cross-level edges.

Paper reference values: recall 81–97% (lower for obscure keywords);
common neighbors ~11–49 on intra edges vs 1–5 on others; intra 22–32%;
cross 1–3%.  Our simulated platform reproduces the recall band and the
intra-edge common-neighbor dominance; cross-level edges are more common
here (multi-wave exogenous adoption over 300 days — see EXPERIMENTS.md).
"""

from repro.bench import bench_platform, emit, format_table
from repro.core.levels import EdgeKind, LevelIndex, classify_edge, edge_taxonomy
from repro.graph.components import recall_of_largest_component
from repro.graph.metrics import average_common_neighbors
from repro.platform.clock import DAY

KEYWORDS = (
    "fiscalcliff",
    "new york",
    "super bowl",
    "obamacare",
    "tunisia",
    "simvastatin",
    "oprah winfrey",
)


def compute_rows():
    platform = bench_platform()
    index = LevelIndex(interval=DAY)
    rows = []
    for keyword in KEYWORDS:
        mentions = platform.store.first_mention_times(keyword)
        subgraph = platform.graph.subgraph(mentions)
        recall = recall_of_largest_component(subgraph)
        taxonomy = edge_taxonomy(subgraph, mentions, index)
        intra_edges, other_edges = [], []
        for u, v in subgraph.edges():
            kind = classify_edge(index, mentions[u], mentions[v])
            (intra_edges if kind is EdgeKind.INTRA else other_edges).append((u, v))
        rows.append(
            [
                keyword,
                f"{recall:.0%}",
                f"{average_common_neighbors(subgraph, intra_edges):.1f}, "
                f"{average_common_neighbors(subgraph, other_edges):.1f}",
                f"{taxonomy.intra_fraction:.0%}, {taxonomy.cross_fraction:.0%}",
                subgraph.num_nodes,
                subgraph.num_edges,
            ]
        )
    return rows


def test_table2_subgraph_statistics(once):
    rows = once(compute_rows)
    emit(
        "table2",
        format_table(
            "Table 2: Term-induced & level-by-level subgraph statistics (T = 1 day)",
            ["Keyword", "Recall", "Avg #common nbrs (intra, other)",
             "% intra, cross", "nodes", "edges"],
            rows,
        ),
    )
    # Shape assertions against the paper's qualitative claims.
    recalls = [float(row[1].rstrip("%")) / 100 for row in rows]
    assert all(recall > 0.6 for recall in recalls)
    assert sum(recall > 0.85 for recall in recalls) >= len(rows) - 2
    for row in rows:
        intra_cn, other_cn = (float(x) for x in row[2].split(","))
        if intra_cn > 0:
            assert intra_cn > other_cn, "intra edges must be community-internal"
