"""Figure 2 — query cost vs relative error for AVG(followers) of users who
posted ``privacy``, across the three graph designs.

Paper shape: at every error target the ordering is
social graph > term-induced subgraph > level-by-level subgraph
(~144k vs ~49k vs less, at 5% error on live Twitter).

We sweep budgets and report the median relative error each design reaches
per budget — the same curve read along the other axis.

Scale caveat (see EXPERIMENTS.md and bench_ablation_selectivity): on live
Twitter the keyword matches 0.4% of users, which is what cripples the
social-graph walk; at bench scale our keywords match 10–25%, so the
social baseline is under-penalised here.  The term-induced vs
level-by-level ordering is the part that reproduces at this scale.
"""

from repro.bench import (
    BENCH_BUDGETS,
    bench_platform,
    emit,
    format_table,
    median_error_at_budget,
)
from repro.core.query import FOLLOWERS, avg_of

DESIGNS = ("social", "term-induced", "level-by-level")


def compute_rows():
    platform = bench_platform()
    query = avg_of("privacy", FOLLOWERS)
    rows = []
    for budget in BENCH_BUDGETS:
        row = [budget]
        for design in DESIGNS:
            row.append(
                median_error_at_budget(platform, query, "ma-srw", budget,
                                       graph_design=design)
            )
        rows.append(row)
    return rows


def test_fig2_avg_followers_across_graph_designs(once):
    rows = once(compute_rows)
    emit(
        "fig2",
        format_table(
            "Figure 2: AVG(followers) of 'privacy' users — median error vs budget",
            ["budget"] + [f"SRW[{d}]" for d in DESIGNS],
            rows,
        ),
    )
    # Shape: at the largest budget, the level-by-level design must produce
    # an estimate in the same accuracy class as the social graph (both are
    # a couple of percent there; see the scale caveat for why the social
    # baseline is not dominated at bench selectivity).
    last = rows[-1]
    social, term, level = last[1], last[2], last[3]
    assert level is not None
    if social is not None:
        assert level <= max(social * 2.0, social + 0.02)
