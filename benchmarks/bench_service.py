"""Service throughput benchmark: cold vs warm multi-tenant serving.

Runs a fixed multi-tenant workload twice through
:class:`repro.service.EstimationService` on the shared benchmark
platform:

* **cold** — a fresh service: every query pays its own pilot walks,
  first-mention column materialisation, and full estimation;
* **warm** — the *same* service again: the interval cache replays
  recorded pilot ledgers, first-mention columns are shared, and exact
  repeats come out of the result cache.

The headline number is warm-over-cold throughput (queries/sec), with the
hard gate that every warm outcome is **bit-identical** to its cold twin
(value, per-kind cost columns, exported trace bytes) — reuse that
changed any answer would be a bug, not a speedup.  Accuracy is reported
as the RMSE of relative error against exact ground truth, once (the two
passes are identical by construction).

Tables land in ``benchmarks/results/service.txt`` and the
machine-readable summary in ``BENCH_service.json`` at the repo root.

``--quick`` is the CI perf-smoke mode: a small platform and workload,
asserting warm ≡ cold and that the reuse counters actually fired; the
throughput ratio is printed but not gated (CI machines are noisy).
"""

import argparse
import json
import math
import pathlib
import sys
import time

from repro.bench import bench_platform, emit, format_table, ground_truth
from repro.core.query import FOLLOWERS, MATCHING_POST_COUNT, avg_of, count_users, sum_of
from repro.service import EstimationService, QueryRequest, TenantConfig

NUM_USERS = 100_000
BUDGET = 40_000
"""Per-query call budget.  Auto interval selection alone costs ~26k
calls on the 100k-user platform (dense timelines make pilot probes
expensive), so the budget must clear that with room for the real walk —
which is exactly what makes the pilot-ledger reuse worth having."""
SEED = 7
N_THREADS = 4
MIN_SPEEDUP = 1.5

QUICK_NUM_USERS = 4_000
QUICK_BUDGET = 6_000

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_service.json"


def tenants():
    # Unlimited allowances: the benchmark measures serving throughput,
    # not admission (reservations are refund-free, and both passes must
    # be admitted in full for the identity gate to mean anything).
    return [TenantConfig("growth"), TenantConfig("ads"), TenantConfig("research")]


def workload(budget):
    """9 queries / 3 tenants / 3 keywords, with exact repeats (q7–q9)."""
    return [
        QueryRequest("growth", count_users("privacy"), budget, tag="q1"),
        QueryRequest("ads", count_users("boston"), budget, tag="q2"),
        QueryRequest("research", avg_of("privacy", FOLLOWERS), budget, tag="q3"),
        QueryRequest("growth", sum_of("boston", MATCHING_POST_COUNT), budget, tag="q4"),
        QueryRequest("ads", count_users("obamacare"), budget, tag="q5"),
        QueryRequest("research", avg_of("boston", MATCHING_POST_COUNT), budget, tag="q6"),
        QueryRequest("ads", count_users("privacy"), budget, tag="q7"),
        QueryRequest("research", count_users("boston"), budget, tag="q8"),
        QueryRequest("growth", avg_of("privacy", FOLLOWERS), budget, tag="q9"),
    ]


def _snapshot(outcomes):
    return [
        (
            o.status,
            None if o.result is None else o.result.value,
            None if o.result is None else tuple(sorted(o.result.cost_by_kind.items())),
            o.trace_bytes(),
        )
        for o in outcomes
    ]


def _timed_pass(service, requests, n_threads):
    start = time.perf_counter()
    outcomes = service.run_workload(requests, n_threads=n_threads)
    elapsed = time.perf_counter() - start
    return outcomes, elapsed


def _check_identity(cold, warm):
    problems = []
    if _snapshot(cold) != _snapshot(warm):
        for index, (a, b) in enumerate(zip(_snapshot(cold), _snapshot(warm))):
            if a != b:
                problems.append(f"query {index + 1}: cold {a[:3]} != warm {b[:3]}")
    return problems


def _rmse_relative_error(platform, outcomes):
    errors = []
    for outcome in outcomes:
        if outcome.result is None:
            continue
        truth = ground_truth(platform, outcome.request.query)
        if truth:
            errors.append((outcome.result.value - truth) / truth)
    if not errors:
        return float("nan")
    return math.sqrt(sum(e * e for e in errors) / len(errors))


def run(num_users, budget, quick):
    platform = bench_platform(num_users)
    requests = workload(budget)
    service = EstimationService(platform, tenants(), seed=SEED)

    cold, t_cold = _timed_pass(service, requests, N_THREADS)
    stats_cold = service.stats()
    warm, t_warm = _timed_pass(service, requests, N_THREADS)
    stats_warm = service.stats()

    problems = _check_identity(cold, warm)
    statuses = [o.status for o in cold]
    if statuses != ["ok"] * len(requests):
        problems.append(f"not all queries succeeded: {statuses}")
    if not all(o.cached for o in warm):
        problems.append("warm pass had uncached outcomes")
    result_hits = stats_warm["result_hits"] - stats_cold["result_hits"]
    if result_hits < len(requests):
        problems.append(f"warm result-cache hits {result_hits} < {len(requests)}")
    if stats_cold["reuse_interval_hits"] < 1:
        problems.append("interval cache never hit within the cold pass")
    if stats_warm["reuse_pilot_runs"] != stats_cold["reuse_pilot_runs"]:
        problems.append("warm pass ran fresh pilots")

    speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    qps_cold = len(requests) / t_cold
    qps_warm = len(requests) / t_warm
    rmse = _rmse_relative_error(platform, cold)

    rows = [
        ["cold", len(requests), t_cold, qps_cold,
         stats_cold["result_hits"], stats_cold["reuse_interval_hits"],
         stats_cold["reuse_pilot_runs"]],
        ["warm", len(requests), t_warm, qps_warm,
         result_hits, stats_warm["reuse_interval_hits"],
         stats_warm["reuse_pilot_runs"]],
    ]
    table = format_table(
        "Multi-tenant service: cold vs warm serving "
        f"({num_users:,} users, {len(requests)} queries / 3 tenants, "
        f"budget {budget:,}/query, {N_THREADS} threads, seed {SEED}; "
        f"warm ≡ cold bitwise; speedup {speedup:.1f}x, "
        f"RMSE rel. error {rmse:.4f})",
        ["pass", "queries", "wall s", "queries/s", "result hits",
         "interval hits", "pilot runs"],
        rows,
    )
    emit("service", table)

    if not quick and speedup < MIN_SPEEDUP:
        problems.append(f"warm speedup {speedup:.2f}x < required {MIN_SPEEDUP}x")
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1

    if not quick:
        payload = {
            "num_users": num_users,
            "budget_per_query": budget,
            "seed": SEED,
            "n_threads": N_THREADS,
            "queries": len(requests),
            "tenants": len(tenants()),
            "bit_identical_warm_vs_cold": True,
            "rmse_relative_error": round(rmse, 6),
            "cold": {
                "wall_seconds": round(t_cold, 4),
                "queries_per_second": round(qps_cold, 3),
                "result_hits": stats_cold["result_hits"],
                "interval_hits": stats_cold["reuse_interval_hits"],
                "pilot_runs": stats_cold["reuse_pilot_runs"],
                "column_hits": stats_cold["reuse_column_hits"],
            },
            "warm": {
                "wall_seconds": round(t_warm, 4),
                "queries_per_second": round(qps_warm, 3),
                "result_hits": result_hits,
            },
            "speedup_warm_over_cold": round(speedup, 2),
            "min_required_speedup": MIN_SPEEDUP,
        }
        JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"\nwrote {JSON_PATH.name}")
    else:
        print(
            f"perf-smoke OK: warm ≡ cold bitwise, {result_hits} result hits, "
            f"{speedup:.1f}x warm speedup (not gated in quick mode)"
        )
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI perf-smoke: small platform, identity + reuse counters only",
    )
    args = parser.parse_args(argv)
    if args.quick:
        return run(QUICK_NUM_USERS, QUICK_BUDGET, quick=True)
    return run(NUM_USERS, BUDGET, quick=False)


if __name__ == "__main__":
    sys.exit(main())
