"""Ablation — fixed-width vs quantile (adaptive) level buckets.

§4.2.3 closes with the observation that adoption rates decline over a
keyword's lifetime, so "the time interval should be dynamically changed
throughout the duration of propagation".  We implement that as the
quantile level index (equal adopter mass per level, built from a pilot
sample of first-mention times) and compare it against fixed 1-day buckets
for three keyword shapes: a spiky keyword should benefit most (its fixed
buckets are wildly unbalanced), a steady one least.
"""

from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.bench import bench_platform, emit, format_table, ground_truth, run_estimator
from repro.core.analyzer import MicroblogAnalyzer
from repro.core.graph_builder import QueryContext
from repro.core.interval import quantile_index_from_pilot
from repro.core.query import count_users
from repro.platform.clock import DAY

KEYWORDS = ("super bowl", "privacy", "new york")  # spikiest -> steadiest
BUDGET = 4_000
REPLICATES = 3


def median_error(platform, query, truth, level_index=None):
    errors = []
    for seed in range(REPLICATES):
        analyzer = MicroblogAnalyzer(
            platform, algorithm="ma-tarw",
            interval=DAY, level_index=level_index, seed=900 + seed,
        )
        result = analyzer.estimate(query, budget=BUDGET)
        if result.value is not None:
            errors.append(abs(result.value - truth) / truth)
    errors.sort()
    return errors[len(errors) // 2] if errors else None


def compute():
    platform = bench_platform()
    rows = []
    for keyword in KEYWORDS:
        query = count_users(keyword)
        truth = ground_truth(platform, query)
        client = CachingClient(SimulatedMicroblogClient(platform))
        context = QueryContext(client, query)
        index = quantile_index_from_pilot(context, levels=40, pilot_steps=80, seed=11)
        fixed = median_error(platform, query, truth)
        adaptive = median_error(platform, query, truth, level_index=index)
        rows.append([keyword, index.num_levels, fixed, adaptive])
    return rows


def test_quantile_vs_fixed_levels(once):
    rows = once(compute)
    emit(
        "ablation_quantile",
        format_table(
            f"Fixed 1-day vs quantile level buckets — MA-TARW COUNT, budget {BUDGET}",
            ["keyword", "quantile levels", "fixed-T error", "quantile error"],
            rows,
        ),
    )
    # Both variants must work; the adaptive index should be competitive
    # overall (win or tie on at least half the panel).
    competitive = 0
    comparable = 0
    for _, _, fixed, adaptive in rows:
        if fixed is None or adaptive is None:
            continue
        comparable += 1
        if adaptive <= fixed * 1.25 + 0.02:
            competitive += 1
    assert comparable >= 2
    assert competitive * 2 >= comparable