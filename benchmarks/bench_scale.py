"""Scale benchmark: data-plane build cost and resident set at 100k–10M rows.

Sweeps platform sizes across the ``frozen`` (in-RAM) and ``mmap``
(out-of-core) data planes and records, per (scale, plane) cell:

* build wall-clock and post count;
* **peak RSS delta** over the interpreter baseline, captured separately
  after the build and after a budgeted estimate — the build delta is the
  number the out-of-core plane exists to flatten;
* the sharded layout's on-disk size (mmap cells), so the RSS claim can
  be read against the data the process *didn't* hold;
* a budgeted ``ma-tarw`` estimate: value, per-kind cost, walk calls/sec,
  and the sha256 of the canonical trace bytes.

Every cell runs in a **fresh subprocess**: ``ru_maxrss`` is a
process-lifetime high-water mark, so planes measured in one process
would contaminate each other.  The parent then asserts the planes are
*bit-identical* — same estimate repr, same per-kind costs, same trace
bytes — at every scale both can run, and that the 1M-row mmap build's
RSS delta sits at least :data:`RSS_RATIO_FLOOR` times under the frozen
plane's.

Tables land in ``benchmarks/results/scale.txt`` and the machine-readable
summary merges into the ``"scale"`` section of ``BENCH_data_plane.json``
at the repo root.

``--quick`` is the CI scale-smoke mode: one small frozen-vs-mmap
identity cell, plus a ~2M-row mmap streaming build gated on a fixed RSS
ceiling (:data:`QUICK_RSS_CEILING`) that the resulting on-disk layout
must itself exceed — proof the build never held its output — failing on
any ``fastpath.fallback`` counter in mmap mode.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_data_plane.json"
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"

SEED = 20140622
WALK_SEED = 7
BUDGET = 3_000
RSS_RATIO_FLOOR = 4.0
"""The 1M-row acceptance gate: mmap build RSS delta must be at least
this many times smaller than the frozen plane's."""

# Few users x heavy posting: the row count dominates, so the dict-of-sets
# social graph (which both planes keep in RAM for cascade dynamics) stays
# a rounding error and the cells measure the *post column* planes.
SCALES = (
    dict(label="100k", users=2_000, bg_mean=50.0, planes=("frozen", "mmap")),
    dict(label="1M", users=1_000, bg_mean=1_000.0, planes=("frozen", "mmap"),
         ratio_floor=RSS_RATIO_FLOOR),
    dict(label="10M", users=2_000, bg_mean=5_000.0, planes=("mmap",)),
)

QUICK_IDENTITY = dict(label="identity", users=500, bg_mean=100.0,
                      planes=("frozen", "mmap"))
QUICK_STREAM = dict(label="stream-2.5M", users=1_000, bg_mean=2_500.0,
                    planes=("mmap",))
QUICK_RSS_CEILING = 100 * 1024 * 1024
"""Build RSS-delta ceiling for the quick streaming cell (~2.5M rows whose
sharded layout is ~130 MB — bigger than this ceiling by construction)."""

IDENTITY_FIELDS = ("value_repr", "cost_total", "cost_by_kind", "trace_sha256")


# ----------------------------------------------------------------------
# child: one (scale, plane) cell in a clean process
# ----------------------------------------------------------------------
def run_cell(args: argparse.Namespace) -> None:
    from repro.core.query import count_users
    from repro.obs import MetricsRegistry, Observability
    from repro.obs.export import trace_lines
    from repro.obs.trace import RecordingSink
    from repro.platform.outofcore import peak_rss_bytes
    from repro.platform.simulator import PlatformConfig, build_platform

    baseline = peak_rss_bytes()
    config = PlatformConfig(
        num_users=args.users,
        background_posts_mean=args.bg_mean,
        seed=SEED,
        data_plane=args.cell,
        build_chunk_rows=args.chunk_rows,
    )
    start = time.perf_counter()
    platform = build_platform(config)
    build_seconds = time.perf_counter() - start
    build_peak = peak_rss_bytes()

    layout_bytes = None
    source_dir = getattr(platform.store, "source_dir", None)
    if source_dir:
        layout_bytes = sum(
            entry.stat().st_size for entry in pathlib.Path(source_dir).iterdir()
        )

    report = {
        "plane": args.cell,
        "num_users": args.users,
        "background_posts_mean": args.bg_mean,
        "num_posts": int(platform.store.num_posts),
        "build_seconds": round(build_seconds, 3),
        "baseline_rss": baseline,
        "build_rss_delta": build_peak - baseline,
        "layout_bytes": layout_bytes,
    }

    if not args.skip_estimate:
        obs = Observability(
            trace_sink=RecordingSink(), metrics=MetricsRegistry()
        )
        from repro.core.analyzer import MicroblogAnalyzer

        analyzer = MicroblogAnalyzer(
            platform, algorithm="ma-tarw", seed=WALK_SEED, obs=obs
        )
        start = time.perf_counter()
        result = analyzer.estimate(count_users("privacy"), budget=BUDGET)
        estimate_seconds = time.perf_counter() - start
        trace = ("\n".join(trace_lines(obs.trace_records())) + "\n").encode("ascii")
        counters = obs.metrics.snapshot()["counters"]
        diagnostics = result.diagnostics or {}
        walk_steps = diagnostics.get("instances", 0.0) * diagnostics.get(
            "mean_path_length", 0.0
        )
        report.update(
            estimate_seconds=round(estimate_seconds, 3),
            value_repr=repr(result.value),
            cost_total=result.cost_total,
            cost_by_kind=dict(sorted(result.cost_by_kind.items())),
            calls_per_sec=round(result.cost_total / max(estimate_seconds, 1e-9), 1),
            walk_steps_per_sec=round(walk_steps / max(estimate_seconds, 1e-9), 1),
            trace_sha256=hashlib.sha256(trace).hexdigest(),
            fallbacks=sorted(
                key
                for key in counters
                if key.startswith(("fastpath.fallback", "kernel.fallback"))
            ),
            fastpath_resolved=counters.get("fastpath.resolved", 0),
            kernel_resolved=counters.get("kernel.resolved", 0),
        )
    report["total_rss_delta"] = peak_rss_bytes() - baseline
    print(json.dumps(report))


def spawn_cell(plane: str, scale: dict, chunk_rows: int, skip_estimate: bool) -> dict:
    command = [
        sys.executable, str(pathlib.Path(__file__).resolve()),
        "--cell", plane,
        "--users", str(scale["users"]),
        "--bg-mean", str(scale["bg_mean"]),
        "--chunk-rows", str(chunk_rows),
    ]
    if skip_estimate:
        command.append("--skip-estimate")
    print(f"  [{scale['label']}] {plane}: building ...", flush=True)
    proc = subprocess.run(
        command, capture_output=True, text=True, cwd=str(REPO_ROOT)
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"cell ({scale['label']}, {plane}) failed")
    cell = json.loads(proc.stdout.strip().splitlines()[-1])
    print(
        f"  [{scale['label']}] {plane}: {cell['num_posts']:,} posts, "
        f"build {cell['build_seconds']}s, "
        f"build RSS +{cell['build_rss_delta'] / 2**20:,.0f} MB",
        flush=True,
    )
    return cell


# ----------------------------------------------------------------------
# parent: sweep + identity / RSS assertions
# ----------------------------------------------------------------------
def check_identity(scale_label: str, cells: dict, failures: list) -> None:
    planes = [p for p in ("frozen", "mmap") if p in cells and "value_repr" in cells[p]]
    if len(planes) < 2:
        return
    a, b = cells[planes[0]], cells[planes[1]]
    for field in IDENTITY_FIELDS:
        if a[field] != b[field]:
            failures.append(
                f"[{scale_label}] planes diverge on {field}: "
                f"{planes[0]}={a[field]!r} {planes[1]}={b[field]!r}"
            )


def check_mmap_guards(scale_label: str, cells: dict, failures: list) -> None:
    mmap_cell = cells.get("mmap")
    if mmap_cell is None or "value_repr" not in mmap_cell:
        return
    if mmap_cell["fallbacks"]:
        failures.append(
            f"[{scale_label}] mmap estimate left the fast path: "
            f"{mmap_cell['fallbacks']}"
        )
    if not mmap_cell["fastpath_resolved"]:
        failures.append(f"[{scale_label}] fastpath.resolved never fired on mmap")
    if not mmap_cell.get("kernel_resolved"):
        failures.append(f"[{scale_label}] kernel.resolved never fired on mmap")


def run_sweep(scales, chunk_rows: int, skip_estimate_planes=()) -> tuple:
    results, failures = [], []
    for scale in scales:
        cells = {}
        for plane in scale["planes"]:
            cells[plane] = spawn_cell(
                plane, scale, chunk_rows, skip_estimate=plane in skip_estimate_planes
            )
        check_identity(scale["label"], cells, failures)
        check_mmap_guards(scale["label"], cells, failures)
        floor = scale.get("ratio_floor")
        if floor and "frozen" in cells and "mmap" in cells:
            ratio = cells["frozen"]["build_rss_delta"] / max(
                cells["mmap"]["build_rss_delta"], 1
            )
            cells["rss_ratio_frozen_over_mmap"] = round(ratio, 2)
            if ratio < floor:
                failures.append(
                    f"[{scale['label']}] mmap build RSS delta only {ratio:.1f}x "
                    f"under frozen (floor {floor}x)"
                )
        results.append(dict(label=scale["label"], cells=cells))
    return results, failures


def render(results) -> str:
    from repro.bench import format_table

    rows = []
    for entry in results:
        for plane, cell in entry["cells"].items():
            if not isinstance(cell, dict):
                continue
            rows.append([
                entry["label"], plane, cell["num_posts"],
                cell["build_seconds"],
                round(cell["build_rss_delta"] / 2**20, 1),
                round(cell["layout_bytes"] / 2**20, 1) if cell["layout_bytes"] else None,
                cell.get("calls_per_sec"),
                cell.get("walk_steps_per_sec"),
            ])
    return format_table(
        "Data-plane scale sweep (per-cell subprocess; RSS deltas over interpreter baseline)",
        ["scale", "plane", "posts", "build s", "build RSS MB", "layout MB",
         "walk calls/s", "walk steps/s"],
        rows,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI scale-smoke: identity cell + gated 2M-row streaming build")
    parser.add_argument("--chunk-rows", type=int, default=262_144)
    parser.add_argument("--cell", choices=("frozen", "mmap", "legacy", "baseline"),
                        help=argparse.SUPPRESS)
    parser.add_argument("--users", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--bg-mean", type=float, help=argparse.SUPPRESS)
    parser.add_argument("--skip-estimate", action="store_true", help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.cell:
        run_cell(args)
        return 0

    if args.quick:
        results, failures = run_sweep(
            [QUICK_IDENTITY, QUICK_STREAM], args.chunk_rows
        )
        stream = results[1]["cells"]["mmap"]
        if stream["build_rss_delta"] > QUICK_RSS_CEILING:
            failures.append(
                f"[stream-2M] build RSS delta {stream['build_rss_delta'] / 2**20:.0f} MB "
                f"exceeds the {QUICK_RSS_CEILING / 2**20:.0f} MB ceiling"
            )
        if stream["layout_bytes"] <= QUICK_RSS_CEILING:
            failures.append(
                "[stream-2M] layout smaller than the RSS ceiling — the gate "
                "no longer proves an out-of-core build; grow the cell"
            )
        print(render(results))
        if failures:
            print("\nFAILURES:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("\nscale-smoke OK: planes bit-identical, streaming build under the RSS ceiling")
        return 0

    results, failures = run_sweep(list(SCALES), args.chunk_rows)
    table = render(results)
    from repro.bench import emit

    emit("scale", table)
    payload = json.loads(JSON_PATH.read_text()) if JSON_PATH.exists() else {}
    payload["scale"] = {
        "seed": SEED,
        "budget": BUDGET,
        "walk_seed": WALK_SEED,
        "rss_ratio_floor": RSS_RATIO_FLOOR,
        "results": results,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {JSON_PATH}")
    if failures:
        print("\nFAILURES:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
