"""Figure 3 — query cost vs relative error for COUNT of users who posted
``privacy``, across the three graph designs (SRW + collision counting).

Paper shape: same ordering as Figure 2, with higher absolute costs than
AVG because COUNT needs mark-and-recapture collisions.

Scale caveat as in Figure 2's bench: the social baseline is
under-penalised at bench-scale keyword selectivity; the reproducible part
is the term-induced vs level-by-level ordering.
"""

from repro.bench import (
    BENCH_BUDGETS,
    bench_platform,
    emit,
    format_table,
    median_error_at_budget,
)
from repro.core.query import count_users

DESIGNS = ("social", "term-induced", "level-by-level")


def compute_rows():
    platform = bench_platform()
    query = count_users("privacy")
    rows = []
    for budget in BENCH_BUDGETS:
        row = [budget]
        for design in DESIGNS:
            row.append(
                median_error_at_budget(platform, query, "ma-srw", budget,
                                       graph_design=design)
            )
        rows.append(row)
    return rows


def test_fig3_count_users_across_graph_designs(once):
    rows = once(compute_rows)
    emit(
        "fig3",
        format_table(
            "Figure 3: COUNT of 'privacy' users — median error vs budget",
            ["budget"] + [f"SRW[{d}]" for d in DESIGNS],
            rows,
        ),
    )
    last = rows[-1]
    level = last[3]
    assert level is not None
    # COUNT over the whole social graph with these budgets should be far
    # worse (or unavailable) vs the keyword-focused subgraphs.
    social = last[1]
    if social is not None and level is not None:
        assert level <= social * 2.0
