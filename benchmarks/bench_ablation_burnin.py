"""Ablation — Geweke burn-in length across the three graph designs.

The paper measures burn-in (Geweke Z <= 0.1) of ~700 steps on the full
Twitter graph and ~610 on the term-induced subgraph, and argues the
level-by-level subgraph burns in much faster — the mechanism behind every
query-cost gap in §6.

We run one long SRW chain per design over the API oracles and report the
detected burn-in of its degree series.
"""

import statistics

from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.bench import bench_platform, emit, format_table
from repro.core.graph_builder import (
    LevelByLevelOracle,
    QueryContext,
    SocialGraphOracle,
    TermInducedOracle,
)
from repro.core.levels import LevelIndex
from repro.core.query import count_users
from repro.platform.clock import DAY
from repro.sampling.diagnostics import detect_burn_in
from repro.sampling.random_walk import SimpleRandomWalk

KEYWORD = "privacy"
CHAIN_LENGTH = 3_000
REPLICATES = 3


def burn_in_for(platform, design, seed):
    client = CachingClient(SimulatedMicroblogClient(platform))
    context = QueryContext(client, count_users(KEYWORD))
    if design == "social":
        oracle = SocialGraphOracle(context)
    elif design == "term-induced":
        oracle = TermInducedOracle(context)
    else:
        oracle = LevelByLevelOracle(context, LevelIndex(DAY))
    seeds = context.seeds(max_seeds=20)
    walk = SimpleRandomWalk(lambda n: oracle.neighbors(n), seeds[0], seed=seed)
    degrees = []
    for _ in range(CHAIN_LENGTH):
        node = walk.step()
        if not oracle.neighbors(node):
            walk.current = seeds[seed % len(seeds)]
        degrees.append(float(oracle.degree(node)))
    burn = detect_burn_in(degrees, threshold=0.1, step=50)
    return burn if burn is not None else CHAIN_LENGTH


def compute_rows():
    platform = bench_platform()
    rows = []
    for design in ("social", "term-induced", "level-by-level"):
        burns = [burn_in_for(platform, design, seed) for seed in range(REPLICATES)]
        rows.append([design, statistics.median(burns), min(burns), max(burns)])
    return rows


def test_burnin_across_graph_designs(once):
    rows = once(compute_rows)
    emit(
        "ablation_burnin",
        format_table(
            f"Burn-in (Geweke Z<=0.1) of SRW degree chains, {CHAIN_LENGTH}-step walks",
            ["graph design", "median burn-in", "min", "max"],
            rows,
        ),
    )
    burns = {row[0]: row[1] for row in rows}
    # Shape: the level-by-level subgraph must not burn in slower than the
    # term-induced subgraph (paper: dramatically faster).
    assert burns["level-by-level"] <= burns["term-induced"] * 1.5 + 100
