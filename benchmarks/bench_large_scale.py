"""Large-scale companion to Figures 8 and 10.

The bench platform (8k users) can be fully crawled within the budget
grid, which compresses algorithm differences near the top of the grid
(see EXPERIMENTS.md).  This bench repeats the Figure 8/10 comparison on a
30k-user platform whose `privacy` subgraph costs ~20k calls to crawl, so
the whole budget grid sits in the partial-coverage regime the paper
operates in.

Expected shape (measured during development): MA-TARW's COUNT error beats
MA-SRW's across the mid-to-upper grid (e.g. 0.09 vs 0.62 at 12k calls),
reproducing Figure 10's ordering where the small-platform bench could
not.
"""

from repro.bench import BENCH_PLATFORM_SEED, emit, format_table, median_error_at_budget
from repro.core.query import FOLLOWERS, avg_of, count_users
from repro.platform.simulator import PlatformConfig, build_platform

NUM_USERS = 30_000
BUDGETS = (8_000, 12_000, 16_000, 22_000)
REPLICATES = 2


def compute():
    # Own build (not the shared cache): at 30k users the default 45-post
    # timelines would cost ~1.4M post objects; short timelines keep memory
    # modest without changing the walk-regime comparison this bench makes.
    platform = build_platform(
        PlatformConfig(
            num_users=NUM_USERS,
            background_posts_mean=6.0,
            seed=BENCH_PLATFORM_SEED,
        )
    )
    query_count = count_users("privacy")
    query_avg = avg_of("privacy", FOLLOWERS)
    rows = []
    for budget in BUDGETS:
        row = [budget]
        for query in (query_count, query_avg):
            for algorithm in ("ma-srw", "ma-tarw"):
                row.append(
                    median_error_at_budget(
                        platform, query, algorithm, budget, replicates=REPLICATES
                    )
                )
        rows.append(row)
    return rows


def test_large_scale_partial_coverage(once):
    rows = once(compute)
    emit(
        "large_scale",
        format_table(
            f"Figures 8/10 at scale ({NUM_USERS:,} users, partial-coverage regime)",
            ["budget", "COUNT SRW", "COUNT TARW", "AVG SRW", "AVG TARW"],
            rows,
        ),
    )
    # Shape: over the upper half of the grid, TARW's COUNT must win or tie
    # the majority of budgets where both produce estimates.
    wins = ties = losses = 0
    for row in rows[len(rows) // 2:]:
        srw, tarw = row[1], row[2]
        if srw is None or tarw is None:
            continue
        if tarw < srw * 0.9:
            wins += 1
        elif tarw <= srw * 1.25:
            ties += 1
        else:
            losses += 1
    assert wins + ties >= losses
