"""Figure 14 — Tumblr AVG(likes) of posts containing the keyword.

Paper shape: MA-TARW performs best; Tumblr's one-request-per-10-seconds
rate limit makes simulated wall-clock time the dominant practical cost,
which we report alongside call counts.
"""

from repro.bench import bench_platform, emit, format_table, ground_truth, run_estimator
from repro.core.query import MEAN_LIKES, avg_of
from repro.platform.clock import DAY
from repro.platform.profiles import TUMBLR

KEYWORD = "privacy"
BUDGETS = (3_000, 6_000, 10_000)


def compute():
    tumblr = bench_platform(profile=TUMBLR)
    query = avg_of(KEYWORD, MEAN_LIKES)
    truth = ground_truth(tumblr, query)
    rows = []
    for budget in BUDGETS:
        for algorithm in ("ma-srw", "ma-tarw"):
            errors = []
            waits = []
            for seed in range(3):
                result = run_estimator(tumblr, query, algorithm, budget=budget,
                                       seed=400 + seed)
                if result.value is not None:
                    errors.append(abs(result.value - truth) / truth)
                waits.append(result.diagnostics.get("simulated_wait_seconds", 0.0))
            errors.sort()
            median_error = errors[len(errors) // 2] if errors else None
            mean_wait_days = sum(waits) / len(waits) / DAY
            rows.append([budget, algorithm, median_error, mean_wait_days])
    return rows, truth


def test_fig14_tumblr_avg_likes(once):
    rows, truth = once(compute)
    emit(
        "fig14",
        format_table(
            f"Figure 14: Tumblr AVG(likes) for {KEYWORD!r} — truth {truth:.2f}",
            ["budget", "algorithm", "median error", "rate-limit wait (sim. days)"],
            rows,
        ),
    )
    # Shape: estimates converge, and Tumblr's 1-per-10s limit forces
    # substantial simulated waiting (the paper's practical pain point).
    final_tarw = [row for row in rows if row[0] == BUDGETS[-1] and row[1] == "ma-tarw"][0]
    assert final_tarw[2] is not None and final_tarw[2] < 0.5
    assert max(row[3] for row in rows) > 0.1  # at least a tenth of a day waiting
