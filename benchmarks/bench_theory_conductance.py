"""Theory bench — Theorem 4.1 and Corollary 4.1 against measured graphs.

Validates, on planted level-by-level lattices:

* the closed-form conductance (Eq. 2/3) tracks the spectrally-measured
  conductance across the adjacent-degree sweep;
* adding intra-level edges always lowers conductance (Eq. 2 < Eq. 3), in
  formula and in measurement;
* Corollary 4.1's optimal degree tends to 2 as the level count grows.
"""

import pytest

from repro.bench import emit, format_table
from repro.graph.conductance import (
    corollary41_optimal_degree,
    estimate_conductance_spectral,
    theorem41_conductance_with_intra,
    theorem41_conductance_without_intra,
)
from repro.graph.components import is_connected
from repro.graph.generators import planted_level_graph

LEVELS = 6
PER_LEVEL = 20
N = LEVELS * PER_LEVEL


def compute():
    rows = []
    for d in (2, 3, 5, 8):
        for k in (0, 2, 5):
            graph = planted_level_graph(LEVELS, PER_LEVEL, d, intra_degree=k, seed=3)
            measured = (
                estimate_conductance_spectral(graph) if is_connected(graph) else None
            )
            if k == 0:
                theory = theorem41_conductance_without_intra(N, LEVELS, d)
            else:
                theory = theorem41_conductance_with_intra(N, LEVELS, d, k)
            rows.append([d, k, theory, measured])
    degree_rows = [[h, corollary41_optimal_degree(h)] for h in (5, 10, 20, 50, 100)]
    return rows, degree_rows


def test_theorem41_and_corollary41(once):
    rows, degree_rows = once(compute)
    emit(
        "theory_conductance",
        format_table(
            f"Theorem 4.1 on {LEVELS}x{PER_LEVEL} planted lattices",
            ["d (adjacent)", "k (intra)", "phi theory", "phi measured (spectral)"],
            rows,
        )
        + "\n\n"
        + format_table(
            "Corollary 4.1: conductance-optimal adjacent degree d*",
            ["levels h", "d*"],
            degree_rows,
        ),
    )
    # Theory: intra edges strictly lower the formula value at every d.
    by_d = {}
    for d, k, theory, _ in rows:
        by_d.setdefault(d, {})[k] = theory
    for d, values in by_d.items():
        assert values[2] < values[0]
        assert values[5] < values[2]
    # Measurement: same direction wherever both graphs were connected.
    measured_by_d = {}
    for d, k, _, measured in rows:
        measured_by_d.setdefault(d, {})[k] = measured
    checked = 0
    for d, values in measured_by_d.items():
        if values.get(0) is not None and values.get(5) is not None:
            assert values[5] < values[0]
            checked += 1
    assert checked >= 2
    # Corollary: d* decreases toward 2.
    stars = [star for _, star in degree_rows]
    assert stars == sorted(stars, reverse=True)
    assert stars[-1] == pytest.approx(2.06, abs=0.01)
