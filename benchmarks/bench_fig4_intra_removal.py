"""Figure 4 — impact of removing intra-level edges.

Paper: removing 10%–100% of randomly chosen intra-level edges steadily
lowers the query cost of a simple random walk at fixed accuracy; even
partial removal helps.  The mechanism is mixing speed: intra-level edges
knit the tight communities that trap walks, so removal raises conductance.

We report both layers:

1. the *mechanism*, deterministically: spectral conductance of the
   (materialised) subgraph's largest component as a function of the
   fraction of intra-level edges removed — this must rise monotonically;
2. the *end-to-end effect*: median error of a budgeted MA-SRW run per
   removal fraction (noisier at bench scale; shown for completeness).
"""

from repro.bench import bench_platform, emit, format_table, median_error_at_budget
from repro.core.levels import LevelIndex, level_by_level_subgraph
from repro.core.query import FOLLOWERS, avg_of
from repro.graph.components import largest_component
from repro.graph.conductance import estimate_conductance_spectral
from repro.platform.clock import DAY

KEYWORDS = ("privacy", "boston", "new york")
REMOVED_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)
BUDGET = 3_000


def compute():
    platform = bench_platform()
    index = LevelIndex(DAY)
    conductance_rows = []
    for removed in REMOVED_FRACTIONS:
        row = [f"{removed:.0%} removed"]
        for keyword in KEYWORDS:
            mentions = platform.store.first_mention_times(keyword)
            subgraph = platform.graph.subgraph(mentions)
            level_graph = level_by_level_subgraph(
                subgraph, mentions, index, keep_intra_fraction=1.0 - removed, seed=1
            )
            core = level_graph.subgraph(largest_component(level_graph))
            row.append(estimate_conductance_spectral(core))
        conductance_rows.append(row)

    error_rows = []
    for removed in (0.0, 0.5, 1.0):
        row = [f"{removed:.0%} removed"]
        for keyword in KEYWORDS:
            query = avg_of(keyword, FOLLOWERS)
            row.append(
                median_error_at_budget(
                    platform, query, "ma-srw", BUDGET,
                    graph_design="level-by-level",
                    keep_intra_fraction=1.0 - removed,
                )
            )
        error_rows.append(row)
    return conductance_rows, error_rows


def test_fig4_intra_edge_removal(once):
    conductance_rows, error_rows = once(compute)
    emit(
        "fig4",
        format_table(
            "Figure 4 (mechanism): conductance vs intra-level edges removed",
            ["intra edges"] + list(KEYWORDS),
            conductance_rows,
        )
        + "\n\n"
        + format_table(
            f"Figure 4 (effect): MA-SRW median error at budget {BUDGET}",
            ["intra edges"] + list(KEYWORDS),
            error_rows,
        ),
    )
    # Paper shape, with one honest nuance: removal raises conductance for
    # keywords whose adoption spreads over time (privacy), while an
    # event-driven keyword (boston) concentrates almost all of its edges
    # inside the event day, so removal can only thin its connectivity.
    # We assert the aggregate effect: mean conductance over the keyword
    # panel must not fall, and the spread-out keyword must improve.
    means = []
    for row in conductance_rows:
        values = row[1:]
        means.append(sum(values) / len(values))
    assert means[-1] >= means[0] * 0.95
    privacy_series = [row[1] for row in conductance_rows]
    assert privacy_series[-1] > privacy_series[0]
