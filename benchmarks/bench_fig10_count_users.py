"""Figure 10 — Twitter COUNT of users who posted ``privacy``:
MA-SRW vs MA-TARW vs M&R (all on the level-by-level subgraph, as in the
paper, which runs M&R there "to better evaluate our topology-aware
navigation algorithm").

Paper shape: MA-TARW < MA-SRW < M&R in query cost at every error level.
"""

from repro.bench import (
    BENCH_BUDGETS,
    bench_platform,
    emit,
    format_table,
    median_error_at_budget,
)
from repro.core.query import count_users

ALGORITHMS = ("ma-srw", "ma-tarw", "m&r")


def compute_rows():
    platform = bench_platform()
    query = count_users("privacy")
    rows = []
    for budget in BENCH_BUDGETS:
        row = [budget]
        for algorithm in ALGORITHMS:
            row.append(median_error_at_budget(platform, query, algorithm, budget))
        rows.append(row)
    return rows


def test_fig10_count_users(once):
    rows = once(compute_rows)
    emit(
        "fig10",
        format_table(
            "Figure 10: COUNT of 'privacy' users — median error vs budget",
            ["budget", "MA-SRW", "MA-TARW", "M&R"],
            rows,
        ),
    )
    # Shape: at the largest budget TARW produces an estimate and is
    # competitive with the best baseline.
    last = rows[-1]
    srw, tarw, mr = last[1], last[2], last[3]
    assert tarw is not None
    baseline = min(e for e in (srw, mr) if e is not None)
    assert tarw <= max(baseline * 2.0, baseline + 0.10)
