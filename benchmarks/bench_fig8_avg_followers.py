"""Figure 8 — Twitter AVG(followers): MA-SRW vs MA-TARW for ``privacy``
and ``new york``.

Paper shape: MA-TARW reaches each error level at significantly lower cost
than MA-SRW.  We report median error per budget for both algorithms and
keywords.
"""

from repro.bench import (
    BENCH_BUDGETS,
    bench_platform,
    emit,
    format_table,
    median_error_at_budget,
)
from repro.core.query import FOLLOWERS, avg_of

KEYWORDS = ("privacy", "new york")


def compute_rows():
    platform = bench_platform()
    rows = []
    for budget in BENCH_BUDGETS:
        row = [budget]
        for keyword in KEYWORDS:
            query = avg_of(keyword, FOLLOWERS)
            for algorithm in ("ma-srw", "ma-tarw"):
                row.append(median_error_at_budget(platform, query, algorithm, budget))
        rows.append(row)
    return rows


def test_fig8_avg_followers(once):
    rows = once(compute_rows)
    headers = ["budget"]
    for keyword in KEYWORDS:
        headers += [f"{keyword} SRW", f"{keyword} TARW"]
    emit(
        "fig8",
        format_table("Figure 8: AVG(followers) — median error vs budget", headers, rows),
    )
    # Shape: at the largest budget both algorithms produce estimates and
    # TARW is competitive (within 2x of SRW) for each keyword.
    last = rows[-1]
    for offset in (1, 3):
        srw, tarw = last[offset], last[offset + 1]
        assert tarw is not None
        if srw is not None:
            assert tarw <= max(srw * 2.0, srw + 0.10)
