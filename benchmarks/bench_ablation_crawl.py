"""Ablation — the brute-force crawl baseline vs sampling estimators.

§3.2's first observation: one *could* crawl every timeline reachable from
a seed and aggregate locally, but the query cost is prohibitive and COUNT
climbs toward the truth only as the crawl completes.  This bench puts the
crawl next to MA-SRW and MA-TARW on the COUNT query, budget by budget:
the crawl's estimate is a growing lower bound (huge negative bias at
small budgets), which is exactly why sampling estimators exist.
"""

from repro.bench import (
    BENCH_BUDGETS,
    bench_platform,
    emit,
    format_table,
    ground_truth,
    run_estimator,
)
from repro.core.query import count_users

KEYWORD = "privacy"


def compute():
    platform = bench_platform()
    query = count_users(KEYWORD)
    truth = ground_truth(platform, query)
    rows = []
    for budget in BENCH_BUDGETS:
        crawl = run_estimator(platform, query, "crawl", graph_design="term-induced",
                              budget=budget, seed=3)
        srw = run_estimator(platform, query, "ma-srw", budget=budget, seed=3)
        tarw = run_estimator(platform, query, "ma-tarw", budget=budget, seed=3)
        rows.append([
            budget,
            crawl.value,
            crawl.value / truth if crawl.value is not None else None,
            srw.value,
            tarw.value,
        ])
    return rows, truth


def test_crawl_vs_sampling(once):
    rows, truth = once(compute)
    emit(
        "ablation_crawl",
        format_table(
            f"Brute-force crawl vs sampling — COUNT({KEYWORD!r}), truth {truth:.0f}",
            ["budget", "crawl found", "crawl/truth", "MA-SRW est.", "MA-TARW est."],
            rows,
        ),
    )
    # The crawl count never exceeds the truth and grows with budget.
    founds = [row[1] for row in rows]
    assert all(f is not None and f <= truth + 1e-9 for f in founds)
    assert founds == sorted(founds)
    # At the smallest budget the crawl has found well under half the users
    # (the §3.2 cost argument); at the largest it is close to complete.
    assert founds[0] < truth * 0.7
    assert founds[-1] > truth * 0.7
