"""Ablation — MA-TARW's design choices.

Three DESIGN.md call-outs, each at a fixed budget:

* ``p_method``: deterministic DP over the classified subgraph (ours)
  vs the paper's sampled ESTIMATE-p (Algorithm 2 verbatim, pooled);
* the §5.2 root-probability cache (estimate mode): on vs off — the paper
  claims it "saves about half of the query cost" of probability
  estimation;
* the estimate combine: corrected ``phase_sum`` vs Algorithm 3's printed
  ``1/|R_i|`` normalisation (which EXPERIMENTS.md argues is a typo).
"""

import statistics

from repro.bench import bench_platform, emit, format_table, ground_truth, run_estimator
from repro.core.query import count_users
from repro.core.tarw import TARWConfig

KEYWORD = "privacy"
BUDGET = 5_000
REPLICATES = 3


def median_error(platform, query, truth, config):
    errors = []
    for seed in range(REPLICATES):
        result = run_estimator(platform, query, "ma-tarw", budget=BUDGET,
                               seed=700 + seed, tarw_config=config)
        if result.value is not None:
            errors.append(abs(result.value - truth) / truth)
    return statistics.median(errors) if errors else None


def compute():
    platform = bench_platform()
    query = count_users(KEYWORD)
    truth = ground_truth(platform, query)
    rows = [
        ["p_method=dp (default)", median_error(platform, query, truth, TARWConfig())],
        [
            "p_method=estimate (Algorithm 2)",
            median_error(platform, query, truth, TARWConfig(p_method="estimate")),
        ],
        [
            "estimate, no root cache",
            median_error(
                platform, query, truth,
                TARWConfig(p_method="estimate", cache_root_probabilities=False),
            ),
        ],
        [
            "combine=paper (1/|Ri|)",
            median_error(platform, query, truth, TARWConfig(combine="paper")),
        ],
        [
            "no final recount",
            median_error(platform, query, truth, TARWConfig(final_recount_instances=0)),
        ],
    ]
    return rows, truth


def test_tarw_design_ablation(once):
    rows, truth = once(compute)
    emit(
        "ablation_tarw",
        format_table(
            f"MA-TARW design ablation — COUNT({KEYWORD!r}), truth {truth:.0f}, "
            f"budget {BUDGET}",
            ["variant", "median rel. error"],
            rows,
        ),
    )
    errors = {row[0]: row[1] for row in rows}
    default = errors["p_method=dp (default)"]
    assert default is not None
    # The printed Algorithm 3 combine under-normalises by the path length;
    # it must be visibly worse than the corrected combine.
    paper_combine = errors["combine=paper (1/|Ri|)"]
    if paper_combine is not None:
        assert paper_combine > default
    # DP probabilities should not lose to the heavy-tailed sampler.
    sampled = errors["p_method=estimate (Algorithm 2)"]
    if sampled is not None:
        assert default <= sampled * 1.5 + 0.05
