"""Table 3 — average percent improvement of MA-TARW over MA-SRW and M&R.

The paper reports, per keyword, the percent query-cost improvement of
MA-TARW over MA-SRW for AVG(followers) and COUNT(users), and over M&R for
COUNT, at 5% relative error (improvements of 24–55% over MA-SRW and
53–78% over M&R).

Here we measure the budget-sweep analogue: the smallest budget at which
each algorithm's median error meets the target, and the implied percent
improvement.  The target is 25% error — on the bench-sized platform a 5%
target requires near-full subgraph coverage for every algorithm, which
flattens all differences (see EXPERIMENTS.md).
"""

from repro.bench import (
    BENCH_BUDGETS,
    bench_platform,
    budget_to_reach_error,
    emit,
    format_table,
)
from repro.core.query import FOLLOWERS, avg_of, count_users

KEYWORDS = ("boston", "oprah winfrey", "tunisia", "obamacare")
TARGET_ERROR = 0.25


def improvement(base, ours):
    if base is None or ours is None:
        return None
    if base == 0:
        return None
    return 100.0 * (base - ours) / base


def compute_rows():
    platform = bench_platform()
    rows = []
    for keyword in KEYWORDS:
        query_avg = avg_of(keyword, FOLLOWERS)
        query_count = count_users(keyword)
        srw_avg = budget_to_reach_error(platform, query_avg, "ma-srw", TARGET_ERROR)
        tarw_avg = budget_to_reach_error(platform, query_avg, "ma-tarw", TARGET_ERROR)
        srw_count = budget_to_reach_error(platform, query_count, "ma-srw", TARGET_ERROR)
        tarw_count = budget_to_reach_error(platform, query_count, "ma-tarw", TARGET_ERROR)
        mr_count = budget_to_reach_error(platform, query_count, "m&r", TARGET_ERROR)
        rows.append(
            [
                keyword,
                improvement(srw_avg, tarw_avg),
                improvement(srw_count, tarw_count),
                improvement(mr_count, tarw_count),
                f"srw_avg={srw_avg} tarw_avg={tarw_avg} "
                f"srw_cnt={srw_count} tarw_cnt={tarw_count} mr_cnt={mr_count}",
            ]
        )
    return rows


def test_table3_tarw_improvement(once):
    rows = once(compute_rows)
    emit(
        "table3",
        format_table(
            f"Table 3: % budget improvement of MA-TARW (target error {TARGET_ERROR:.0%})",
            ["Keyword", "vs MA-SRW (AVG)", "vs MA-SRW (COUNT)", "vs M&R (COUNT)",
             "raw budgets"],
            rows,
        ),
    )
    # Shape: TARW should be at least competitive overall — across the
    # keyword panel the median improvement must not be negative.
    count_improvements = [row[2] for row in rows if row[2] is not None]
    assert count_improvements, "no COUNT comparison completed"
    count_improvements.sort()
    median = count_improvements[len(count_improvements) // 2]
    assert median >= 0.0
