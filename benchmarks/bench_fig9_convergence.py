"""Figure 9 — convergence of the estimated AVG(followers) with query cost.

Paper shape: MA-TARW converges to the true value within a few thousand
queries and with visibly lower variance than MA-SRW.

We run both algorithms once at a generous budget and print their traces
(estimate vs cost), plus the across-replicate spread of final estimates.
"""

import statistics

from repro.bench import bench_platform, emit, format_table, ground_truth, run_estimator
from repro.core.query import FOLLOWERS, avg_of

KEYWORD = "privacy"
BUDGET = 8_000
REPLICATES = 5


def trace_at_checkpoints(result, checkpoints):
    values = []
    for checkpoint in checkpoints:
        value = None
        for point in result.trace:
            if point.cost <= checkpoint and point.estimate is not None:
                value = point.estimate
        values.append(value)
    return values


def compute():
    platform = bench_platform()
    query = avg_of(KEYWORD, FOLLOWERS)
    truth = ground_truth(platform, query)
    checkpoints = [1_000, 2_000, 3_000, 4_500, 6_000, 8_000]
    rows = []
    finals = {"ma-srw": [], "ma-tarw": []}
    for algorithm in ("ma-srw", "ma-tarw"):
        result = run_estimator(platform, query, algorithm, budget=BUDGET, seed=5)
        rows.append([algorithm] + trace_at_checkpoints(result, checkpoints))
        for seed in range(REPLICATES):
            replicate = run_estimator(platform, query, algorithm, budget=BUDGET,
                                      seed=100 + seed)
            if replicate.value is not None:
                finals[algorithm].append(replicate.value)
    rows.append(["(truth)"] + [truth] * len(checkpoints))
    spread_rows = [
        [
            algorithm,
            statistics.fmean(values) if values else None,
            statistics.pstdev(values) if len(values) > 1 else None,
        ]
        for algorithm, values in finals.items()
    ]
    return rows, spread_rows, checkpoints, truth


def test_fig9_convergence_trace(once):
    rows, spread_rows, checkpoints, truth = once(compute)
    emit(
        "fig9",
        format_table(
            f"Figure 9: estimated AVG(followers) of {KEYWORD!r} vs query cost",
            ["algorithm"] + [f"@{c}" for c in checkpoints],
            rows,
        )
        + "\n\n"
        + format_table(
            f"Final-estimate spread over {REPLICATES} replicates (truth {truth:.2f})",
            ["algorithm", "mean", "stdev"],
            spread_rows,
        ),
    )
    # Shape: both algorithms end near the truth at full budget.
    for row in rows[:2]:
        final = row[-1]
        assert final is not None
        assert abs(final - truth) / truth < 0.6
