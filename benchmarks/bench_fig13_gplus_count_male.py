"""Figure 13 — Google+ COUNT of male users who posted the keyword.

The gender predicate only works on Google+ because Twitter's API hides
gender (§6.2) — our Twitter profile view returns None for it, so the same
query on Twitter would count nobody.  Paper shape: MA-TARW beats MA-SRW
and M&R.
"""

from repro.bench import bench_platform, emit, format_table, ground_truth, median_error_at_budget
from repro.core.query import count_users, gender_is
from repro.platform.profiles import GOOGLE_PLUS
from repro.platform.users import Gender

KEYWORD = "privacy"
BUDGETS = (5_000, 10_000, 20_000, 35_000)
ALGORITHMS = ("ma-srw", "ma-tarw", "m&r")


def compute():
    gplus = bench_platform(profile=GOOGLE_PLUS)
    query = count_users(KEYWORD, predicate=gender_is(Gender.MALE))
    truth = ground_truth(gplus, query)
    total = ground_truth(gplus, count_users(KEYWORD))
    rows = []
    for budget in BUDGETS:
        row = [budget]
        for algorithm in ALGORITHMS:
            row.append(median_error_at_budget(gplus, query, algorithm, budget))
        rows.append(row)
    return rows, truth, total


def test_fig13_google_plus_count_male_users(once):
    rows, truth, total = once(compute)
    emit(
        "fig13",
        format_table(
            f"Figure 13: Google+ COUNT(male users posting {KEYWORD!r}) — "
            f"truth {truth:.0f} of {total:.0f} matching users",
            ["budget", "MA-SRW", "MA-TARW", "M&R"],
            rows,
        ),
    )
    assert 0 < truth < total  # the predicate is a proper, non-empty subset
    final = rows[-1]
    tarw = final[2]
    assert tarw is not None and tarw < 0.5
