"""Figure 5 — impact of the time interval T on query cost.

Paper: candidate intervals (2H … 1M) ordered by pilot-estimated
conductance match the ordering of measured query costs, validating the
§4.2.3 selection procedure.

We run the pilot for each interval and report its two scores (the default
spectral-times-retention score and the paper's literal Eq. 3 score) next
to the measured error of a budgeted MA-SRW run at that interval, plus the
rank correlation between the default score and accuracy.
"""

from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.bench import bench_platform, emit, format_table, median_error_at_budget
from repro.core.graph_builder import QueryContext
from repro.core.interval import run_pilot, select_time_interval
from repro.core.levels import STANDARD_INTERVALS, LevelIndex
from repro.core.query import FOLLOWERS, avg_of

KEYWORD = "privacy"
BUDGET = 4_000


def spearman_rank_correlation(xs, ys):
    def ranks(values):
        order = sorted(range(len(values)), key=lambda i: values[i])
        result = [0.0] * len(values)
        for rank, index in enumerate(order):
            result[index] = float(rank)
        return result

    rx, ry = ranks(xs), ranks(ys)
    n = len(xs)
    if n < 2:
        return 0.0
    d2 = sum((a - b) ** 2 for a, b in zip(rx, ry))
    return 1.0 - 6.0 * d2 / (n * (n * n - 1))


def compute():
    platform = bench_platform()
    query = avg_of(KEYWORD, FOLLOWERS)
    client = CachingClient(SimulatedMicroblogClient(platform))
    context = QueryContext(client, query)
    rows = []
    scores, errors = [], []
    for label, interval in STANDARD_INTERVALS:
        pilots = [
            run_pilot(context, LevelIndex(interval), label, pilot_steps=80,
                      seed=170 + repeat)
            for repeat in range(4)
        ]
        mean_score = sum(p.spectral_score for p in pilots) / len(pilots)
        mean_retention = sum(p.retention for p in pilots) / len(pilots)
        mean_eq3 = sum(p.eq3_score for p in pilots) / len(pilots)
        mean_down = sum(p.mean_down_degree for p in pilots) / len(pilots)
        error = median_error_at_budget(
            platform, query, "ma-srw", BUDGET, interval=interval
        )
        rows.append([label, mean_score, mean_retention, mean_eq3, mean_down, error])
        if error is not None:
            scores.append(mean_score)
            errors.append(error)
    correlation = spearman_rank_correlation(scores, [-e for e in errors])
    selection = select_time_interval(context, pilot_steps=80, pilot_repeats=4, seed=17)
    return rows, correlation, selection.label


def test_fig5_time_interval_selection(once):
    rows, correlation, chosen = once(compute)
    rows.append([f"(chosen: {chosen}; rank corr {correlation:.2f})",
                 None, None, None, None, None])
    emit(
        "fig5",
        format_table(
            f"Figure 5: time interval T — pilot scores vs measured error "
            f"(keyword {KEYWORD!r}, budget {BUDGET})",
            ["T", "pilot score (spectral x retention)", "retention",
             "Eq.3 score", "mean down-deg", "median error"],
            rows,
        ),
    )
    # Paper shape: the pilot ordering is consistent with measured accuracy.
    assert correlation > 0.2
    # The chosen interval must not be a degenerate extreme that loses most
    # of the subgraph's edges.
    assert chosen not in ("1M",)
