"""Ablation — keyword selectivity and the cost of walking the full graph.

The paper's motivating observation (§1, §3.2): aggregate queries match
tiny user fractions (privacy = 0.4% of Twitter), so sampling the whole
social graph wastes almost every query, while the keyword-focused
subgraphs stay efficient.

A laptop-scale platform cannot hold both that selectivity and a connected
keyword subgraph (0.4% of 8k users is 32 users), so the full effect is
compressed — this bench shows the *trend*: as keywords get rarer, the
social-graph design needs more samples per matching user while the
level-by-level design's sample efficiency is unchanged.
"""

from repro.bench import bench_platform, emit, format_table, median_error_at_budget, run_estimator
from repro.core.query import count_users

# most to least frequent on the bench platform
KEYWORDS = ("new york", "obamacare", "tunisia", "simvastatin")
BUDGET = 2_000


def compute():
    platform = bench_platform()
    rows = []
    for keyword in KEYWORDS:
        population = len(platform.store.users_mentioning(keyword))
        fraction = population / platform.config.num_users
        query = count_users(keyword)
        social_error = median_error_at_budget(
            platform, query, "ma-srw", BUDGET, graph_design="social"
        )
        level_error = median_error_at_budget(
            platform, query, "ma-srw", BUDGET, graph_design="level-by-level"
        )
        # matching-sample efficiency of the social walk
        result = run_estimator(platform, query, "ma-srw", graph_design="social",
                               budget=BUDGET, seed=42)
        rows.append([keyword, f"{fraction:.1%}", social_error, level_error,
                     result.num_samples])
    return rows


def test_selectivity_trend(once):
    rows = once(compute)
    emit(
        "ablation_selectivity",
        format_table(
            f"Keyword selectivity vs graph design (COUNT, budget {BUDGET})",
            ["keyword", "matching fraction", "social err", "level-by-level err",
             "social samples"],
            rows,
        ),
    )
    fractions = [float(row[1].rstrip("%")) / 100 for row in rows]
    assert fractions == sorted(fractions, reverse=True), "keywords must be ordered"
    # The full selectivity penalty needs the paper's 0.4% regime, which
    # bench scale cannot reach (see docstring); this table documents the
    # trend.  Assert only data sanity: the frequency spread is real and
    # each design produced estimates for at least half the keyword panel.
    assert fractions[0] > 2 * fractions[-1]
    for column in (2, 3):
        produced = sum(1 for row in rows if row[column] is not None)
        assert produced * 2 >= len(rows)
