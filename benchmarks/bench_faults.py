"""Fault-injection benchmark: estimate quality and retry overhead vs fault rate.

Runs MA-TARW and MA-SRW on the shared bench platform under each seeded
fault profile (none / flaky / unstable / hostile — up to 20% transient
errors plus timeouts, truncations and duplicate rows) and records, per
profile:

* the estimate RMSE against ground truth over (algorithm x seed) runs —
  which must be *constant* across profiles, because healable faults leave
  estimates bit-identical to the fault-free run;
* the retry overhead: budget-exempt ``retries`` charges relative to the
  budgeted query spend — the price of resilience, fully visible in the
  cost meter instead of silently burning budget.

Results go to ``benchmarks/results/faults.txt`` and the machine-readable
``BENCH_faults.json`` at the repo root.
"""

import json
import pathlib

from repro.api.accounting import RETRIES
from repro.api.faults import FAULT_PROFILES
from repro.bench import BENCH_PLATFORM_SEED, bench_platform, emit, format_table
from repro.bench.harness import run_estimator
from repro.core.query import FOLLOWERS, avg_of
from repro.groundtruth import exact_value

ALGORITHMS = ("ma-tarw", "ma-srw")
PROFILES = ("none", "flaky", "unstable", "hostile")
SEEDS = (0, 1)
BUDGET = 5_000
JSON_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_faults.json"


def compute():
    platform = bench_platform()
    query = avg_of("privacy", FOLLOWERS)
    truth = exact_value(platform.store, query)

    record = {
        "seed": BENCH_PLATFORM_SEED,
        "budget": BUDGET,
        "query": query.describe(),
        "truth": truth,
        "profiles": {},
    }
    runs = {}
    for profile in PROFILES:
        plan = FAULT_PROFILES[profile]
        for algorithm in ALGORITHMS:
            for seed in SEEDS:
                runs[(profile, algorithm, seed)] = run_estimator(
                    platform,
                    query,
                    algorithm,
                    budget=BUDGET,
                    seed=seed,
                    fault_plan=plan if plan.active else None,
                )

    rows = []
    for profile in PROFILES:
        plan = FAULT_PROFILES[profile]
        errors, retries, queries = [], 0, 0
        for algorithm in ALGORITHMS:
            for seed in SEEDS:
                result = runs[(profile, algorithm, seed)]
                errors.append((result.value - truth) / truth)
                retries += result.cost_by_kind.get(RETRIES, 0)
                queries += result.cost_total
        rmse = (sum(e * e for e in errors) / len(errors)) ** 0.5
        overhead = retries / queries if queries else 0.0
        record["profiles"][profile] = {
            "fault_rate": plan.fault_rate,
            "duplicate_rate": plan.duplicate_rate,
            "estimates": {
                f"{algorithm}:seed{seed}": runs[(profile, algorithm, seed)].value
                for algorithm in ALGORITHMS
                for seed in SEEDS
            },
            "rmse_relative": rmse,
            "retry_calls": retries,
            "query_calls": queries,
            "retry_overhead": overhead,
        }
        rows.append(
            [
                profile,
                f"{plan.fault_rate:.0%}",
                f"{plan.duplicate_rate:.0%}",
                round(rmse, 6),
                retries,
                f"{overhead:.1%}",
            ]
        )

    JSON_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    return rows, record


def test_fault_overhead_and_rmse(once):
    rows, record = once(compute)
    emit(
        "faults",
        format_table(
            f"Injected-fault sweep: AVG(followers) WHERE 'privacy', "
            f"budget {BUDGET}, {len(ALGORITHMS)} algorithms x {len(SEEDS)} seeds "
            f"(seed {BENCH_PLATFORM_SEED})",
            ["profile", "fault rate", "dup rate", "rel. RMSE", "retry calls", "overhead"],
            rows,
        ),
    )
    profiles = record["profiles"]
    # The headline invariant: healable faults leave every estimate
    # bit-identical to its fault-free twin, so RMSE cannot move at all.
    for profile in PROFILES[1:]:
        assert profiles[profile]["estimates"] == profiles["none"]["estimates"]
        assert profiles[profile]["rmse_relative"] == profiles["none"]["rmse_relative"]
    # Resilience is not free: retry volume grows with the fault rate and
    # is fully accounted (zero in the fault-free run).
    assert profiles["none"]["retry_calls"] == 0
    assert (
        profiles["flaky"]["retry_calls"]
        < profiles["unstable"]["retry_calls"]
        < profiles["hostile"]["retry_calls"]
    )
