"""Parallel execution engine — replicate fan-out wall-clock speedup.

Not a paper figure: this measures the engine added for walk-shard and
replicate parallelism.  Eight independent MA-SRW replicates run twice —
serially and on 4 thread workers — with a small emulated per-call API
latency (the regime the paper's estimators actually live in: a Twitter
API call costs a network round-trip, not CPU).  Thread workers overlap
those waits, so the fan-out finishes ~4x sooner while producing the
*identical* per-replicate estimates (seeds are fixed by replicate index,
never by scheduling).

On a multi-core machine the same harness also accelerates zero-latency
runs via ``executor="process"``; this benchmark sticks to the
latency-overlap effect so its result is honest on a single-core CI box.
"""

import time

from repro.bench import bench_platform, emit, format_table
from repro.bench.harness import replicate_runs
from repro.core.query import count_users

KEYWORD = "privacy"
BUDGET = 1_200
REPLICATES = 8
WORKERS = 4
API_LATENCY = 0.002  # seconds per charged call; ~2ms emulated round-trip


def compute():
    platform = bench_platform(num_users=4_000)
    query = count_users(KEYWORD)
    timings = {}
    values = {}
    for label, workers in (("serial", None), (f"{WORKERS} thread workers", WORKERS)):
        start = time.perf_counter()
        results = replicate_runs(
            platform,
            query,
            "ma-srw",
            REPLICATES,
            n_workers=workers,
            executor="thread",
            budget=BUDGET,
            api_latency=API_LATENCY,
        )
        timings[label] = time.perf_counter() - start
        values[label] = [r.value for r in results]
    serial_label, parallel_label = list(timings)
    speedup = timings[serial_label] / timings[parallel_label]
    identical = values[serial_label] == values[parallel_label]
    rows = [
        [serial_label, REPLICATES, timings[serial_label], 1.0],
        [parallel_label, REPLICATES, timings[parallel_label], speedup],
    ]
    return rows, speedup, identical


def test_parallel_replicate_speedup(once):
    rows, speedup, identical = once(compute)
    emit(
        "parallel_speedup",
        format_table(
            f"Replicate fan-out: {REPLICATES} MA-SRW runs, "
            f"{API_LATENCY * 1000:.0f}ms emulated API latency",
            ["execution", "replicates", "wall-clock (s)", "speedup"],
            rows,
        )
        + f"\nidentical per-replicate estimates: {identical}",
    )
    assert identical, "parallel replicates must match serial ones exactly"
    assert speedup > 1.5, f"expected latency-overlap speedup, got {speedup:.2f}x"
