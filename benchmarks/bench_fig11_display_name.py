"""Figure 11 — Twitter AVG(display-name length) of users who posted the
keyword.

Paper shape: this measure has far lower variability than follower counts,
so both algorithms need substantially fewer queries than in Figure 8, and
MA-TARW leads.
"""

from repro.bench import (
    BENCH_BUDGETS,
    bench_platform,
    emit,
    format_table,
    median_error_at_budget,
)
from repro.core.query import DISPLAY_NAME_LENGTH, FOLLOWERS, avg_of

KEYWORDS = ("privacy", "new york")


def compute():
    platform = bench_platform()
    rows = []
    for budget in BENCH_BUDGETS:
        row = [budget]
        for keyword in KEYWORDS:
            query = avg_of(keyword, DISPLAY_NAME_LENGTH)
            for algorithm in ("ma-srw", "ma-tarw"):
                row.append(median_error_at_budget(platform, query, algorithm, budget))
        rows.append(row)
    # companion: followers at the smallest budget, to show the contrast
    contrast = []
    for keyword in KEYWORDS:
        name_err = median_error_at_budget(
            platform, avg_of(keyword, DISPLAY_NAME_LENGTH), "ma-tarw", BENCH_BUDGETS[1]
        )
        followers_err = median_error_at_budget(
            platform, avg_of(keyword, FOLLOWERS), "ma-tarw", BENCH_BUDGETS[1]
        )
        contrast.append([keyword, name_err, followers_err])
    return rows, contrast


def test_fig11_display_name_length(once):
    rows, contrast = once(compute)
    headers = ["budget"]
    for keyword in KEYWORDS:
        headers += [f"{keyword} SRW", f"{keyword} TARW"]
    emit(
        "fig11",
        format_table(
            "Figure 11: AVG(display-name length) — median error vs budget",
            headers, rows,
        )
        + "\n\n"
        + format_table(
            f"Low- vs high-variability measure (MA-TARW, budget {BENCH_BUDGETS[1]})",
            ["keyword", "err AVG(name len)", "err AVG(followers)"],
            contrast,
        ),
    )
    # Shape: the low-variability measure converges far faster than
    # followers at the same budget (the paper's point).
    comparable = [(n, f) for _, n, f in contrast if n is not None and f is not None]
    assert comparable
    assert all(n <= f * 1.2 for n, f in comparable)
    # and absolute accuracy at moderate budget is already good
    assert min(n for n, _ in comparable) < 0.15
