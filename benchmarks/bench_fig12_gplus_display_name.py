"""Figure 12 — Google+ AVG(display-name length).

Paper shape: same qualitative behaviour as on Twitter (Figure 11), but the
absolute query cost is much higher because Google+'s APIs return at most
20 results per call (§6.2).
"""

from repro.bench import bench_platform, emit, format_table, median_error_at_budget
from repro.core.query import DISPLAY_NAME_LENGTH, avg_of
from repro.platform.profiles import GOOGLE_PLUS

KEYWORD = "privacy"
BUDGETS = (5_000, 10_000, 20_000, 35_000)


def compute():
    twitter = bench_platform()
    gplus = bench_platform(profile=GOOGLE_PLUS)
    query = avg_of(KEYWORD, DISPLAY_NAME_LENGTH)
    rows = []
    for budget in BUDGETS:
        rows.append(
            [
                budget,
                median_error_at_budget(gplus, query, "ma-srw", budget),
                median_error_at_budget(gplus, query, "ma-tarw", budget),
            ]
        )
    # cost inflation vs Twitter at matched accuracy target
    twitter_err = median_error_at_budget(twitter, query, "ma-tarw", 3_000)
    gplus_err = median_error_at_budget(gplus, query, "ma-tarw", 3_000)
    return rows, twitter_err, gplus_err


def test_fig12_google_plus_display_name(once):
    rows, twitter_err, gplus_err = once(compute)
    extra = [["twitter @3000 (TARW)", twitter_err, None],
             ["google+ @3000 (TARW)", gplus_err, None]]
    emit(
        "fig12",
        format_table(
            "Figure 12: Google+ AVG(display-name length) — median error vs budget",
            ["budget", "MA-SRW", "MA-TARW"],
            rows,
        )
        + "\n\n"
        + format_table(
            "Same-budget cross-platform contrast (20-per-page Google+ APIs)",
            ["run", "median error", ""],
            extra,
        ),
    )
    # Shape: Google+ converges, but needs visibly more budget than Twitter
    # for comparable accuracy.
    final = rows[-1]
    assert final[2] is not None and final[2] < 0.3
    if twitter_err is not None and gplus_err is not None:
        assert gplus_err >= twitter_err * 0.8  # never meaningfully cheaper
