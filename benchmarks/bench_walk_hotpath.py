"""Walk hot-path benchmark: the flattened fast path before/after.

Times one serial budgeted ``estimate()`` per algorithm with the fast
path disabled (the layered slow path) and enabled (pre-resolved
:mod:`repro.api.fastpath` operations) on identical inputs, asserting the
two runs are **bit-identical** in estimate, total cost and per-kind cost
— the speedup must come purely from doing the same accounting with less
interpreter work.

Output per (algorithm, mode):

* unprofiled wall-clock (best of ``TIMING_REPEATS``; the speedup claim
  is read off these — profiling overhead would distort it).  Every
  timed run starts from a **cold store** (``FrozenStore.drop_caches``):
  the process-cached bench platform memoises materialised timelines, so
  without the reset only the first run would pay the materialisation
  cost the fast path exists to avoid — warm-cache timings would
  understate the user-facing first-run speedup;
* a phase breakdown from a *separate* cProfile run, split into
  ``classify`` (``LevelByLevelOracle._classify`` cumulative), ``dp``
  (``_run_dp_if_dirty`` cumulative, MA-TARW only) and ``step``
  (everything else: RNG draws, walk bookkeeping, charge pipeline);
* the run's cProfile dump at ``benchmarks/results/walk_hotpath_*.pstats``
  (binary, git-ignored) for ad-hoc inspection with ``python -m pstats``.

Tables land in ``benchmarks/results/walk_hotpath.txt`` and the
machine-readable summary in ``BENCH_walk_hotpath.json`` at the repo
root.

``--quick`` is the CI perf-smoke mode: a small platform, one
fast-vs-slow identity check per algorithm, plus the *guard counters* —
the run fails if ``fastpath.resolved`` never fired or any
``fastpath.fallback{reason}`` did, i.e. if the clean bench stack
silently stopped resolving to the fast path.
"""

import argparse
import json
import pathlib
import pstats
import sys
import time

from repro.api.fastpath import set_fast_path_enabled
from repro.bench import bench_platform, emit, format_table, run_estimator
from repro.bench.profiling import profiled
from repro.core.query import count_users
from repro.obs import MetricsRegistry, Observability

ALGORITHMS = ("ma-tarw", "ma-srw")
NUM_USERS = 30_000
BUDGET = 8_000
SEED = 3
TIMING_REPEATS = 2
QUICK_NUM_USERS = 4_000
QUICK_BUDGET = 2_000

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_walk_hotpath.json"
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"

PHASE_FUNCS = {
    # phase -> (filename suffix, function name); cumulative times
    "classify": ("graph_builder.py", "_classify"),
    "dp": ("tarw.py", "_run_dp_if_dirty"),
}


def _run(platform, query, algorithm, fast, budget=BUDGET, obs=None):
    """One estimate run with the fast path forced on/off."""
    previous = set_fast_path_enabled(fast)
    try:
        return run_estimator(
            platform, query, algorithm, budget=budget, seed=SEED, obs=obs
        )
    finally:
        set_fast_path_enabled(previous)


def _timed(platform, query, algorithm, fast):
    """Best-of-N cold-store wall-clock plus the (deterministic) result."""
    best = float("inf")
    result = None
    for _ in range(TIMING_REPEATS):
        platform.store.drop_caches()
        start = time.perf_counter()
        result = _run(platform, query, algorithm, fast)
        best = min(best, time.perf_counter() - start)
    return result, best


def _phase_breakdown(platform, query, algorithm, fast, mode_label):
    """Profile one run, dump its .pstats, and split time into phases."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    dump = RESULTS_DIR / f"walk_hotpath_{algorithm.replace('-', '_')}_{mode_label}.pstats"
    platform.store.drop_caches()
    previous = set_fast_path_enabled(fast)
    try:
        with profiled(str(dump)) as profiler:
            run_estimator(platform, query, algorithm, budget=BUDGET, seed=SEED)
    finally:
        set_fast_path_enabled(previous)
    stats = pstats.Stats(profiler)
    stats.stream = None  # keep the object picklable/printable-free
    phases = {name: 0.0 for name in PHASE_FUNCS}
    for (filename, _line, func), (_cc, _nc, _tt, cum, _callers) in stats.stats.items():
        for name, (suffix, target) in PHASE_FUNCS.items():
            if func == target and filename.endswith(suffix):
                phases[name] += cum
    total = stats.total_tt
    phases["step"] = max(total - sum(phases.values()), 0.0)
    phases["profiled_total"] = total
    return phases, dump


def _identical(a, b):
    return (
        a.value == b.value
        and a.cost_total == b.cost_total
        and a.cost_by_kind == b.cost_by_kind
    )


def run_full():
    platform = bench_platform(NUM_USERS)
    query = count_users("privacy")
    rows = []
    payload = {
        "num_users": NUM_USERS,
        "budget": BUDGET,
        "seed": SEED,
        "query": "count_users('privacy')",
        "algorithms": {},
    }
    for algorithm in ALGORITHMS:
        slow, t_slow = _timed(platform, query, algorithm, fast=False)
        fast, t_fast = _timed(platform, query, algorithm, fast=True)
        if not _identical(slow, fast):
            print(
                f"FAIL: {algorithm} fast path is not bit-identical: "
                f"slow={slow.value!r}/{slow.cost_by_kind} "
                f"fast={fast.value!r}/{fast.cost_by_kind}",
                file=sys.stderr,
            )
            return 1
        modes = {}
        for mode_label, is_fast, wall, result in (
            ("slow", False, t_slow, slow),
            ("fast", True, t_fast, fast),
        ):
            phases, dump = _phase_breakdown(platform, query, algorithm, is_fast, mode_label)
            modes[mode_label] = {
                "wall_seconds": round(wall, 4),
                "phases_seconds": {k: round(v, 4) for k, v in phases.items()},
                "pstats": str(dump.relative_to(REPO_ROOT)),
            }
            rows.append([
                algorithm,
                mode_label,
                wall,
                phases["profiled_total"],
                phases["classify"],
                phases.get("dp", 0.0),
                phases["step"],
                result.value,
                result.cost_total,
            ])
        payload["algorithms"][algorithm] = {
            "value": slow.value,
            "cost_total": slow.cost_total,
            "bit_identical": True,
            "speedup": round(t_slow / t_fast, 2),
            "modes": modes,
        }
        print(f"{algorithm}: {t_slow / t_fast:.2f}x serial speedup, bit-identical")
    table = format_table(
        "Walk hot path: layered slow path vs flattened fast path "
        f"({NUM_USERS:,} users, budget {BUDGET:,}, seed {SEED}; wall is "
        "unprofiled and cold-store, phase columns are from a separate "
        "cProfile run and sum to 'profiled s')",
        ["algorithm", "mode", "wall s", "profiled s", "classify s", "dp s",
         "step s", "estimate", "cost"],
        rows,
    )
    emit("walk_hotpath", table)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {JSON_PATH.name}")
    return 0


def run_quick():
    """CI perf-smoke: identity + the fast-path guard counters."""
    platform = bench_platform(QUICK_NUM_USERS)
    query = count_users("privacy")
    failures = []
    for algorithm in ALGORITHMS:
        slow = _run(platform, query, algorithm, fast=False, budget=QUICK_BUDGET)
        metrics = MetricsRegistry()
        obs = Observability(metrics=metrics)
        fast = _run(
            platform, query, algorithm, fast=True, budget=QUICK_BUDGET, obs=obs
        )
        if not _identical(slow, fast):
            failures.append(
                f"{algorithm}: fast path not bit-identical "
                f"(slow {slow.value!r}, fast {fast.value!r})"
            )
        counters = metrics.snapshot()["counters"]
        resolved = counters.get("fastpath.resolved", 0)
        fallbacks = {k: v for k, v in counters.items() if k.startswith("fastpath.fallback")}
        if resolved < 1:
            failures.append(f"{algorithm}: fast path never resolved (guard counter 0)")
        if fallbacks:
            failures.append(f"{algorithm}: fast path fell back to slow path: {fallbacks}")
        print(
            f"{algorithm}: identical={_identical(slow, fast)} "
            f"resolved={resolved} fallbacks={fallbacks or 'none'}"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf-smoke OK: fast path resolved, no fallbacks, bit-identical")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI perf-smoke: small platform, identity + guard counters only",
    )
    args = parser.parse_args(argv)
    return run_quick() if args.quick else run_full()


if __name__ == "__main__":
    sys.exit(main())
