"""Walk hot-path benchmark: the flattened fast path before/after.

Times one serial budgeted ``estimate()`` per algorithm with the fast
path disabled (the layered slow path) and enabled (pre-resolved
:mod:`repro.api.fastpath` operations) on identical inputs, asserting the
two runs are **bit-identical** in estimate, total cost and per-kind cost
— the speedup must come purely from doing the same accounting with less
interpreter work.

Output per (algorithm, mode):

* unprofiled wall-clock (best of ``TIMING_REPEATS``; the speedup claim
  is read off these — profiling overhead would distort it).  Every
  timed run starts from a **cold store** (``FrozenStore.drop_caches``):
  the process-cached bench platform memoises materialised timelines, so
  without the reset only the first run would pay the materialisation
  cost the fast path exists to avoid — warm-cache timings would
  understate the user-facing first-run speedup;
* a phase breakdown from a *separate* cProfile run, split into
  ``classify`` (``LevelByLevelOracle._classify`` cumulative), ``dp``
  (``_run_dp_if_dirty`` cumulative, MA-TARW only) and ``step``
  (everything else: RNG draws, walk bookkeeping, charge pipeline);
* the run's cProfile dump at ``benchmarks/results/walk_hotpath_*.pstats``
  (binary, git-ignored) for ad-hoc inspection with ``python -m pstats``.

Tables land in ``benchmarks/results/walk_hotpath.txt`` and the
machine-readable summary in ``BENCH_walk_hotpath.json`` at the repo
root.

``--quick`` is the CI perf-smoke mode: a small platform, one
fast-vs-slow identity check per algorithm, plus the *guard counters* —
the run fails if ``fastpath.resolved`` never fired or any
``fastpath.fallback{reason}`` did, i.e. if the clean bench stack
silently stopped resolving to the fast path.

``--kernel`` benches the compiled walk kernel (PR 10) against this
file's fast path, which stays enabled on both sides — the kernel's
speedup is measured *on top of* it, never against a strawman:

* per algorithm, interleaved best-of-N kernel-off vs kernel-on serial
  ``estimate()`` at ``KERNEL_BUDGET`` (the harness default, where the
  Eq. 6 DP recursion dominates), each pair asserted bit-identical;
  **gate**: ``ma-tarw`` speedup ≥ ``KERNEL_SPEEDUP_FLOOR``;
* one 10M-row mmap cell (reusing ``bench_scale.py --cell`` in fresh
  subprocesses, kernel off via ``REPRO_NO_KERNEL``) asserted
  bit-identical across the switch; **gate**: kernel-on walk throughput
  ≥ ``MMAP_GATE_RATIO`` × the PR-7 ``calls_per_sec`` recorded in
  ``BENCH_data_plane.json``;
* the kernel guard counters (``kernel.resolved`` ≥ 1, zero
  ``kernel.fallback{reason}``) from a metrics-attached run.

Summary lands in ``BENCH_walk_kernel.json``.  ``--kernel --quick`` is
the CI smoke variant: small platform, identity + guard counters, no
timing gates (CI wall-clock is noise).
"""

import argparse
import json
import os
import pathlib
import pstats
import subprocess
import sys
import time

from repro.api.fastpath import set_fast_path_enabled
from repro.bench import bench_platform, emit, format_table, run_estimator
from repro.bench.profiling import profiled
from repro.core.kernels import set_kernel_enabled
from repro.core.query import count_users
from repro.obs import MetricsRegistry, Observability

ALGORITHMS = ("ma-tarw", "ma-srw")
NUM_USERS = 30_000
BUDGET = 8_000
SEED = 3
TIMING_REPEATS = 2
QUICK_NUM_USERS = 4_000
QUICK_BUDGET = 2_000

KERNEL_BUDGET = 30_000
"""The kernel gate runs at the harness default budget: deep enough that
the Eq. 6 DP work the kernel optimises dominates both sides."""
KERNEL_TIMING_REPEATS = 3
KERNEL_SPEEDUP_FLOOR = 2.0
MMAP_GATE_RATIO = 3.0
MMAP_CELL = dict(users=2_000, bg_mean=5_000.0, chunk_rows=262_144)
"""The 10M-row cell exactly as ``bench_scale.py``'s sweep runs it, so
the PR-7 number in ``BENCH_data_plane.json`` is an apples comparison."""

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_walk_hotpath.json"
KERNEL_JSON_PATH = REPO_ROOT / "BENCH_walk_kernel.json"
DATA_PLANE_JSON_PATH = REPO_ROOT / "BENCH_data_plane.json"
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"

PHASE_FUNCS = {
    # phase -> (filename suffix, function name); cumulative times
    "classify": ("graph_builder.py", "_classify"),
    "dp": ("tarw.py", "_run_dp_if_dirty"),
}


def _run(platform, query, algorithm, fast, budget=BUDGET, obs=None):
    """One estimate run with the fast path forced on/off."""
    previous = set_fast_path_enabled(fast)
    try:
        return run_estimator(
            platform, query, algorithm, budget=budget, seed=SEED, obs=obs
        )
    finally:
        set_fast_path_enabled(previous)


def _timed(platform, query, algorithm, fast):
    """Best-of-N cold-store wall-clock plus the (deterministic) result."""
    best = float("inf")
    result = None
    for _ in range(TIMING_REPEATS):
        platform.store.drop_caches()
        start = time.perf_counter()
        result = _run(platform, query, algorithm, fast)
        best = min(best, time.perf_counter() - start)
    return result, best


def _phase_breakdown(platform, query, algorithm, fast, mode_label):
    """Profile one run, dump its .pstats, and split time into phases."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    dump = RESULTS_DIR / f"walk_hotpath_{algorithm.replace('-', '_')}_{mode_label}.pstats"
    platform.store.drop_caches()
    previous = set_fast_path_enabled(fast)
    try:
        with profiled(str(dump)) as profiler:
            run_estimator(platform, query, algorithm, budget=BUDGET, seed=SEED)
    finally:
        set_fast_path_enabled(previous)
    stats = pstats.Stats(profiler)
    stats.stream = None  # keep the object picklable/printable-free
    phases = {name: 0.0 for name in PHASE_FUNCS}
    for (filename, _line, func), (_cc, _nc, _tt, cum, _callers) in stats.stats.items():
        for name, (suffix, target) in PHASE_FUNCS.items():
            if func == target and filename.endswith(suffix):
                phases[name] += cum
    total = stats.total_tt
    phases["step"] = max(total - sum(phases.values()), 0.0)
    phases["profiled_total"] = total
    return phases, dump


def _identical(a, b):
    return (
        a.value == b.value
        and a.cost_total == b.cost_total
        and a.cost_by_kind == b.cost_by_kind
    )


def run_full():
    platform = bench_platform(NUM_USERS)
    query = count_users("privacy")
    rows = []
    payload = {
        "num_users": NUM_USERS,
        "budget": BUDGET,
        "seed": SEED,
        "query": "count_users('privacy')",
        "algorithms": {},
    }
    for algorithm in ALGORITHMS:
        slow, t_slow = _timed(platform, query, algorithm, fast=False)
        fast, t_fast = _timed(platform, query, algorithm, fast=True)
        if not _identical(slow, fast):
            print(
                f"FAIL: {algorithm} fast path is not bit-identical: "
                f"slow={slow.value!r}/{slow.cost_by_kind} "
                f"fast={fast.value!r}/{fast.cost_by_kind}",
                file=sys.stderr,
            )
            return 1
        modes = {}
        for mode_label, is_fast, wall, result in (
            ("slow", False, t_slow, slow),
            ("fast", True, t_fast, fast),
        ):
            phases, dump = _phase_breakdown(platform, query, algorithm, is_fast, mode_label)
            modes[mode_label] = {
                "wall_seconds": round(wall, 4),
                "phases_seconds": {k: round(v, 4) for k, v in phases.items()},
                "pstats": str(dump.relative_to(REPO_ROOT)),
            }
            rows.append([
                algorithm,
                mode_label,
                wall,
                phases["profiled_total"],
                phases["classify"],
                phases.get("dp", 0.0),
                phases["step"],
                result.value,
                result.cost_total,
            ])
        payload["algorithms"][algorithm] = {
            "value": slow.value,
            "cost_total": slow.cost_total,
            "bit_identical": True,
            "speedup": round(t_slow / t_fast, 2),
            "modes": modes,
        }
        print(f"{algorithm}: {t_slow / t_fast:.2f}x serial speedup, bit-identical")
    table = format_table(
        "Walk hot path: layered slow path vs flattened fast path "
        f"({NUM_USERS:,} users, budget {BUDGET:,}, seed {SEED}; wall is "
        "unprofiled and cold-store, phase columns are from a separate "
        "cProfile run and sum to 'profiled s')",
        ["algorithm", "mode", "wall s", "profiled s", "classify s", "dp s",
         "step s", "estimate", "cost"],
        rows,
    )
    emit("walk_hotpath", table)
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {JSON_PATH.name}")
    return 0


def run_quick():
    """CI perf-smoke: identity + the fast-path guard counters."""
    platform = bench_platform(QUICK_NUM_USERS)
    query = count_users("privacy")
    failures = []
    for algorithm in ALGORITHMS:
        slow = _run(platform, query, algorithm, fast=False, budget=QUICK_BUDGET)
        metrics = MetricsRegistry()
        obs = Observability(metrics=metrics)
        fast = _run(
            platform, query, algorithm, fast=True, budget=QUICK_BUDGET, obs=obs
        )
        if not _identical(slow, fast):
            failures.append(
                f"{algorithm}: fast path not bit-identical "
                f"(slow {slow.value!r}, fast {fast.value!r})"
            )
        counters = metrics.snapshot()["counters"]
        resolved = counters.get("fastpath.resolved", 0)
        fallbacks = {k: v for k, v in counters.items() if k.startswith("fastpath.fallback")}
        if resolved < 1:
            failures.append(f"{algorithm}: fast path never resolved (guard counter 0)")
        if fallbacks:
            failures.append(f"{algorithm}: fast path fell back to slow path: {fallbacks}")
        print(
            f"{algorithm}: identical={_identical(slow, fast)} "
            f"resolved={resolved} fallbacks={fallbacks or 'none'}"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf-smoke OK: fast path resolved, no fallbacks, bit-identical")
    return 0


# ----------------------------------------------------------------------
# --kernel: compiled walk kernel vs the (always-on) fast path
# ----------------------------------------------------------------------
def _kernel_run(platform, query, algorithm, enabled, budget, obs=None):
    """One estimate run with the kernel forced on/off (fast path as-is)."""
    previous = set_kernel_enabled(enabled)
    try:
        return run_estimator(
            platform, query, algorithm, budget=budget, seed=SEED, obs=obs
        )
    finally:
        set_kernel_enabled(previous)


def _kernel_guards(platform, query, algorithm, budget, failures):
    """kernel.resolved >= 1 and zero kernel.fallback{reason} counters."""
    metrics = MetricsRegistry()
    obs = Observability(metrics=metrics)
    _kernel_run(platform, query, algorithm, True, budget, obs=obs)
    counters = metrics.snapshot()["counters"]
    resolved = counters.get("kernel.resolved", 0)
    fallbacks = {k: v for k, v in counters.items() if k.startswith("kernel.fallback")}
    if resolved < 1:
        failures.append(f"{algorithm}: kernel never resolved (guard counter 0)")
    if fallbacks:
        failures.append(f"{algorithm}: kernel fell back to interpreted: {fallbacks}")
    return resolved, fallbacks


def _spawn_scale_cell(kernel_enabled):
    """One 10M-row mmap cell in a fresh process via bench_scale's CLI."""
    command = [
        sys.executable, str(REPO_ROOT / "benchmarks" / "bench_scale.py"),
        "--cell", "mmap",
        "--users", str(MMAP_CELL["users"]),
        "--bg-mean", str(MMAP_CELL["bg_mean"]),
        "--chunk-rows", str(MMAP_CELL["chunk_rows"]),
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    if kernel_enabled:
        env.pop("REPRO_NO_KERNEL", None)
    else:
        env["REPRO_NO_KERNEL"] = "1"
    label = "on" if kernel_enabled else "off"
    print(f"  [10M mmap] kernel {label}: building + walking ...", flush=True)
    proc = subprocess.run(command, capture_output=True, text=True, cwd=str(REPO_ROOT), env=env)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"10M mmap cell (kernel {label}) failed")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _mmap_gate_basis():
    """PR-7's recorded 10M throughput: the pre-kernel gate basis.

    Prefers the basis pinned in ``BENCH_walk_kernel.json`` by the first
    kernel bench run — the data-plane sweep refreshes its own numbers
    with the kernel active, so reading it live after that would gate
    this bench against itself.  Falls back to ``BENCH_data_plane.json``
    (correct while it still holds pre-kernel numbers), then to this
    run's own kernel-off cell.
    """
    try:
        payload = json.loads(KERNEL_JSON_PATH.read_text(encoding="utf-8"))
        return float(payload["mmap_10m"]["pr7_basis_calls_per_sec"])
    except (OSError, KeyError, ValueError, TypeError):
        pass
    try:
        payload = json.loads(DATA_PLANE_JSON_PATH.read_text(encoding="utf-8"))
        for scale in payload["scale"]["results"]:
            if scale["label"] == "10M":
                return float(scale["cells"]["mmap"]["calls_per_sec"])
    except (OSError, KeyError, ValueError, TypeError):
        pass
    return None


def run_kernel_full():
    platform = bench_platform(NUM_USERS)
    query = count_users("privacy")
    failures = []
    rows = []
    payload = {
        "num_users": NUM_USERS,
        "budget": KERNEL_BUDGET,
        "seed": SEED,
        "query": "count_users('privacy')",
        "speedup_floor": KERNEL_SPEEDUP_FLOOR,
        "algorithms": {},
    }
    for algorithm in ALGORITHMS:
        t_off = t_on = float("inf")
        off = on = None
        # Interleaved best-of-N: off/on pairs alternate so drift in the
        # shared machine hits both sides equally.
        for _ in range(KERNEL_TIMING_REPEATS):
            platform.store.drop_caches()
            start = time.perf_counter()
            off = _kernel_run(platform, query, algorithm, False, KERNEL_BUDGET)
            t_off = min(t_off, time.perf_counter() - start)
            platform.store.drop_caches()
            start = time.perf_counter()
            on = _kernel_run(platform, query, algorithm, True, KERNEL_BUDGET)
            t_on = min(t_on, time.perf_counter() - start)
            if not _identical(off, on):
                failures.append(
                    f"{algorithm}: kernel run not bit-identical "
                    f"(off {off.value!r}/{off.cost_by_kind}, "
                    f"on {on.value!r}/{on.cost_by_kind})"
                )
                break
        resolved, fallbacks = _kernel_guards(
            platform, query, algorithm, KERNEL_BUDGET, failures
        )
        speedup = t_off / t_on
        gated = algorithm == "ma-tarw"
        if gated and speedup < KERNEL_SPEEDUP_FLOOR:
            failures.append(
                f"{algorithm}: kernel speedup {speedup:.2f}x under the "
                f"{KERNEL_SPEEDUP_FLOOR}x floor"
            )
        rows.append([
            algorithm, t_off, t_on, speedup,
            "yes" if gated else "no", off.value, off.cost_total,
        ])
        payload["algorithms"][algorithm] = {
            "value": off.value,
            "cost_total": off.cost_total,
            "bit_identical": True,
            "kernel_off_seconds": round(t_off, 4),
            "kernel_on_seconds": round(t_on, 4),
            "speedup": round(speedup, 2),
            "gated": gated,
            "kernel_resolved": resolved,
        }
        print(f"{algorithm}: {speedup:.2f}x kernel speedup, bit-identical")

    basis = _mmap_gate_basis()
    cell_off = _spawn_scale_cell(kernel_enabled=False)
    cell_on = _spawn_scale_cell(kernel_enabled=True)
    for field in ("value_repr", "cost_total", "cost_by_kind", "trace_sha256"):
        if cell_off[field] != cell_on[field]:
            failures.append(
                f"10M mmap: kernel diverges on {field}: "
                f"off={cell_off[field]!r} on={cell_on[field]!r}"
            )
    if not cell_on.get("kernel_resolved"):
        failures.append("10M mmap: kernel.resolved never fired")
    if basis is None:
        basis = cell_off["calls_per_sec"]
        print(
            "  [10M mmap] no PR-7 record in BENCH_data_plane.json; "
            f"gating against this run's kernel-off cell ({basis} calls/s)"
        )
    mmap_ratio = cell_on["calls_per_sec"] / basis
    if mmap_ratio < MMAP_GATE_RATIO:
        failures.append(
            f"10M mmap: kernel-on {cell_on['calls_per_sec']} calls/s is only "
            f"{mmap_ratio:.2f}x the PR-7 basis {basis} (< {MMAP_GATE_RATIO}x)"
        )
    print(
        f"10M mmap: kernel on {cell_on['calls_per_sec']} calls/s vs "
        f"off {cell_off['calls_per_sec']} (basis {basis}): {mmap_ratio:.2f}x"
    )
    payload["mmap_10m"] = {
        "num_posts": cell_on["num_posts"],
        "bit_identical": all(
            cell_off[f] == cell_on[f]
            for f in ("value_repr", "cost_total", "cost_by_kind", "trace_sha256")
        ),
        "kernel_off_calls_per_sec": cell_off["calls_per_sec"],
        "kernel_on_calls_per_sec": cell_on["calls_per_sec"],
        "pr7_basis_calls_per_sec": basis,
        "ratio_vs_basis": round(mmap_ratio, 2),
        "gate_ratio": MMAP_GATE_RATIO,
    }

    table = format_table(
        "Compiled walk kernel vs interpreted fast path "
        f"({NUM_USERS:,} users, budget {KERNEL_BUDGET:,}, seed {SEED}; "
        "interleaved best-of-"
        f"{KERNEL_TIMING_REPEATS} cold-store wall; fast path ON both sides)",
        ["algorithm", "off s", "on s", "speedup", "gated", "estimate", "cost"],
        rows,
    )
    emit("walk_kernel", table)
    KERNEL_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {KERNEL_JSON_PATH.name}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def run_kernel_quick():
    """CI kernel-smoke: identity + guard counters, no timing gates."""
    platform = bench_platform(QUICK_NUM_USERS)
    query = count_users("privacy")
    failures = []
    for algorithm in ALGORITHMS:
        off = _kernel_run(platform, query, algorithm, False, QUICK_BUDGET)
        on = _kernel_run(platform, query, algorithm, True, QUICK_BUDGET)
        if not _identical(off, on):
            failures.append(
                f"{algorithm}: kernel run not bit-identical "
                f"(off {off.value!r}, on {on.value!r})"
            )
        resolved, fallbacks = _kernel_guards(
            platform, query, algorithm, QUICK_BUDGET, failures
        )
        print(
            f"{algorithm}: identical={_identical(off, on)} "
            f"kernel_resolved={resolved} fallbacks={fallbacks or 'none'}"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("kernel-smoke OK: kernel resolved, no fallbacks, bit-identical")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI perf-smoke: small platform, identity + guard counters only",
    )
    parser.add_argument(
        "--kernel",
        action="store_true",
        help="bench the compiled walk kernel against the fast path "
        "(with --quick: CI identity + guard smoke)",
    )
    args = parser.parse_args(argv)
    if args.kernel:
        return run_kernel_quick() if args.quick else run_kernel_full()
    return run_quick() if args.quick else run_full()


if __name__ == "__main__":
    sys.exit(main())
