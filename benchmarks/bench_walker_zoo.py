"""Walker-zoo matrix: RMSE vs budget per (algorithm, design, fault profile).

The registry turned the estimators into interchangeable walkers; this
benchmark asks the question the zoo exists to answer: *which walker
should I reach for, on which graph design, under how much API hostility,
at what budget?*  For every cell of

    algorithm x graph design x fault profile x budget

it runs ``SEEDS`` independent walks of the flagship AVG query and
reports the **root-mean-square relative error** across seeds, plus the
realised budget spend and the budget-exempt retry volume.  RMSE (not
mean error) is the honest scalar here: walk estimators at small budgets
fail by variance, and RMSE charges an occasional wild replicate the
quadratic price a practitioner actually pays.

Fault profiles piggyback on the resilience contract: a *hostile* cell
must produce **bit-identical** estimates to its clean twin (faults heal
below the walk), so its RMSE column is the same and the only new
information is the retry volume — the quick mode asserts exactly that
instead of re-measuring accuracy.

Tables land in ``benchmarks/results/walker_zoo.txt`` and the
machine-readable matrix in ``BENCH_walker_zoo.json`` at the repo root
(reading guide: docs/BENCHMARKS.md).

``--quick`` is the CI perf-smoke mode: a small platform, one budget,
level-by-level only — every registered matrix walker must complete
within budget and match its hostile twin bit-identically.
"""

import argparse
import dataclasses
import json
import math
import pathlib
import sys

from repro.api.faults import FAULT_PROFILES
from repro.bench import bench_platform, emit, format_table, ground_truth, run_estimator
from repro.core.query import FOLLOWERS, avg_of

ALGORITHMS = ("ma-srw", "rewired-srw", "wnw", "frontier")
DESIGNS = ("level-by-level", "term-induced")
FAULT_NAMES = ("none", "hostile")
BUDGETS = (1_500, 3_000, 6_000)
SEEDS = (0, 1)
FAULT_SEED = 97
QUICK_NUM_USERS = 4_000
QUICK_BUDGET = 2_000

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
JSON_PATH = REPO_ROOT / "BENCH_walker_zoo.json"


def _fault_plan(name):
    profile = FAULT_PROFILES[name]
    if not profile.active:
        return None
    return dataclasses.replace(profile, seed=FAULT_SEED)


def _cell(platform, query, truth, algorithm, design, fault_name, budget):
    """One matrix cell: SEEDS runs -> RMSE of relative error + cost stats."""
    errors = []
    costs = []
    retries = 0
    misses = 0
    for seed in SEEDS:
        result = run_estimator(
            platform, query, algorithm,
            graph_design=design, budget=budget, seed=seed,
            fault_plan=_fault_plan(fault_name),
        )
        costs.append(result.cost_total)
        retries += result.cost_by_kind.get("retries", 0)
        if result.value is None:
            misses += 1
        else:
            errors.append(abs(result.value - truth) / abs(truth))
    rmse = math.sqrt(sum(e * e for e in errors) / len(errors)) if errors else None
    return {
        "algorithm": algorithm,
        "graph_design": design,
        "fault_profile": fault_name,
        "budget": budget,
        "rmse_rel_error": rmse,
        "runs": len(SEEDS),
        "no_estimate_runs": misses,
        "mean_cost": sum(costs) / len(costs),
        "retry_calls": retries,
    }


def run_full():
    platform = bench_platform()
    query = avg_of("privacy", FOLLOWERS)
    truth = ground_truth(platform, query)
    cells = []
    rows = []
    total = len(ALGORITHMS) * len(DESIGNS) * len(FAULT_NAMES) * len(BUDGETS)
    done = 0
    for algorithm in ALGORITHMS:
        for design in DESIGNS:
            for fault_name in FAULT_NAMES:
                for budget in BUDGETS:
                    cell = _cell(
                        platform, query, truth, algorithm, design, fault_name, budget
                    )
                    cells.append(cell)
                    rows.append([
                        algorithm,
                        design,
                        fault_name,
                        budget,
                        "-" if cell["rmse_rel_error"] is None
                        else f"{cell['rmse_rel_error']:.3f}",
                        f"{cell['mean_cost']:.0f}",
                        cell["retry_calls"],
                        cell["no_estimate_runs"],
                    ])
                    done += 1
                    print(
                        f"[{done}/{total}] {algorithm} / {design} / {fault_name} "
                        f"/ budget {budget}: rmse="
                        f"{cell['rmse_rel_error'] if cell['rmse_rel_error'] is None else round(cell['rmse_rel_error'], 3)}"
                    )
    table = format_table(
        "Walker zoo: RMSE of relative error vs budget "
        f"(AVG followers over 'privacy', {len(SEEDS)} seeds per cell; "
        "hostile cells are bit-identical to clean ones, differing only "
        "in retry volume — see docs/BENCHMARKS.md)",
        ["algorithm", "design", "faults", "budget", "rmse", "mean cost",
         "retries", "no est."],
        rows,
    )
    emit("walker_zoo", table)
    payload = {
        "platform": {"num_users": platform.store.num_users, "seed": 20140622},
        "query": "avg_of('privacy', FOLLOWERS)",
        "truth": truth,
        "seeds": list(SEEDS),
        "budgets": list(BUDGETS),
        "fault_seed": FAULT_SEED,
        "matrix": cells,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {JSON_PATH.name}")
    return 0


def run_quick():
    """CI perf-smoke: every matrix walker completes and heals faults."""
    platform = bench_platform(QUICK_NUM_USERS)
    query = avg_of("privacy", FOLLOWERS)
    failures = []
    for algorithm in ALGORITHMS:
        clean = run_estimator(
            platform, query, algorithm, budget=QUICK_BUDGET, seed=0
        )
        hostile = run_estimator(
            platform, query, algorithm, budget=QUICK_BUDGET, seed=0,
            fault_plan=_fault_plan("hostile"),
        )
        if clean.cost_total > QUICK_BUDGET:
            failures.append(f"{algorithm}: overspent the budget ({clean.cost_total})")
        if hostile.value != clean.value or hostile.cost_total != clean.cost_total:
            failures.append(
                f"{algorithm}: hostile run is not bit-identical "
                f"(clean {clean.value!r}, hostile {hostile.value!r})"
            )
        retries = hostile.cost_by_kind.get("retries", 0)
        if retries < 1:
            failures.append(f"{algorithm}: hostile profile injected no retries")
        print(
            f"{algorithm}: value={clean.value!r} cost={clean.cost_total} "
            f"identical={hostile.value == clean.value} retries={retries}"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf-smoke OK: walker zoo complete, faults healed bit-identically")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI perf-smoke: small platform, completion + fault bit-identity only",
    )
    args = parser.parse_args(argv)
    return run_quick() if args.quick else run_full()


if __name__ == "__main__":
    sys.exit(main())
