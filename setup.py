"""Legacy shim so `pip install -e .` works without the `wheel` package.

The environment has no network access and no wheel distribution; with a
setup.py present pip falls back to the legacy editable install path.
"""

from setuptools import setup

setup()
