"""Tests for mark-and-recapture COUNT estimation."""

import random
import statistics

import pytest

from repro.errors import EstimationError
from repro.graph.generators import complete_graph, erdos_renyi_graph
from repro.graph.components import largest_component
from repro.sampling.mark_recapture import (
    chapman_estimate,
    count_collisions,
    katzir_count,
)
from repro.sampling.random_walk import collect_samples


def test_count_collisions():
    assert count_collisions([1, 2, 3]) == 0
    assert count_collisions([1, 1]) == 1
    assert count_collisions([1, 1, 1]) == 3
    assert count_collisions([1, 1, 2, 2, 2]) == 4


def test_katzir_validation():
    with pytest.raises(EstimationError):
        katzir_count([1], [2])
    with pytest.raises(EstimationError):
        katzir_count([1, 2], [2])
    with pytest.raises(EstimationError):
        katzir_count([1, 2], [2, 0])
    with pytest.raises(EstimationError):
        katzir_count([1, 2], [2, 2])  # no collisions yet


def test_katzir_on_complete_graph_samples():
    """Uniform sampling over K_n is exactly the regular-graph case."""
    n = 40
    rng = random.Random(1)
    estimates = []
    for _ in range(40):
        nodes = [rng.randrange(n) for _ in range(60)]
        degrees = [n - 1] * 60
        estimates.append(katzir_count(nodes, degrees).population)
    assert statistics.median(estimates) == pytest.approx(n, rel=0.3)


def test_katzir_on_random_walk_samples():
    graph = erdos_renyi_graph(300, 0.05, seed=2)
    component = largest_component(graph)
    start = next(iter(component))
    estimates = []
    for seed in range(15):
        samples = collect_samples(
            lambda node: sorted(graph.neighbors_unsafe(node)),
            start, num_samples=400, burn_in=100, seed=seed,
        )
        estimates.append(katzir_count(samples.nodes, samples.degrees).population)
    assert statistics.median(estimates) == pytest.approx(len(component), rel=0.35)


def test_katzir_result_fields():
    result = katzir_count([1, 1, 2], [2, 2, 2])
    assert result.samples == 3
    assert result.collisions == 1
    assert result.population > 0


def test_chapman_estimate():
    # classic example: 100 marked, 100 recaptured, 20 overlap -> ~480
    assert chapman_estimate(100, 100, 20) == pytest.approx(485.2, abs=1.0)
    with pytest.raises(EstimationError):
        chapman_estimate(10, 10, 11)
    with pytest.raises(EstimationError):
        chapman_estimate(-1, 10, 0)
