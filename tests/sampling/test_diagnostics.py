"""Tests for the Geweke diagnostic and burn-in detection."""

import math
import random

import pytest

from repro.errors import EstimationError
from repro.sampling.diagnostics import autocorrelation, detect_burn_in, geweke_z


def white_noise(n, seed=1):
    rng = random.Random(seed)
    return [rng.gauss(0, 1) for _ in range(n)]


class TestGewekeZ:
    def test_stationary_series_has_small_z(self):
        series = white_noise(3000)
        assert abs(geweke_z(series)) < 2.0

    def test_trending_series_has_large_z(self):
        rng = random.Random(2)
        series = [i / 100.0 + rng.gauss(0, 0.1) for i in range(2000)]
        assert abs(geweke_z(series)) > 3.0

    def test_constant_series_is_zero(self):
        assert geweke_z([5.0] * 200) == 0.0

    def test_step_change_detected_as_infinite_or_large(self):
        series = [0.0] * 100 + [10.0] * 900
        z = geweke_z(series)
        assert math.isinf(z) or abs(z) > 3.0

    def test_too_short_series_raises(self):
        with pytest.raises(EstimationError):
            geweke_z([1.0])

    def test_fraction_validation(self):
        series = white_noise(100)
        with pytest.raises(EstimationError):
            geweke_z(series, first_fraction=0.0)
        with pytest.raises(EstimationError):
            geweke_z(series, first_fraction=0.6, last_fraction=0.6)
        with pytest.raises(EstimationError):
            geweke_z(series, batches=1)

    def test_autocorrelated_chain_not_overconfident(self):
        """Batch-means variance keeps Z honest for slowly mixing chains."""
        rng = random.Random(3)
        series = [0.0]
        for _ in range(4999):
            series.append(0.98 * series[-1] + rng.gauss(0, 1))
        # an AR(0.98) chain started at its mean is stationary; naive iid
        # variance would blow |Z| well past 10 here
        assert abs(geweke_z(series[1000:])) < 4.0


class TestDetectBurnIn:
    def test_no_burn_in_needed(self):
        assert detect_burn_in(white_noise(2000)) == 0

    def test_detects_transient_prefix(self):
        rng = random.Random(4)
        transient = [10.0 - i / 20.0 for i in range(200)]
        stationary = [rng.gauss(0, 1) for _ in range(2000)]
        burn = detect_burn_in(transient + stationary, step=50)
        assert burn is not None
        # must discard at least half the transient, and not most of the chain
        assert 100 <= burn <= 1200

    def test_never_converging_returns_none(self):
        series = [float(i) for i in range(1000)]
        assert detect_burn_in(series) is None

    def test_validation(self):
        with pytest.raises(EstimationError):
            detect_burn_in([1.0] * 10, threshold=0)
        with pytest.raises(EstimationError):
            detect_burn_in([1.0] * 10, step=0)


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        assert autocorrelation(white_noise(500), 0) == pytest.approx(1.0)

    def test_white_noise_uncorrelated(self):
        assert abs(autocorrelation(white_noise(5000), 5)) < 0.1

    def test_constant_series(self):
        assert autocorrelation([3.0] * 50, 3) == 0.0

    def test_lag_bounds(self):
        with pytest.raises(EstimationError):
            autocorrelation([1.0, 2.0], 2)
        with pytest.raises(EstimationError):
            autocorrelation([1.0, 2.0], -1)
