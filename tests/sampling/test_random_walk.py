"""Tests for the simple random walk."""

import collections

import pytest

from repro.errors import EstimationError
from repro.graph.generators import complete_graph, path_graph, star_graph
from repro.graph.social_graph import SocialGraph
from repro.sampling.random_walk import SimpleRandomWalk, collect_samples


def neighbor_fn(graph):
    return lambda node: sorted(graph.neighbors_unsafe(node))


def test_walk_stays_on_graph():
    graph = complete_graph(6)
    walk = SimpleRandomWalk(neighbor_fn(graph), start=0, seed=1)
    for node in walk.run(200):
        assert node in graph


def test_walk_deterministic_given_seed():
    graph = complete_graph(6)
    a = list(SimpleRandomWalk(neighbor_fn(graph), 0, seed=3).run(50))
    b = list(SimpleRandomWalk(neighbor_fn(graph), 0, seed=3).run(50))
    assert a == b


def test_dead_end_restarts():
    graph = SocialGraph(nodes=[0, 1])
    graph.add_edge(0, 1)
    graph.add_node(2)  # isolated
    walk = SimpleRandomWalk(lambda n: [] if n == 2 else [2], start=2, seed=1)
    walk.step()
    assert walk.dead_end_restarts == 1
    assert walk.current == 2  # restarted at start


def test_stationary_distribution_proportional_to_degree():
    graph = star_graph(4)  # hub 0 degree 4, spokes degree 1
    samples = collect_samples(neighbor_fn(graph), 0, num_samples=4000, burn_in=50, seed=5)
    counts = collections.Counter(samples.nodes)
    hub_fraction = counts[0] / len(samples)
    # stationary: hub mass = 4/8 = 0.5
    assert hub_fraction == pytest.approx(0.5, abs=0.05)


def test_collect_samples_respects_thinning_and_burn_in():
    graph = path_graph(5)
    samples = collect_samples(neighbor_fn(graph), 0, num_samples=10, burn_in=20,
                              thinning=3, seed=2)
    assert len(samples) == 10
    assert samples.steps_taken == 20 + 10 * 3
    assert all(degree in (1, 2) for degree in samples.degrees)


def test_collect_samples_max_steps_truncates():
    graph = path_graph(5)
    samples = collect_samples(neighbor_fn(graph), 0, num_samples=100, burn_in=0,
                              max_steps=10, seed=2)
    assert len(samples) == 10


def test_collect_samples_validation():
    graph = path_graph(3)
    with pytest.raises(EstimationError):
        collect_samples(neighbor_fn(graph), 0, num_samples=0)
    with pytest.raises(EstimationError):
        collect_samples(neighbor_fn(graph), 0, num_samples=1, thinning=0)
    with pytest.raises(EstimationError):
        collect_samples(neighbor_fn(graph), 0, num_samples=1, burn_in=-1)
