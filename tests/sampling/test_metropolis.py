"""Tests for the Metropolis–Hastings walk."""

import collections

import pytest

from repro.errors import EstimationError
from repro.graph.generators import star_graph
from repro.sampling.metropolis import MetropolisHastingsWalk, collect_uniform_samples


def neighbor_fn(graph):
    return lambda node: sorted(graph.neighbors_unsafe(node))


def test_uniform_stationary_distribution():
    graph = star_graph(4)  # SRW would give the hub 50% of samples
    samples = collect_uniform_samples(
        neighbor_fn(graph), 0, num_samples=5000, burn_in=100, seed=4
    )
    counts = collections.Counter(samples.nodes)
    hub_fraction = counts[0] / len(samples)
    # uniform over 5 nodes -> 0.2
    assert hub_fraction == pytest.approx(0.2, abs=0.05)


def test_rejections_happen_at_degree_mismatch():
    graph = star_graph(6)
    walk = MetropolisHastingsWalk(neighbor_fn(graph), start=0, seed=1)
    list(walk.run(300))
    # hub (degree 6) proposes spokes (degree 1); acceptance 1, but spokes
    # propose the hub with acceptance 1/6 -> rejections must occur
    assert walk.rejections > 0


def test_deterministic_given_seed():
    graph = star_graph(3)
    a = list(MetropolisHastingsWalk(neighbor_fn(graph), 0, seed=2).run(40))
    b = list(MetropolisHastingsWalk(neighbor_fn(graph), 0, seed=2).run(40))
    assert a == b


def test_dead_end_restart():
    walk = MetropolisHastingsWalk(lambda n: [], start=5, seed=1)
    assert walk.step() == 5
    assert walk.dead_end_restarts == 1


def test_validation():
    graph = star_graph(3)
    with pytest.raises(EstimationError):
        collect_uniform_samples(neighbor_fn(graph), 0, num_samples=0)
    with pytest.raises(EstimationError):
        collect_uniform_samples(neighbor_fn(graph), 0, num_samples=1, thinning=0)
