"""Tests for Hansen–Hurwitz and ratio estimators, including a
property-based unbiasedness check."""

import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EstimationError
from repro.sampling.estimators import hansen_hurwitz, ratio_average, weighted_fraction


class TestHansenHurwitz:
    def test_exact_for_uniform_sampling(self):
        # sampling each of 4 units with p=1/4, observing all once
        values = [10.0, 20.0, 30.0, 40.0]
        probabilities = [0.25] * 4
        assert hansen_hurwitz(values, probabilities) == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(EstimationError):
            hansen_hurwitz([1.0], [])
        with pytest.raises(EstimationError):
            hansen_hurwitz([], [])
        with pytest.raises(EstimationError):
            hansen_hurwitz([1.0], [0.0])

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=8),
        st.integers(0, 1000),
    )
    def test_unbiased_over_repeated_sampling(self, population, seed):
        """Empirical mean of HH estimates approaches the true total."""
        total = sum(population)
        n = len(population)
        weights = [index + 1.0 for index in range(n)]  # non-uniform probs
        prob_sum = sum(weights)
        probabilities = [w / prob_sum for w in weights]
        rng = random.Random(seed)
        estimates = []
        for _ in range(600):
            draws = rng.choices(range(n), weights=weights, k=4)
            estimates.append(
                hansen_hurwitz(
                    [population[i] for i in draws],
                    [probabilities[i] for i in draws],
                )
            )
        assert statistics.fmean(estimates) == pytest.approx(total, rel=0.25, abs=1.0)


class TestRatioAverage:
    def test_recovers_uniform_mean_from_degree_biased_samples(self):
        # degree-2 unit sampled twice as often as degree-1 unit
        values = [10.0, 10.0, 40.0]
        degrees = [2, 2, 1]
        # debiased: (10/2 + 10/2 + 40/1) / (1/2 + 1/2 + 1/1) = 50/2 = 25
        assert ratio_average(values, degrees) == pytest.approx(25.0)

    def test_constant_values(self):
        assert ratio_average([7.0] * 5, [1, 2, 3, 4, 5]) == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(EstimationError):
            ratio_average([], [])
        with pytest.raises(EstimationError):
            ratio_average([1.0], [0])
        with pytest.raises(EstimationError):
            ratio_average([1.0, 2.0], [1])


def test_weighted_fraction():
    flags = [1.0, 0.0, 1.0]
    degrees = [1, 1, 2]
    # (1/1 + 0 + 1/2) / (1 + 1 + 1/2) = 1.5 / 2.5
    assert weighted_fraction(flags, degrees) == pytest.approx(0.6)
