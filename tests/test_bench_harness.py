"""Tests for the shared benchmark harness."""

import pytest

from repro.bench import (
    BENCH_BUDGETS,
    budget_to_reach_error,
    emit,
    format_table,
    ground_truth,
    median_error_at_budget,
)
from repro.core.query import count_users
from repro.groundtruth import exact_value


def test_format_table_alignment_and_types():
    text = format_table(
        "My table", ["name", "value"],
        [["short", 1], ["much longer name", 12345.678], ["tiny", 0.0001], ["none", None]],
    )
    lines = text.splitlines()
    assert lines[0] == "My table"
    # header underline spans the columns
    assert set(lines[3]) <= {"-", " "}
    assert "12,345.68" in text
    assert "1.00e-04" in text
    assert "n/a" in text


def test_emit_persists_to_results(tmp_path, monkeypatch, capsys):
    import repro.bench.harness as harness
    import pathlib

    # redirect the results dir by monkeypatching __file__ resolution
    fake_root = tmp_path / "src" / "repro" / "bench"
    fake_root.mkdir(parents=True)
    monkeypatch.setattr(harness, "__file__", str(fake_root / "harness.py"))
    emit("unit_test_table", "Title\n=====\ncontent")
    out = capsys.readouterr().out
    assert "content" in out
    saved = tmp_path / "benchmarks" / "results" / "unit_test_table.txt"
    assert saved.read_text().startswith("Title")


def test_median_error_at_budget(small_platform):
    query = count_users("privacy")
    error = median_error_at_budget(small_platform, query, "ma-srw", 6_000,
                                   replicates=2)
    assert error is None or error >= 0.0


def test_budget_to_reach_error_monotone_semantics(small_platform):
    query = count_users("privacy")
    # an impossible target returns None; a trivial one returns the first
    # budget at which any estimate exists
    impossible = budget_to_reach_error(small_platform, query, "ma-srw",
                                       target=1e-9, budgets=(1_000,), replicates=1)
    assert impossible is None
    trivial = budget_to_reach_error(small_platform, query, "ma-srw",
                                    target=100.0, budgets=(2_000, 4_000),
                                    replicates=1)
    assert trivial in (2_000, 4_000, None)


def test_ground_truth_matches_exact_value(small_platform):
    query = count_users("privacy")
    assert ground_truth(small_platform, query) == exact_value(
        small_platform.store, query
    )
