"""Cross-module property-based tests (hypothesis).

Structural invariants that must hold for *any* platform state or call
sequence — complements the per-module example-based tests.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.accounting import CALL_KINDS, RETRIES, CostMeter
from repro.core.levels import LevelIndex, edge_taxonomy, level_by_level_subgraph
from repro.errors import BudgetExhaustedError
from repro.graph.generators import community_graph
from repro.platform.cascade import CascadeParams, run_cascade
from repro.platform.clock import DAY, HOUR
from repro.platform.store import MicroblogStore
from repro.platform.posts import Post, make_keywords
from repro.platform.users import generate_profile
from repro.platform.workload import KeywordSpec, constant_intensity


# ----------------------------------------------------------------------
# cost meter: charges sum exactly; budget is a hard invariant
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.sampled_from(CALL_KINDS), st.integers(0, 20)),
        max_size=40,
    ),
    st.integers(0, 200),
)
def test_cost_meter_never_exceeds_budget(charges, budget):
    meter = CostMeter(budget=budget)
    accepted = 0
    accepted_queries = 0
    for kind, calls in charges:
        try:
            meter.charge(kind, calls)
            accepted += calls
            if kind != RETRIES:
                accepted_queries += calls
        except BudgetExhaustedError:
            pass
    assert meter.total == accepted
    assert meter.query_total == accepted_queries
    # The budget bounds *query* spend; retry waste is exempt (and the
    # only kind allowed to push the all-in total past the budget).
    assert meter.query_total <= budget
    assert sum(meter.by_kind().values()) == meter.total


# ----------------------------------------------------------------------
# store: first-mention index always equals the timeline-derived minimum
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 5),                      # user
            st.floats(0, 1000, allow_nan=False),    # timestamp
            st.booleans(),                           # mentions the keyword?
        ),
        max_size=30,
    )
)
def test_store_first_mention_consistent(posts):
    store = MicroblogStore()
    rng = random.Random(0)
    for user_id in range(6):
        store.add_user(generate_profile(user_id, seed=rng))
    for user_id, timestamp, mentions in posts:
        store.add_post(
            Post(
                post_id=store.new_post_id(),
                user_id=user_id,
                timestamp=timestamp,
                keywords=make_keywords("kw") if mentions else frozenset(),
            )
        )
    for user_id in range(6):
        expected = min(
            (p.timestamp for p in store.timeline(user_id) if "kw" in p.keywords),
            default=None,
        )
        assert store.first_mention_time("kw", user_id) == expected
    # users_mentioning is exactly the set with a first mention
    assert set(store.users_mentioning("kw")) == {
        u for u in range(6) if store.first_mention_time("kw", u) is not None
    }


# ----------------------------------------------------------------------
# level subgraph: the taxonomy partitions edges; removal only drops intra
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000), st.sampled_from([6 * HOUR, DAY, 3 * DAY]))
def test_level_subgraph_invariants(seed, interval):
    graph = community_graph(150, seed=seed)
    store = MicroblogStore(graph)
    rng = random.Random(seed)
    for user_id in range(150):
        store.add_user(generate_profile(user_id, seed=rng))
    spec = KeywordSpec("kw", constant_intensity(8.0), 0.3)
    cascade = run_cascade(store, spec, horizon=60 * DAY, seed=seed)
    if cascade.num_adopters < 3:
        return
    subgraph = graph.subgraph(cascade.adoption_times)
    index = LevelIndex(interval)
    taxonomy = edge_taxonomy(subgraph, cascade.adoption_times, index)
    assert taxonomy.intra + taxonomy.adjacent + taxonomy.cross == taxonomy.total_edges

    level_graph = level_by_level_subgraph(subgraph, cascade.adoption_times, index)
    # node set preserved; edges = non-intra edges exactly
    assert level_graph.num_nodes == subgraph.num_nodes
    assert level_graph.num_edges == taxonomy.adjacent + taxonomy.cross
    for u, v in level_graph.edges():
        assert index.level_of(cascade.adoption_times[u]) != index.level_of(
            cascade.adoption_times[v]
        )


# ----------------------------------------------------------------------
# cascade: determinism and containment under any parameters
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    st.floats(0.05, 0.6),
    st.floats(1.0, 48.0),
    st.integers(0, 10_000),
)
def test_cascade_parameter_space(beta, delay_hours, seed):
    graph = community_graph(120, seed=7)
    store = MicroblogStore(graph)
    rng = random.Random(7)
    for user_id in range(120):
        store.add_user(generate_profile(user_id, seed=rng))
    params = CascadeParams(delay_median=delay_hours * HOUR)
    spec = KeywordSpec("kw", constant_intensity(5.0), beta)
    result = run_cascade(store, spec, horizon=30 * DAY, params=params, seed=seed)
    assert 0 <= result.num_adopters <= 120
    assert all(0 <= t < 30 * DAY for t in result.adoption_times.values())
    assert result.total_posts >= result.num_adopters
    assert store.first_mention_times("kw") == result.adoption_times
