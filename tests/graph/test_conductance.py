"""Conductance: exact values, estimators, and the Theorem 4.1 closed forms."""

import math

import pytest

from repro.errors import GraphError
from repro.graph.conductance import (
    conductance_of_cut,
    corollary41_optimal_degree,
    estimate_conductance_spectral,
    estimate_conductance_sweep,
    exact_conductance,
    horizontal_cut_conductance,
    spectral_gap,
    theorem41_conductance_with_intra,
    theorem41_conductance_without_intra,
)
from repro.graph.generators import complete_graph, path_graph, planted_level_graph
from repro.graph.social_graph import SocialGraph


class TestCutConductance:
    def test_path_middle_cut(self):
        graph = path_graph(4)  # edges 0-1-2-3, volume 6
        # cut {0,1}: 1 crossing edge, vol side = 3
        assert conductance_of_cut(graph, [0, 1]) == pytest.approx(1 / 3)

    def test_complete_graph_single_node(self):
        graph = complete_graph(4)
        # node side: cut 3, vol 3
        assert conductance_of_cut(graph, [0]) == pytest.approx(1.0)

    def test_trivial_cut_rejected(self):
        graph = path_graph(3)
        with pytest.raises(GraphError):
            conductance_of_cut(graph, [])
        with pytest.raises(GraphError):
            conductance_of_cut(graph, [0, 1, 2])

    def test_zero_volume_side_rejected(self):
        graph = SocialGraph(nodes=[0, 1], edges=[(0, 1)])
        graph.add_node(2)  # isolated
        with pytest.raises(GraphError):
            conductance_of_cut(graph, [2])


class TestExactConductance:
    def test_path_graph(self):
        # phi(P4) = middle-cut value 1/3
        assert exact_conductance(path_graph(4)) == pytest.approx(1 / 3)

    def test_complete_graph(self):
        # For K4: best cut is the balanced one: cut=4, vol=6 -> 2/3
        assert exact_conductance(complete_graph(4)) == pytest.approx(2 / 3)

    def test_guard_against_large_graphs(self):
        with pytest.raises(GraphError):
            exact_conductance(path_graph(21))


class TestSpectral:
    def test_gap_zero_for_disconnected(self):
        graph = SocialGraph(edges=[(0, 1), (2, 3)])
        assert spectral_gap(graph) == pytest.approx(0.0, abs=1e-9)

    def test_gap_positive_for_connected(self):
        assert spectral_gap(path_graph(6)) > 0

    def test_cheeger_sandwich(self):
        """lazy gap <= phi <= sqrt(8 * gap) on assorted small graphs."""
        for graph in (path_graph(6), complete_graph(5),
                      planted_level_graph(3, 4, 2, seed=1)):
            gap = spectral_gap(graph)
            phi = exact_conductance(graph)
            assert gap <= phi + 1e-9
            assert phi <= math.sqrt(8 * gap) + 1e-9

    def test_spectral_estimate_within_cheeger_band(self):
        graph = planted_level_graph(4, 4, 2, seed=3)
        estimate = estimate_conductance_spectral(graph)
        phi = exact_conductance(graph)
        # geometric-mean estimate should land within a 4x band of truth
        assert phi / 4 < estimate < phi * 4

    def test_sweep_is_upper_bound(self):
        for graph in (path_graph(8), planted_level_graph(4, 4, 2, seed=5)):
            assert estimate_conductance_sweep(graph) >= exact_conductance(graph) - 1e-9


class TestTheorem41:
    def test_without_intra_low_degree_branch(self):
        # d <= n/2h: phi = h / (n d (h-1))
        assert theorem41_conductance_without_intra(100, 5, 2) == pytest.approx(
            5 / (100 * 2 * 4)
        )

    def test_without_intra_high_degree_branch(self):
        # n=40, h=4 -> per level 10; d=8 in (5, 10)
        value = theorem41_conductance_without_intra(40, 4, 8)
        assert value == pytest.approx(min((2 * 4 * 8 - 40) / (40 * 8), 1 / 3))

    def test_without_intra_domain(self):
        with pytest.raises(GraphError):
            theorem41_conductance_without_intra(40, 4, 10)  # d >= n/h
        with pytest.raises(GraphError):
            theorem41_conductance_without_intra(41, 4, 2)  # n % h != 0

    def test_intra_edges_decrease_conductance(self):
        """The theorem's punchline: adding intra-level edges hurts."""
        base = theorem41_conductance_without_intra(1000, 10, 3)
        for k in (1, 5, 20):
            with_intra = theorem41_conductance_with_intra(1000, 10, 3, k)
            assert with_intra < base

    def test_with_intra_monotone_in_k(self):
        values = [theorem41_conductance_with_intra(1000, 10, 3, k) for k in (1, 5, 20, 40)]
        assert values == sorted(values, reverse=True)

    def test_with_intra_domain(self):
        with pytest.raises(GraphError):
            theorem41_conductance_with_intra(40, 4, 2, 12)  # k >= n/h

    def test_horizontal_cut_matches_proof_sketch(self):
        # without intra edges the horizontal cut has conductance 1/(h-1)
        assert horizontal_cut_conductance(100, 5, 3, 0) == pytest.approx(1 / 4)
        # with intra edges it shrinks to 1/(h-1+hk/2d)
        assert horizontal_cut_conductance(100, 5, 3, 6) == pytest.approx(
            1 / (4 + 5 * 6 / 6)
        )


class TestCorollary41:
    def test_limit_towards_two(self):
        assert corollary41_optimal_degree(50) == pytest.approx(2.13, abs=0.01)
        assert corollary41_optimal_degree(100) == pytest.approx(2.06, abs=0.01)

    def test_small_h_rejected(self):
        with pytest.raises(GraphError):
            corollary41_optimal_degree(4)


class TestEmpiricalAgreement:
    def test_intra_removal_raises_measured_conductance(self):
        """The Figure 4 mechanism on a planted lattice, measured spectrally.

        adjacent_degree=3 keeps every instance connected (d=2 lattices can
        leave a bottom-level node with no incoming edge).
        """
        for seed in (0, 1, 2):
            with_intra = planted_level_graph(6, 8, 3, intra_degree=4, seed=seed)
            without = planted_level_graph(6, 8, 3, intra_degree=0, seed=seed)
            assert estimate_conductance_spectral(without) > estimate_conductance_spectral(
                with_intra
            )
