"""Unit tests for the SocialGraph container."""

import pytest

from repro.errors import GraphError
from repro.graph.social_graph import (
    SocialGraph,
    edge_boundary,
    triangle_count_at,
    union_of_edges,
)


def test_empty_graph():
    graph = SocialGraph()
    assert graph.num_nodes == 0
    assert graph.num_edges == 0
    assert list(graph.edges()) == []


def test_add_nodes_and_edges():
    graph = SocialGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    assert graph.num_nodes == 3
    assert graph.num_edges == 2
    assert graph.has_edge(1, 2)
    assert graph.has_edge(2, 1)
    assert not graph.has_edge(1, 3)


def test_add_node_idempotent():
    graph = SocialGraph()
    graph.add_node(5)
    graph.add_node(5)
    assert graph.num_nodes == 1


def test_duplicate_edge_is_noop():
    graph = SocialGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 1)
    assert graph.num_edges == 1


def test_self_loop_rejected():
    graph = SocialGraph()
    with pytest.raises(GraphError):
        graph.add_edge(3, 3)


def test_constructor_with_nodes_and_edges():
    graph = SocialGraph(nodes=[1, 2, 3, 9], edges=[(1, 2), (2, 3)])
    assert graph.num_nodes == 4
    assert graph.degree(9) == 0
    assert graph.degree(2) == 2


def test_remove_edge():
    graph = SocialGraph(edges=[(1, 2), (2, 3)])
    graph.remove_edge(1, 2)
    assert not graph.has_edge(1, 2)
    assert graph.num_edges == 1
    with pytest.raises(GraphError):
        graph.remove_edge(1, 2)


def test_remove_node_removes_incident_edges():
    graph = SocialGraph(edges=[(1, 2), (2, 3), (1, 3)])
    graph.remove_node(2)
    assert 2 not in graph
    assert graph.num_edges == 1
    assert graph.has_edge(1, 3)


def test_remove_missing_node_raises():
    with pytest.raises(GraphError):
        SocialGraph().remove_node(1)


def test_neighbors_and_degree():
    graph = SocialGraph(edges=[(1, 2), (1, 3)])
    assert graph.neighbors(1) == frozenset({2, 3})
    assert graph.degree(1) == 2
    assert graph.degree(2) == 1
    with pytest.raises(GraphError):
        graph.neighbors(42)
    with pytest.raises(GraphError):
        graph.degree(42)


def test_edges_listed_once():
    graph = SocialGraph(edges=[(2, 1), (3, 1), (2, 3)])
    edges = sorted(graph.edges())
    assert edges == [(1, 2), (1, 3), (2, 3)]


def test_common_neighbors():
    graph = SocialGraph(edges=[(1, 2), (1, 3), (2, 3), (3, 4), (2, 4)])
    assert graph.common_neighbors(1, 4) == {2, 3}
    assert graph.common_neighbors(1, 2) == {3}
    assert graph.common_neighbors(1, 42) == set()


def test_subgraph_induced():
    graph = SocialGraph(edges=[(1, 2), (2, 3), (3, 4)])
    sub = graph.subgraph([1, 2, 3, 99])
    assert sub.num_nodes == 3  # unknown id 99 ignored
    assert sub.has_edge(1, 2)
    assert sub.has_edge(2, 3)
    assert not sub.has_edge(3, 4)


def test_copy_is_independent():
    graph = SocialGraph(edges=[(1, 2)])
    clone = graph.copy()
    clone.add_edge(2, 3)
    assert graph.num_edges == 1
    assert clone.num_edges == 2


def test_degree_sequence_descending():
    graph = SocialGraph(edges=[(1, 2), (1, 3), (1, 4)])
    assert graph.degree_sequence() == [3, 1, 1, 1]


def test_volume():
    graph = SocialGraph(edges=[(1, 2), (2, 3)])
    assert graph.volume([2]) == 2
    assert graph.volume([1, 3]) == 2
    assert graph.volume(graph.nodes()) == 2 * graph.num_edges


def test_union_of_edges():
    a = SocialGraph(edges=[(1, 2)])
    b = SocialGraph(edges=[(2, 3)])
    merged = union_of_edges([a, b])
    assert merged.num_edges == 2
    assert merged.num_nodes == 3


def test_edge_boundary():
    graph = SocialGraph(edges=[(1, 2), (2, 3), (3, 4)])
    cut = set(edge_boundary(graph, {1, 2}))
    assert cut == {(2, 3)}


def test_triangle_count():
    graph = SocialGraph(edges=[(1, 2), (2, 3), (1, 3), (3, 4)])
    assert triangle_count_at(graph, 1) == 1
    assert triangle_count_at(graph, 4) == 0
