"""Local neighborhood metrics on the frozen CSR graph.

``triangles_at`` and ``common_neighbor_count`` serve the walk-level
diagnostics on the hot path; these tests pin their sorted-intersection
implementations against hand-built graphs and the mutable
:class:`SocialGraph` reference implementation.
"""

import random

import pytest

from repro.errors import GraphError
from repro.graph.csr import CSRGraph
from repro.graph.social_graph import SocialGraph, triangle_count_at


def _csr(nodes, edges):
    return CSRGraph.from_graph(SocialGraph(nodes=nodes, edges=edges))


class TestTrianglesAt:
    def test_two_triangles_sharing_a_node(self):
        # 0 sits on triangles (0,1,2) and (0,3,4); 1 sits on one.
        graph = _csr(
            range(5),
            [(0, 1), (1, 2), (0, 2), (0, 3), (3, 4), (0, 4)],
        )
        assert graph.triangles_at(0) == 2
        assert graph.triangles_at(1) == 1
        assert graph.triangles_at(3) == 1

    def test_triangle_free_path_graph(self):
        graph = _csr(range(6), [(i, i + 1) for i in range(5)])
        assert all(graph.triangles_at(n) == 0 for n in range(6))

    def test_isolated_node(self):
        graph = _csr([0, 1, 2], [(1, 2)])
        assert graph.triangles_at(0) == 0

    def test_unknown_node_raises(self):
        graph = _csr([0, 1], [(0, 1)])
        with pytest.raises(GraphError):
            graph.triangles_at(99)

    def test_matches_mutable_reference_on_random_graph(self):
        rng = random.Random(7)
        nodes = list(range(30))
        edges = [
            (u, v)
            for u in nodes
            for v in nodes
            if u < v and rng.random() < 0.2
        ]
        mutable = SocialGraph(nodes=nodes, edges=edges)
        frozen = CSRGraph.from_graph(mutable)
        for node in nodes:
            assert frozen.triangles_at(node) == triangle_count_at(mutable, node)


class TestCommonNeighborCount:
    def test_count_matches_set_size(self):
        rng = random.Random(11)
        nodes = list(range(25))
        edges = [
            (u, v)
            for u in nodes
            for v in nodes
            if u < v and rng.random() < 0.25
        ]
        graph = _csr(nodes, edges)
        for u in nodes[:10]:
            for v in nodes[10:20]:
                common = graph.common_neighbors(u, v)
                assert graph.common_neighbor_count(u, v) == len(common)
                assert all(
                    u in graph.neighbors(w) and v in graph.neighbors(w)
                    for w in common
                )

    def test_unknown_node_is_zero_not_error(self):
        graph = _csr([0, 1, 2], [(0, 1), (1, 2)])
        assert graph.common_neighbor_count(0, 99) == 0
        assert graph.common_neighbor_count(99, 0) == 0
        assert graph.common_neighbors(99, 0) == set()

    def test_disjoint_neighborhoods(self):
        graph = _csr(range(4), [(0, 1), (2, 3)])
        assert graph.common_neighbor_count(0, 2) == 0
        assert graph.common_neighbors(1, 3) == set()

    def test_shared_hub(self):
        graph = _csr(range(4), [(0, 1), (0, 2), (0, 3)])
        assert graph.common_neighbor_count(1, 2) == 1
        assert graph.common_neighbors(1, 2) == {0}
