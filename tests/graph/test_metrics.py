"""Unit tests for descriptive graph statistics."""

import pytest

from repro.errors import GraphError
from repro.graph.generators import complete_graph, path_graph, star_graph
from repro.graph.metrics import (
    average_clustering,
    average_common_neighbors,
    degree_statistics,
    edge_density,
    local_clustering,
    partition_modularity,
)
from repro.graph.social_graph import SocialGraph


def test_average_common_neighbors():
    graph = complete_graph(4)
    # every edge in K4 shares exactly 2 common neighbors
    assert average_common_neighbors(graph, graph.edges()) == pytest.approx(2.0)
    assert average_common_neighbors(graph, []) == 0.0


def test_local_clustering():
    assert local_clustering(complete_graph(4), 0) == pytest.approx(1.0)
    assert local_clustering(star_graph(5), 0) == 0.0
    assert local_clustering(path_graph(3), 2) == 0.0  # degree < 2


def test_average_clustering():
    assert average_clustering(complete_graph(5)) == pytest.approx(1.0)
    assert average_clustering(path_graph(4)) == 0.0
    with pytest.raises(GraphError):
        average_clustering(SocialGraph())


def test_degree_statistics():
    stats = degree_statistics(star_graph(4))
    assert stats["max"] == 4
    assert stats["min"] == 1
    assert stats["median"] == 1
    with pytest.raises(GraphError):
        degree_statistics(SocialGraph())


def test_edge_density():
    assert edge_density(complete_graph(5)) == pytest.approx(1.0)
    assert edge_density(path_graph(4)) == pytest.approx(3 / 6)
    with pytest.raises(GraphError):
        edge_density(SocialGraph(nodes=[1]))


def test_modularity_of_clean_partition():
    # Two triangles joined by one bridge: the natural partition scores high.
    graph = SocialGraph(
        edges=[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]
    )
    good = partition_modularity(graph, [{0, 1, 2}, {3, 4, 5}])
    bad = partition_modularity(graph, [{0, 3}, {1, 4}, {2, 5}])
    assert good > 0.3
    assert good > bad


def test_modularity_rejects_overlap_and_empty():
    graph = complete_graph(3)
    with pytest.raises(GraphError):
        partition_modularity(graph, [{0, 1}, {1, 2}])
    with pytest.raises(GraphError):
        partition_modularity(SocialGraph(nodes=[0, 1]), [{0}, {1}])
