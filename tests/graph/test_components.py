"""Unit tests for connected-component utilities."""

import pytest

from repro.errors import GraphError
from repro.graph.components import (
    bfs_reachable,
    connected_components,
    is_connected,
    largest_component,
    recall_of_largest_component,
    shortest_path_length,
)
from repro.graph.generators import path_graph
from repro.graph.social_graph import SocialGraph


def two_component_graph():
    return SocialGraph(nodes=[7], edges=[(1, 2), (2, 3), (4, 5)])


def test_bfs_reachable():
    graph = two_component_graph()
    assert bfs_reachable(graph, 1) == {1, 2, 3}
    assert bfs_reachable(graph, 5) == {4, 5}
    assert bfs_reachable(graph, 7) == {7}
    with pytest.raises(GraphError):
        bfs_reachable(graph, 99)


def test_connected_components_sorted_by_size():
    components = connected_components(two_component_graph())
    assert [len(c) for c in components] == [3, 2, 1]


def test_largest_component():
    assert largest_component(two_component_graph()) == {1, 2, 3}
    assert largest_component(SocialGraph()) == set()


def test_recall_default_all_nodes():
    recall = recall_of_largest_component(two_component_graph())
    assert recall == pytest.approx(3 / 6)


def test_recall_with_explicit_relevant_set():
    graph = two_component_graph()
    assert recall_of_largest_component(graph, relevant=[1, 2, 4]) == pytest.approx(2 / 3)
    assert recall_of_largest_component(graph, relevant=[]) == 1.0


def test_is_connected():
    assert is_connected(path_graph(5))
    assert not is_connected(two_component_graph())
    assert is_connected(SocialGraph())


def test_shortest_path_length():
    graph = path_graph(6)
    assert shortest_path_length(graph, 0, 5) == 5
    assert shortest_path_length(graph, 2, 2) == 0
    with pytest.raises(GraphError):
        shortest_path_length(two_component_graph(), 1, 4)
