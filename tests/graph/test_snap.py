"""Round-trip and parsing tests for SNAP edge-list I/O."""

import pytest

from repro.errors import GraphError
from repro.graph.generators import erdos_renyi_graph
from repro.graph.snap import read_snap_edgelist, write_snap_edgelist


def test_round_trip(tmp_path):
    graph = erdos_renyi_graph(60, 0.1, seed=3)
    path = tmp_path / "graph.txt"
    write_snap_edgelist(graph, path, header="test graph")
    loaded = read_snap_edgelist(path)
    assert sorted(loaded.edges()) == sorted(graph.edges())


def test_comments_blank_lines_and_self_loops(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text(
        "# Directed SNAP-style file\n"
        "\n"
        "1\t2\n"
        "2 1\n"  # reverse duplicate collapses
        "3 3\n"  # self-loop dropped
        "2 4\n"
    )
    graph = read_snap_edgelist(path)
    assert graph.num_edges == 2
    assert graph.has_edge(1, 2)
    assert graph.has_edge(2, 4)
    assert 3 not in graph  # only appeared in a dropped self-loop


def test_malformed_line_raises(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("1\n")
    with pytest.raises(GraphError):
        read_snap_edgelist(path)


def test_non_integer_ids_raise(tmp_path):
    path = tmp_path / "bad2.txt"
    path.write_text("a b\n")
    with pytest.raises(GraphError):
        read_snap_edgelist(path)


def test_header_written(tmp_path):
    graph = erdos_renyi_graph(10, 0.3, seed=1)
    path = tmp_path / "g.txt"
    write_snap_edgelist(graph, path, header="line one\nline two")
    text = path.read_text()
    assert text.startswith("# line one\n# line two\n")
    assert f"# Nodes: {graph.num_nodes}" in text
