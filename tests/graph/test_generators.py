"""Unit tests for the synthetic graph generators."""

import pytest

from repro.errors import GraphError
from repro.graph.components import is_connected
from repro.graph.generators import (
    barabasi_albert_graph,
    community_graph,
    complete_graph,
    erdos_renyi_graph,
    level_of_planted_node,
    path_graph,
    planted_level_graph,
    star_graph,
    watts_strogatz_graph,
)


class TestErdosRenyi:
    def test_extreme_probabilities(self):
        assert erdos_renyi_graph(10, 0.0).num_edges == 0
        assert erdos_renyi_graph(6, 1.0).num_edges == 15

    def test_edge_count_near_expectation(self):
        graph = erdos_renyi_graph(400, 0.05, seed=1)
        expected = 0.05 * 400 * 399 / 2
        assert 0.7 * expected < graph.num_edges < 1.3 * expected

    def test_deterministic_given_seed(self):
        a = erdos_renyi_graph(100, 0.1, seed=5)
        b = erdos_renyi_graph(100, 0.1, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(-1, 0.5)
        with pytest.raises(GraphError):
            erdos_renyi_graph(10, 1.5)


class TestBarabasiAlbert:
    def test_node_and_edge_counts(self):
        graph = barabasi_albert_graph(200, 3, seed=2)
        assert graph.num_nodes == 200
        # star of m edges + m per subsequent node
        assert graph.num_edges == 3 + (200 - 4) * 3

    def test_connected(self):
        assert is_connected(barabasi_albert_graph(100, 2, seed=3))

    def test_heavy_tail(self):
        graph = barabasi_albert_graph(1000, 4, seed=4)
        degrees = graph.degree_sequence()
        assert degrees[0] > 5 * degrees[len(degrees) // 2]

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(3, 3)
        with pytest.raises(GraphError):
            barabasi_albert_graph(10, 0)


class TestWattsStrogatz:
    def test_no_rewiring_is_ring_lattice(self):
        graph = watts_strogatz_graph(20, 4, 0.0, seed=1)
        assert all(graph.degree(node) == 4 for node in graph)

    def test_rewiring_preserves_edge_count(self):
        graph = watts_strogatz_graph(50, 6, 0.5, seed=2)
        assert graph.num_edges == 50 * 3

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            watts_strogatz_graph(10, 3, 0.1)  # odd k
        with pytest.raises(GraphError):
            watts_strogatz_graph(4, 4, 0.1)  # n <= k


class TestPlantedLevelGraph:
    def test_structure_without_intra(self):
        graph = planted_level_graph(levels=5, nodes_per_level=10, adjacent_degree=3, seed=1)
        assert graph.num_nodes == 50
        # every edge connects adjacent levels
        for u, v in graph.edges():
            lu = level_of_planted_node(u, 10)
            lv = level_of_planted_node(v, 10)
            assert abs(lu - lv) == 1

    def test_intra_edges_within_levels(self):
        graph = planted_level_graph(5, 10, adjacent_degree=2, intra_degree=2, seed=1)
        intra = [
            (u, v)
            for u, v in graph.edges()
            if level_of_planted_node(u, 10) == level_of_planted_node(v, 10)
        ]
        assert intra  # some intra-level edges exist
        assert all(abs(level_of_planted_node(u, 10) - level_of_planted_node(v, 10)) <= 1
                   for u, v in graph.edges())

    def test_bad_degrees_rejected(self):
        with pytest.raises(GraphError):
            planted_level_graph(3, 4, adjacent_degree=5)
        with pytest.raises(GraphError):
            planted_level_graph(3, 4, adjacent_degree=2, intra_degree=4)


class TestCommunityGraph:
    def test_size_and_determinism(self):
        a = community_graph(500, seed=9)
        b = community_graph(500, seed=9)
        assert a.num_nodes == 500
        assert sorted(a.edges()) == sorted(b.edges())

    def test_has_hubs(self):
        graph = community_graph(2000, seed=5)
        degrees = graph.degree_sequence()
        # Zipf-weighted hub attachment should produce a heavy tail.
        assert degrees[0] > 4 * degrees[len(degrees) // 2]

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            community_graph(1)
        with pytest.raises(GraphError):
            community_graph(100, hub_fraction=0.0)
        with pytest.raises(GraphError):
            community_graph(100, hub_bias=1.5)


class TestSmallFixtures:
    def test_complete_graph(self):
        graph = complete_graph(5)
        assert graph.num_edges == 10

    def test_star_graph(self):
        graph = star_graph(6)
        assert graph.degree(0) == 6
        assert graph.num_edges == 6

    def test_path_graph(self):
        graph = path_graph(5)
        assert graph.num_edges == 4
        assert graph.degree(0) == 1
        assert graph.degree(2) == 2


class TestConfigurationModel:
    def test_degrees_bounded_by_request(self):
        from repro.graph.generators import configuration_model

        degrees = [3, 3, 2, 2, 1, 1]
        graph = configuration_model(degrees, seed=1)
        assert graph.num_nodes == 6
        for node, requested in enumerate(degrees):
            assert graph.degree(node) <= requested

    def test_total_edges_close_to_half_sum(self):
        from repro.graph.generators import configuration_model

        degrees = [4] * 50
        graph = configuration_model(degrees, seed=2)
        # erased variant loses only the rare rejected stubs
        assert graph.num_edges >= 0.8 * sum(degrees) / 2

    def test_validation(self):
        from repro.graph.generators import configuration_model

        with pytest.raises(GraphError):
            configuration_model([1, 1, 1])  # odd sum
        with pytest.raises(GraphError):
            configuration_model([-1, 1])

    def test_deterministic(self):
        from repro.graph.generators import configuration_model

        a = configuration_model([2] * 20, seed=3)
        b = configuration_model([2] * 20, seed=3)
        assert sorted(a.edges()) == sorted(b.edges())
