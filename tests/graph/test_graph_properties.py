"""Property-based tests (hypothesis) for the graph substrate.

These check structural invariants on arbitrary edge sets, plus agreement
with networkx as an independent reference implementation.
"""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.components import connected_components, is_connected
from repro.graph.conductance import conductance_of_cut, exact_conductance
from repro.graph.social_graph import SocialGraph

edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)).filter(lambda e: e[0] != e[1]),
    max_size=40,
)


def build(edges):
    graph = SocialGraph()
    for u, v in edges:
        graph.add_edge(u, v)
    return graph


def to_networkx(graph: SocialGraph) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(graph.nodes())
    g.add_edges_from(graph.edges())
    return g


@given(edge_lists)
def test_handshake_lemma(edges):
    graph = build(edges)
    assert sum(graph.degree(n) for n in graph) == 2 * graph.num_edges


@given(edge_lists)
def test_adjacency_is_symmetric(edges):
    graph = build(edges)
    for u in graph:
        for v in graph.neighbors_unsafe(u):
            assert u in graph.neighbors_unsafe(v)


@given(edge_lists)
def test_components_partition_nodes(edges):
    graph = build(edges)
    components = connected_components(graph)
    seen = set()
    for component in components:
        assert not (component & seen)
        seen |= component
    assert seen == set(graph.nodes())


@given(edge_lists)
def test_components_agree_with_networkx(edges):
    graph = build(edges)
    ours = sorted(sorted(c) for c in connected_components(graph))
    theirs = sorted(sorted(c) for c in nx.connected_components(to_networkx(graph)))
    assert ours == theirs


@given(edge_lists)
def test_subgraph_edges_subset(edges):
    graph = build(edges)
    nodes = [n for n in graph.nodes() if n % 2 == 0]
    sub = graph.subgraph(nodes)
    for u, v in sub.edges():
        assert graph.has_edge(u, v)
        assert u in nodes and v in nodes


@given(edge_lists)
def test_is_connected_matches_component_count(edges):
    graph = build(edges)
    if graph.num_nodes == 0:
        assert is_connected(graph)
    else:
        assert is_connected(graph) == (len(connected_components(graph)) == 1)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7)).filter(lambda e: e[0] != e[1]),
        min_size=3,
        max_size=20,
    )
)
def test_exact_conductance_is_minimum_over_cuts(edges):
    graph = build(edges)
    if graph.num_nodes < 2 or graph.num_edges == 0 or not is_connected(graph):
        return
    phi = exact_conductance(graph)
    nodes = graph.nodes()
    # any specific cut must be >= the exact minimum
    for k in range(1, len(nodes)):
        try:
            assert conductance_of_cut(graph, nodes[:k]) >= phi - 1e-12
        except Exception:
            continue
