"""Shared fixtures: small deterministic platforms reused across tests.

The platforms are session-scoped (building one takes ~0.5 s; dozens of
tests read from them without mutating platform state — estimator runs
only touch their own client/oracle caches).
"""

from __future__ import annotations

import pytest

from repro.platform.cascade import CascadeParams
from repro.platform.simulator import PlatformConfig, build_platform
from repro.platform.workload import (
    KeywordSpec,
    constant_intensity,
    event_intensity,
    spiky_intensity,
)


def tiny_keywords():
    """Two cheap keywords: one steady, one event-driven."""
    return [
        KeywordSpec("privacy", spiky_intensity(0.6, spikes=[(150, 8.0)]), 0.30),
        KeywordSpec("boston", event_intensity(0.5, event_day=104, peak_per_day=12.0), 0.33),
    ]


@pytest.fixture(scope="session")
def tiny_platform():
    """~2 000 users, two keywords — fast enough for unit tests."""
    config = PlatformConfig(
        num_users=2_000,
        keywords=tiny_keywords(),
        background_posts_mean=3.0,
        seed=11,
    )
    return build_platform(config)


@pytest.fixture(scope="session")
def small_platform():
    """~5 000 users, two keywords — for integration/estimator tests."""
    config = PlatformConfig(
        num_users=5_000,
        keywords=tiny_keywords(),
        background_posts_mean=3.0,
        seed=13,
    )
    return build_platform(config)
