"""Tests for the deterministic RNG helpers."""

import random

import pytest

from repro._rng import ensure_rng, spawn


def test_ensure_rng_from_int():
    assert ensure_rng(5).random() == ensure_rng(5).random()


def test_ensure_rng_passthrough():
    rng = random.Random(1)
    assert ensure_rng(rng) is rng


def test_ensure_rng_none_is_fresh():
    assert isinstance(ensure_rng(None), random.Random)


def test_ensure_rng_rejects_junk():
    with pytest.raises(TypeError):
        ensure_rng("seed")


def test_spawn_deterministic_and_label_sensitive():
    a1 = spawn(random.Random(7), "alpha").random()
    a2 = spawn(random.Random(7), "alpha").random()
    b = spawn(random.Random(7), "beta").random()
    assert a1 == a2
    assert a1 != b


def test_spawn_isolates_streams():
    """Consuming from one child must not perturb a sibling."""
    parent1 = random.Random(3)
    child_a = spawn(parent1, "a")
    child_b = spawn(parent1, "b")
    seq_b = [child_b.random() for _ in range(3)]

    parent2 = random.Random(3)
    child_a2 = spawn(parent2, "a")
    for _ in range(100):
        child_a2.random()  # heavy use of sibling
    child_b2 = spawn(parent2, "b")
    assert [child_b2.random() for _ in range(3)] == seq_b
