"""Tests for the command-line interface (driven in-process)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def saved_platform(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "platform.npz"
    code = main(["simulate", "--users", "1500", "--seed", "5", "--out", str(path)])
    assert code == 0
    return path


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_simulate_and_keywords(saved_platform, capsys):
    code = main(["keywords", "--platform", str(saved_platform)])
    captured = capsys.readouterr()
    assert code == 0
    assert "privacy" in captured.out
    assert "recent posters" in captured.out


def test_truth_command(saved_platform, capsys):
    code = main(["truth", "--platform", str(saved_platform), "--keyword", "privacy"])
    captured = capsys.readouterr()
    assert code == 0
    assert "COUNT(one)" in captured.out


def test_estimate_count(saved_platform, capsys):
    code = main([
        "estimate", "--platform", str(saved_platform),
        "--keyword", "privacy", "--budget", "4000",
        "--algorithm", "ma-srw",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "estimate" in captured.out
    assert "rel. err" in captured.out


def test_estimate_avg_with_window(saved_platform, capsys):
    code = main([
        "estimate", "--platform", str(saved_platform),
        "--keyword", "privacy", "--aggregate", "avg", "--measure", "followers",
        "--window-days", "0", "304", "--budget", "4000",
        "--algorithm", "ma-srw",
    ])
    assert code == 0
    assert "AVG(followers)" in capsys.readouterr().out


def test_estimate_with_replicates(saved_platform, capsys):
    code = main([
        "estimate", "--platform", str(saved_platform),
        "--keyword", "privacy", "--budget", "9000", "--replicates", "3",
        "--algorithm", "ma-srw",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "±" in captured.out
    assert "interval" in captured.out


def test_error_reported_cleanly(saved_platform, capsys):
    code = main([
        "estimate", "--platform", str(saved_platform),
        "--keyword", "keyword-that-nobody-posted", "--budget", "2000",
    ])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err


def test_estimate_with_sql_query(saved_platform, capsys):
    code = main([
        "estimate", "--platform", str(saved_platform),
        "--query", "SELECT COUNT(*) FROM users WHERE timeline CONTAINS 'privacy'",
        "--budget", "4000", "--algorithm", "ma-srw",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "COUNT(one)" in captured.out


def test_missing_keyword_and_query_rejected(saved_platform, capsys):
    code = main(["truth", "--platform", str(saved_platform)])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err
