"""Tests for the command-line interface (driven in-process)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def saved_platform(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "platform.npz"
    code = main(["simulate", "--users", "1500", "--seed", "5", "--out", str(path)])
    assert code == 0
    return path


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_simulate_and_keywords(saved_platform, capsys):
    code = main(["keywords", "--platform", str(saved_platform)])
    captured = capsys.readouterr()
    assert code == 0
    assert "privacy" in captured.out
    assert "recent posters" in captured.out


def test_truth_command(saved_platform, capsys):
    code = main(["truth", "--platform", str(saved_platform), "--keyword", "privacy"])
    captured = capsys.readouterr()
    assert code == 0
    assert "COUNT(one)" in captured.out


def test_estimate_count(saved_platform, capsys):
    code = main([
        "estimate", "--platform", str(saved_platform),
        "--keyword", "privacy", "--budget", "4000",
        "--algorithm", "ma-srw",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "estimate" in captured.out
    assert "rel. err" in captured.out


def test_estimate_avg_with_window(saved_platform, capsys):
    code = main([
        "estimate", "--platform", str(saved_platform),
        "--keyword", "privacy", "--aggregate", "avg", "--measure", "followers",
        "--window-days", "0", "304", "--budget", "4000",
        "--algorithm", "ma-srw",
    ])
    assert code == 0
    assert "AVG(followers)" in capsys.readouterr().out


def test_estimate_with_replicates(saved_platform, capsys):
    code = main([
        "estimate", "--platform", str(saved_platform),
        "--keyword", "privacy", "--budget", "9000", "--replicates", "3",
        "--algorithm", "ma-srw",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "±" in captured.out
    assert "interval" in captured.out


def test_error_reported_cleanly(saved_platform, capsys):
    code = main([
        "estimate", "--platform", str(saved_platform),
        "--keyword", "keyword-that-nobody-posted", "--budget", "2000",
    ])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err


def test_estimate_with_sql_query(saved_platform, capsys):
    code = main([
        "estimate", "--platform", str(saved_platform),
        "--query", "SELECT COUNT(*) FROM users WHERE timeline CONTAINS 'privacy'",
        "--budget", "4000", "--algorithm", "ma-srw",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "COUNT(one)" in captured.out


def test_missing_keyword_and_query_rejected(saved_platform, capsys):
    code = main(["truth", "--platform", str(saved_platform)])
    captured = capsys.readouterr()
    assert code == 2
    assert "error:" in captured.err


# ----------------------------------------------------------------------
# observability flags: --trace-out / --metrics / --report
# ----------------------------------------------------------------------
def test_estimate_trace_out_writes_schema_valid_jsonl(saved_platform, tmp_path, capsys):
    from repro.obs.export import parse_trace, validate_trace
    from repro.obs.trace import TRACE_SCHEMA_VERSION

    trace_path = tmp_path / "trace.jsonl"
    code = main([
        "estimate", "--platform", str(saved_platform),
        "--keyword", "privacy", "--budget", "4000",
        "--algorithm", "ma-srw", "--walk-seed", "3",
        "--trace-out", str(trace_path),
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "trace    :" in captured.out
    records = parse_trace(trace_path.read_text(encoding="ascii"))
    validate_trace(records)
    assert records[0]["name"] == "run.begin"
    assert records[0]["schema"] == TRACE_SCHEMA_VERSION
    assert records[0]["algorithm"] == "ma-srw"
    assert records[-1]["name"] == "run.end"


def test_estimate_trace_out_is_deterministic(saved_platform, tmp_path, capsys):
    args = [
        "estimate", "--platform", str(saved_platform),
        "--keyword", "privacy", "--budget", "3000",
        "--algorithm", "ma-srw", "--walk-seed", "9",
    ]
    paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
    for path in paths:
        assert main(args + ["--trace-out", str(path)]) == 0
    capsys.readouterr()
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_estimate_metrics_prints_registry_json(saved_platform, capsys):
    code = main([
        "estimate", "--platform", str(saved_platform),
        "--keyword", "privacy", "--budget", "4000",
        "--algorithm", "ma-srw", "--metrics",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert '"counters"' in captured.out
    assert '"api.calls{kind=search}"' in captured.out
    assert '"histograms"' in captured.out


def test_estimate_report_renders(saved_platform, capsys):
    code = main([
        "estimate", "--platform", str(saved_platform),
        "--keyword", "privacy", "--budget", "4000",
        "--algorithm", "ma-srw", "--report",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "convergence report" in captured.out
    assert "query mix" in captured.out
    assert "burn_in" in captured.out


def test_report_with_replicates_prints_notice(saved_platform, capsys):
    code = main([
        "estimate", "--platform", str(saved_platform),
        "--keyword", "privacy", "--budget", "9000", "--replicates", "3",
        "--algorithm", "ma-srw", "--report",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "unavailable with --replicates" in captured.out


def test_every_estimate_option_documents_itself():
    """Pin against argparse help drift: each flag must carry help text."""
    import argparse

    parser = build_parser()
    subparsers = next(
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    for name, sub in subparsers.choices.items():
        for action in sub._actions:
            if action.dest == "help":
                continue
            assert action.help, f"{name}: option {action.dest!r} lacks help text"
