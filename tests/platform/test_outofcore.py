"""Out-of-core data-plane tier: the ``mmap`` plane must be a *bit-identical*
drop-in for the in-memory ``frozen`` plane.

The contract under test is strong on purpose: not "statistically the
same" but byte-equal — every post column, every compiled index, every
estimate, every CostMeter column, and the canonical walk-trace bytes,
serially and through the shard-merge engine, with and without injected
API faults.  Anything weaker would let the streaming build drift from
the reference RNG consumption order and silently change published
numbers at scale.

Also covered here: the chunked-flush property (any chunk size produces
the same columns as a single-shot build), the sharded-layout round trip,
the spooled store's write-only guards, ``ColumnProfiles`` mapping
semantics, and the :class:`PlatformRef` spill lifecycle (GC reclaims an
owned spill; stale worker-cache entries are evicted).
"""

from __future__ import annotations

import dataclasses
import gc
import os

import numpy as np
import pytest

from repro.api.faults import FAULT_PROFILES
from repro.errors import PlatformError
from repro.obs import Observability
from repro.obs.export import trace_lines
from repro.obs.trace import RecordingSink
from repro.parallel.platform_ref import _WORKER_CACHE, PlatformRef
from repro.platform.outofcore import (
    external_timeline_sort,
    iter_column_file,
    write_column_file,
)
from repro.platform.serialization import load_platform, save_platform
from repro.platform.simulator import PlatformConfig, build_platform
from repro.platform.users import ColumnProfiles, Gender, profile_columns
from tests.conftest import tiny_keywords
from tests.obs.conftest import GOLDEN_PLATFORM, golden_run

pytestmark = pytest.mark.outofcore

POST_COLUMNS = (
    "post_user", "post_time", "post_id", "post_length", "post_likes", "post_keyword",
)
INDEX_FIELDS = ("kw_times", "kw_users", "kw_pids", "kw_first_users", "kw_first_times")


def _config(**overrides) -> PlatformConfig:
    base = dict(
        keywords=tiny_keywords(), background_posts_mean=3.0, **GOLDEN_PLATFORM
    )
    base.update(overrides)
    return PlatformConfig(**base)


@pytest.fixture(scope="module")
def frozen_platform():
    return build_platform(_config(data_plane="frozen"))


@pytest.fixture(scope="module")
def mmap_platform():
    # A deliberately small chunk size so every streaming path (background
    # user blocks, cascade emission, scatter/gather sort batches) crosses
    # many chunk boundaries on this small platform.
    return build_platform(_config(data_plane="mmap", build_chunk_rows=911))


# ----------------------------------------------------------------------
# column + index bit-identity
# ----------------------------------------------------------------------
def test_mmap_columns_match_frozen(frozen_platform, mmap_platform):
    sf, sm = frozen_platform.store, mmap_platform.store
    assert sm.storage == "mmap" and sm.source_dir
    assert sf.post_id.size == sm.post_id.size > 0
    for name in POST_COLUMNS:
        a, b = getattr(sf, name), getattr(sm, name)
        assert a.dtype == b.dtype, name
        assert np.array_equal(a, b), name


def test_mmap_indexes_match_frozen(frozen_platform, mmap_platform):
    cf = frozen_platform.store.compiled_indexes()
    cm = mmap_platform.store.compiled_indexes()
    assert np.array_equal(cf.sorted_user_ids, cm.sorted_user_ids)
    assert np.array_equal(cf.tl_order, cm.tl_order)
    assert np.array_equal(cf.tl_indptr, cm.tl_indptr)
    assert frozen_platform.store.keywords() == mmap_platform.store.keywords()
    for name in frozen_platform.store.keywords():
        for field in INDEX_FIELDS:
            assert np.array_equal(
                getattr(cf, field)[name], getattr(cm, field)[name]
            ), (name, field)


def test_mmap_cascades_and_profiles_match(frozen_platform, mmap_platform):
    assert set(frozen_platform.cascades) == set(mmap_platform.cascades)
    for name, result in frozen_platform.cascades.items():
        other = mmap_platform.cascades[name]
        assert result.adoption_times == other.adoption_times
        assert result.total_posts == other.total_posts
    sf, sm = frozen_platform.store, mmap_platform.store
    for uid in list(sf.user_ids())[:25]:
        a, b = sf.profile(uid), sm.profile(uid)
        assert (a.display_name, a.gender, a.age, a.followers) == (
            b.display_name, b.gender, b.age, b.followers,
        )


# ----------------------------------------------------------------------
# estimate / cost / trace bit-identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ("ma-tarw", "ma-srw"))
@pytest.mark.parametrize("n_workers", (None, 3))
def test_estimates_identical_across_planes(
    frozen_platform, mmap_platform, algorithm, n_workers
):
    a = golden_run(frozen_platform, algorithm, n_workers=n_workers)
    b = golden_run(mmap_platform, algorithm, n_workers=n_workers)
    assert a.value == b.value
    assert a.cost_total == b.cost_total
    assert a.cost_by_kind == b.cost_by_kind


@pytest.mark.parametrize("algorithm", ("ma-tarw", "ma-srw"))
def test_trace_bytes_identical_across_planes(
    frozen_platform, mmap_platform, algorithm
):
    def traced(platform):
        obs = Observability(trace_sink=RecordingSink())
        golden_run(platform, algorithm, obs=obs)
        return "\n".join(trace_lines(obs.trace_records()))

    assert traced(frozen_platform) == traced(mmap_platform)


def test_estimates_identical_under_hostile_faults(frozen_platform, mmap_platform):
    plan = dataclasses.replace(FAULT_PROFILES["hostile"], seed=3)
    a = golden_run(frozen_platform, "ma-tarw", fault_plan=plan)
    b = golden_run(mmap_platform, "ma-tarw", fault_plan=plan)
    assert a.value == b.value
    assert a.cost_by_kind == b.cost_by_kind


# ----------------------------------------------------------------------
# chunked flush == single shot, any chunk size
# ----------------------------------------------------------------------
@pytest.mark.parametrize("chunk_rows", (1, 7, 97, 100_000))
def test_chunk_size_never_changes_columns(frozen_platform, chunk_rows):
    platform = build_platform(
        _config(num_users=120, data_plane="mmap", build_chunk_rows=chunk_rows)
    )
    reference = build_platform(_config(num_users=120, data_plane="frozen"))
    for name in POST_COLUMNS:
        assert np.array_equal(
            getattr(reference.store, name), getattr(platform.store, name)
        ), (chunk_rows, name)
    assert np.array_equal(
        reference.store.compiled_indexes().tl_order,
        platform.store.compiled_indexes().tl_order,
    )


@pytest.mark.property
def test_external_sort_matches_lexsort_property(tmp_path):
    pytest.importorskip("hypothesis")
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=40, deadline=None)
    @given(
        data=st.data(),
        n_users=st.integers(min_value=1, max_value=12),
        n_rows=st.integers(min_value=0, max_value=200),
        chunk_rows=st.integers(min_value=1, max_value=64),
    )
    def check(data, n_users, n_rows, chunk_rows):
        seed = data.draw(st.integers(min_value=0, max_value=2**31))
        rng = np.random.default_rng(seed)
        users = rng.integers(0, n_users, size=n_rows).astype(np.int64)
        # Coarse timestamps force plenty of ties: stability is the point.
        times = rng.integers(0, 5, size=n_rows).astype(np.float64)
        ids = np.arange(n_users, dtype=np.int64)
        user_path = str(tmp_path / f"u{seed}.bin")
        time_path = str(tmp_path / f"t{seed}.bin")
        out_path = str(tmp_path / f"o{seed}.bin")
        write_column_file(user_path, users, np.int64)
        write_column_file(time_path, times, np.float64)
        try:
            indptr = external_timeline_sort(
                user_path, time_path, out_path, ids, chunk_rows=chunk_rows
            )
            order = np.concatenate(
                [c for _, c in iter_column_file(out_path, np.int64, 64)]
            ) if n_rows else np.empty(0, np.int64)
        finally:
            for path in (user_path, time_path, out_path):
                if os.path.exists(path):
                    os.unlink(path)
        expected = np.lexsort((times, users))
        assert np.array_equal(order, expected)
        counts = np.bincount(users, minlength=n_users)
        assert np.array_equal(np.diff(indptr), counts)

    check()


# ----------------------------------------------------------------------
# sharded layout round trip
# ----------------------------------------------------------------------
def test_sharded_roundtrip_is_bit_identical(frozen_platform, tmp_path):
    directory = tmp_path / "layout"
    save_platform(frozen_platform, directory)
    loaded = load_platform(directory)
    for name in POST_COLUMNS:
        assert np.array_equal(
            getattr(frozen_platform.store, name), getattr(loaded.store, name)
        ), name
    assert loaded.store.keywords() == frozen_platform.store.keywords()
    assert loaded.now == frozen_platform.now
    assert set(loaded.cascades) == set(frozen_platform.cascades)
    for name, result in frozen_platform.cascades.items():
        assert loaded.cascades[name].adoption_times == result.adoption_times
    run_a = golden_run(frozen_platform, "ma-srw")
    run_b = golden_run(loaded, "ma-srw")
    assert run_a.value == run_b.value
    assert run_a.cost_by_kind == run_b.cost_by_kind


# ----------------------------------------------------------------------
# spooled store is write-only until freeze
# ----------------------------------------------------------------------
def test_spooled_store_rejects_reads_before_freeze(tmp_path):
    from repro.platform.outofcore import ColumnSpool
    from repro.platform.posts import Post
    from repro.platform.store import MicroblogStore
    from repro.platform.users import UserProfile

    spool = ColumnSpool(directory=str(tmp_path / "spool"), chunk_rows=4)
    store = MicroblogStore(spool=spool)
    for uid in range(3):
        store.add_user(UserProfile(uid, f"user-{uid}", Gender.UNDISCLOSED, 30))
    store.add_posts_columnar(
        np.array([0, 1, 2], dtype=np.int64),
        np.array([1.0, 2.0, 3.0]),
        np.array([10, 20, 30], dtype=np.int64),
        np.array([0, 0, 0], dtype=np.int64),
        keyword=None,
    )
    with pytest.raises(PlatformError):
        store.timeline(0)
    with pytest.raises(PlatformError):
        list(store.all_posts())
    with pytest.raises(PlatformError):
        store.add_post(Post(post_id=99, user_id=0, timestamp=4.0))


# ----------------------------------------------------------------------
# ColumnProfiles mapping semantics
# ----------------------------------------------------------------------
def test_column_profiles_behaves_like_dict(frozen_platform):
    source = frozen_platform.store._profiles
    columns = profile_columns(source)
    degree = frozen_platform.store.graph.degree
    lazy = ColumnProfiles(
        user_ids=columns["prof_ids"],
        names=columns["prof_names"],
        gender_codes=columns["prof_gender"],
        ages=columns["prof_age"],
        degree_of=degree,
    )
    assert len(lazy) == len(source)
    assert list(lazy) == sorted(source)
    sample = list(source)[:10]
    for uid in sample:
        assert uid in lazy
        materialized = lazy[uid]
        assert materialized.user_id == uid
        assert materialized.display_name == source[uid].display_name
        assert materialized.gender is source[uid].gender
        assert materialized.age == source[uid].age
        assert materialized.followers == degree(uid)
    missing = max(source) + 1
    assert missing not in lazy
    with pytest.raises(KeyError):
        lazy[missing]
    assert isinstance(next(iter(lazy.values())).gender, Gender)


# ----------------------------------------------------------------------
# PlatformRef spill lifecycle
# ----------------------------------------------------------------------
def test_platform_ref_gc_reclaims_owned_spill(frozen_platform):
    ref = PlatformRef(frozen_platform)
    path = ref.path()
    assert os.path.isdir(path)
    del ref
    gc.collect()
    assert not os.path.exists(path)


def test_platform_ref_reuses_mmap_source_dir(mmap_platform):
    ref = PlatformRef(mmap_platform)
    assert ref.path() == mmap_platform.store.source_dir
    assert ref._finalizer is None  # never deletes a layout it didn't create
    state = ref.__getstate__()
    assert state["_path"] == mmap_platform.store.source_dir
    assert state["_finalizer"] is None


def test_worker_cache_evicts_stale_paths(frozen_platform, tmp_path):
    stale = tmp_path / "gone-spill"
    stale.mkdir()
    _WORKER_CACHE[str(stale)] = frozen_platform
    stale.rmdir()
    ref = PlatformRef(frozen_platform)
    try:
        restored = PlatformRef.__new__(PlatformRef)
        restored.__setstate__(ref.__getstate__())
        assert restored.resolve().store.num_users == frozen_platform.store.num_users
        assert str(stale) not in _WORKER_CACHE
    finally:
        _WORKER_CACHE.clear()
