"""Property-based invariants of the columnar data plane (hypothesis).

The frozen serving structures promise *bit-for-bit* parity with the
mutable build structures they compile from.  Example-based tests pin a
few platforms; here hypothesis drives arbitrary small post logs and edge
lists through both paths and checks the contracts the fast paths rely on:

* ``FrozenStore.keyword_posts`` searchsorted window slicing equals the
  naive filter over the full log, for any window;
* timelines come out time-sorted and complete;
* CSR neighbor rows are sorted and duplicate-free, and both construction
  paths (``from_graph``, ``from_edges``) agree;
* ``freeze()`` is idempotent and returns the same object.
"""

from __future__ import annotations

import random

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import CSRGraph
from repro.graph.social_graph import SocialGraph
from repro.platform.frozen import FrozenStore
from repro.platform.posts import Post, make_keywords
from repro.platform.store import MicroblogStore
from repro.platform.users import generate_profile

pytestmark = pytest.mark.property

N_USERS = 6

post_logs = st.lists(
    st.tuples(
        st.integers(0, N_USERS - 1),                 # user
        st.floats(0, 1000, allow_nan=False),         # timestamp
        st.booleans(),                               # mentions the keyword?
    ),
    max_size=30,
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 19), st.integers(0, 19)).filter(lambda e: e[0] != e[1]),
    max_size=60,
)


def build_store(posts):
    store = MicroblogStore()
    rng = random.Random(0)
    for user_id in range(N_USERS):
        store.add_user(generate_profile(user_id, seed=rng))
    for user_id, timestamp, mentions in posts:
        store.add_post(
            Post(
                post_id=store.new_post_id(),
                user_id=user_id,
                timestamp=timestamp,
                keywords=make_keywords("kw") if mentions else frozenset(),
            )
        )
    return store


# ----------------------------------------------------------------------
# FrozenStore: searchsorted slicing == naive filtering
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(post_logs, st.floats(-10, 1010, allow_nan=False), st.floats(-10, 1010, allow_nan=False))
def test_keyword_posts_window_matches_naive_filter(posts, a, b):
    frozen = build_store(posts).freeze()
    start, end = min(a, b), max(a, b)
    full = list(frozen.keyword_posts("kw"))
    naive = [entry for entry in full if start <= entry[0] < end]
    assert list(frozen.keyword_posts("kw", start, end)) == naive
    # The full log is sorted by the legacy (t, u, pid) tuple order.
    assert full == sorted(full)


@settings(max_examples=40, deadline=None)
@given(post_logs, st.floats(-10, 1010, allow_nan=False), st.floats(-10, 1010, allow_nan=False))
def test_users_mentioning_window_matches_naive_dedup(posts, a, b):
    frozen = build_store(posts).freeze()
    start, end = min(a, b), max(a, b)
    seen, naive = set(), []
    for t, user_id, _pid in frozen.keyword_posts("kw", start, end):
        if user_id not in seen:  # first-appearance (time) order
            seen.add(user_id)
            naive.append(user_id)
    assert frozen.users_mentioning("kw", start, end) == naive


@settings(max_examples=40, deadline=None)
@given(post_logs)
def test_timelines_sorted_complete_and_store_equivalent(posts):
    store = build_store(posts)
    frozen = store.freeze()
    for user_id in range(N_USERS):
        timeline = frozen.timeline(user_id)
        times = [p.timestamp for p in timeline]
        assert times == sorted(times)
        assert list(timeline) == list(store.timeline(user_id))  # bit-for-bit parity
        assert frozen.timeline_length(user_id) == len(timeline)
        assert frozen.first_mention_time("kw", user_id) == store.first_mention_time(
            "kw", user_id
        )
    assert sorted(p.post_id for u in range(N_USERS) for p in frozen.timeline(u)) == list(
        range(len(posts))
    )


# ----------------------------------------------------------------------
# CSRGraph: sorted duplicate-free rows; construction paths agree
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(edge_lists)
def test_csr_rows_sorted_and_match_adjacency(edges):
    graph = SocialGraph(nodes=range(20))
    for u, v in edges:
        graph.add_edge(u, v)
    csr = CSRGraph.from_graph(graph)
    edge_set = {(min(u, v), max(u, v)) for u, v in edges}
    assert csr.num_nodes == 20
    assert csr.num_edges == len(edge_set)
    for node in range(20):
        row = csr.neighbors_unsafe(node).tolist()
        assert row == sorted(set(row))  # sorted, duplicate-free
        assert row == sorted(graph.neighbors(node))
        assert csr.degree(node) == len(row)
        assert list(csr.sorted_neighbors(node)) == row
    for u in range(20):
        for v in range(20):
            assert csr.has_edge(u, v) == ((min(u, v), max(u, v)) in edge_set)


@settings(max_examples=40, deadline=None)
@given(edge_lists)
def test_csr_construction_paths_and_thaw_roundtrip(edges):
    graph = SocialGraph(nodes=range(20))
    for u, v in edges:
        graph.add_edge(u, v)
    from_graph = CSRGraph.from_graph(graph)
    from_edges = CSRGraph.from_edges(range(20), from_graph.edge_array())
    assert from_graph.indptr.tolist() == from_edges.indptr.tolist()
    assert from_graph.indices.tolist() == from_edges.indices.tolist()
    thawed = from_graph.thaw()
    assert {n: thawed.neighbors(n) for n in range(20)} == {
        n: graph.neighbors(n) for n in range(20)
    }


# ----------------------------------------------------------------------
# freeze() is idempotent: the frozen object is its own fixed point
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(post_logs)
def test_freeze_is_idempotent(posts):
    frozen = build_store(posts).freeze()
    assert isinstance(frozen, FrozenStore)
    assert frozen.freeze() is frozen
    assert frozen.graph.freeze() is frozen.graph
    assert frozen.graph.copy() is frozen.graph
