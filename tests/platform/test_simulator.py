"""Tests for the end-to-end platform builder."""

import pytest

from repro.errors import PlatformError
from repro.platform.profiles import GOOGLE_PLUS, TWITTER
from repro.platform.simulator import PlatformConfig, build_platform
from tests.conftest import tiny_keywords


def test_config_validation():
    with pytest.raises(PlatformError):
        PlatformConfig(num_users=1)
    with pytest.raises(PlatformError):
        PlatformConfig(graph_model="nonsense")
    with pytest.raises(PlatformError):
        PlatformConfig(horizon_days=0)
    with pytest.raises(PlatformError):
        PlatformConfig(background_posts_mean=-1)


def test_build_is_deterministic():
    config = PlatformConfig(num_users=800, keywords=tiny_keywords(), seed=4)
    a = build_platform(config)
    b = build_platform(config)
    assert sorted(a.graph.edges()) == sorted(b.graph.edges())
    assert a.store.num_posts == b.store.num_posts
    for keyword in a.cascades:
        assert a.cascades[keyword].adoption_times == b.cascades[keyword].adoption_times


def test_platform_shape(tiny_platform):
    platform = tiny_platform
    assert platform.store.num_users == platform.config.num_users
    assert platform.graph.num_edges > 0
    assert platform.now == platform.config.horizon
    # cascades landed between a few % and a few tens of % of users
    for result in platform.cascades.values():
        fraction = result.num_adopters / platform.config.num_users
        assert 0.005 < fraction < 0.6


def test_follower_counts_match_degrees(tiny_platform):
    store = tiny_platform.store
    for user_id in list(store.user_ids())[:100]:
        assert store.profile(user_id).followers == store.graph.degree(user_id)


def test_alternate_graph_models():
    for model, params in (
        ("barabasi_albert", {"m": 3}),
        ("watts_strogatz", {"k": 6, "p": 0.1}),
        ("erdos_renyi", {"p": 0.01}),
    ):
        config = PlatformConfig(
            num_users=300, graph_model=model, graph_params=params,
            keywords=tiny_keywords(), seed=2,
        )
        platform = build_platform(config)
        assert platform.graph.num_nodes == 300


def test_with_profile_shares_data(tiny_platform):
    gplus = tiny_platform.with_profile(GOOGLE_PLUS)
    assert gplus.store is tiny_platform.store
    assert gplus.profile == GOOGLE_PLUS
    assert tiny_platform.profile == TWITTER
    assert gplus.now == tiny_platform.now


def test_background_posts_have_no_keywords():
    config = PlatformConfig(num_users=200, keywords=[], background_posts_mean=4.0, seed=6)
    platform = build_platform(config)
    assert platform.store.num_posts > 0
    assert all(not post.keywords for post in platform.store.all_posts())
