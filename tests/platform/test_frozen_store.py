"""Frozen/legacy data-plane equivalence.

``data_plane="legacy"`` and ``data_plane="frozen"`` run the *same*
vectorized build (identical RNG draws, hence identical platform data) and
differ only in serving structures — mutable dict/list store and dict-of-set
graph versus columnar ``FrozenStore`` + CSR graph.  These tests pin that
the two serving forms are observationally identical: same API responses,
same API-call charges, bit-identical estimates.
"""

import pytest

from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.core.analyzer import MicroblogAnalyzer
from repro.core.query import MATCHING_POST_COUNT, count_users, sum_of
from repro.errors import GraphError, PlatformError
from repro.graph.csr import CSRGraph
from repro.platform.clock import DAY
from repro.platform.frozen import FrozenStore
from repro.platform.simulator import PlatformConfig, build_platform
from repro.platform.store import MicroblogStore

SEED = 77
NUM_USERS = 2_000


def _build(data_plane):
    return build_platform(
        PlatformConfig(num_users=NUM_USERS, seed=SEED, data_plane=data_plane)
    )


@pytest.fixture(scope="module")
def legacy_platform():
    return _build("legacy")


@pytest.fixture(scope="module")
def frozen_platform():
    return _build("frozen")


class TestStoreEquivalence:
    def test_store_types(self, legacy_platform, frozen_platform):
        assert isinstance(legacy_platform.store, MicroblogStore)
        assert isinstance(frozen_platform.store, FrozenStore)
        assert isinstance(frozen_platform.graph, CSRGraph)

    def test_same_population(self, legacy_platform, frozen_platform):
        assert legacy_platform.store.user_ids() == frozen_platform.store.user_ids()
        assert legacy_platform.store.num_posts == frozen_platform.store.num_posts
        assert legacy_platform.store.keywords() == frozen_platform.store.keywords()

    def test_timelines_identical(self, legacy_platform, frozen_platform):
        for user_id in legacy_platform.store.user_ids()[::37]:
            legacy = legacy_platform.store.timeline(user_id)
            frozen = frozen_platform.store.timeline(user_id)
            assert list(legacy) == list(frozen)
            assert legacy_platform.store.timeline_length(
                user_id
            ) == frozen_platform.store.timeline_length(user_id)

    def test_keyword_indexes_identical(self, legacy_platform, frozen_platform):
        for keyword in legacy_platform.store.keywords():
            assert list(legacy_platform.store.keyword_posts(keyword)) == list(
                frozen_platform.store.keyword_posts(keyword)
            )
            window = (100 * DAY, 200 * DAY)
            assert legacy_platform.store.users_mentioning(
                keyword, *window
            ) == frozen_platform.store.users_mentioning(keyword, *window)
            assert legacy_platform.store.first_mention_times(
                keyword
            ) == frozen_platform.store.first_mention_times(keyword)

    def test_graphs_identical(self, legacy_platform, frozen_platform):
        legacy, frozen = legacy_platform.graph, frozen_platform.graph
        assert legacy.num_edges == frozen.num_edges
        for node in range(0, NUM_USERS, 53):
            assert legacy.neighbors(node) == frozen.neighbors(node)
            assert legacy.degree(node) == frozen.degree(node)
            assert tuple(sorted(legacy.neighbors(node))) == frozen.sorted_neighbors(node)

    def test_immutability(self, frozen_platform):
        with pytest.raises(PlatformError):
            frozen_platform.store.new_post_id()
        with pytest.raises(GraphError):
            frozen_platform.graph.add_edge(0, 1)


class TestAPIEquivalence:
    def test_identical_responses_and_charges(self, legacy_platform, frozen_platform):
        legacy = CachingClient(SimulatedMicroblogClient(legacy_platform))
        frozen = CachingClient(SimulatedMicroblogClient(frozen_platform))

        assert legacy.search("privacy") == frozen.search("privacy")
        assert legacy.search("boston", max_results=40) == frozen.search(
            "boston", max_results=40
        )
        for user_id in legacy_platform.store.user_ids()[::101]:
            assert tuple(legacy.user_connections(user_id)) == tuple(
                frozen.user_connections(user_id)
            )
            legacy_view = legacy.user_timeline(user_id)
            frozen_view = frozen.user_timeline(user_id)
            assert legacy_view.posts == frozen_view.posts
            assert legacy_view.profile == frozen_view.profile
            assert legacy_view.truncated == frozen_view.truncated

        # identical work must cost identical API calls, kind by kind
        assert legacy.meter.total == frozen.meter.total
        assert legacy.meter.by_kind() == frozen.meter.by_kind()


class TestEstimateEquivalence:
    @pytest.mark.parametrize("algorithm", ["ma-tarw", "ma-srw"])
    def test_bit_identical_estimates(self, legacy_platform, frozen_platform, algorithm):
        query = (
            count_users("privacy")
            if algorithm == "ma-tarw"
            else sum_of("boston", MATCHING_POST_COUNT)
        )
        results = []
        for platform in (legacy_platform, frozen_platform):
            analyzer = MicroblogAnalyzer(
                platform, algorithm=algorithm, interval=DAY, seed=4242
            )
            results.append(analyzer.estimate(query, budget=4_000))
        legacy, frozen = results
        assert legacy.value == frozen.value  # bit-identical, not approx
        assert legacy.cost_total == frozen.cost_total
        assert legacy.cost_by_kind == frozen.cost_by_kind
        assert legacy.num_samples == frozen.num_samples
        assert [(p.cost, p.estimate) for p in legacy.trace] == [
            (p.cost, p.estimate) for p in frozen.trace
        ]
