"""Round-trip tests for platform save/load."""

import numpy as np
import pytest

from repro.core.analyzer import MicroblogAnalyzer
from repro.core.query import count_users
from repro.errors import PlatformError
from repro.groundtruth import exact_value
from repro.platform.clock import DAY
from repro.platform.serialization import load_platform, save_platform


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory):
    return tmp_path_factory.mktemp("platforms") / "platform.npz"


def test_round_trip_preserves_everything(tiny_platform, archive_path):
    save_platform(tiny_platform, archive_path)
    loaded = load_platform(archive_path)

    assert loaded.store.num_users == tiny_platform.store.num_users
    assert loaded.store.num_posts == tiny_platform.store.num_posts
    assert sorted(loaded.graph.edges()) == sorted(tiny_platform.graph.edges())
    assert loaded.now == tiny_platform.now
    assert loaded.profile.name == tiny_platform.profile.name

    # profiles
    for user_id in list(tiny_platform.store.user_ids())[:50]:
        original = tiny_platform.store.profile(user_id)
        restored = loaded.store.profile(user_id)
        assert restored.display_name == original.display_name
        assert restored.gender == original.gender
        assert restored.age == original.age
        assert restored.followers == original.followers

    # keyword indexes
    for keyword in tiny_platform.store.keywords():
        assert loaded.store.first_mention_times(keyword) == (
            tiny_platform.store.first_mention_times(keyword)
        )

    # cascades
    for keyword, cascade in tiny_platform.cascades.items():
        assert loaded.cascades[keyword].adoption_times == cascade.adoption_times
        assert loaded.cascades[keyword].total_posts == cascade.total_posts


def test_ground_truth_identical_after_reload(tiny_platform, archive_path):
    save_platform(tiny_platform, archive_path)
    loaded = load_platform(archive_path)
    query = count_users("privacy")
    assert exact_value(loaded.store, query) == exact_value(tiny_platform.store, query)


def test_estimation_runs_on_loaded_platform(tiny_platform, archive_path):
    save_platform(tiny_platform, archive_path)
    loaded = load_platform(archive_path)
    analyzer = MicroblogAnalyzer(loaded, algorithm="ma-srw", interval=DAY, seed=1)
    result = analyzer.estimate(count_users("privacy"), budget=3_000)
    assert result.cost_total <= 3_000


def test_version_check(tiny_platform, tmp_path):
    path = tmp_path / "bad.npz"
    save_platform(tiny_platform, path)
    with np.load(path, allow_pickle=True) as archive:
        data = {name: archive[name] for name in archive.files}
    import json

    header = json.loads(bytes(data["header"]).decode("utf-8"))
    header["format_version"] = 999
    data["header"] = np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **data)
    with pytest.raises(PlatformError):
        load_platform(path)


def test_round_trip_preserves_alternate_profile(tiny_platform, tmp_path):
    from repro.platform.profiles import GOOGLE_PLUS

    gplus = tiny_platform.with_profile(GOOGLE_PLUS)
    path = tmp_path / "gplus.npz"
    save_platform(gplus, path)
    loaded = load_platform(path)
    assert loaded.profile.name == "google+"
    assert loaded.profile.exposes_gender
