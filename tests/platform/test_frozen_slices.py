"""Edge cases of the FrozenStore keyword slices and batched lengths.

The classification fast path reads these columns directly, so their
corner behaviour (absent keywords, empty timelines, unknown ids, cache
resets) must match the scalar serving methods exactly.
"""

import numpy as np
import pytest

from repro.errors import PlatformError

KEYWORD = "privacy"


def _store(platform):
    return platform.store


class TestAbsentKeyword:
    def test_users_mentioning_empty(self, tiny_platform):
        assert _store(tiny_platform).users_mentioning("zzz-never-posted") == []

    def test_first_mention_arrays_empty(self, tiny_platform):
        users, times = _store(tiny_platform).first_mention_arrays("zzz-never-posted")
        assert users.size == 0
        assert times.size == 0

    def test_first_mention_time_none(self, tiny_platform):
        store = _store(tiny_platform)
        user = store.user_ids()[0]
        assert store.first_mention_time("zzz-never-posted", user) is None


class TestDegenerateTimelines:
    def test_empty_timeline_user(self, tiny_platform):
        store = _store(tiny_platform)
        empty = [u for u in store.user_ids() if store.timeline_length(u) == 0]
        if not empty:
            pytest.skip("tiny platform generated no empty timelines")
        user = empty[0]
        assert store.timeline(user) == ()
        assert store.first_mention_time(KEYWORD, user) is None
        kw_users, _ = store.first_mention_arrays(KEYWORD)
        assert user not in kw_users

    def test_single_post_user(self, tiny_platform):
        store = _store(tiny_platform)
        singles = [u for u in store.user_ids() if store.timeline_length(u) == 1]
        if not singles:
            pytest.skip("tiny platform generated no single-post timelines")
        user = singles[0]
        (post,) = store.timeline(user)
        expected = (
            post.timestamp
            if KEYWORD in post.keywords
            else None
        )
        assert store.first_mention_time(KEYWORD, user) == expected


class TestTimelineLengths:
    def test_matches_scalar_over_sample(self, tiny_platform):
        store = _store(tiny_platform)
        users = store.user_ids()[:300]
        batch = store.timeline_lengths(np.asarray(users, dtype=np.int64))
        assert batch.tolist() == [store.timeline_length(u) for u in users]

    def test_unknown_id_raises(self, tiny_platform):
        store = _store(tiny_platform)
        missing = max(store.user_ids()) + 1
        with pytest.raises(PlatformError):
            store.timeline_lengths(np.asarray([missing], dtype=np.int64))

    def test_known_and_unknown_mix_raises(self, tiny_platform):
        store = _store(tiny_platform)
        known = store.user_ids()[0]
        missing = max(store.user_ids()) + 1
        with pytest.raises(PlatformError):
            store.timeline_lengths(np.asarray([known, missing], dtype=np.int64))

    def test_empty_batch(self, tiny_platform):
        store = _store(tiny_platform)
        assert store.timeline_lengths(np.asarray([], dtype=np.int64)).size == 0


class TestFirstMentionArrays:
    def test_users_sorted_and_values_match_scalar(self, tiny_platform):
        store = _store(tiny_platform)
        users, times = store.first_mention_arrays(KEYWORD)
        assert users.size > 0
        assert np.all(np.diff(users) > 0)  # strictly ascending, no dupes
        for user, time in zip(users.tolist()[:200], times.tolist()[:200]):
            assert store.first_mention_time(KEYWORD, user) == time

    def test_covers_exactly_the_mentioning_users(self, tiny_platform):
        store = _store(tiny_platform)
        users, _ = store.first_mention_arrays(KEYWORD)
        assert set(users.tolist()) == set(store.users_mentioning(KEYWORD))

    def test_drop_caches_preserves_served_values(self, tiny_platform):
        store = _store(tiny_platform)
        users_before, times_before = store.first_mention_arrays(KEYWORD)
        sample = store.user_ids()[:50]
        timelines_before = [store.timeline(u) for u in sample]
        store.drop_caches()
        users_after, times_after = store.first_mention_arrays(KEYWORD)
        assert np.array_equal(users_before, users_after)
        assert np.array_equal(times_before, times_after)
        assert [store.timeline(u) for u in sample] == timelines_before
