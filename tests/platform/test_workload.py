"""Unit tests for keyword workload shapes."""

import pytest

from repro.errors import PlatformError
from repro.platform.clock import DAY
from repro.platform.workload import (
    KeywordSpec,
    constant_intensity,
    event_intensity,
    fading_intensity,
    keyword_catalogue_by_name,
    spiky_intensity,
    standard_keywords,
)


def test_constant_intensity():
    fn = constant_intensity(5.0)
    assert fn(0) == fn(100 * DAY) == 5.0
    with pytest.raises(PlatformError):
        constant_intensity(-1)


def test_spiky_intensity_peaks_at_spike_day():
    fn = spiky_intensity(1.0, spikes=[(100, 20.0)], spike_width_days=3.0)
    assert fn(100 * DAY) == pytest.approx(21.0)
    assert fn(100 * DAY) > fn(60 * DAY)
    assert fn(60 * DAY) == pytest.approx(1.0, abs=0.2)


def test_event_intensity_step_and_decay():
    fn = event_intensity(2.0, event_day=104, peak_per_day=50.0, decay_days=5.0)
    before = fn(100 * DAY)
    at_event = fn(104 * DAY)
    later = fn(120 * DAY)
    assert before == pytest.approx(2.0)
    assert at_event == pytest.approx(52.0)
    assert before < later < at_event


def test_fading_intensity_halves_and_floors():
    fn = fading_intensity(8.0, half_life_days=10, floor_per_day=0.5)
    assert fn(0) == pytest.approx(8.0)
    assert fn(10 * DAY) == pytest.approx(4.0)
    assert fn(1000 * DAY) == pytest.approx(0.5)


def test_expected_seeds_riemann():
    spec = KeywordSpec("x", constant_intensity(2.0))
    assert spec.expected_seeds(horizon=10 * DAY) == pytest.approx(20.0, rel=0.05)


def test_standard_keywords_catalogue():
    specs = standard_keywords()
    names = {spec.keyword for spec in specs}
    # the Figure 7 archetypes plus the Table 2 keywords
    assert {"privacy", "new york", "boston", "fiscalcliff", "super bowl",
            "obamacare", "tunisia", "simvastatin", "oprah winfrey"} <= names
    for spec in specs:
        assert 0 < spec.adoption_probability < 1
        assert spec.intensity(100 * DAY) >= 0


def test_scale_multiplies_rates():
    base = keyword_catalogue_by_name(1.0)["new york"]
    doubled = keyword_catalogue_by_name(2.0)["new york"]
    assert doubled.intensity(0) == pytest.approx(2 * base.intensity(0))
    with pytest.raises(PlatformError):
        standard_keywords(scale=0)
