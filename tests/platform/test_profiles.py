"""Unit tests for platform API profiles."""

import pytest

from repro.errors import PlatformError
from repro.platform.clock import DAY, MINUTE, WEEK
from repro.platform.profiles import ALL_PROFILES, GOOGLE_PLUS, TUMBLR, TWITTER, PlatformProfile


def test_twitter_constants_match_paper():
    assert TWITTER.search_window == WEEK
    assert TWITTER.timeline_cap == 3200
    assert TWITTER.connections_page_size == 5000
    assert TWITTER.rate_limit_calls == 180
    assert TWITTER.rate_limit_window == 15 * MINUTE
    assert not TWITTER.exposes_gender


def test_google_plus_constants_match_paper():
    assert GOOGLE_PLUS.search_page_size == 20
    assert GOOGLE_PLUS.rate_limit_calls == 10_000
    assert GOOGLE_PLUS.rate_limit_window == DAY
    assert GOOGLE_PLUS.exposes_gender
    assert GOOGLE_PLUS.connections_are_coactivity


def test_tumblr_rate_limit():
    assert TUMBLR.rate_limit_calls == 1
    assert TUMBLR.rate_limit_window == 10.0


def test_all_profiles_registry():
    assert set(ALL_PROFILES) == {"twitter", "google+", "tumblr", "reddit"}


def test_calls_for_items_ceiling():
    assert TWITTER.calls_for_items(0, 200) == 1
    assert TWITTER.calls_for_items(1, 200) == 1
    assert TWITTER.calls_for_items(200, 200) == 1
    assert TWITTER.calls_for_items(201, 200) == 2
    assert TWITTER.calls_for_items(1000, 200) == 5


def test_validation():
    with pytest.raises(PlatformError):
        PlatformProfile("x", -1, 10, 10, None, 10, 10, 60.0)
    with pytest.raises(PlatformError):
        PlatformProfile("x", WEEK, 0, 10, None, 10, 10, 60.0)
    with pytest.raises(PlatformError):
        PlatformProfile("x", WEEK, 10, 10, 0, 10, 10, 60.0)
    with pytest.raises(PlatformError):
        PlatformProfile("x", WEEK, 10, 10, None, 10, 0, 60.0)


def test_search_results_cap_validation():
    import dataclasses

    with pytest.raises(PlatformError):
        dataclasses.replace(TWITTER, search_results_cap=0)
    capped = dataclasses.replace(TWITTER, search_results_cap=1000)
    assert capped.search_results_cap == 1000


def test_reddit_profile():
    from repro.platform.profiles import REDDIT, ALL_PROFILES

    assert REDDIT.rate_limit_calls == 1
    assert REDDIT.rate_limit_window == 2.0
    assert REDDIT.search_results_cap == 1000
    assert REDDIT.connections_are_coactivity
    assert "reddit" in ALL_PROFILES
