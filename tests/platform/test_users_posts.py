"""Unit tests for user profiles and posts."""

import random

from repro.platform.posts import Post, make_keywords
from repro.platform.users import Gender, UserProfile, generate_profile


class TestProfiles:
    def test_generate_profile_fields(self):
        profile = generate_profile(7, seed=1)
        assert profile.user_id == 7
        assert profile.display_name
        assert 13 <= profile.age <= 80
        assert isinstance(profile.gender, Gender)
        assert profile.followers == 0  # filled in later from the graph

    def test_deterministic_given_seed(self):
        assert generate_profile(1, seed=9) == generate_profile(1, seed=9)

    def test_display_name_length_property(self):
        profile = UserProfile(1, "abcdef", Gender.FEMALE, 30)
        assert profile.display_name_length == 6

    def test_gender_distribution_contains_all(self):
        rng = random.Random(3)
        genders = {generate_profile(i, seed=rng).gender for i in range(300)}
        assert genders == {Gender.MALE, Gender.FEMALE, Gender.UNDISCLOSED}


class TestPosts:
    def test_make_keywords_normalises(self):
        assert make_keywords("Privacy", "NEW YORK") == frozenset({"privacy", "new york"})

    def test_mentions_case_insensitive(self):
        post = Post(1, 2, 100.0, keywords=make_keywords("Privacy"))
        assert post.mentions("privacy")
        assert post.mentions("PRIVACY")
        assert not post.mentions("boston")

    def test_in_window_half_open(self):
        post = Post(1, 2, 100.0)
        assert post.in_window(100.0, 101.0)
        assert not post.in_window(99.0, 100.0)

    def test_posts_are_immutable(self):
        post = Post(1, 2, 100.0)
        try:
            post.likes = 5
            raised = False
        except AttributeError:
            raised = True
        assert raised
