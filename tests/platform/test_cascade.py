"""Unit and behavioural tests for the cascade propagation model."""

import random
import statistics

import pytest

from repro.errors import PlatformError
from repro.graph.generators import community_graph
from repro.platform.cascade import (
    CascadeParams,
    run_cascade,
    sample_response_delay,
)
from repro.platform.clock import DAY, HOUR
from repro.platform.store import MicroblogStore
from repro.platform.users import generate_profile
from repro.platform.workload import KeywordSpec, constant_intensity


def make_store(n=400, seed=5):
    store = MicroblogStore(community_graph(n, seed=seed))
    rng = random.Random(seed)
    for user_id in range(n):
        store.add_user(generate_profile(user_id, seed=rng))
    store.refresh_follower_counts()
    return store


def test_params_validation():
    with pytest.raises(PlatformError):
        CascadeParams(delay_model="bogus")
    with pytest.raises(PlatformError):
        CascadeParams(fast_fraction=1.5)
    with pytest.raises(PlatformError):
        CascadeParams(exposure_cap=0)
    with pytest.raises(PlatformError):
        CascadeParams(weak_tie_multiplier=2.0)
    with pytest.raises(PlatformError):
        CascadeParams(delay_median=0)


def test_lognormal_delay_median():
    params = CascadeParams(delay_model="lognormal", delay_median=4 * HOUR, delay_sigma=1.0)
    rng = random.Random(1)
    delays = [sample_response_delay(params, rng) for _ in range(4000)]
    assert statistics.median(delays) == pytest.approx(4 * HOUR, rel=0.15)


def test_mixture_delay_mostly_fast():
    params = CascadeParams(delay_model="mixture", fast_fraction=0.92)
    rng = random.Random(2)
    delays = [sample_response_delay(params, rng) for _ in range(4000)]
    within_hour = sum(1 for d in delays if d <= 3600.0) / len(delays)
    # ~92% of draws are fast with mean 22min; most of those land within 1h
    assert within_hour > 0.8


def test_cascade_determinism():
    store_a, store_b = make_store(), make_store()
    spec = KeywordSpec("topic", constant_intensity(4.0), 0.3)
    result_a = run_cascade(store_a, spec, horizon=60 * DAY, seed=3)
    result_b = run_cascade(store_b, spec, horizon=60 * DAY, seed=3)
    assert result_a.adoption_times == result_b.adoption_times
    assert result_a.total_posts == result_b.total_posts


def test_adoption_times_within_horizon():
    store = make_store()
    spec = KeywordSpec("topic", constant_intensity(4.0), 0.3)
    result = run_cascade(store, spec, horizon=60 * DAY, seed=4)
    assert result.num_adopters > 0
    assert all(0 <= t < 60 * DAY for t in result.adoption_times.values())


def test_first_mentions_match_adoption_times():
    store = make_store()
    spec = KeywordSpec("topic", constant_intensity(4.0), 0.3)
    result = run_cascade(store, spec, horizon=60 * DAY, seed=5)
    mentions = store.first_mention_times("topic")
    assert mentions == result.adoption_times


def test_posts_written_for_each_adopter():
    store = make_store()
    spec = KeywordSpec("topic", constant_intensity(4.0), 0.3)
    result = run_cascade(store, spec, horizon=60 * DAY, seed=6)
    assert result.total_posts >= result.num_adopters
    assert store.num_posts == result.total_posts


def test_higher_adoption_probability_spreads_further():
    sizes = []
    for beta in (0.05, 0.5):
        store = make_store()
        spec = KeywordSpec("topic", constant_intensity(2.0), beta)
        sizes.append(run_cascade(store, spec, horizon=60 * DAY, seed=7).num_adopters)
    assert sizes[1] > sizes[0]


def test_max_adopters_cap():
    store = make_store()
    spec = KeywordSpec("topic", constant_intensity(10.0), 0.5)
    params = CascadeParams(max_adopters=25)
    result = run_cascade(store, spec, horizon=60 * DAY, params=params, seed=8)
    assert result.num_adopters <= 25


def test_intensity_scale():
    small = run_cascade(
        make_store(), KeywordSpec("t", constant_intensity(4.0), 0.0),
        horizon=60 * DAY, seed=9, intensity_scale=0.25,
    )
    large = run_cascade(
        make_store(), KeywordSpec("t", constant_intensity(4.0), 0.0),
        horizon=60 * DAY, seed=9, intensity_scale=4.0,
    )
    assert large.num_adopters > small.num_adopters
    with pytest.raises(PlatformError):
        run_cascade(make_store(), KeywordSpec("t", constant_intensity(1.0)), 10 * DAY,
                    intensity_scale=0)


def test_empty_store_rejected():
    with pytest.raises(PlatformError):
        run_cascade(MicroblogStore(), KeywordSpec("t", constant_intensity(1.0)), 10 * DAY)
