"""Unit tests for the simulated clock."""

import pytest

from repro.errors import PlatformError
from repro.platform.clock import DAY, HOUR, MINUTE, WEEK, SimulatedClock, format_timestamp


def test_constants_consistent():
    assert HOUR == 60 * MINUTE
    assert DAY == 24 * HOUR
    assert WEEK == 7 * DAY


def test_advance():
    clock = SimulatedClock()
    assert clock.now() == 0.0
    clock.advance(10.0)
    assert clock.now() == 10.0
    clock.advance(0.0)
    assert clock.now() == 10.0


def test_negative_advance_rejected():
    with pytest.raises(PlatformError):
        SimulatedClock().advance(-1.0)


def test_sleep_until_only_moves_forward():
    clock = SimulatedClock(start=100.0)
    clock.sleep_until(50.0)
    assert clock.now() == 100.0
    clock.sleep_until(200.0)
    assert clock.now() == 200.0


def test_format_timestamp():
    stamp = format_timestamp(2 * DAY + 3 * HOUR + 25 * MINUTE)
    assert "day   2" in stamp
    assert "03:25" in stamp
