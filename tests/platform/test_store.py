"""Unit tests for the MicroblogStore."""

import pytest

from repro.errors import PlatformError
from repro.platform.posts import Post, make_keywords
from repro.platform.store import MicroblogStore
from repro.platform.users import Gender, UserProfile


def make_store():
    store = MicroblogStore()
    for user_id in (1, 2, 3):
        store.add_user(UserProfile(user_id, f"user{user_id}", Gender.MALE, 30))
    return store


def keyword_post(store, user_id, timestamp, *words):
    post = Post(
        post_id=store.new_post_id(),
        user_id=user_id,
        timestamp=timestamp,
        keywords=make_keywords(*words),
    )
    store.add_post(post)
    return post


def test_add_user_and_duplicates():
    store = make_store()
    assert store.num_users == 3
    with pytest.raises(PlatformError):
        store.add_user(UserProfile(1, "dup", Gender.FEMALE, 20))


def test_post_by_unknown_user_rejected():
    store = make_store()
    with pytest.raises(PlatformError):
        store.add_post(Post(0, 99, 1.0))


def test_timeline_sorted_even_with_out_of_order_inserts():
    store = make_store()
    keyword_post(store, 1, 50.0, "privacy")
    keyword_post(store, 1, 10.0, "privacy")
    keyword_post(store, 1, 30.0)
    times = [p.timestamp for p in store.timeline(1)]
    assert times == [10.0, 30.0, 50.0]
    assert store.timeline_length(1) == 3


def test_unknown_user_lookups_raise():
    store = make_store()
    with pytest.raises(PlatformError):
        store.timeline(99)
    with pytest.raises(PlatformError):
        store.profile(99)
    with pytest.raises(PlatformError):
        store.timeline_length(99)


def test_keyword_posts_window():
    store = make_store()
    keyword_post(store, 1, 10.0, "privacy")
    keyword_post(store, 2, 20.0, "privacy")
    keyword_post(store, 3, 30.0, "privacy")
    hits = list(store.keyword_posts("privacy", start=15.0, end=30.0))
    assert [h[1] for h in hits] == [2]
    # case-insensitivity
    assert len(list(store.keyword_posts("PRIVACY"))) == 3


def test_users_mentioning_distinct_and_ordered_by_first_seen():
    store = make_store()
    keyword_post(store, 2, 10.0, "privacy")
    keyword_post(store, 1, 20.0, "privacy")
    keyword_post(store, 2, 30.0, "privacy")
    assert store.users_mentioning("privacy") == [2, 1]


def test_first_mention_time_tracks_minimum():
    store = make_store()
    keyword_post(store, 1, 50.0, "privacy")
    keyword_post(store, 1, 10.0, "privacy")
    assert store.first_mention_time("privacy", 1) == 10.0
    assert store.first_mention_time("privacy", 2) is None
    assert store.first_mention_times("privacy") == {1: 10.0}


def test_refresh_follower_counts():
    store = make_store()
    store.graph.add_edge(1, 2)
    store.graph.add_edge(1, 3)
    store.refresh_follower_counts()
    assert store.profile(1).followers == 2
    assert store.profile(2).followers == 1


def test_all_posts_and_counts():
    store = make_store()
    keyword_post(store, 1, 1.0, "a")
    keyword_post(store, 2, 2.0)
    assert store.num_posts == 2
    assert len(list(store.all_posts())) == 2
    assert sorted(store.keywords()) == ["a"]
