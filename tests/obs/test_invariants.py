"""The observability contract: watching a run never changes it.

Pins the tentpole's hard guarantees:

* **Overhead guard** — instrumented layers default to the *shared*
  ``NULL_OBS`` instance (object identity, not just falsiness), so a dark
  run allocates no telemetry objects on the hot path;
* **Bit-identity** — estimates, cost columns, convergence traces and
  diagnostics are identical with telemetry on and off, serially and
  through the shard-merge engine, with and without injected faults;
* **Worker-count invariance** — merged shard metrics are identical for
  every worker count;
* **Reconciliation** — trace records and the metrics registry agree
  *exactly* with CostMeter: clean query spend with ``query_total`` and
  the per-kind columns, retry waste with the budget-exempt ``retries``
  column under the hostile fault profile.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.api.faults import FAULT_PROFILES, FaultInjectingClient
from repro.api.resilient import ResilientClient
from repro.core.analyzer import MicroblogAnalyzer
from repro.core.graph_builder import QueryContext
from repro.obs import NULL_OBS, MetricsRegistry, Observability
from repro.obs.export import span_counts
from repro.obs.trace import RecordingSink

from tests.obs.conftest import golden_query, golden_run

pytestmark = pytest.mark.obs

CLEAN_KINDS = ("search", "connections", "timeline")


def full_obs() -> Observability:
    return Observability(trace_sink=RecordingSink(), metrics=MetricsRegistry())


def hostile_plan(seed: int = 123):
    return dataclasses.replace(FAULT_PROFILES["hostile"], seed=seed)


def strip_obs_keys(diagnostics):
    # wall_* keys are real-time measurements of the host machine, the one
    # part of a result that is legitimately nondeterministic
    return {
        k: v for k, v in diagnostics.items()
        if not k.startswith("obs_") and not k.startswith("wall_")
    }


def assert_results_bit_identical(dark, traced):
    assert traced.value == dark.value
    assert traced.cost_total == dark.cost_total
    assert traced.cost_by_kind == dark.cost_by_kind
    assert traced.num_samples == dark.num_samples
    assert traced.trace == dark.trace
    assert strip_obs_keys(traced.diagnostics) == strip_obs_keys(dark.diagnostics)


# ----------------------------------------------------------------------
# overhead guard: the dark path is one shared null object
# ----------------------------------------------------------------------
def test_analyzer_defaults_to_the_shared_null_obs(obs_platform):
    analyzer = MicroblogAnalyzer(obs_platform)
    assert analyzer.obs is NULL_OBS


def test_client_stack_defaults_to_the_shared_null_obs(obs_platform):
    inner = SimulatedMicroblogClient(obs_platform, budget=10)
    assert inner.obs is NULL_OBS
    faulty = FaultInjectingClient(inner, hostile_plan())
    assert faulty.obs is NULL_OBS
    resilient = ResilientClient(faulty)
    assert resilient.obs is NULL_OBS
    caching = CachingClient(resilient)
    assert caching.obs is NULL_OBS
    context = QueryContext(caching, golden_query())
    assert context.obs is NULL_OBS


def test_estimators_inherit_obs_from_the_context(obs_platform):
    obs = full_obs()
    inner = SimulatedMicroblogClient(obs_platform, budget=10, obs=obs)
    context = QueryContext(CachingClient(inner, obs=obs), golden_query(), obs=obs)
    from repro.core.srw import MASRWEstimator, SRWConfig
    from repro.core.tarw import MATARWEstimator, TARWConfig

    assert MATARWEstimator(context, None, TARWConfig(), seed=1).obs is obs
    assert MASRWEstimator(context, None, SRWConfig(), seed=1).obs is obs


def test_empty_observability_is_disabled():
    obs = Observability()
    assert obs.enabled is False and obs.trace is None and obs.metrics is None


# ----------------------------------------------------------------------
# bit-identity: traced == dark
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["ma-tarw", "ma-srw"])
def test_traced_run_is_bit_identical_serial(obs_platform, algorithm):
    dark = golden_run(obs_platform, algorithm)
    traced = golden_run(obs_platform, algorithm, obs=full_obs())
    assert_results_bit_identical(dark, traced)


@pytest.mark.parametrize("algorithm", ["ma-tarw", "ma-srw"])
def test_traced_run_is_bit_identical_sharded(obs_platform, algorithm):
    dark = golden_run(obs_platform, algorithm, n_workers=2)
    traced = golden_run(obs_platform, algorithm, n_workers=2, obs=full_obs())
    assert_results_bit_identical(dark, traced)


def test_traced_run_is_bit_identical_under_hostile_faults(obs_platform):
    dark = golden_run(obs_platform, "ma-tarw", fault_plan=hostile_plan())
    traced = golden_run(
        obs_platform, "ma-tarw", fault_plan=hostile_plan(), obs=full_obs()
    )
    assert_results_bit_identical(dark, traced)
    assert traced.cost_by_kind.get("retries", 0) > 0, (
        "hostile profile injected no faults — the reconciliation tests "
        "below would be vacuous"
    )


@pytest.mark.parametrize("algorithm", ["ma-tarw", "ma-srw"])
def test_obs_diagnostics_only_add_keys(obs_platform, algorithm):
    traced = golden_run(obs_platform, algorithm, obs=full_obs())
    obs_keys = [k for k in traced.diagnostics if k.startswith("obs_")]
    prefix = "obs_p_agree_" if algorithm == "ma-tarw" else "obs_burn_in_"
    assert any(k.startswith(prefix) for k in obs_keys), obs_keys


# ----------------------------------------------------------------------
# worker-count invariance of merged metrics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["ma-tarw", "ma-srw"])
def test_merged_metrics_are_worker_count_invariant(obs_platform, algorithm):
    snapshots = {}
    values = {}
    for workers in (1, 3):
        obs = full_obs()
        result = golden_run(obs_platform, algorithm, n_workers=workers, obs=obs)
        snapshots[workers] = obs.metrics.snapshot()
        values[workers] = result.value
    assert snapshots[1] == snapshots[3]
    assert values[1] == values[3]


# ----------------------------------------------------------------------
# reconciliation with CostMeter
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_workers", [None, 3])
def test_trace_and_metrics_reconcile_with_cost_meter(obs_platform, n_workers):
    obs = full_obs()
    result = golden_run(obs_platform, "ma-tarw", n_workers=n_workers, obs=obs)
    records = obs.trace_records()
    counters = obs.metrics.snapshot()["counters"]

    traced_calls = sum(r["calls"] for r in records if r["name"] == "api.call")
    assert traced_calls == result.cost_total  # == CostMeter.query_total
    for kind in CLEAN_KINDS:
        counted = counters.get(f"api.calls{{kind={kind}}}", 0)
        assert counted == result.cost_by_kind.get(kind, 0), kind
        assert counted == sum(
            r["calls"] for r in records
            if r["name"] == "api.call" and r["api"] == kind
        )
    assert "api.calls{kind=retries}" not in counters  # fault-free run
    assert span_counts(records).get("api.retry", 0) == 0


def test_retries_reconcile_under_hostile_faults(obs_platform):
    obs = full_obs()
    result = golden_run(obs_platform, "ma-tarw", fault_plan=hostile_plan(), obs=obs)
    records = obs.trace_records()
    counters = obs.metrics.snapshot()["counters"]

    retries = result.cost_by_kind.get("retries", 0)
    assert retries > 0
    # one trace event and one counter unit per failed attempt — the same
    # grain as the meter's budget-exempt ``retries`` column
    assert span_counts(records).get("api.retry", 0) == retries
    assert counters.get("api.calls{kind=retries}", 0) == retries
    # retry waste never leaks into the clean spend
    clean = sum(r["calls"] for r in records if r["name"] == "api.call")
    assert clean == result.cost_total
    assert result.cost_total == sum(
        result.cost_by_kind.get(kind, 0) for kind in CLEAN_KINDS
    )
    assert counters.get("faults.injected{fault=transient}", 0) > 0


def test_cache_counters_mirror_client_tallies(obs_platform):
    obs = full_obs()
    golden_run(obs_platform, "ma-srw", obs=obs)
    counters = obs.metrics.snapshot()["counters"]
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    assert misses > 0
    assert hits > 0  # walks revisit classified nodes constantly
