"""The obs test tier: trace bus, metrics, diagnostics, golden traces."""
