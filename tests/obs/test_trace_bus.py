"""Unit tests for the structured trace bus and the JSONL exporters."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.obs import NULL_OBS, NULL_SINK, Observability
from repro.obs.export import (
    format_record,
    parse_trace,
    span_counts,
    trace_lines,
    validate_trace,
    write_trace,
)
from repro.obs.trace import (
    KINDS,
    NullSink,
    RecordingSink,
    REQUIRED_KEYS,
    TRACE_SCHEMA_VERSION,
    Tracer,
)
from repro.platform.clock import SimulatedClock

pytestmark = pytest.mark.obs


def recording_tracer(start=0.0):
    sink = RecordingSink()
    return Tracer(sink, SimulatedClock(start)), sink


# ----------------------------------------------------------------------
# events, spans, sequencing
# ----------------------------------------------------------------------
def test_events_are_stamped_and_sequenced():
    tracer, sink = recording_tracer(start=100.0)
    tracer.event("a", x=1)
    tracer.clock.advance(2.5)
    tracer.event("b")
    assert sink.records == [
        {"seq": 0, "ts": 100.0, "kind": "event", "name": "a", "x": 1},
        {"seq": 1, "ts": 102.5, "kind": "event", "name": "b"},
    ]


def test_span_records_open_and_close_times():
    tracer, sink = recording_tracer(start=10.0)
    span = tracer.span("work", node=7)
    tracer.clock.advance(5.0)
    span.add(steps=3)
    span.close()
    span.close()  # idempotent: still exactly one record
    assert sink.records == [
        {"seq": 0, "ts": 15.0, "kind": "span", "name": "work",
         "t0": 10.0, "node": 7, "steps": 3},
    ]


def test_span_context_manager_stamps_error_type():
    tracer, sink = recording_tracer()
    with pytest.raises(ValueError):
        with tracer.span("walk"):
            raise ValueError("boom")
    (record,) = sink.records
    assert record["error"] == "ValueError"
    assert record["kind"] == "span"


def test_timestamps_are_rounded_to_microseconds():
    tracer, sink = recording_tracer()
    tracer.clock.advance(1 / 3)
    tracer.event("tick")
    assert sink.records[0]["ts"] == round(1 / 3, 6)


def test_bind_clock_adopts_the_runs_clock():
    tracer, sink = recording_tracer()
    late = SimulatedClock(500.0)
    tracer.bind_clock(late)
    tracer.event("after")
    assert sink.records[0]["ts"] == 500.0


def test_replay_resequences_and_labels_foreign_records():
    shard_tracer, shard_sink = recording_tracer(start=40.0)
    shard_tracer.event("srw.step", node=1)
    shard_tracer.event("srw.step", node=2)
    parent, parent_sink = recording_tracer()
    parent.event("parallel.plan", shards=2)
    parent.replay(shard_sink.records, shard=1)
    assert [r["seq"] for r in parent_sink.records] == [0, 1, 2]
    replayed = parent_sink.records[1]
    assert replayed["shard"] == 1
    assert replayed["ts"] == 40.0  # shard-local time is preserved
    # the shard's own buffer is untouched (replay copies)
    assert "shard" not in shard_sink.records[0]


# ----------------------------------------------------------------------
# sinks and the disabled fast path
# ----------------------------------------------------------------------
def test_null_sink_is_shared_and_disabled():
    assert isinstance(NULL_SINK, NullSink)
    assert NULL_SINK.enabled is False
    NULL_SINK.emit({"seq": 0})  # swallows silently


def test_observability_with_null_sink_stays_dark():
    obs = Observability(trace_sink=NULL_SINK)
    assert obs.trace is None
    assert obs.metrics is None
    assert obs.enabled is False
    assert obs.trace_records() == []
    obs.bind_clock(SimulatedClock(1.0))  # no-op, must not raise


def test_null_obs_is_the_shared_disabled_instance():
    assert NULL_OBS.enabled is False
    assert NULL_OBS.trace is None
    assert NULL_OBS.metrics is None


# ----------------------------------------------------------------------
# canonical JSONL round-trip and validation
# ----------------------------------------------------------------------
def test_format_record_is_canonical():
    line = format_record({"name": "a", "seq": 0, "kind": "event", "ts": 1.5})
    assert line == '{"kind":"event","name":"a","seq":0,"ts":1.5}'


def test_write_and_parse_round_trip(tmp_path):
    tracer, sink = recording_tracer()
    tracer.event("run.begin", schema=TRACE_SCHEMA_VERSION)
    with tracer.span("work"):
        pass
    path = tmp_path / "trace.jsonl"
    count = write_trace(sink.records, path)
    assert count == 2
    parsed = parse_trace(path.read_text(encoding="ascii"))
    assert parsed == sink.records
    validate_trace(parsed)
    assert trace_lines(parsed) == path.read_text().splitlines()


def test_parse_trace_rejects_bad_json():
    with pytest.raises(ReproError, match="line 2"):
        parse_trace('{"seq":0}\nnot json\n')


@pytest.mark.parametrize(
    "record,match",
    [
        ({"seq": 0, "ts": 0.0, "kind": "event"}, "missing required key"),
        ({"seq": 0, "ts": 0.0, "kind": "noise", "name": "x"}, "unknown kind"),
        ({"seq": 0, "ts": 0.0, "kind": "span", "name": "x"}, "lacks t0"),
    ],
)
def test_validate_trace_flags_schema_violations(record, match):
    with pytest.raises(ReproError, match=match):
        validate_trace([record])


def test_validate_trace_requires_monotonic_seq():
    good = {"ts": 0.0, "kind": "event", "name": "x"}
    with pytest.raises(ReproError, match="seq monotonicity"):
        validate_trace([dict(good, seq=0), dict(good, seq=0)])


def test_span_counts_groups_by_name():
    tracer, sink = recording_tracer()
    tracer.event("api.call", calls=2)
    tracer.event("api.call", calls=1)
    tracer.event("run.end")
    assert span_counts(sink.records) == {"api.call": 2, "run.end": 1}


def test_schema_constants_are_stable():
    # The golden files pin these; bump TRACE_SCHEMA_VERSION on change.
    assert TRACE_SCHEMA_VERSION == 1
    assert REQUIRED_KEYS == ("seq", "ts", "kind", "name")
    assert KINDS == ("event", "span")
