"""Unit tests for the metrics registry: series keys, snapshots, merging."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.export import metrics_json, metrics_snapshot

pytestmark = pytest.mark.obs


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
def test_counter_accumulates_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("api.calls", kind="search")
    counter.inc()
    counter.inc(3)
    assert registry.counter("api.calls", kind="search").value == 4
    with pytest.raises(ReproError):
        counter.inc(-1)


def test_label_order_does_not_split_series():
    registry = MetricsRegistry()
    registry.counter("tarw.level_visits", level=2, phase="up").inc()
    registry.counter("tarw.level_visits", phase="up", level=2).inc()
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"tarw.level_visits{level=2,phase=up}": 2}


def test_gauge_keeps_last_value():
    registry = MetricsRegistry()
    gauge = registry.gauge("tarw.seed_set_size")
    gauge.set(10)
    gauge.set(7)
    assert registry.snapshot()["gauges"]["tarw.seed_set_size"] == 7.0


def test_histogram_buckets_and_overflow():
    hist = Histogram(buckets=(1, 2, 5))
    for value in (0.5, 1, 2, 3, 100):
        hist.observe(value)
    assert hist.counts == [2, 1, 1, 1]  # <=1, <=2, <=5, overflow
    assert hist.count == 5
    assert hist.total == pytest.approx(106.5)
    assert hist.mean() == pytest.approx(106.5 / 5)


def test_histogram_rejects_unsorted_buckets():
    with pytest.raises(ReproError):
        Histogram(buckets=(1, 1, 2))
    with pytest.raises(ReproError):
        Histogram(buckets=())


def test_empty_histogram_has_no_mean():
    assert Histogram().mean() is None


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
def test_snapshot_is_sorted_and_json_stable():
    registry = MetricsRegistry()
    registry.counter("b").inc()
    registry.counter("a").inc(2)
    registry.histogram("walk", buckets=(1, 2)).observe(1)
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["a", "b"]
    assert snapshot["histograms"]["walk"] == {
        "buckets": [1.0, 2.0], "counts": [1, 0, 0], "sum": 1.0, "count": 1,
    }
    # the rendering round-trips and is deterministic
    assert json.loads(metrics_json(registry)) == json.loads(metrics_json(snapshot))
    assert metrics_snapshot(None) is None


# ----------------------------------------------------------------------
# merging: the CostMeter-style shard fold
# ----------------------------------------------------------------------
def build_shard(seed: int) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("api.calls", kind="search").inc(seed)
    registry.counter("srw.steps").inc(10 * seed)
    registry.gauge("tarw.seed_set_size").set(seed)
    hist = registry.histogram("tarw.walk_length")
    for value in range(seed):
        hist.observe(value)
    return registry


def test_merge_adds_counters_and_histograms_and_maxes_gauges():
    parent = MetricsRegistry()
    parent.merge_snapshot(build_shard(2).snapshot())
    parent.merge_snapshot(build_shard(5).snapshot())
    snapshot = parent.snapshot()
    assert snapshot["counters"]["api.calls{kind=search}"] == 7
    assert snapshot["counters"]["srw.steps"] == 70
    assert snapshot["gauges"]["tarw.seed_set_size"] == 5.0
    assert snapshot["histograms"]["tarw.walk_length"]["count"] == 7


def test_merge_is_order_invariant():
    forward, backward = MetricsRegistry(), MetricsRegistry()
    shards = [build_shard(seed) for seed in (1, 3, 4)]
    for shard in shards:
        forward.merge_snapshot(shard.snapshot())
    for shard in reversed(shards):
        backward.merge_snapshot(shard.snapshot())
    assert forward.snapshot() == backward.snapshot()


def test_merge_from_equals_merge_snapshot():
    via_registry, via_snapshot = MetricsRegistry(), MetricsRegistry()
    shard = build_shard(3)
    via_registry.merge_from(shard)
    via_snapshot.merge_snapshot(shard.snapshot())
    assert via_registry.snapshot() == via_snapshot.snapshot()


def test_merge_rejects_bucket_mismatch():
    parent = MetricsRegistry()
    parent.histogram("walk", buckets=(1, 2)).observe(1)
    shard = MetricsRegistry()
    shard.histogram("walk", buckets=(1, 2, 3)).observe(1)
    with pytest.raises(ReproError, match="bucket mismatch"):
        parent.merge_snapshot(shard.snapshot())


def test_default_buckets_are_strictly_increasing():
    assert all(b > a for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]))
