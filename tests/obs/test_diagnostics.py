"""Convergence diagnostics against closed-form values.

ESS is pinned on streams whose answer is known analytically — an i.i.d.
stream has ESS ≈ n, an AR(1) stream with coefficient φ has
ESS ≈ n·(1-φ)/(1+φ) — and the ESTIMATE-p agreement diagnostic is pinned
on the enumerable DAG of ``tests/core/test_estimate_p_unbiased.py``,
where Eq. 6 probabilities have exact values.  Tolerances are generous
(±30%) because the truncated-autocorrelation ESS estimator is itself
noisy at these lengths; the point is the order of magnitude, which is
what the ``--report`` verdicts hang on.
"""

from __future__ import annotations

import random

import pytest

from repro.obs.diagnostics import (
    effective_sample_size,
    estimate_stream_diagnostics,
    srw_burn_in_report,
    visit_probability_agreement,
)
from tests.core.test_estimate_p_unbiased import (
    _run_walks,
    exact_probabilities,
    make_estimator,
)

pytestmark = [pytest.mark.obs, pytest.mark.statistical]

N = 4_000


def ar1_stream(phi: float, n: int = N, seed: int = 7):
    rng = random.Random(seed)
    x, out = 0.0, []
    for _ in range(n):
        x = phi * x + rng.gauss(0, 1)
        out.append(x)
    return out


# ----------------------------------------------------------------------
# effective sample size
# ----------------------------------------------------------------------
def test_ess_of_iid_stream_is_about_n():
    rng = random.Random(42)
    stream = [rng.gauss(0, 1) for _ in range(N)]
    assert effective_sample_size(stream) == pytest.approx(N, rel=0.10)


@pytest.mark.parametrize("phi", [0.6, 0.9])
def test_ess_of_ar1_stream_matches_closed_form(phi):
    theory = N * (1 - phi) / (1 + phi)
    assert effective_sample_size(ar1_stream(phi)) == pytest.approx(theory, rel=0.30)


def test_ess_degenerate_cases():
    assert effective_sample_size([1.0, 2.0, 3.0]) == 3.0  # too short: n
    assert effective_sample_size([5.0] * 100) == 100.0    # constant: n
    assert 1.0 <= effective_sample_size(list(range(100))) <= 100.0  # clamped


# ----------------------------------------------------------------------
# estimate-stream summary
# ----------------------------------------------------------------------
def test_stream_diagnostics_drop_none_and_need_four_points():
    assert estimate_stream_diagnostics([]) == {}
    assert estimate_stream_diagnostics([1.0, None, 2.0, None]) == {}
    out = estimate_stream_diagnostics([None, 1.0, 2.0, 1.5, 1.8, None])
    assert out["n"] == 4.0
    assert 1.0 <= out["ess"] <= 4.0


def test_stream_diagnostics_flag_a_trending_stream():
    rng = random.Random(3)
    mixed = estimate_stream_diagnostics([100 + rng.gauss(0, 1) for _ in range(200)])
    trending = estimate_stream_diagnostics([float(i) for i in range(200)])
    assert abs(mixed["geweke_z"]) < 1.0
    assert abs(trending["geweke_z"]) > 5.0
    assert trending["ess"] < 10.0 < mixed["ess"]


# ----------------------------------------------------------------------
# SRW burn-in adequacy
# ----------------------------------------------------------------------
def stationary_chain(seed: int, n: int = 400):
    rng = random.Random(seed)
    return [rng.gauss(5, 1) for _ in range(n)]


def test_burn_in_report_on_stationary_chains():
    report = srw_burn_in_report([stationary_chain(s) for s in (10, 11, 12)])
    assert report["chains"] == 3.0
    assert report["geweke_converged_chains"] <= 3.0
    assert report["discard_fraction"] < 0.5
    assert report["mean_burn_in"] < 200
    assert report["post_burn_in_ess"] > 100


def test_burn_in_report_adequate_verdict():
    report = srw_burn_in_report([stationary_chain(10)], min_burn_in=50)
    assert report["geweke_converged_chains"] == 1.0
    assert report["mean_burn_in"] == 50.0  # the clamp is applied
    assert report["adequate"] == 1.0


def test_burn_in_report_flags_unmixed_chains():
    # A strong transient start: Geweke's quarter-chain fallback kicks in
    # and the verdict is inadequate.
    def transient(seed, n=400):
        rng = random.Random(seed)
        x, out = 30.0, []
        for _ in range(n):
            x = 0.9 * x + rng.gauss(0, 1)
            out.append(x)
        return out

    report = srw_burn_in_report([transient(s) for s in (1, 2, 3)])
    assert report["chains"] == 3.0
    assert report["adequate"] == 0.0


def test_burn_in_report_skips_too_short_chains():
    assert srw_burn_in_report([[1.0, 2.0, 3.0]]) == {}
    mixed = srw_burn_in_report([[1.0, 2.0], stationary_chain(10)])
    assert mixed["chains"] == 1.0


# ----------------------------------------------------------------------
# ESTIMATE-p visit agreement on the enumerable DAG
# ----------------------------------------------------------------------
F, G = 5, 6  # the DAG's sinks (see tests/core/test_estimate_p_unbiased.py)


def test_agreement_is_exact_on_matching_counts():
    estimator = make_estimator((F, G))
    exact_up, _ = exact_probabilities(estimator.oracle, {F, G})
    visits = {node: round(N * p) for node, p in exact_up.items()}
    out = visit_probability_agreement(
        visits, exact_up, N, level_of=estimator.oracle.level_of
    )
    assert out["max_abs_z"] == pytest.approx(0.0, abs=0.02)
    assert out["mean_abs_deviation"] == pytest.approx(0.0, abs=1e-4)
    assert out["tv_distance"] == pytest.approx(0.0, abs=1e-4)
    assert out["tv_distance_by_level"] == pytest.approx(0.0, abs=1e-4)


def test_walk_visits_agree_with_eq6_on_the_dag():
    estimator = make_estimator((F, G), seed=2024)
    exact_up, exact_down = exact_probabilities(estimator.oracle, {F, G})
    up_visits, down_visits = _run_walks(estimator, N)
    for visits, probabilities in ((up_visits, exact_up), (down_visits, exact_down)):
        out = visit_probability_agreement(
            visits, probabilities, N, level_of=estimator.oracle.level_of
        )
        assert out["nodes"] == 7.0
        assert out["max_abs_z"] < 4.0
        assert out["mean_abs_deviation"] < 0.02
        assert out["tv_distance"] < 0.02
        # every walk phase visits each level exactly once, so per-level
        # mass matches expectation identically
        assert out["tv_distance_by_level"] == pytest.approx(0.0, abs=1e-9)


def test_agreement_detects_a_wrong_probability_map():
    estimator = make_estimator((F, G), seed=2024)
    exact_up, _ = exact_probabilities(estimator.oracle, {F, G})
    up_visits, _ = _run_walks(estimator, N)
    wrong = dict(exact_up)
    wrong[0], wrong[F] = exact_up.get(F, 0.0) + 0.5, 0.9
    out = visit_probability_agreement(
        up_visits, wrong, N, level_of=estimator.oracle.level_of
    )
    assert out["max_abs_z"] > 10.0
    assert out["tv_distance"] > 0.1


def test_agreement_empty_inputs():
    assert visit_probability_agreement({}, {1: 0.5}, 0) == {}
    assert visit_probability_agreement({1: 3}, {1: 0.0}, 10) == {}
