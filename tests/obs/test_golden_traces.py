"""Golden-trace regression tests.

Each pinned run (see ``conftest.golden_run``) must reproduce its
committed canonical JSONL trace **byte for byte** — serially and through
the shard-merge engine at any worker count.  The traces pin estimator
behaviour structurally: an extra API call, a reordered walk phase, a
lost retry or a drifted probability changes the bytes even when the
final estimate happens to survive.

Regenerating after an *intentional* behaviour change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_golden_traces.py

then review the diff of ``tests/data/trace_*.jsonl`` like any other code
change — the diff *is* the behaviour change.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.obs import Observability
from repro.obs.export import parse_trace, trace_lines, validate_trace
from repro.obs.trace import RecordingSink, TRACE_SCHEMA_VERSION

from tests.obs.conftest import golden_run

pytestmark = pytest.mark.obs

DATA_DIR = Path(__file__).resolve().parents[1] / "data"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"
ALGORITHMS = ("ma-tarw", "ma-srw")
MODES = ("serial", "sharded")


def golden_path(algorithm: str, mode: str) -> Path:
    return DATA_DIR / f"trace_{algorithm.replace('-', '_')}_{mode}.jsonl"


def traced_run(platform, algorithm: str, n_workers=None) -> str:
    obs = Observability(trace_sink=RecordingSink())
    golden_run(platform, algorithm, n_workers=n_workers, obs=obs)
    return "\n".join(trace_lines(obs.trace_records())) + "\n"


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("mode", MODES)
def test_trace_matches_golden_bytes(obs_platform, algorithm, mode):
    workers = None if mode == "serial" else 1
    text = traced_run(obs_platform, algorithm, n_workers=workers)
    path = golden_path(algorithm, mode)
    if REGEN:
        path.write_text(text, encoding="ascii", newline="\n")
        pytest.skip(f"regenerated {path.name} ({len(text.splitlines())} records)")
    assert path.exists(), (
        f"missing golden file {path}; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    golden = path.read_text(encoding="ascii")
    assert text == golden, (
        f"{path.name} drifted — if the behaviour change is intentional, "
        "regenerate with REPRO_REGEN_GOLDEN=1 and review the diff"
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_sharded_trace_is_worker_count_invariant(obs_platform, algorithm):
    """n_workers=3 replays the exact bytes of the committed n_workers=1
    golden: the worker count never appears in a record and shard buffers
    merge in shard order."""
    path = golden_path(algorithm, "sharded")
    text = traced_run(obs_platform, algorithm, n_workers=3)
    if REGEN:
        assert text == path.read_text(encoding="ascii")
        pytest.skip("regeneration run: invariance re-checked against fresh golden")
    assert text == path.read_text(encoding="ascii")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("mode", MODES)
def test_golden_traces_are_schema_valid(algorithm, mode):
    path = golden_path(algorithm, mode)
    if not path.exists():
        pytest.skip("golden files not generated yet")
    records = parse_trace(path.read_text(encoding="ascii"))
    validate_trace(records)
    first = records[0]
    assert first["name"] == "run.begin"
    assert first["schema"] == TRACE_SCHEMA_VERSION
    assert first["algorithm"] == algorithm
    assert records[-1]["name"] == "run.end"
