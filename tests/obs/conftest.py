"""Shared fixtures for the obs tier: one tiny platform + pinned run recipes.

The golden-trace and invariant tests all drive the *same* two runs — a
small MA-TARW and a small MA-SRW estimation with every knob pinned — so
a behaviour change shows up consistently across the tier.  The configs
cap walk instances / steps: walks over the cached region are free, so an
uncapped run emits tens of thousands of span records and the committed
golden files would dwarf the test suite.
"""

from __future__ import annotations

import pytest

from repro.core.analyzer import MicroblogAnalyzer
from repro.core.query import Aggregate, AggregateQuery, CONSTANT_ONE
from repro.core.srw import SRWConfig
from repro.core.tarw import TARWConfig
from repro.platform.clock import DAY
from repro.platform.simulator import PlatformConfig, build_platform
from tests.conftest import tiny_keywords

GOLDEN_WALK_SEED = 5
GOLDEN_PLATFORM = dict(num_users=400, seed=11)

GOLDEN_BUDGETS = {"ma-tarw": 180, "ma-srw": 420}
GOLDEN_SHARDED_BUDGETS = {"ma-tarw": 540, "ma-srw": 700}
"""Sharded runs split the budget across :data:`GOLDEN_SHARDS` shards, so
they get proportionally more spend — enough that every shard still
completes walks and the merged run produces an estimate."""


def golden_estimator_config(algorithm):
    """The pinned estimator knobs for one golden run (fresh instance)."""
    if algorithm == "ma-tarw":
        return TARWConfig(
            max_instances=50,
            stall_instances=25,
            discovery_instances=30,
            final_recount_instances=60,
        )
    return SRWConfig(max_steps=400, stall_steps=300)


def golden_query() -> AggregateQuery:
    return AggregateQuery(
        keyword="privacy", aggregate=Aggregate.COUNT, measure=CONSTANT_ONE
    )


@pytest.fixture(scope="session")
def obs_platform():
    """~400 users — small enough that a budgeted run traces < 1k records."""
    config = PlatformConfig(
        keywords=tiny_keywords(), background_posts_mean=3.0, **GOLDEN_PLATFORM
    )
    return build_platform(config)


GOLDEN_SHARDS = 3
"""Sharded golden runs pin the shard count explicitly: the default
backoff would collapse these small budgets to one shard, leaving the
multi-shard merge ordering (the worker-invariance mechanism) unpinned."""


def golden_run(
    platform,
    algorithm: str,
    n_workers=None,
    obs=None,
    fault_plan=None,
    budget=None,
):
    """One pinned estimation run; returns the :class:`EstimateResult`."""
    key = "tarw_config" if algorithm == "ma-tarw" else "srw_config"
    analyzer = MicroblogAnalyzer(
        platform,
        algorithm=algorithm,
        interval=DAY,
        seed=GOLDEN_WALK_SEED,
        n_workers=n_workers,
        n_shards=GOLDEN_SHARDS if n_workers is not None else None,
        fault_plan=fault_plan,
        obs=obs,
        **{key: golden_estimator_config(algorithm)},
    )
    if budget is None:
        table = GOLDEN_BUDGETS if n_workers is None else GOLDEN_SHARDED_BUDGETS
        budget = table[algorithm]
    return analyzer.estimate(golden_query(), budget=budget)
