"""Tests for the ground-truth streaming collector."""

import pytest

from repro.api.streaming import StreamingAPI
from repro.errors import APIError
from repro.platform.clock import DAY


def test_track_returns_all_matching_posts(tiny_platform):
    stream = StreamingAPI(tiny_platform.store)
    horizon = tiny_platform.now
    tracked = stream.track(["privacy"], start=0.0, end=horizon)
    direct = list(tiny_platform.store.keyword_posts("privacy", 0.0, horizon))
    assert len(tracked) == len(direct)
    assert [t[0] for t in tracked] == sorted(t[0] for t in tracked)


def test_track_deduplicates_across_keywords(tiny_platform):
    stream = StreamingAPI(tiny_platform.store)
    horizon = tiny_platform.now
    both = stream.track(["privacy", "boston"], start=0.0, end=horizon)
    only_privacy = stream.track(["privacy"], start=0.0, end=horizon)
    only_boston = stream.track(["boston"], start=0.0, end=horizon)
    # our fixture posts carry one keyword each, so dedup == concatenation
    assert len(both) == len(only_privacy) + len(only_boston)


def test_sample_rate(tiny_platform):
    stream = StreamingAPI(tiny_platform.store, sample_rate=0.05)
    horizon = tiny_platform.now
    sample = list(stream.sample(0.0, horizon, seed=1))
    total = tiny_platform.store.num_posts
    assert 0.02 * total < len(sample) < 0.10 * total


def test_firehose_limit_flag(tiny_platform):
    stream = StreamingAPI(tiny_platform.store)
    horizon = tiny_platform.now
    # fixture keywords exceed 1% of a small platform's posts
    flagged = stream.exceeds_firehose_limit("privacy", 0.0, horizon)
    assert flagged == (
        len(list(tiny_platform.store.keyword_posts("privacy", 0.0, horizon)))
        / tiny_platform.store.num_posts
        > 0.01
    )


def test_daily_frequency_covers_window(tiny_platform):
    stream = StreamingAPI(tiny_platform.store)
    horizon = tiny_platform.now
    series = stream.daily_frequency("privacy", 0.0, horizon)
    assert len(series) == int(horizon // DAY) + 1
    assert sum(count for _, count in series) == len(
        list(tiny_platform.store.keyword_posts("privacy", 0.0, horizon))
    )


def test_invalid_windows_and_rates(tiny_platform):
    stream = StreamingAPI(tiny_platform.store)
    with pytest.raises(APIError):
        stream.track(["x"], 10.0, 10.0)
    with pytest.raises(APIError):
        list(stream.sample(10.0, 5.0))
    with pytest.raises(APIError):
        stream.daily_frequency("x", 5.0, 1.0)
    with pytest.raises(APIError):
        StreamingAPI(tiny_platform.store, sample_rate=0.0)
