"""Chaos suite for the fault-injection + resilient client layers.

Pins the contracts that make injected faults *healable*: deterministic
seeded draws, exactly-once query charging, budget-exempt retry
accounting, deterministic backoff, circuit-breaker degradation, and the
poisoned-cache regression (degraded responses must never be memoised).
"""

from __future__ import annotations

import pytest

from repro.api.accounting import RETRIES
from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.api.faults import FAULT_PROFILES, FaultInjectingClient, FaultPlan
from repro.api.interface import MicroblogAPI, TimelineView
from repro.api.resilient import ResilientClient, RetryPolicy
from repro.errors import (
    APITimeoutError,
    CircuitOpenError,
    ReproError,
    TransientAPIError,
    TruncatedResponseError,
)

pytestmark = pytest.mark.chaos


def _posty_user(platform, min_posts=2):
    """First user whose timeline holds at least *min_posts* posts."""
    probe = SimulatedMicroblogClient(platform)
    for user_id in range(500):
        if len(probe.user_timeline(user_id).posts) >= min_posts:
            return user_id
    raise AssertionError("no sufficiently active user in the fixture platform")


def _stack(platform, plan=None, policy=None, budget=None):
    client = SimulatedMicroblogClient(platform, budget=budget)
    if plan is not None:
        client = FaultInjectingClient(client, plan)
    if plan is not None or policy is not None:
        client = ResilientClient(client, policy)
    return CachingClient(client)


# ----------------------------------------------------------------------
# FaultPlan: validation and determinism
# ----------------------------------------------------------------------
def test_fault_plan_validation():
    with pytest.raises(ReproError):
        FaultPlan(transient_rate=1.2)
    with pytest.raises(ReproError):
        FaultPlan(transient_rate=0.6, timeout_rate=0.3, truncate_rate=0.2)
    with pytest.raises(ReproError):
        FaultPlan(max_consecutive_faults=0)
    assert not FaultPlan().active
    assert FAULT_PROFILES["hostile"].transient_rate == 0.20
    for plan in FAULT_PROFILES.values():
        assert plan.fault_rate + plan.duplicate_rate <= 1.0


def test_fault_draws_are_order_independent(tiny_platform):
    """The same request sees the same faults regardless of what other
    requests ran before it — the property that makes shard interleaving
    and worker count irrelevant."""
    plan = FaultPlan(seed=3, transient_rate=0.4, timeout_rate=0.2)

    def fault_log(user_ids):
        client = FaultInjectingClient(SimulatedMicroblogClient(tiny_platform), plan)
        log = {}
        for user_id in user_ids:
            outcomes = []
            for _ in range(plan.max_consecutive_faults + 1):
                try:
                    client.user_connections(user_id)
                    outcomes.append("ok")
                    break
                except TransientAPIError as err:
                    outcomes.append(type(err).__name__)
            log[user_id] = tuple(outcomes)
        return log

    forward = fault_log([0, 1, 2, 3, 4])
    backward = fault_log([4, 3, 2, 1, 0])
    assert forward == backward
    assert any(o != ("ok",) for o in forward.values())  # faults actually fired


def test_max_consecutive_faults_guarantees_success(tiny_platform):
    plan = FaultPlan(seed=0, transient_rate=0.95, max_consecutive_faults=4)
    client = FaultInjectingClient(SimulatedMicroblogClient(tiny_platform), plan)
    failures = 0
    for _ in range(plan.max_consecutive_faults + 1):
        try:
            response = client.user_connections(0)
            break
        except TransientAPIError:
            failures += 1
    else:  # pragma: no cover - the cap guarantees we never get here
        pytest.fail("request never succeeded despite the consecutive-fault cap")
    assert failures <= plan.max_consecutive_faults
    assert response == tuple(SimulatedMicroblogClient(tiny_platform).user_connections(0))


def test_clean_response_charged_exactly_once(tiny_platform):
    """Failed attempts charge only the retries column; the query kinds
    see exactly one logical charge, as in a fault-free run."""
    plan = FaultPlan(seed=1, transient_rate=0.5, truncate_rate=0.3)
    client = _stack(tiny_platform, plan)
    baseline = _stack(tiny_platform)
    for user_id in range(20):
        assert client.user_connections(user_id) == baseline.user_connections(user_id)
    faulted = client.meter.by_kind()
    assert faulted.pop(RETRIES) > 0
    assert faulted == baseline.meter.by_kind()
    assert client.total_cost == baseline.total_cost  # retry-exempt cost metric


def test_timeout_and_truncation_raise_typed_errors(tiny_platform):
    timeout_plan = FaultPlan(seed=2, timeout_rate=1.0, max_consecutive_faults=1)
    client = FaultInjectingClient(SimulatedMicroblogClient(tiny_platform), timeout_plan)
    with pytest.raises(APITimeoutError):
        client.user_connections(0)

    truncate_plan = FaultPlan(seed=2, truncate_rate=1.0, max_consecutive_faults=1)
    client = FaultInjectingClient(SimulatedMicroblogClient(tiny_platform), truncate_plan)
    full = tuple(SimulatedMicroblogClient(tiny_platform).user_connections(0))
    with pytest.raises(TruncatedResponseError) as excinfo:
        client.user_connections(0)
    # The partial payload is a strict prefix of the clean response.
    assert excinfo.value.partial == full[: len(full) // 2]


def test_duplicates_leak_without_healing_and_heal_with_it(tiny_platform):
    plan = FaultPlan(seed=4, duplicate_rate=1.0)
    clean = tuple(SimulatedMicroblogClient(tiny_platform).user_connections(1))
    raw = FaultInjectingClient(SimulatedMicroblogClient(tiny_platform), plan)
    corrupted = raw.user_connections(1)
    assert len(corrupted) == len(clean) + 1  # one retransmitted row
    assert sorted(set(corrupted)) == sorted(clean)
    healed = _stack(tiny_platform, plan)
    assert healed.user_connections(1) == clean
    timeline = healed.user_timeline(1)
    baseline = _stack(tiny_platform).user_timeline(1)
    assert timeline == baseline


def test_backoff_is_deterministic_and_simulated_only(tiny_platform):
    plan = FaultPlan(seed=5, transient_rate=0.6)
    policy = RetryPolicy(seed=9)
    waits = []
    for _ in range(2):
        client = _stack(tiny_platform, plan, policy)
        for user_id in range(10):
            client.user_timeline(user_id)
        waits.append(client.inner.backoff_wait)
    assert waits[0] == waits[1]
    assert waits[0] > 0.0
    # Backoff advanced the client's private simulated clock, not wall time.
    caching = _stack(tiny_platform, plan, policy)
    resilient = caching.inner
    before = resilient.clock.now()
    for user_id in range(10):
        caching.user_timeline(user_id)
    assert resilient.backoff_wait > 0.0
    assert resilient.clock.now() >= before + resilient.backoff_wait


def test_retry_policy_validation():
    with pytest.raises(ReproError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ReproError):
        RetryPolicy(base_delay=10.0, max_delay=1.0)
    with pytest.raises(ReproError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ReproError):
        RetryPolicy(backoff_factor=0.5)


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class _ScriptedClient(MicroblogAPI):
    """Fails until ``fail_for`` calls have been made, then succeeds."""

    def __init__(self, inner: MicroblogAPI, fail_for: int) -> None:
        self.inner = inner
        self.fail_for = fail_for
        self.calls = 0

    def _maybe_fail(self):
        self.calls += 1
        if self.calls <= self.fail_for:
            raise TransientAPIError(f"scripted failure {self.calls}")

    def search(self, keyword, max_results=None):
        self._maybe_fail()
        return self.inner.search(keyword, max_results)

    def user_connections(self, user_id):
        self._maybe_fail()
        return self.inner.user_connections(user_id)

    def user_timeline(self, user_id) -> TimelineView:
        self._maybe_fail()
        return self.inner.user_timeline(user_id)

    @property
    def meter(self):
        return self.inner.meter

    @property
    def clock(self):
        return self.inner.clock


def test_breaker_opens_and_serves_last_good(tiny_platform):
    policy = RetryPolicy(max_attempts=2, breaker_threshold=4, breaker_cooldown=600.0)
    scripted = _ScriptedClient(SimulatedMicroblogClient(tiny_platform), fail_for=0)
    client = ResilientClient(scripted, policy)
    good = client.user_connections(0)
    assert not client.last_response_degraded
    # Now the platform melts down: enough consecutive failures trip the
    # breaker, and the known response degrades to the cached copy.
    scripted.fail_for = 10**9
    for _ in range(2):  # 2 attempts per call x 2 calls = the threshold
        degraded = client.user_connections(0)
        assert degraded == good
        assert client.last_response_degraded
    assert client.circuit_open
    calls_when_open = scripted.calls
    # While open, unknown requests fail fast without touching the API.
    with pytest.raises(CircuitOpenError):
        client.user_connections(1)
    assert scripted.calls == calls_when_open


def test_breaker_half_opens_after_cooldown(tiny_platform):
    policy = RetryPolicy(max_attempts=1, breaker_threshold=2, breaker_cooldown=60.0)
    scripted = _ScriptedClient(SimulatedMicroblogClient(tiny_platform), fail_for=2)
    client = ResilientClient(scripted, policy)
    for _ in range(2):
        with pytest.raises(TransientAPIError):
            client.user_connections(0)
    assert client.circuit_open
    client.clock.advance(policy.breaker_cooldown + 1.0)
    assert not client.circuit_open
    # The half-open probe goes through to the (recovered) platform.
    assert client.user_connections(0) == tuple(
        SimulatedMicroblogClient(tiny_platform).user_connections(0)
    )
    assert not client.circuit_open


def test_truncated_partial_serves_as_degraded_fallback(tiny_platform):
    plan = FaultPlan(seed=6, truncate_rate=1.0, max_consecutive_faults=10)
    policy = RetryPolicy(max_attempts=2, breaker_threshold=50)
    client = _stack(tiny_platform, plan, policy)
    resilient = client.inner
    user_id = _posty_user(tiny_platform)
    full = SimulatedMicroblogClient(tiny_platform).user_timeline(user_id)
    view = client.user_timeline(user_id)
    assert len(view.posts) == len(full.posts) // 2  # the delivered prefix
    assert resilient.degraded_serves == 1


# ----------------------------------------------------------------------
# poisoned-cache regression (satellite bugfix)
# ----------------------------------------------------------------------
def test_cache_never_memoises_degraded_responses(tiny_platform):
    """A response recovered from a truncated transfer must not poison the
    cache: once the platform heals, callers must see the full data."""
    plan = FaultPlan(seed=6, truncate_rate=1.0, max_consecutive_faults=4)
    policy = RetryPolicy(max_attempts=2, breaker_threshold=50)
    client = _stack(tiny_platform, plan, policy)
    user_id = _posty_user(tiny_platform)
    full = SimulatedMicroblogClient(tiny_platform).user_timeline(user_id)

    degraded = client.user_timeline(user_id)  # attempts 0+1 truncate -> partial
    assert len(degraded.posts) < len(full.posts)
    assert client.uncacheable == 1
    assert client.hits == 0

    # Keep asking until the consecutive-fault cap forces a clean transfer;
    # a poisoned cache would pin the partial response forever instead.
    for _ in range(4):
        healed = client.user_timeline(user_id)
        if healed == full:
            break
    assert healed == full  # NOT the poisoned partial
    assert client.user_timeline(user_id) == full  # now served from the cache
    assert client.hits == 1

    # Control: the memoised clean response keeps serving from the cache.
    assert client.user_timeline(user_id) == full
    assert client.hits == 2
