"""Unit tests for the windowed rate limiter."""

import pytest

from repro.api.ratelimit import RateLimiter
from repro.errors import RateLimitError, ReproError
from repro.platform.clock import MINUTE, SimulatedClock
from repro.platform.profiles import TWITTER, TUMBLR


def test_within_quota_no_wait():
    clock = SimulatedClock()
    limiter = RateLimiter(TWITTER, clock)
    limiter.acquire(180)
    assert clock.now() == 0.0
    assert limiter.total_wait == 0.0


def test_sleep_policy_advances_clock():
    clock = SimulatedClock()
    limiter = RateLimiter(TWITTER, clock)
    limiter.acquire(180)
    limiter.acquire(1)  # 181st call must wait for the next window
    assert clock.now() == pytest.approx(15 * MINUTE)
    assert limiter.total_wait == pytest.approx(15 * MINUTE)


def test_batch_split_across_windows():
    clock = SimulatedClock()
    limiter = RateLimiter(TWITTER, clock)
    limiter.acquire(450)  # 2.5 windows worth
    # two full sleeps needed
    assert clock.now() == pytest.approx(30 * MINUTE)
    assert limiter.used_in_current_window == 450 - 2 * 180


def test_raise_policy():
    clock = SimulatedClock()
    limiter = RateLimiter(TWITTER, clock, policy="raise")
    limiter.acquire(180)
    with pytest.raises(RateLimitError) as excinfo:
        limiter.acquire(1)
    assert excinfo.value.retry_at == pytest.approx(15 * MINUTE)
    assert clock.now() == 0.0


def test_window_rolls_with_time():
    clock = SimulatedClock()
    limiter = RateLimiter(TWITTER, clock)
    limiter.acquire(180)
    clock.advance(15 * MINUTE)
    limiter.acquire(180)  # fresh window, no wait
    assert limiter.total_wait == 0.0


def test_tumblr_one_call_per_ten_seconds():
    clock = SimulatedClock()
    limiter = RateLimiter(TUMBLR, clock)
    limiter.acquire(3)
    # first call free; two more wait 10s each
    assert clock.now() == pytest.approx(20.0)


def test_invalid_inputs():
    clock = SimulatedClock()
    with pytest.raises(ReproError):
        RateLimiter(TWITTER, clock, policy="bogus")
    limiter = RateLimiter(TWITTER, clock)
    with pytest.raises(ReproError):
        limiter.acquire(-1)
