"""Unit tests for the windowed rate limiter."""

import pytest

from repro.api.ratelimit import RateLimiter
from repro.errors import RateLimitError, ReproError
from repro.platform.clock import MINUTE, SimulatedClock
from repro.platform.profiles import TWITTER, TUMBLR


def test_within_quota_no_wait():
    clock = SimulatedClock()
    limiter = RateLimiter(TWITTER, clock)
    limiter.acquire(180)
    assert clock.now() == 0.0
    assert limiter.total_wait == 0.0


def test_sleep_policy_advances_clock():
    clock = SimulatedClock()
    limiter = RateLimiter(TWITTER, clock)
    limiter.acquire(180)
    limiter.acquire(1)  # 181st call must wait for the next window
    assert clock.now() == pytest.approx(15 * MINUTE)
    assert limiter.total_wait == pytest.approx(15 * MINUTE)


def test_batch_split_across_windows():
    clock = SimulatedClock()
    limiter = RateLimiter(TWITTER, clock)
    limiter.acquire(450)  # 2.5 windows worth
    # two full sleeps needed
    assert clock.now() == pytest.approx(30 * MINUTE)
    assert limiter.used_in_current_window == 450 - 2 * 180


def test_raise_policy():
    clock = SimulatedClock()
    limiter = RateLimiter(TWITTER, clock, policy="raise")
    limiter.acquire(180)
    with pytest.raises(RateLimitError) as excinfo:
        limiter.acquire(1)
    assert excinfo.value.retry_at == pytest.approx(15 * MINUTE)
    assert clock.now() == 0.0


def test_window_rolls_with_time():
    clock = SimulatedClock()
    limiter = RateLimiter(TWITTER, clock)
    limiter.acquire(180)
    clock.advance(15 * MINUTE)
    limiter.acquire(180)  # fresh window, no wait
    assert limiter.total_wait == 0.0


def test_tumblr_one_call_per_ten_seconds():
    clock = SimulatedClock()
    limiter = RateLimiter(TUMBLR, clock)
    limiter.acquire(3)
    # first call free; two more wait 10s each
    assert clock.now() == pytest.approx(20.0)


def test_invalid_inputs():
    clock = SimulatedClock()
    with pytest.raises(ReproError):
        RateLimiter(TWITTER, clock, policy="bogus")
    limiter = RateLimiter(TWITTER, clock)
    with pytest.raises(ReproError):
        limiter.acquire(-1)


# ----------------------------------------------------------------------
# edge cases surfaced by the multi-tenant service (tenant envelopes ride
# the same limiter over a per-tenant SimulatedClock)
# ----------------------------------------------------------------------
def test_clock_jump_spanning_many_windows_resets_cleanly():
    """_roll_window must land the window start on an exact boundary after
    the clock leaps several windows at once, not drift."""
    clock = SimulatedClock()
    limiter = RateLimiter(TWITTER, clock)
    limiter.acquire(180)
    clock.advance(15 * MINUTE * 7 + 42.0)  # lands 42 s into window 7
    assert limiter.used_in_current_window == 0
    limiter.acquire(180)  # a whole fresh quota fits, no wait
    assert limiter.total_wait == 0.0
    # The next over-quota call waits to the *aligned* boundary — the
    # stray 42 s does not shift the window grid.
    limiter.acquire(1)
    assert clock.now() == pytest.approx(15 * MINUTE * 8)


def test_clock_jump_mid_window_preserves_usage():
    clock = SimulatedClock()
    limiter = RateLimiter(TWITTER, clock)
    limiter.acquire(100)
    clock.advance(5 * MINUTE)  # still inside the first window
    assert limiter.used_in_current_window == 100
    limiter.acquire(80)  # exactly exhausts the window quota
    assert limiter.total_wait == 0.0
    assert limiter.used_in_current_window == 180


def test_raise_policy_across_clock_jump():
    clock = SimulatedClock()
    limiter = RateLimiter(TWITTER, clock, policy="raise")
    limiter.acquire(180)
    with pytest.raises(RateLimitError):
        limiter.acquire(1)
    clock.advance(2 * 15 * MINUTE)
    limiter.acquire(180)  # recovered without any sleep
    assert limiter.total_wait == 0.0


def test_zero_allowance_envelope_rejected():
    """The tenant shim refuses a zero-call envelope outright — a limiter
    that could never admit anything would sleep forever."""
    from repro.service.tenants import RateEnvelope

    with pytest.raises(ReproError):
        RateEnvelope(0, 60.0)
    with pytest.raises(ReproError):
        RateEnvelope(10, 0.0)


def test_acquire_zero_calls_is_free():
    clock = SimulatedClock()
    limiter = RateLimiter(TUMBLR, clock)
    limiter.acquire(0)
    assert limiter.used_in_current_window == 0
    assert clock.now() == 0.0


def test_budget_exactly_exhausted_on_final_charge():
    """CostMeter boundary twin of the limiter edge: the charge that lands
    exactly on the budget succeeds; the next one raises *before*
    recording, leaving the tally untouched."""
    from repro.api.accounting import CostMeter
    from repro.errors import BudgetExhaustedError

    meter = CostMeter(budget=100)
    meter.charge("search", 60)
    meter.charge("timeline", 40)  # lands exactly on the budget
    assert meter.query_total == 100
    assert meter.remaining == 0
    with pytest.raises(BudgetExhaustedError):
        meter.charge("connections", 1)
    assert meter.query_total == 100  # nothing recorded by the failed charge
    meter.charge("retries", 5)  # exempt column still records
    assert meter.total == 105
