"""Tests for the simulated API client and the caching wrapper."""

import pytest

from repro.api import accounting
from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.errors import APIError, BudgetExhaustedError
from repro.platform.clock import DAY
from repro.platform.profiles import GOOGLE_PLUS


class TestSearch:
    def test_results_within_window_newest_first(self, tiny_platform):
        client = SimulatedMicroblogClient(tiny_platform)
        hits = client.search("privacy")
        window_start = tiny_platform.now - tiny_platform.profile.search_window
        assert hits, "fixture keyword should have recent posts"
        assert all(hit.timestamp >= window_start for hit in hits)
        times = [hit.timestamp for hit in hits]
        assert times == sorted(times, reverse=True)

    def test_old_posts_invisible_to_search(self, tiny_platform):
        client = SimulatedMicroblogClient(tiny_platform)
        hits = client.search("privacy")
        store_total = len(list(tiny_platform.store.keyword_posts("privacy")))
        assert len(hits) < store_total  # most mentions are older than a week

    def test_max_results_truncates(self, tiny_platform):
        client = SimulatedMicroblogClient(tiny_platform)
        assert len(client.search("privacy", max_results=3)) <= 3

    def test_search_cost_is_page_count(self, tiny_platform):
        client = SimulatedMicroblogClient(tiny_platform)
        hits = client.search("privacy")
        pages = tiny_platform.profile.calls_for_items(
            len(hits), tiny_platform.profile.search_page_size
        )
        assert client.meter.by_kind()[accounting.SEARCH] == pages

    def test_empty_search_still_costs_one_call(self, tiny_platform):
        client = SimulatedMicroblogClient(tiny_platform)
        assert client.search("no-such-keyword") == []
        assert client.meter.by_kind()[accounting.SEARCH] == 1


class TestTimeline:
    def test_timeline_contents_and_profile(self, tiny_platform):
        store = tiny_platform.store
        user_id = store.users_mentioning("privacy")[0]
        client = SimulatedMicroblogClient(tiny_platform)
        view = client.user_timeline(user_id)
        assert view.profile.user_id == user_id
        assert len(view.posts) == store.timeline_length(user_id)
        assert view.first_mention_time("privacy") == store.first_mention_time(
            "privacy", user_id
        )

    def test_gender_hidden_on_twitter(self, tiny_platform):
        user_id = tiny_platform.store.user_ids()[0]
        client = SimulatedMicroblogClient(tiny_platform)
        assert client.user_timeline(user_id).profile.gender is None

    def test_gender_visible_on_google_plus(self, tiny_platform):
        gplus = tiny_platform.with_profile(GOOGLE_PLUS)
        user_id = gplus.store.user_ids()[0]
        client = SimulatedMicroblogClient(gplus)
        view = client.user_timeline(user_id)
        assert view.profile.gender == gplus.store.profile(user_id).gender

    def test_unknown_user_raises(self, tiny_platform):
        client = SimulatedMicroblogClient(tiny_platform)
        with pytest.raises(APIError):
            client.user_timeline(10**9)


class TestConnections:
    def test_connections_match_graph(self, tiny_platform):
        user_id = tiny_platform.store.user_ids()[5]
        client = SimulatedMicroblogClient(tiny_platform)
        assert set(client.user_connections(user_id)) == set(
            tiny_platform.graph.neighbors_unsafe(user_id)
        )

    def test_pagination_cost_on_google_plus(self, tiny_platform):
        gplus = tiny_platform.with_profile(GOOGLE_PLUS)
        # pick a user with degree above one Google+ page (100)
        user_id = max(gplus.store.user_ids(), key=gplus.graph.degree)
        degree = gplus.graph.degree(user_id)
        if degree <= GOOGLE_PLUS.connections_page_size:
            pytest.skip("fixture graph has no user above one page")
        client = SimulatedMicroblogClient(gplus)
        client.user_connections(user_id)
        expected = GOOGLE_PLUS.calls_for_items(degree, GOOGLE_PLUS.connections_page_size)
        assert client.meter.by_kind()[accounting.CONNECTIONS] == expected


class TestBudgetAndClock:
    def test_budget_exhaustion(self, tiny_platform):
        client = SimulatedMicroblogClient(tiny_platform, budget=2)
        client.search("privacy", max_results=5)
        with pytest.raises(BudgetExhaustedError):
            for user_id in tiny_platform.store.user_ids():
                client.user_timeline(user_id)

    def test_private_clock_does_not_touch_platform(self, tiny_platform):
        before = tiny_platform.clock.now()
        client = SimulatedMicroblogClient(tiny_platform)
        # burn several rate windows
        for user_id in tiny_platform.store.user_ids()[:300]:
            client.user_timeline(user_id)
        assert tiny_platform.clock.now() == before
        assert client.simulated_wait >= 0.0


class TestCachingClient:
    def test_repeat_requests_free(self, tiny_platform):
        client = CachingClient(SimulatedMicroblogClient(tiny_platform))
        user_id = tiny_platform.store.user_ids()[0]
        client.user_timeline(user_id)
        cost_after_first = client.total_cost
        client.user_timeline(user_id)
        client.user_timeline(user_id)
        assert client.total_cost == cost_after_first
        assert client.hits == 2

    def test_search_cached_by_args(self, tiny_platform):
        client = CachingClient(SimulatedMicroblogClient(tiny_platform))
        client.search("privacy")
        cost = client.total_cost
        client.search("privacy")
        assert client.total_cost == cost
        client.search("privacy", max_results=1)  # different key -> new call
        assert client.total_cost > cost

    def test_cached_responses_are_immutable_and_shared(self, tiny_platform):
        client = CachingClient(SimulatedMicroblogClient(tiny_platform))
        user_id = tiny_platform.store.user_ids()[3]
        first = client.user_connections(user_id)
        assert isinstance(first, tuple)  # callers cannot corrupt the cache
        # hits serve the exact cached object back — no per-request copy
        assert client.user_connections(user_id) is first
        hits = client.search("privacy")
        assert isinstance(hits, tuple)
        assert client.search("privacy") is hits


class TestSearchResultsCap:
    def test_top_k_cap_truncates(self, tiny_platform):
        import dataclasses

        capped_profile = dataclasses.replace(
            tiny_platform.profile, search_results_cap=2
        )
        capped = tiny_platform.with_profile(capped_profile)
        client = SimulatedMicroblogClient(capped)
        hits = client.search("privacy")
        assert len(hits) <= 2
        # and the survivors are the newest posts
        uncapped = SimulatedMicroblogClient(tiny_platform).search("privacy")
        assert [h.post_id for h in hits] == [h.post_id for h in uncapped[:len(hits)]]
