"""Real-contention thread-safety tests for the shared client stack.

The service layer shares one :class:`CostMeter` per query across engine
threads and (in principle) could share a :class:`CachingClient` between
pilot shards, so these pin the two concurrency invariants the rest of
the repo builds on: a cached response is charged exactly once no matter
how many threads race for it, and a budgeted meter never records past
its budget no matter how the charges interleave.

Every test releases its threads through a :class:`threading.Barrier` so
they hit the contended section together instead of trickling through.
"""

from __future__ import annotations

import threading

import pytest

from repro.api.accounting import CostMeter
from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.errors import BudgetExhaustedError

pytestmark = pytest.mark.service

N_THREADS = 8


def _hammer(n_threads, worker):
    """Run *worker(thread_index)* on *n_threads* barrier-synchronized
    threads; re-raise the first worker exception, if any."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def run(index):
        barrier.wait()
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - collected and re-raised
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestCachingClientContention:
    def test_same_key_charged_exactly_once(self, tiny_platform):
        """All threads request the same keyword/users: each unique
        response costs exactly one miss — hits are free and unmetered."""
        inner = SimulatedMicroblogClient(tiny_platform, budget=100_000)
        client = CachingClient(inner)
        user_ids = list(tiny_platform.store.user_ids()[:4])
        rounds = 25

        def worker(_index):
            for _ in range(rounds):
                client.search("privacy", max_results=10)
                for uid in user_ids:
                    client.user_connections(uid)

        _hammer(N_THREADS, worker)

        requests = N_THREADS * rounds * (1 + len(user_ids))
        unique = 1 + len(user_ids)
        assert client.misses == unique
        assert client.hits == requests - unique
        assert client.uncacheable == 0
        # The meter saw only the misses — one charge per unique response.
        by_kind = inner.meter.by_kind()
        assert by_kind["connections"] == len(user_ids)
        assert by_kind["search"] >= 1  # pagination may cost >1 call/page set
        meter_search = by_kind["search"]

        # And the charge pattern is identical to a serial client's.
        serial_inner = SimulatedMicroblogClient(tiny_platform, budget=100_000)
        serial = CachingClient(serial_inner)
        serial.search("privacy", max_results=10)
        for uid in user_ids:
            serial.user_connections(uid)
        assert serial_inner.meter.by_kind()["search"] == meter_search
        assert serial_inner.meter.by_kind()["connections"] == len(user_ids)

    def test_racing_responses_are_identical_objects(self, tiny_platform):
        """Whoever wins the miss race, every thread gets the *same*
        immutable tuple back — no torn or duplicate responses."""
        inner = SimulatedMicroblogClient(tiny_platform, budget=100_000)
        client = CachingClient(inner)
        seen = [None] * N_THREADS

        def worker(index):
            seen[index] = client.search("boston")

        _hammer(N_THREADS, worker)
        first = seen[0]
        assert isinstance(first, tuple)
        assert all(response is first for response in seen)
        assert client.misses == 1 and client.hits == N_THREADS - 1


class TestCostMeterContention:
    def test_never_records_past_budget(self):
        """Threads over-subscribe a budgeted meter 4×: the recorded total
        lands exactly on the budget, never past it."""
        budget = 400
        meter = CostMeter(budget=budget)
        per_thread = (budget * 4) // N_THREADS
        rejected = [0] * N_THREADS

        def worker(index):
            for i in range(per_thread):
                kind = ("search", "connections", "timeline")[i % 3]
                try:
                    meter.charge(kind)
                except BudgetExhaustedError:
                    rejected[index] += 1

        _hammer(N_THREADS, worker)
        assert meter.query_total == budget  # exact at the boundary
        assert meter.remaining == 0
        assert sum(rejected) == N_THREADS * per_thread - budget
        assert sum(meter.by_kind().get(k, 0) for k in ("search", "connections", "timeline")) == budget

    def test_retries_exempt_under_contention(self):
        meter = CostMeter(budget=10)
        meter.charge("search", 10)  # budget fully spent

        def worker(_index):
            for _ in range(50):
                meter.charge("retries")
                with pytest.raises(BudgetExhaustedError):
                    meter.charge("search")

        _hammer(N_THREADS, worker)
        assert meter.by_kind()["retries"] == N_THREADS * 50
        assert meter.query_total == 10

    def test_merge_from_under_contention(self):
        """Shard meters folding into a parent concurrently lose nothing."""
        parent = CostMeter()
        shards = []
        for index in range(N_THREADS):
            shard = CostMeter()
            shard.charge("search", index + 1)
            shard.charge("timeline", 2 * (index + 1))
            shards.append(shard)

        def worker(index):
            parent.merge_from(shards[index])

        _hammer(N_THREADS, worker)
        expected = sum(range(1, N_THREADS + 1))
        assert parent.by_kind()["search"] == expected
        assert parent.by_kind()["timeline"] == 2 * expected
