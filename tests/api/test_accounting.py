"""Unit tests for query-cost accounting."""

import pytest

from repro.api.accounting import (
    CALL_KINDS,
    CONNECTIONS,
    QUERY_KINDS,
    RETRIES,
    SEARCH,
    TIMELINE,
    CostMeter,
)
from repro.errors import BudgetExhaustedError, ReproError


def test_charge_and_totals():
    meter = CostMeter()
    meter.charge(SEARCH, 2)
    meter.charge(TIMELINE, 3)
    meter.charge(CONNECTIONS)
    assert meter.total == 6
    assert meter.by_kind() == {SEARCH: 2, CONNECTIONS: 1, TIMELINE: 3}
    assert meter.remaining is None


def test_budget_enforced_before_recording():
    meter = CostMeter(budget=5)
    meter.charge(SEARCH, 5)
    assert meter.remaining == 0
    with pytest.raises(BudgetExhaustedError) as excinfo:
        meter.charge(TIMELINE, 1)
    assert excinfo.value.spent == 5
    assert excinfo.value.budget == 5
    # the failed charge was not recorded
    assert meter.total == 5


def test_partial_overrun_rejected_entirely():
    meter = CostMeter(budget=5)
    meter.charge(SEARCH, 4)
    with pytest.raises(BudgetExhaustedError):
        meter.charge(SEARCH, 2)
    assert meter.total == 4


def test_unknown_kind_and_negative_calls():
    meter = CostMeter()
    with pytest.raises(ReproError):
        meter.charge("bogus")
    with pytest.raises(ReproError):
        meter.charge(SEARCH, -1)
    with pytest.raises(ReproError):
        CostMeter(budget=-1)


def test_zero_charge_allowed():
    meter = CostMeter(budget=0)
    meter.charge(SEARCH, 0)
    assert meter.total == 0


def test_reset():
    meter = CostMeter()
    meter.charge(SEARCH, 3)
    meter.reset()
    assert meter.total == 0
    assert all(count == 0 for count in meter.by_kind().values())


def test_call_kinds_exported():
    assert set(QUERY_KINDS) == {SEARCH, CONNECTIONS, TIMELINE}
    assert set(CALL_KINDS) == {SEARCH, CONNECTIONS, TIMELINE, RETRIES}


def test_retries_exempt_from_budget():
    """Retry waste is recorded but never charged against the budget."""
    meter = CostMeter(budget=5)
    meter.charge(SEARCH, 5)
    meter.charge(RETRIES, 40)  # a budget-charged kind would raise here
    assert meter.total == 45
    assert meter.query_total == 5
    assert meter.remaining == 0
    assert meter.by_kind()[RETRIES] == 40
    with pytest.raises(BudgetExhaustedError) as excinfo:
        meter.charge(TIMELINE, 1)
    assert excinfo.value.spent == 5  # retry waste absent from the report


def test_retries_column_is_lazy():
    """A fault-free meter reports exactly the pre-fault-era dictionary."""
    meter = CostMeter()
    meter.charge(SEARCH, 1)
    assert RETRIES not in meter.by_kind()
    meter.charge(RETRIES, 2)
    assert meter.by_kind() == {SEARCH: 1, CONNECTIONS: 0, TIMELINE: 0, RETRIES: 2}
