"""Tests for the API result types (views, pages)."""

import pytest

from repro.api.interface import ProfileView, SearchHit, TimelineView
from repro.platform.posts import Post, make_keywords
from repro.platform.users import Gender


def make_view(posts):
    profile = ProfileView(1, "alice", 5, Gender.FEMALE, 30)
    return TimelineView(profile=profile, posts=tuple(posts), truncated=False)


def post(timestamp, *keywords, likes=0):
    return Post(0, 1, timestamp, keywords=make_keywords(*keywords), likes=likes)


class TestTimelineView:
    def test_mentions_filters_keyword_and_window(self):
        view = make_view([post(10.0, "privacy"), post(20.0, "boston"),
                          post(30.0, "privacy")])
        assert len(view.mentions("privacy")) == 2
        assert len(view.mentions("privacy", start=15.0)) == 1
        assert len(view.mentions("privacy", end=15.0)) == 1
        assert view.mentions("unknown") == []

    def test_mentions_case_insensitive(self):
        view = make_view([post(10.0, "Privacy")])
        assert len(view.mentions("PRIVACY")) == 1

    def test_first_mention_time(self):
        view = make_view([post(10.0, "boston"), post(20.0, "privacy"),
                          post(30.0, "privacy")])
        assert view.first_mention_time("privacy") == 20.0
        assert view.first_mention_time("boston") == 10.0
        assert view.first_mention_time("zzz") is None

    def test_empty_timeline(self):
        view = make_view([])
        assert view.first_mention_time("privacy") is None
        assert view.mentions("privacy") == []


def test_search_hit_is_frozen():
    hit = SearchHit(user_id=1, post_id=2, timestamp=3.0)
    with pytest.raises(AttributeError):
        hit.user_id = 9


def test_profile_view_is_frozen():
    view = ProfileView(1, "a", 0, None, None)
    with pytest.raises(AttributeError):
        view.followers = 10
