"""Tests for exact ground-truth evaluation."""

import pytest

from repro.core.query import (
    Aggregate,
    AggregateQuery,
    CONSTANT_ONE,
    FOLLOWERS,
    MATCHING_POST_COUNT,
    avg_of,
    count_users,
    gender_is,
    sum_of,
)
from repro.errors import EstimationError
from repro.groundtruth import exact_value, matching_users, relative_error, user_view_from_store
from repro.platform.users import Gender


def test_count_matches_store(tiny_platform):
    store = tiny_platform.store
    query = count_users("privacy")
    assert exact_value(store, query) == len(store.users_mentioning("privacy"))


def test_count_with_window(tiny_platform):
    store = tiny_platform.store
    horizon = tiny_platform.now
    query = count_users("privacy", window=(0.0, horizon / 2))
    full = exact_value(store, count_users("privacy"))
    half = exact_value(store, query)
    assert 0 < half <= full


def test_sum_of_post_counts_equals_total_mentions(tiny_platform):
    """§2's observation: COUNT of posts == SUM over users of per-user counts."""
    store = tiny_platform.store
    query = sum_of("privacy", MATCHING_POST_COUNT)
    assert exact_value(store, query) == len(list(store.keyword_posts("privacy")))


def test_avg_followers_manual(tiny_platform):
    store = tiny_platform.store
    users = store.users_mentioning("privacy")
    expected = sum(store.profile(u).followers for u in users) / len(users)
    assert exact_value(store, avg_of("privacy", FOLLOWERS)) == pytest.approx(expected)


def test_gender_predicate_counts_subset(tiny_platform):
    store = tiny_platform.store
    total = exact_value(store, count_users("privacy"))
    males = exact_value(store, count_users("privacy", predicate=gender_is(Gender.MALE)))
    females = exact_value(store, count_users("privacy", predicate=gender_is(Gender.FEMALE)))
    assert 0 < males < total
    assert males + females <= total  # some users are undisclosed


def test_avg_of_empty_population_raises(tiny_platform):
    with pytest.raises(EstimationError):
        exact_value(tiny_platform.store, avg_of("unused-keyword", FOLLOWERS))


def test_count_of_empty_population_is_zero(tiny_platform):
    assert exact_value(tiny_platform.store, count_users("unused-keyword")) == 0.0


def test_matching_users_views(tiny_platform):
    query = count_users("privacy")
    views = matching_users(tiny_platform.store, query)
    assert views
    assert all(view.matching_posts for view in views)


def test_user_view_sees_true_gender(tiny_platform):
    store = tiny_platform.store
    user = store.user_ids()[0]
    view = user_view_from_store(store, user, count_users("privacy"))
    assert view.gender == store.profile(user).gender


def test_relative_error():
    assert relative_error(110.0, 100.0) == pytest.approx(0.1)
    assert relative_error(90.0, 100.0) == pytest.approx(0.1)
    with pytest.raises(EstimationError):
        relative_error(1.0, 0.0)
