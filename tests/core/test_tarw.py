"""Tests for the MA-TARW estimator, including an exact-probability check
of the bottom-top-bottom walk on a hand-built level graph."""

import pytest

from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.core.graph_builder import LevelByLevelOracle, QueryContext
from repro.core.levels import LevelIndex
from repro.core.query import avg_of, count_users, FOLLOWERS, DISPLAY_NAME_LENGTH
from repro.core.tarw import MATARWEstimator, TARWConfig
from repro.errors import EstimationError
from repro.groundtruth import exact_value
from repro.platform.clock import DAY


def make_estimator(platform, query, budget=10_000, seed=1, config=None):
    client = CachingClient(SimulatedMicroblogClient(platform, budget=budget))
    context = QueryContext(client, query)
    oracle = LevelByLevelOracle(context, LevelIndex(DAY))
    return MATARWEstimator(context, oracle, config=config, seed=seed)


class TestConfig:
    def test_validation(self):
        with pytest.raises(EstimationError):
            TARWConfig(p_walks=0)
        with pytest.raises(EstimationError):
            TARWConfig(combine="bogus")
        with pytest.raises(EstimationError):
            TARWConfig(p_method="bogus")
        with pytest.raises(EstimationError):
            TARWConfig(pool_min_samples=0)
        with pytest.raises(EstimationError):
            TARWConfig(pool_decay=0.0)
        with pytest.raises(EstimationError):
            TARWConfig(weight_cap=-1.0)
        with pytest.raises(EstimationError):
            TARWConfig(discovery_budget_fraction=0.0)
        with pytest.raises(EstimationError):
            TARWConfig(final_recount_instances=-1)


class TestWalkMechanics:
    def test_up_phase_strictly_ascends_levels(self, small_platform):
        query = count_users("privacy")
        estimator = make_estimator(small_platform, query, seed=2)
        estimator._seeds = estimator.context.seeds()
        estimator._seed_set = frozenset(estimator._seeds)
        oracle = estimator.oracle
        path = estimator._walk_up(estimator._seeds[0])
        levels = [oracle.level_of(node) for node in path]
        assert all(b < a for a, b in zip(levels, levels[1:]))
        assert not oracle.up_neighbors(path[-1])  # ends at a local root

    def test_down_phase_strictly_descends_levels(self, small_platform):
        query = count_users("privacy")
        estimator = make_estimator(small_platform, query, seed=3)
        estimator._seeds = estimator.context.seeds()
        estimator._seed_set = frozenset(estimator._seeds)
        oracle = estimator.oracle
        root = estimator._walk_up(estimator._seeds[0])[-1]
        path = estimator._walk_down(root)
        levels = [oracle.level_of(node) for node in path]
        assert all(b > a for a, b in zip(levels, levels[1:]))
        assert not oracle.down_neighbors(path[-1])  # ends at a local sink


class TestEstimation:
    def test_count_estimate_converges(self, small_platform):
        query = count_users("privacy")
        truth = exact_value(small_platform.store, query)
        result = make_estimator(small_platform, query, budget=12_000, seed=4).estimate()
        assert result.value is not None
        assert result.relative_error(truth) < 0.4

    def test_avg_low_variance_measure_converges_fast(self, small_platform):
        query = avg_of("privacy", DISPLAY_NAME_LENGTH)
        truth = exact_value(small_platform.store, query)
        result = make_estimator(small_platform, query, budget=8_000, seed=5).estimate()
        assert result.relative_error(truth) < 0.15

    def test_avg_followers_reasonable(self, small_platform):
        query = avg_of("privacy", FOLLOWERS)
        truth = exact_value(small_platform.store, query)
        result = make_estimator(small_platform, query, budget=12_000, seed=6).estimate()
        assert result.relative_error(truth) < 0.5

    def test_budget_respected(self, small_platform):
        query = count_users("privacy")
        result = make_estimator(small_platform, query, budget=800, seed=7).estimate()
        assert result.cost_total <= 800

    def test_diagnostics_present(self, small_platform):
        query = count_users("privacy")
        result = make_estimator(small_platform, query, budget=5_000, seed=8).estimate()
        for key in ("instances", "mean_path_length", "seed_set_size",
                    "zero_probability_drops", "budget_aborted_instances"):
            assert key in result.diagnostics
        assert result.algorithm == "ma-tarw"

    def test_discovery_grows_seed_set(self, small_platform):
        query = count_users("privacy")
        result = make_estimator(small_platform, query, budget=8_000, seed=9).estimate()
        search_seeds = len(
            set(
                small_platform.store.users_mentioning(
                    "privacy", small_platform.now - 7 * DAY, small_platform.now
                )
            )
        )
        assert result.diagnostics["seed_set_size"] >= search_seeds

    def test_estimate_p_method_also_works(self, small_platform):
        query = count_users("privacy")
        truth = exact_value(small_platform.store, query)
        config = TARWConfig(p_method="estimate")
        result = make_estimator(small_platform, query, budget=12_000, seed=10,
                                config=config).estimate()
        assert result.value is not None
        # the sampling estimator is noisier; only sanity-check magnitude
        assert result.value > 0

    def test_paper_combine_mode_runs(self, small_platform):
        query = count_users("privacy")
        config = TARWConfig(combine="paper", final_recount_instances=500)
        result = make_estimator(small_platform, query, budget=6_000, seed=11,
                                config=config).estimate()
        assert result.value is not None


class TestEstimatePUnbiasedness:
    """ESTIMATE-p (Algorithm 2) must average to the exact DP probability."""

    def test_mean_matches_dp_on_platform_graph(self, small_platform):
        query = count_users("privacy")
        config = TARWConfig(p_method="estimate", pool_min_samples=1, p_walks=1,
                            discovery_instances=100, final_recount_instances=0)
        estimator = make_estimator(small_platform, query, budget=30_000, seed=12,
                                   config=config)
        estimator._seeds = estimator.context.seeds()
        estimator._discover_bottom_nodes()
        estimator._seed_set = frozenset(estimator._seeds)
        # pick a node one level above some seed
        seed_node = next(
            s for s in estimator._seeds if estimator.oracle.up_neighbors(s)
        )
        node = estimator.oracle.up_neighbors(seed_node)[0]
        # exact DP value over the classified graph after full exploration
        # of the node's downward closure via repeated sampling
        samples = [estimator._estimate_p_up(node) for _ in range(4000)]
        estimator._dp_dirty = True
        estimator.config = TARWConfig(p_method="dp")
        dp_value = estimator._pooled_p(node, estimator._p_up_pool)
        mean = sum(samples) / len(samples)
        assert dp_value > 0
        # sampling mean should approach the DP value computed over the
        # (sampling-classified) subgraph
        assert mean == pytest.approx(dp_value, rel=0.5)
