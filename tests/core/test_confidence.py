"""Tests for replicate-based confidence intervals."""

import pytest

from repro.core.analyzer import MicroblogAnalyzer
from repro.core.confidence import ConfidenceResult, combine_replicates, t_quantile
from repro.core.query import avg_of, count_users, DISPLAY_NAME_LENGTH
from repro.core.results import EstimateResult
from repro.errors import EstimationError
from repro.groundtruth import exact_value
from repro.platform.clock import DAY


def fake_run(value, cost=100):
    return EstimateResult(query=count_users("x"), algorithm="fake",
                          value=value, cost_total=cost)


class TestTQuantile:
    def test_table_values(self):
        assert t_quantile(0.95, 1) == pytest.approx(12.706)
        assert t_quantile(0.95, 4) == pytest.approx(2.776)
        assert t_quantile(0.99, 9) == pytest.approx(3.250)

    def test_rounds_dof_down_conservatively(self):
        # dof 12 not in table: use dof 10's (larger) value
        assert t_quantile(0.95, 12) == t_quantile(0.95, 10)

    def test_large_dof_uses_normal(self):
        assert t_quantile(0.95, 200) == pytest.approx(1.960)

    def test_validation(self):
        with pytest.raises(EstimationError):
            t_quantile(0.8, 5)
        with pytest.raises(EstimationError):
            t_quantile(0.95, 0)


class TestCombineReplicates:
    def test_interval_centred_on_mean(self):
        runs = [fake_run(v) for v in (10.0, 12.0, 11.0, 13.0)]
        ci = combine_replicates(runs)
        assert ci.mean == pytest.approx(11.5)
        assert ci.low < 11.5 < ci.high
        assert ci.replicates == 4
        assert ci.cost_total == 400

    def test_contains(self):
        ci = ConfidenceResult(mean=10.0, half_width=2.0, confidence=0.95,
                              replicates=3, cost_total=0)
        assert ci.contains(9.0)
        assert not ci.contains(12.5)

    def test_none_values_skipped(self):
        runs = [fake_run(10.0), fake_run(None), fake_run(12.0)]
        ci = combine_replicates(runs)
        assert ci.replicates == 2

    def test_too_few_runs(self):
        with pytest.raises(EstimationError):
            combine_replicates([fake_run(10.0)])
        with pytest.raises(EstimationError):
            combine_replicates([fake_run(10.0), fake_run(None)])

    def test_wider_confidence_wider_interval(self):
        runs = [fake_run(v) for v in (10.0, 12.0, 11.0)]
        assert (combine_replicates(runs, 0.99).half_width
                > combine_replicates(runs, 0.90).half_width)


class TestAnalyzerIntegration:
    def test_estimate_with_confidence(self, small_platform):
        query = avg_of("privacy", DISPLAY_NAME_LENGTH)
        truth = exact_value(small_platform.store, query)
        analyzer = MicroblogAnalyzer(small_platform, algorithm="ma-srw",
                                     interval=DAY, seed=8)
        ci = analyzer.estimate_with_confidence(query, budget=12_000, replicates=3)
        assert ci.replicates >= 2
        assert ci.cost_total <= 12_000
        # the interval should be in the right neighbourhood
        assert abs(ci.mean - truth) / truth < 0.5

    def test_replicates_are_independent(self, small_platform):
        query = count_users("privacy")
        analyzer = MicroblogAnalyzer(small_platform, algorithm="ma-srw",
                                     interval=DAY, seed=9)
        ci = analyzer.estimate_with_confidence(query, budget=9_000, replicates=3)
        values = [run.value for run in ci.runs if run.value is not None]
        assert len(set(values)) > 1, "replicates must differ (fresh walk seeds)"

    def test_validation(self, small_platform):
        analyzer = MicroblogAnalyzer(small_platform, seed=1)
        with pytest.raises(EstimationError):
            analyzer.estimate_with_confidence(count_users("privacy"), budget=100,
                                              replicates=1)
        with pytest.raises(EstimationError):
            analyzer.estimate_with_confidence(count_users("privacy"), budget=1,
                                              replicates=5)
