"""Tests for the M&R (mark-and-recapture) baseline."""

import pytest

from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.core.graph_builder import LevelByLevelOracle, QueryContext
from repro.core.levels import LevelIndex
from repro.core.mr import MarkRecaptureEstimator, MRConfig
from repro.core.query import avg_of, count_users, FOLLOWERS
from repro.errors import EstimationError
from repro.groundtruth import exact_value
from repro.platform.clock import DAY


def make_estimator(platform, budget=8000, seed=1, config=None):
    client = CachingClient(SimulatedMicroblogClient(platform, budget=budget))
    context = QueryContext(client, count_users("privacy"))
    oracle = LevelByLevelOracle(context, LevelIndex(DAY))
    return MarkRecaptureEstimator(context, oracle, config=config, seed=seed)


def test_rejects_non_count_queries(small_platform):
    client = CachingClient(SimulatedMicroblogClient(small_platform))
    context = QueryContext(client, avg_of("privacy", FOLLOWERS))
    oracle = LevelByLevelOracle(context, LevelIndex(DAY))
    with pytest.raises(EstimationError):
        MarkRecaptureEstimator(context, oracle)


def test_config_validation():
    with pytest.raises(EstimationError):
        MRConfig(burn_in=-1)
    with pytest.raises(EstimationError):
        MRConfig(trace_every=0)
    with pytest.raises(EstimationError):
        MRConfig(stall_steps=0)


def test_count_estimate_reasonable(small_platform):
    query = count_users("privacy")
    truth = exact_value(small_platform.store, query)
    result = make_estimator(small_platform, budget=8000, seed=2).estimate()
    assert result.value is not None
    assert result.relative_error(truth) < 0.6
    assert result.algorithm == "m&r[level-by-level]"


def test_budget_respected(small_platform):
    result = make_estimator(small_platform, budget=400, seed=3).estimate()
    assert result.cost_total <= 400


def test_no_estimate_before_first_collision(small_platform):
    config = MRConfig(burn_in=0, max_steps=3)
    result = make_estimator(small_platform, budget=8000, seed=4, config=config).estimate()
    # 3 samples will essentially never collide on a few-hundred-node graph
    assert result.value is None or result.num_samples <= 3
