"""Tests for level assignment and the edge taxonomy."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.levels import (
    EdgeKind,
    EdgeTaxonomyStats,
    LevelIndex,
    STANDARD_INTERVALS,
    classify_edge,
    edge_taxonomy,
    level_by_level_subgraph,
    levels_present,
)
from repro.errors import QueryError
from repro.graph.social_graph import SocialGraph
from repro.platform.clock import DAY, HOUR


class TestLevelIndex:
    def test_level_of(self):
        index = LevelIndex(interval=DAY)
        assert index.level_of(0.0) == 0
        assert index.level_of(DAY - 1) == 0
        assert index.level_of(DAY) == 1
        assert index.level_of(-1.0) == -1  # earlier than origin still maps

    def test_origin_shift(self):
        index = LevelIndex(interval=DAY, origin=DAY)
        assert index.level_of(DAY) == 0

    def test_positive_interval_required(self):
        with pytest.raises(QueryError):
            LevelIndex(interval=0.0)

    def test_classify(self):
        index = LevelIndex(interval=DAY)
        assert index.classify(3, 3) is EdgeKind.INTRA
        assert index.classify(3, 4) is EdgeKind.ADJACENT
        assert index.classify(4, 3) is EdgeKind.ADJACENT
        assert index.classify(1, 5) is EdgeKind.CROSS


def test_classify_edge_on_times():
    index = LevelIndex(interval=DAY)
    assert classify_edge(index, 1 * HOUR, 2 * HOUR) is EdgeKind.INTRA
    assert classify_edge(index, 1 * HOUR, DAY + HOUR) is EdgeKind.ADJACENT
    assert classify_edge(index, 1 * HOUR, 5 * DAY) is EdgeKind.CROSS


@given(st.floats(0, 1e8), st.floats(0, 1e8), st.sampled_from([HOUR, DAY, 7 * DAY]))
def test_classification_symmetric(t_u, t_v, interval):
    index = LevelIndex(interval=interval)
    assert classify_edge(index, t_u, t_v) is classify_edge(index, t_v, t_u)


@given(st.floats(0, 1e8), st.floats(0, 1e8))
def test_larger_interval_never_increases_separation(t_u, t_v):
    """Growing T can merge levels but never split them."""
    ranks = {EdgeKind.INTRA: 0, EdgeKind.ADJACENT: 1, EdgeKind.CROSS: 2}
    small = LevelIndex(interval=HOUR)
    large = LevelIndex(interval=30 * DAY)
    small_gap = abs(small.level_of(t_u) - small.level_of(t_v))
    large_gap = abs(large.level_of(t_u) - large.level_of(t_v))
    assert large_gap <= small_gap


def taxonomy_fixture():
    graph = SocialGraph(edges=[(1, 2), (1, 3), (2, 4), (3, 4)])
    # levels at T=1day: u1=0, u2=0, u3=1, u4=3
    mentions = {1: 1.0, 2: HOUR, 3: DAY + 1, 4: 3 * DAY + 1}
    return graph, mentions, LevelIndex(interval=DAY)


def test_edge_taxonomy_counts():
    graph, mentions, index = taxonomy_fixture()
    stats = edge_taxonomy(graph, mentions, index)
    assert stats.total_edges == 4
    assert stats.intra == 1        # 1-2
    assert stats.adjacent == 1     # 1-3
    assert stats.cross == 2        # 2-4, 3-4
    assert stats.intra_fraction == pytest.approx(0.25)
    assert stats.cross_fraction == pytest.approx(0.5)


def test_empty_taxonomy_fractions():
    stats = EdgeTaxonomyStats(0, 0, 0, 0)
    assert stats.intra_fraction == 0.0
    assert stats.adjacent_fraction == 0.0
    assert stats.cross_fraction == 0.0


class TestLevelByLevelSubgraph:
    def test_removes_all_intra_by_default(self):
        graph, mentions, index = taxonomy_fixture()
        level_graph = level_by_level_subgraph(graph, mentions, index)
        assert not level_graph.has_edge(1, 2)
        assert level_graph.has_edge(1, 3)
        assert level_graph.has_edge(2, 4)
        assert level_graph.num_nodes == graph.num_nodes

    def test_keep_fraction_one_keeps_everything(self):
        graph, mentions, index = taxonomy_fixture()
        kept = level_by_level_subgraph(graph, mentions, index, keep_intra_fraction=1.0)
        assert sorted(kept.edges()) == sorted(graph.edges())

    def test_keep_fraction_validated(self):
        graph, mentions, index = taxonomy_fixture()
        with pytest.raises(QueryError):
            level_by_level_subgraph(graph, mentions, index, keep_intra_fraction=1.5)

    def test_partial_keep_is_monotone_in_expectation(self):
        graph, mentions, index = taxonomy_fixture()
        low = level_by_level_subgraph(graph, mentions, index, 0.0, seed=1)
        high = level_by_level_subgraph(graph, mentions, index, 1.0, seed=1)
        assert low.num_edges <= high.num_edges


def test_levels_present():
    _, mentions, index = taxonomy_fixture()
    assert levels_present(mentions, index) == [0, 1, 3]


def test_standard_intervals_cover_figure5():
    labels = [label for label, _ in STANDARD_INTERVALS]
    assert labels == ["2H", "4H", "12H", "1D", "2D", "1W", "1M"]
    values = [value for _, value in STANDARD_INTERVALS]
    assert values == sorted(values)
