"""Tests for the MICROBLOG-ANALYZER facade."""

import pytest

from repro.core.analyzer import MicroblogAnalyzer
from repro.core.query import avg_of, count_users, FOLLOWERS
from repro.errors import EstimationError
from repro.groundtruth import exact_value
from repro.platform.clock import DAY


def test_unknown_algorithm_rejected(small_platform):
    with pytest.raises(EstimationError):
        MicroblogAnalyzer(small_platform, algorithm="bogus")


def test_unknown_graph_design_rejected(small_platform):
    with pytest.raises(EstimationError):
        MicroblogAnalyzer(small_platform, graph_design="bogus")


def test_tarw_requires_level_graph(small_platform):
    with pytest.raises(EstimationError):
        MicroblogAnalyzer(small_platform, algorithm="ma-tarw", graph_design="social")


def test_invalid_budget_and_interval(small_platform):
    analyzer = MicroblogAnalyzer(small_platform)
    with pytest.raises(EstimationError):
        analyzer.estimate(count_users("privacy"), budget=0)
    bad = MicroblogAnalyzer(small_platform, interval=-5.0)
    with pytest.raises(EstimationError):
        bad.estimate(count_users("privacy"), budget=100)


@pytest.mark.parametrize("algorithm", ["ma-srw", "ma-tarw", "m&r"])
def test_each_algorithm_runs_end_to_end(small_platform, algorithm):
    query = count_users("privacy")
    truth = exact_value(small_platform.store, query)
    analyzer = MicroblogAnalyzer(small_platform, algorithm=algorithm, interval=DAY, seed=1)
    result = analyzer.estimate(query, budget=9_000)
    assert result.cost_total <= 9_000
    assert result.value is not None
    assert result.relative_error(truth) < 0.7
    assert "simulated_wait_seconds" in result.diagnostics


def test_auto_interval_selection(small_platform):
    query = avg_of("privacy", FOLLOWERS)
    analyzer = MicroblogAnalyzer(small_platform, algorithm="ma-srw",
                                 interval="auto", seed=2)
    result = analyzer.estimate(query, budget=9_000)
    assert result.value is not None


def test_srw_on_each_graph_design(small_platform):
    query = avg_of("privacy", FOLLOWERS)
    for design in ("social", "term-induced", "level-by-level"):
        analyzer = MicroblogAnalyzer(small_platform, algorithm="ma-srw",
                                     graph_design=design, interval=DAY, seed=3)
        result = analyzer.estimate(query, budget=9_000)
        assert design in result.algorithm


def test_keep_intra_fraction_passthrough(small_platform):
    query = count_users("privacy")
    analyzer = MicroblogAnalyzer(
        small_platform, algorithm="ma-srw", interval=DAY,
        keep_intra_fraction=0.5, seed=4,
    )
    result = analyzer.estimate(query, budget=5_000)
    assert result.value is not None
