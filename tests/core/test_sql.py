"""Tests for the SQL-ish query parser."""

import pytest

from repro.core.query import Aggregate
from repro.core.sql import parse_query
from repro.errors import QueryError
from repro.groundtruth import exact_value
from repro.platform.clock import DAY
from repro.platform.users import Gender
from repro.core.query import UserView
from repro.platform.posts import Post, make_keywords


def view(gender=Gender.MALE, followers=10):
    return UserView(1, "a", followers, gender, 30,
                    (Post(0, 1, 50 * DAY, keywords=make_keywords("privacy")),))


class TestParsing:
    def test_count_star(self):
        query = parse_query("SELECT COUNT(*) FROM users WHERE timeline CONTAINS 'privacy'")
        assert query.aggregate is Aggregate.COUNT
        assert query.keyword == "privacy"
        assert query.window is None
        assert query.predicate is None

    def test_case_insensitive_keywords(self):
        query = parse_query("select Avg(Followers) from USERS where "
                            "TIMELINE contains 'new york'")
        assert query.aggregate is Aggregate.AVG
        assert query.measure.name == "followers"
        assert query.keyword == "new york"

    def test_time_between(self):
        query = parse_query(
            "SELECT SUM(matching_post_count) FROM users WHERE "
            "timeline CONTAINS 'boston' AND time BETWEEN 100 AND 200"
        )
        assert query.window == (100 * DAY, 200 * DAY)

    def test_gender_predicate(self):
        query = parse_query(
            "SELECT COUNT(*) FROM users WHERE timeline CONTAINS 'privacy' "
            "AND gender = 'male'"
        )
        assert query.matches(view(gender=Gender.MALE))
        assert not query.matches(view(gender=Gender.FEMALE))

    def test_followers_predicate(self):
        query = parse_query(
            "SELECT COUNT(*) FROM users WHERE timeline CONTAINS 'privacy' "
            "AND followers >= 20"
        )
        assert not query.matches(view(followers=10))
        assert query.matches(view(followers=25))

    def test_combined_predicates(self):
        query = parse_query(
            "SELECT COUNT(*) FROM users WHERE timeline CONTAINS 'privacy' "
            "AND gender = 'male' AND followers >= 5"
        )
        assert query.matches(view(gender=Gender.MALE, followers=6))
        assert not query.matches(view(gender=Gender.MALE, followers=2))
        assert not query.matches(view(gender=Gender.FEMALE, followers=6))


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "SELECT MAX(followers) FROM users WHERE timeline CONTAINS 'x'",
        "SELECT COUNT(*) FROM posts WHERE timeline CONTAINS 'x'",
        "SELECT COUNT(*) FROM users",
        "SELECT COUNT(*) FROM users WHERE gender = 'male'",  # no keyword
        "SELECT COUNT(*) FROM users WHERE timeline CONTAINS 'x' AND age > 5",
        "SELECT AVG(*) FROM users WHERE timeline CONTAINS 'x'",
        "SELECT AVG(bogus_measure) FROM users WHERE timeline CONTAINS 'x'",
        "SELECT COUNT(*) FROM users WHERE timeline CONTAINS 'x' AND gender = 'robot'",
        "SELECT COUNT(*) FROM users WHERE timeline CONTAINS 'a' "
        "AND timeline CONTAINS 'b'",
    ])
    def test_rejected(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad)


class TestAgainstGroundTruth:
    def test_parsed_query_equals_programmatic(self, tiny_platform):
        from repro.core.query import count_users

        parsed = parse_query(
            "SELECT COUNT(*) FROM users WHERE timeline CONTAINS 'privacy'"
        )
        assert exact_value(tiny_platform.store, parsed) == exact_value(
            tiny_platform.store, count_users("privacy")
        )

    def test_windowed_count_subset(self, tiny_platform):
        full = parse_query("SELECT COUNT(*) FROM users WHERE timeline CONTAINS 'privacy'")
        windowed = parse_query(
            "SELECT COUNT(*) FROM users WHERE timeline CONTAINS 'privacy' "
            "AND time BETWEEN 0 AND 150"
        )
        assert 0 < exact_value(tiny_platform.store, windowed) <= exact_value(
            tiny_platform.store, full
        )
