"""Tests for the BFS crawl baseline."""

import pytest

from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.core.crawler import CrawlConfig, CrawlEstimator
from repro.core.graph_builder import LevelByLevelOracle, QueryContext, TermInducedOracle
from repro.core.levels import LevelIndex
from repro.core.query import avg_of, count_users, FOLLOWERS
from repro.errors import EstimationError
from repro.groundtruth import exact_value
from repro.platform.clock import DAY


def make_estimator(platform, query, budget=8000, seed=1, config=None):
    client = CachingClient(SimulatedMicroblogClient(platform, budget=budget))
    context = QueryContext(client, query)
    oracle = TermInducedOracle(context)
    return CrawlEstimator(context, oracle, config=config, seed=seed)


def test_config_validation():
    with pytest.raises(EstimationError):
        CrawlConfig(trace_every=0)
    with pytest.raises(EstimationError):
        CrawlConfig(max_nodes=0)


def test_count_is_lower_bound_that_grows(small_platform):
    query = count_users("privacy")
    truth = exact_value(small_platform.store, query)
    small = make_estimator(small_platform, query, budget=1_000, seed=2).estimate()
    large = make_estimator(small_platform, query, budget=12_000, seed=2).estimate()
    assert small.value <= truth + 1e-9
    assert large.value <= truth + 1e-9
    assert large.value >= small.value


def test_full_crawl_recovers_reachable_count(small_platform):
    query = count_users("privacy")
    truth = exact_value(small_platform.store, query)
    result = make_estimator(small_platform, query, budget=60_000, seed=3).estimate()
    # a completed crawl finds every matching user reachable from the seeds
    assert result.diagnostics["frontier_left"] == 0.0
    assert result.value >= truth * 0.7  # recall-of-seeded-components bound


def test_avg_reasonable_after_decent_crawl(small_platform):
    query = avg_of("privacy", FOLLOWERS)
    truth = exact_value(small_platform.store, query)
    result = make_estimator(small_platform, query, budget=20_000, seed=4).estimate()
    assert result.value is not None
    assert abs(result.value - truth) / truth < 0.5


def test_max_nodes_cap(small_platform):
    query = count_users("privacy")
    config = CrawlConfig(max_nodes=10)
    result = make_estimator(small_platform, query, budget=8_000, seed=5,
                            config=config).estimate()
    assert result.diagnostics["visited"] <= 10


def test_via_analyzer(small_platform):
    from repro.core.analyzer import MicroblogAnalyzer

    query = count_users("privacy")
    analyzer = MicroblogAnalyzer(small_platform, algorithm="crawl",
                                 graph_design="term-induced", interval=DAY, seed=6)
    result = analyzer.estimate(query, budget=4_000)
    assert result.algorithm == "crawl[term-induced]"
    assert result.cost_total <= 4_000


def test_construction_warns_deprecated(tiny_platform):
    query = count_users("privacy")
    with pytest.warns(DeprecationWarning, match="frontier"):
        make_estimator(tiny_platform, query, budget=1_000, seed=7)
