"""Tests for QueryContext and the three neighbor oracles."""

import pytest

from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.core.graph_builder import (
    LevelByLevelOracle,
    QueryContext,
    SocialGraphOracle,
    TermInducedOracle,
)
from repro.core.levels import LevelIndex
from repro.core.query import avg_of, count_users, FOLLOWERS
from repro.errors import EstimationError
from repro.platform.clock import DAY


@pytest.fixture()
def context(tiny_platform):
    client = CachingClient(SimulatedMicroblogClient(tiny_platform))
    return QueryContext(client, count_users("privacy"))


class TestQueryContext:
    def test_first_mention_matches_store(self, tiny_platform, context):
        store = tiny_platform.store
        matcher = store.users_mentioning("privacy")[0]
        assert context.first_mention(matcher) == store.first_mention_time("privacy", matcher)
        non_matcher = next(
            u for u in store.user_ids() if store.first_mention_time("privacy", u) is None
        )
        assert context.first_mention(non_matcher) is None
        assert not context.matches_keyword(non_matcher)

    def test_user_view_and_f_value(self, tiny_platform, context):
        matcher = tiny_platform.store.users_mentioning("privacy")[0]
        view = context.user_view(matcher)
        assert view.matching_posts
        assert context.condition_matches(matcher)
        assert context.f_value(matcher) == 1.0  # COUNT measure

    def test_f_value_zero_for_nonmatching(self, tiny_platform, context):
        store = tiny_platform.store
        non_matcher = next(
            u for u in store.user_ids() if store.first_mention_time("privacy", u) is None
        )
        assert context.f_value(non_matcher) == 0.0

    def test_seeds_are_recent_posters(self, tiny_platform, context):
        seeds = context.seeds()
        now = tiny_platform.now
        recent = set(tiny_platform.store.users_mentioning("privacy", now - 7 * DAY, now))
        assert set(seeds) == recent

    def test_seeds_cap(self, tiny_platform, context):
        seeds = context.seeds(max_seeds=2)
        assert len(seeds) <= 2

    def test_no_seeds_raises(self, tiny_platform):
        client = CachingClient(SimulatedMicroblogClient(tiny_platform))
        context = QueryContext(client, count_users("zebra-unicorn"))
        with pytest.raises(EstimationError):
            context.seeds()


class TestOracles:
    def test_social_oracle_is_full_neighborhood(self, tiny_platform, context):
        oracle = SocialGraphOracle(context)
        user = tiny_platform.store.user_ids()[10]
        assert set(oracle.neighbors(user)) == set(
            tiny_platform.graph.neighbors_unsafe(user)
        )
        assert oracle.degree(user) == tiny_platform.graph.degree(user)

    def test_term_oracle_filters_to_matchers(self, tiny_platform, context):
        oracle = TermInducedOracle(context)
        store = tiny_platform.store
        matcher = store.users_mentioning("privacy")[0]
        for neighbor in oracle.neighbors(matcher):
            assert store.first_mention_time("privacy", neighbor) is not None
        assert oracle.degree(matcher) <= tiny_platform.graph.degree(matcher)

    def test_level_oracle_drops_same_level_neighbors(self, tiny_platform, context):
        index = LevelIndex(interval=DAY)
        oracle = LevelByLevelOracle(context, index)
        store = tiny_platform.store
        matcher = store.users_mentioning("privacy")[0]
        own_level = oracle.level_of(matcher)
        for neighbor in oracle.neighbors(matcher):
            assert oracle.level_of(neighbor) != own_level

    def test_level_oracle_up_down_partition(self, tiny_platform, context):
        index = LevelIndex(interval=DAY)
        oracle = LevelByLevelOracle(context, index)
        matcher = tiny_platform.store.users_mentioning("privacy")[0]
        ups = set(oracle.up_neighbors(matcher))
        downs = set(oracle.down_neighbors(matcher))
        own_level = oracle.level_of(matcher)
        assert not (ups & downs)
        assert ups | downs == set(oracle.neighbors(matcher))
        assert all(oracle.level_of(v) < own_level for v in ups)
        assert all(oracle.level_of(v) > own_level for v in downs)

    def test_level_oracle_nonmatcher_has_no_neighbors(self, tiny_platform, context):
        index = LevelIndex(interval=DAY)
        oracle = LevelByLevelOracle(context, index)
        store = tiny_platform.store
        non_matcher = next(
            u for u in store.user_ids() if store.first_mention_time("privacy", u) is None
        )
        assert oracle.neighbors(non_matcher) == []
        assert oracle.level_of(non_matcher) is None

    def test_keep_intra_fraction_adds_back_edges(self, tiny_platform, context):
        index = LevelIndex(interval=DAY)
        none_kept = LevelByLevelOracle(context, index, keep_intra_fraction=0.0)
        all_kept = LevelByLevelOracle(context, index, keep_intra_fraction=1.0)
        term = TermInducedOracle(context)
        # over the first few matchers, keeping all intra edges recovers the
        # full term-induced neighborhood
        for user in tiny_platform.store.users_mentioning("privacy")[:5]:
            assert set(all_kept.neighbors(user)) == set(term.neighbors(user))
            assert set(none_kept.neighbors(user)) <= set(all_kept.neighbors(user))

    def test_keep_intra_decision_symmetric(self, tiny_platform, context):
        index = LevelIndex(interval=DAY)
        oracle = LevelByLevelOracle(context, index, keep_intra_fraction=0.5, edge_seed=3)
        store = tiny_platform.store
        matchers = store.users_mentioning("privacy")
        for u in matchers[:10]:
            for v in oracle.neighbors(u):
                assert u in oracle.neighbors(v), "edge kept from one side only"

    def test_invalid_keep_fraction(self, tiny_platform, context):
        index = LevelIndex(interval=DAY)
        with pytest.raises(EstimationError):
            LevelByLevelOracle(context, index, keep_intra_fraction=-0.1)

    def test_caching_avoids_double_cost(self, tiny_platform):
        client = CachingClient(SimulatedMicroblogClient(tiny_platform))
        context = QueryContext(client, count_users("privacy"))
        oracle = TermInducedOracle(context)
        matcher = tiny_platform.store.users_mentioning("privacy")[0]
        oracle.neighbors(matcher)
        cost = client.total_cost
        oracle.neighbors(matcher)
        assert client.total_cost == cost
