"""Tests for the aggregate query model."""

import pytest

from repro.core.query import (
    Aggregate,
    AggregateQuery,
    CONSTANT_ONE,
    DISPLAY_NAME_LENGTH,
    FOLLOWERS,
    MATCHING_POST_COUNT,
    MEAN_LIKES,
    TOTAL_LIKES,
    UserView,
    avg_of,
    count_users,
    gender_is,
    min_followers,
    sum_of,
)
from repro.errors import QueryError
from repro.platform.posts import Post, make_keywords
from repro.platform.users import Gender


def view(posts=(), gender=Gender.MALE, followers=10, name="alice"):
    return UserView(
        user_id=1,
        display_name=name,
        followers=followers,
        gender=gender,
        age=30,
        matching_posts=tuple(posts),
    )


def post(timestamp, keyword="privacy", likes=0):
    return Post(0, 1, timestamp, keywords=make_keywords(keyword), likes=likes)


class TestValidation:
    def test_keyword_required(self):
        with pytest.raises(QueryError):
            AggregateQuery("", Aggregate.COUNT)
        with pytest.raises(QueryError):
            AggregateQuery("   ", Aggregate.COUNT)

    def test_window_must_be_nonempty(self):
        with pytest.raises(QueryError):
            AggregateQuery("privacy", Aggregate.COUNT, window=(10.0, 10.0))


class TestFiltering:
    def test_filter_by_keyword(self):
        query = count_users("privacy")
        posts = [post(1.0), post(2.0, keyword="boston")]
        assert len(query.filter_matching_posts(posts)) == 1

    def test_filter_by_window(self):
        query = count_users("privacy", window=(10.0, 20.0))
        posts = [post(5.0), post(15.0), post(20.0)]
        matched = query.filter_matching_posts(posts)
        assert [p.timestamp for p in matched] == [15.0]

    def test_no_window_means_all_time(self):
        query = count_users("privacy")
        assert query.window_start == float("-inf")
        assert query.window_end == float("inf")


class TestMatching:
    def test_requires_matching_post(self):
        query = count_users("privacy")
        assert not query.matches(view(posts=[]))
        assert query.matches(view(posts=[post(1.0)]))

    def test_profile_predicate(self):
        query = count_users("privacy", predicate=gender_is(Gender.FEMALE))
        assert not query.matches(view(posts=[post(1.0)], gender=Gender.MALE))
        assert query.matches(view(posts=[post(1.0)], gender=Gender.FEMALE))

    def test_hidden_gender_never_matches(self):
        query = count_users("privacy", predicate=gender_is(Gender.MALE))
        assert not query.matches(view(posts=[post(1.0)], gender=None))

    def test_min_followers(self):
        query = count_users("privacy", predicate=min_followers(100))
        assert not query.matches(view(posts=[post(1.0)], followers=99))
        assert query.matches(view(posts=[post(1.0)], followers=100))


class TestMeasures:
    def test_builtin_measures(self):
        v = view(posts=[post(1.0, likes=4), post(2.0, likes=6)], followers=55, name="bob")
        assert CONSTANT_ONE(v) == 1.0
        assert FOLLOWERS(v) == 55.0
        assert DISPLAY_NAME_LENGTH(v) == 3.0
        assert MATCHING_POST_COUNT(v) == 2.0
        assert MEAN_LIKES(v) == 5.0
        assert TOTAL_LIKES(v) == 10.0

    def test_mean_likes_empty(self):
        assert MEAN_LIKES(view(posts=[])) == 0.0


class TestConstructorsAndDescribe:
    def test_constructors(self):
        assert count_users("x").aggregate is Aggregate.COUNT
        assert avg_of("x", FOLLOWERS).aggregate is Aggregate.AVG
        assert sum_of("x", MATCHING_POST_COUNT).aggregate is Aggregate.SUM

    def test_describe_mentions_parts(self):
        query = avg_of("privacy", FOLLOWERS, window=(0.0, 100.0),
                       predicate=gender_is(Gender.MALE))
        text = query.describe()
        assert "AVG(followers)" in text
        assert "'privacy'" in text
        assert "predicate" in text
