"""Tests for the MA-SRW estimator."""

import pytest

from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.core.graph_builder import LevelByLevelOracle, QueryContext, TermInducedOracle
from repro.core.levels import LevelIndex
from repro.core.query import avg_of, count_users, FOLLOWERS
from repro.core.srw import MASRWEstimator, SRWConfig
from repro.errors import EstimationError
from repro.groundtruth import exact_value
from repro.platform.clock import DAY


def make_estimator(platform, query, budget=8000, seed=1, oracle_cls=LevelByLevelOracle,
                   config=None):
    client = CachingClient(SimulatedMicroblogClient(platform, budget=budget))
    context = QueryContext(client, query)
    if oracle_cls is LevelByLevelOracle:
        oracle = LevelByLevelOracle(context, LevelIndex(DAY))
    else:
        oracle = oracle_cls(context)
    return MASRWEstimator(context, oracle, config=config, seed=seed)


class TestConfig:
    def test_validation(self):
        with pytest.raises(EstimationError):
            SRWConfig(thinning=0)
        with pytest.raises(EstimationError):
            SRWConfig(min_burn_in=-1)
        with pytest.raises(EstimationError):
            SRWConfig(stall_steps=0)
        with pytest.raises(EstimationError):
            SRWConfig(teleport_after=0)


class TestEstimation:
    def test_avg_estimate_reasonable(self, small_platform):
        query = avg_of("privacy", FOLLOWERS)
        truth = exact_value(small_platform.store, query)
        estimator = make_estimator(small_platform, query, budget=8000, seed=2)
        result = estimator.estimate()
        assert result.value is not None
        assert result.relative_error(truth) < 0.5
        assert result.cost_total <= 8000

    def test_count_estimate_reasonable(self, small_platform):
        query = count_users("privacy")
        truth = exact_value(small_platform.store, query)
        estimator = make_estimator(small_platform, query, budget=8000, seed=3)
        result = estimator.estimate()
        assert result.value is not None
        assert result.relative_error(truth) < 0.6

    def test_budget_respected(self, small_platform):
        query = avg_of("privacy", FOLLOWERS)
        estimator = make_estimator(small_platform, query, budget=500, seed=4)
        result = estimator.estimate()
        assert result.cost_total <= 500

    def test_trace_costs_monotone(self, small_platform):
        query = avg_of("privacy", FOLLOWERS)
        result = make_estimator(small_platform, query, budget=4000, seed=5).estimate()
        costs = [point.cost for point in result.trace]
        assert costs == sorted(costs)

    def test_works_on_term_induced_oracle(self, small_platform):
        query = avg_of("privacy", FOLLOWERS)
        truth = exact_value(small_platform.store, query)
        estimator = make_estimator(
            small_platform, query, budget=8000, seed=6, oracle_cls=TermInducedOracle
        )
        result = estimator.estimate()
        assert result.algorithm == "ma-srw[term-induced]"
        assert result.value is not None
        assert result.relative_error(truth) < 0.5

    def test_max_steps_bounds_walk(self, small_platform):
        query = avg_of("privacy", FOLLOWERS)
        config = SRWConfig(max_steps=100)
        result = make_estimator(small_platform, query, budget=8000, seed=7,
                                config=config).estimate()
        assert result.diagnostics["steps"] <= 100

    def test_deterministic_given_seed(self, small_platform):
        query = count_users("privacy")
        a = make_estimator(small_platform, query, budget=3000, seed=8).estimate()
        b = make_estimator(small_platform, query, budget=3000, seed=8).estimate()
        assert a.value == b.value
        assert a.cost_total == b.cost_total
