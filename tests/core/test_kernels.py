"""Compiled-kernel tier: the kernel must be invisible except in speed.

Pins the :mod:`repro.core.kernels` contract:

* **Golden-matrix bit-identity** — kernel-on vs kernel-off runs produce
  byte-equal canonical traces (and equal values / CostMeter columns)
  across workers (serial / 3) × fault profile (clean / hostile) ×
  data plane (frozen / mmap).  Hostile stacks never resolve a kernel,
  so those cells double as fallback-degradation checks.
* **Resolution rules** — clean caching stacks resolve (with counters),
  fault stacks, probing contexts and the process-wide switch fall back
  with the documented reason labels.
* **Eq. 6 DP equivalence** — the flat-CSR passes reproduce the
  interpreted dict recursion bit for bit on hypothesis-generated level
  DAGs (ghost partners, zero-mass nodes, empty seed sets included).
* **Capped first-mention** — the columnar capped-window resolution
  matches the slow per-view answer over random columns (ties, empty
  timelines, absent keywords, multi-keyword extras) and end-to-end on a
  capped platform, detours and charges included.
"""

from __future__ import annotations

import contextlib
import dataclasses

import numpy as np
import pytest

from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.api.faults import FAULT_PROFILES, FaultInjectingClient, FaultPlan
from repro.api.resilient import ResilientClient
from repro.core.graph_builder import LevelByLevelOracle, QueryContext
from repro.core.kernels import (
    KernelOps,
    _dp_passes_python,
    first_mention_from_columns,
    kernel_enabled,
    numba_available,
    resolve_kernel,
    set_kernel_enabled,
)
from repro.core.levels import LevelIndex
from repro.core.query import count_users
from repro.core.tarw import MATARWEstimator, TARWConfig
from repro.core.wnw import ProbingContext
from repro.obs import Observability
from repro.obs.export import trace_lines
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import RecordingSink
from repro.platform.clock import DAY
from repro.platform.simulator import PlatformConfig, build_platform
from tests.conftest import tiny_keywords
from tests.obs.conftest import GOLDEN_PLATFORM, GOLDEN_WALK_SEED, golden_run

try:  # property tests degrade gracefully without hypothesis
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - CI always has hypothesis
    HAVE_HYPOTHESIS = False

pytestmark = pytest.mark.kernels

KEYWORD = "privacy"


@contextlib.contextmanager
def kernel_switch(enabled):
    previous = set_kernel_enabled(enabled)
    try:
        yield
    finally:
        set_kernel_enabled(previous)


def _config(**overrides) -> PlatformConfig:
    base = dict(keywords=tiny_keywords(), background_posts_mean=3.0, **GOLDEN_PLATFORM)
    base.update(overrides)
    return PlatformConfig(**base)


@pytest.fixture(scope="module")
def frozen_platform():
    return build_platform(_config(data_plane="frozen"))


@pytest.fixture(scope="module")
def mmap_platform():
    # Small chunk size: the streaming build crosses many chunk boundaries
    # even on this small platform (same recipe as the outofcore tier).
    return build_platform(_config(data_plane="mmap", build_chunk_rows=911))


def _stack(platform, budget=None):
    client = CachingClient(SimulatedMicroblogClient(platform, budget=budget))
    return client, QueryContext(client, count_users(KEYWORD))


# ----------------------------------------------------------------------
# golden-matrix bit-identity: workers × faults × data planes
# ----------------------------------------------------------------------
def _traced_run(platform, algorithm, n_workers, fault_plan, enabled):
    with kernel_switch(enabled):
        obs = Observability(trace_sink=RecordingSink())
        result = golden_run(
            platform, algorithm, n_workers=n_workers, obs=obs, fault_plan=fault_plan
        )
    return result, "\n".join(trace_lines(obs.trace_records())) + "\n"


@pytest.mark.parametrize("algorithm", ["ma-tarw", "ma-srw"])
@pytest.mark.parametrize("plane", ["frozen", "mmap"])
@pytest.mark.parametrize("n_workers", [None, 3], ids=["serial", "workers3"])
@pytest.mark.parametrize("faults", [None, "hostile"], ids=["clean", "hostile"])
def test_kernel_traces_bit_identical(
    request, algorithm, plane, n_workers, faults
):
    platform = request.getfixturevalue(f"{plane}_platform")
    fault_plan = FAULT_PROFILES[faults] if faults else None
    off_result, off_text = _traced_run(
        platform, algorithm, n_workers, fault_plan, enabled=False
    )
    on_result, on_text = _traced_run(
        platform, algorithm, n_workers, fault_plan, enabled=True
    )
    assert on_result.value == off_result.value
    assert on_result.cost_total == off_result.cost_total
    assert on_result.cost_by_kind == off_result.cost_by_kind
    assert on_text == off_text


@pytest.mark.parametrize("algorithm", ["ma-tarw", "ma-srw"])
@pytest.mark.parametrize("plane", ["frozen", "mmap"])
def test_untraced_kernel_run_matches_interpreted(request, algorithm, plane):
    """Observability-off identity: the only mode where TARW's fused
    instance runner engages (traced runs take the interpreted instance
    path by design), so the golden-trace matrix above cannot cover it.
    """
    platform = request.getfixturevalue(f"{plane}_platform")
    with kernel_switch(False):
        off = golden_run(platform, algorithm)
    with kernel_switch(True):
        on = golden_run(platform, algorithm)
    assert on.value == off.value
    assert on.cost_total == off.cost_total
    assert on.cost_by_kind == off.cost_by_kind
    assert on.trace == off.trace


def test_fused_runner_engages_only_untraced(frozen_platform):
    client, context = _stack(frozen_platform)
    oracle = LevelByLevelOracle(context, LevelIndex(DAY))
    untraced = MATARWEstimator(context, oracle, TARWConfig(), seed=GOLDEN_WALK_SEED)
    assert untraced._kernel is not None
    assert untraced._fused_instance_runner() is not None

    client2, context2 = _stack(frozen_platform)
    obs = Observability(trace_sink=RecordingSink())
    traced = MATARWEstimator(
        context2, LevelByLevelOracle(context2, LevelIndex(DAY)), TARWConfig(),
        seed=GOLDEN_WALK_SEED, obs=obs,
    )
    assert traced._fused_instance_runner() is None  # telemetry on

    client3, context3 = _stack(frozen_platform)
    papered = MATARWEstimator(
        context3, LevelByLevelOracle(context3, LevelIndex(DAY)),
        TARWConfig(combine="paper"), seed=GOLDEN_WALK_SEED,
    )
    assert papered._fused_instance_runner() is None  # paper-path capture


def test_incremental_dp_state_matches_full_rebuild(frozen_platform):
    """The classify-fed incremental adjacency (`_DPGraphState`) must
    reproduce the full oracle flatten bit for bit on a real run's oracle.

    The hypothesis DP tests drive `dp_tables` through fake oracles that
    the state never covers (full-rebuild path); this pins the other
    dispatch arm against it on the same inputs.
    """
    with kernel_switch(True):
        client, context = _stack(frozen_platform, budget=1_500)
        oracle = LevelByLevelOracle(context, LevelIndex(DAY))
        estimator = MATARWEstimator(
            context, oracle, config=SMALL_TARW, seed=GOLDEN_WALK_SEED
        )
        estimator.estimate()
    kernel = context.kernel
    assert kernel is not None
    state = getattr(oracle, "_dp_state", None)
    assert state is not None
    # The state covers every classification, so dp_tables dispatched to
    # the incremental arm throughout the run.
    assert state.total_classified == len(oracle._cache)
    assert len(state.ids) > 0
    seed_set = estimator._seed_set
    seed_count = len(estimator._seeds)
    inc_up, inc_down = kernel._dp_tables_incremental(state, seed_set, seed_count)
    full_up, full_down = kernel._dp_tables_full(oracle, seed_set, seed_count)
    assert inc_up == full_up  # exact float equality: bit-identity
    assert inc_down == full_down
    assert len(inc_up) == len(state.ids)


# ----------------------------------------------------------------------
# resolution rules + guard counters
# ----------------------------------------------------------------------
class TestResolution:
    def test_clean_stack_resolves_with_counters(self, tiny_platform):
        metrics = MetricsRegistry()
        client = CachingClient(SimulatedMicroblogClient(tiny_platform))
        context = QueryContext(
            client, count_users(KEYWORD), obs=Observability(metrics=metrics)
        )
        assert context.kernel is not None
        assert context.kernel.backend in ("numpy", "numba")
        counters = metrics.snapshot()["counters"]
        assert counters["kernel.resolved"] == 1
        assert not any(key.startswith("kernel.fallback") for key in counters)

    def test_switch_disables_resolution(self, tiny_platform):
        metrics = MetricsRegistry()
        with kernel_switch(False):
            client = CachingClient(SimulatedMicroblogClient(tiny_platform))
            context = QueryContext(
                client, count_users(KEYWORD), obs=Observability(metrics=metrics)
            )
        assert context.kernel is None
        assert context.fast is not None  # the fast path itself stays on
        counters = metrics.snapshot()["counters"]
        assert counters["kernel.fallback{reason=disabled}"] == 1

    def test_env_switch_disables(self, tiny_platform, monkeypatch):
        monkeypatch.setenv("REPRO_NO_KERNEL", "1")
        assert not kernel_enabled()
        _, context = _stack(tiny_platform)
        assert context.kernel is None

    def test_no_numba_env_forces_numpy_backend(self, tiny_platform, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMBA", "1")
        assert not numba_available()
        _, context = _stack(tiny_platform)
        assert context.kernel is not None
        assert context.kernel.backend == "numpy"

    @pytest.mark.chaos
    def test_fault_stack_falls_back(self, tiny_platform):
        metrics = MetricsRegistry()
        sim = SimulatedMicroblogClient(tiny_platform)
        client = CachingClient(
            ResilientClient(FaultInjectingClient(sim, FaultPlan(seed=5)))
        )
        context = QueryContext(
            client, count_users(KEYWORD), obs=Observability(metrics=metrics)
        )
        assert context.fast is None and context.kernel is None
        counters = metrics.snapshot()["counters"]
        assert counters["kernel.fallback{reason=no-fastpath}"] == 1

    def test_probing_context_is_ineligible(self, tiny_platform):
        metrics = MetricsRegistry()
        client = CachingClient(SimulatedMicroblogClient(tiny_platform))
        context = ProbingContext(
            client, count_users(KEYWORD), obs=Observability(metrics=metrics)
        )
        assert context.fast is not None  # fast connections stay available
        assert context.kernel is None
        counters = metrics.snapshot()["counters"]
        assert counters["kernel.fallback{reason=ineligible-context}"] == 1

    def test_mmap_plane_gets_prefetcher(self, mmap_platform, tiny_platform):
        _, mmap_ctx = _stack(mmap_platform)
        _, ram_ctx = _stack(tiny_platform)
        assert mmap_ctx.kernel is not None and mmap_ctx.kernel.prefetcher is not None
        assert ram_ctx.kernel is not None and ram_ctx.kernel.prefetcher is None


# ----------------------------------------------------------------------
# capped timelines: columnar window resolution ≡ slow detour
# ----------------------------------------------------------------------
SMALL_TARW = TARWConfig(
    discovery_instances=100, final_recount_instances=300, max_instances=400,
    stall_instances=50,
)


def _estimate(platform, enabled, budget=1_500):
    with kernel_switch(enabled):
        client, context = _stack(platform, budget=budget)
        oracle = LevelByLevelOracle(context, LevelIndex(interval=DAY))
        estimator = MATARWEstimator(context, oracle, config=SMALL_TARW, seed=3)
        result = estimator.estimate()
    return result, client, context


class TestCappedTimelines:
    def test_capped_run_bit_identical_with_detours(self, tiny_platform):
        capped = tiny_platform.with_profile(
            dataclasses.replace(tiny_platform.profile, timeline_cap=2)
        )
        store = capped.store
        assert any(store.timeline_length(u) > 2 for u in store.user_ids()[:500])
        off, off_client, off_ctx = _estimate(capped, enabled=False)
        on, on_client, on_ctx = _estimate(capped, enabled=True)
        assert off_ctx.kernel is None and on_ctx.kernel is not None
        assert on.value == off.value
        assert on.cost_total == off.cost_total
        assert on.cost_by_kind == off.cost_by_kind
        assert on.trace == off.trace
        assert (on_client.hits, on_client.misses) == (
            off_client.hits, off_client.misses
        )
        # both paths report the same number of capped-resolution detours
        assert on_ctx.fast.slow_timeline_detours > 0
        assert on_ctx.fast.slow_timeline_detours == off_ctx.fast.slow_timeline_detours

    def test_columns_match_view_answers(self, tiny_platform):
        """Sweep: column resolution == the capped TimelineView answer for
        every user × keyword (present, other, absent) × cap."""
        for cap in (None, 1, 3):
            profile = dataclasses.replace(tiny_platform.profile, timeline_cap=cap)
            platform = tiny_platform.with_profile(profile)
            store = platform.store
            client = SimulatedMicroblogClient(platform)
            for keyword in ("privacy", "boston", "absentword"):
                codes = store.matching_keyword_codes(keyword)
                extras = store.matching_extra_post_ids(keyword)
                for user_id in store.user_ids()[:120]:
                    expected = client.user_timeline(user_id).first_mention_time(keyword)
                    got = first_mention_from_columns(store, codes, extras, user_id, cap)
                    assert got == expected, (keyword, user_id, cap)


# ----------------------------------------------------------------------
# Eq. 6 DP: flat CSR passes ≡ interpreted dict recursion
# ----------------------------------------------------------------------
class FakeDPOracle:
    """Just enough oracle surface for :meth:`KernelOps.dp_tables`."""

    def __init__(self, levels, up, down):
        self._levels = levels
        self._up = up
        self._down = down

    def classified_nodes(self):
        return list(self._levels)

    def level_of(self, user_id):
        return self._levels.get(user_id)

    def up_neighbors(self, user_id):
        return self._up[user_id]

    def down_neighbors(self, user_id):
        return self._down[user_id]


def interpreted_dp(oracle, seed_set, seed_count):
    """Verbatim port of the interpreted recursion in ``_run_dp_if_dirty``."""
    nodes = [u for u in oracle.classified_nodes() if oracle.level_of(u) is not None]
    classified = set(nodes)
    level = {u: oracle.level_of(u) for u in nodes}
    start = 1.0 / seed_count if seed_count else 0.0
    p_up = {}
    for u in sorted(nodes, key=lambda n: -level[n]):
        value = start if u in seed_set else 0.0
        for v in oracle.down_neighbors(u):
            if v in classified and p_up.get(v, 0.0) > 0.0:
                value += p_up[v] / len(oracle.up_neighbors(v))
        p_up[u] = value
    p_down = {}
    for u in sorted(nodes, key=lambda n: level[n]):
        ups = oracle.up_neighbors(u)
        if not ups:
            p_down[u] = p_up[u]
            continue
        value = 0.0
        for v in ups:
            if v in classified and p_down.get(v, 0.0) > 0.0:
                value += p_down[v] / len(oracle.down_neighbors(v))
        p_down[u] = value
    return p_up, p_down


def _kernel_ops(backend):
    ops = KernelOps.__new__(KernelOps)
    ops.backend = backend
    return ops


if HAVE_HYPOTHESIS:

    @st.composite
    def dp_instances(draw):
        n = draw(st.integers(1, 10))
        nodes = draw(
            st.lists(st.integers(0, 10_000), min_size=n, max_size=n, unique=True)
        )
        levels = {u: draw(st.integers(0, 3)) for u in nodes}
        up = {u: [] for u in nodes}
        down = {u: [] for u in nodes}
        ghost = max(nodes) + 1
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                if levels[u] == levels[v] or not draw(st.booleans()):
                    continue
                lo, hi = (u, v) if levels[u] < levels[v] else (v, u)
                down[lo].append(hi)  # hi is at a later (larger) level
                up[hi].append(lo)
            if draw(st.booleans()):
                # an unclassified partner: inflates the degree (the DP
                # divides by *full* list lengths) but carries no mass
                up[u].append(ghost)
                ghost += 1
        seeds = {u for u in nodes if draw(st.booleans())}
        return levels, up, down, seeds

    @pytest.mark.property
    @settings(max_examples=80, deadline=None)
    @given(instance=dp_instances())
    def test_dp_passes_match_interpreted(instance):
        levels, up, down, seeds = instance
        oracle = FakeDPOracle(levels, up, down)
        expected = interpreted_dp(oracle, seeds, len(seeds))
        got = _kernel_ops("numpy").dp_tables(oracle, seeds, len(seeds))
        assert got == expected  # dict equality: exact floats, same keys

    @pytest.mark.property
    @settings(max_examples=60, deadline=None)
    @given(
        timelines=st.lists(
            st.lists(
                st.tuples(
                    st.floats(0.0, 1e6, allow_nan=False),  # time (ties allowed)
                    st.integers(0, 4),  # keyword code
                ),
                max_size=12,
            ),
            min_size=1,
            max_size=6,
        ),
        match_codes=st.sets(st.integers(0, 4), max_size=3),
        extra_count=st.integers(0, 2),
        cap=st.sampled_from([None, 1, 2, 5]),
    )
    def test_first_mention_from_columns_matches_scan(
        timelines, match_codes, extra_count, cap
    ):
        times, codes, users = [], [], []
        rows_by_user = {}
        for user_id, posts in enumerate(timelines):
            start = len(times)
            for t, code in sorted(posts, key=lambda p: p[0]):
                times.append(t)
                codes.append(code)
                users.append(user_id)
            rows_by_user[user_id] = np.arange(start, len(times), dtype=np.int64)

        class FakeColumnStore:
            post_time = np.asarray(times, dtype=np.float64)
            post_keyword = np.asarray(codes, dtype=np.int64)
            post_id = np.arange(len(times), dtype=np.int64)

            def timeline_rows(self, user_id):
                return rows_by_user[user_id]

        store = FakeColumnStore()
        codes_arr = np.asarray(sorted(match_codes), dtype=np.int64)
        # first extra_count global rows get multi-keyword "extra" status
        extras = np.arange(min(extra_count, len(times)), dtype=np.int64)
        for user_id in rows_by_user:
            rows = rows_by_user[user_id]
            window = rows[-cap:] if cap is not None else rows
            expected = None
            for row in window.tolist():
                if codes[row] in match_codes or row < extra_count:
                    expected = float(times[row])
                    break
            got = first_mention_from_columns(store, codes_arr, extras, user_id, cap)
            assert got == expected, (user_id, cap)


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
def test_numba_dp_matches_python_backend():
    levels = {1: 0, 2: 1, 3: 1, 4: 2, 5: 3}
    up = {1: [], 2: [1], 3: [1, 99], 4: [2, 3], 5: [4]}
    down = {1: [2, 3], 2: [4], 3: [4], 4: [5], 5: []}
    oracle = FakeDPOracle(levels, up, down)
    seeds = {4, 5}
    assert _kernel_ops("numba").dp_tables(oracle, seeds, 2) == _kernel_ops(
        "numpy"
    ).dp_tables(oracle, seeds, 2)


def test_dp_empty_subgraph():
    oracle = FakeDPOracle({}, {}, {})
    assert _kernel_ops("numpy").dp_tables(oracle, set(), 0) == ({}, {})
