"""Tests for pilot-walk time-interval selection."""

import pytest

from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.core.graph_builder import QueryContext
from repro.core.interval import (
    DEFAULT_CANDIDATE_INTERVALS,
    IntervalSelection,
    run_pilot,
    select_time_interval,
)
from repro.core.levels import LevelIndex
from repro.core.query import count_users
from repro.errors import EstimationError
from repro.platform.clock import DAY, HOUR


@pytest.fixture()
def context(tiny_platform):
    client = CachingClient(SimulatedMicroblogClient(tiny_platform))
    return QueryContext(client, count_users("privacy"))


def test_run_pilot_reports_topology(context):
    pilot = run_pilot(context, LevelIndex(DAY), label="1D", pilot_steps=40, seed=1)
    assert pilot.label == "1D"
    assert pilot.levels_spanned >= 1
    assert pilot.nodes_visited >= 1
    assert pilot.mean_level_width >= 1.0
    assert 0.0 <= pilot.retention <= 1.0
    assert pilot.spectral_score >= 0.0
    assert pilot.eq3_score >= 0.0


def test_select_time_interval_returns_candidate(context):
    selection = select_time_interval(context, pilot_steps=30, seed=2)
    assert isinstance(selection, IntervalSelection)
    labels = {label for label, _ in DEFAULT_CANDIDATE_INTERVALS}
    assert selection.label in labels
    assert selection.interval in {value for _, value in DEFAULT_CANDIDATE_INTERVALS}
    assert len(selection.pilots) >= 1


def test_selection_single_repeat_maximises_score(context):
    selection = select_time_interval(context, pilot_steps=30, pilot_repeats=1, seed=3)
    best = max(selection.pilots, key=lambda pilot: pilot.score(selection.method))
    assert selection.interval == best.interval


def test_selection_with_repeats_returns_candidate(context):
    selection = select_time_interval(context, pilot_steps=30, pilot_repeats=3, seed=3)
    assert any(pilot.label == selection.label for pilot in selection.pilots)


def test_eq3_score_method_also_selectable(context):
    selection = select_time_interval(context, pilot_steps=30, pilot_repeats=1, seed=3,
                                     score_method="eq3")
    assert selection.method == "eq3"
    best = max(selection.pilots, key=lambda pilot: pilot.eq3_score)
    assert selection.interval == best.interval


def test_invalid_repeats_rejected(context):
    with pytest.raises(EstimationError):
        select_time_interval(context, pilot_repeats=0)


def test_unknown_score_method_rejected(context):
    with pytest.raises(EstimationError):
        select_time_interval(context, score_method="bogus")


def test_custom_candidates(context):
    candidates = (("6H", 6 * HOUR), ("3D", 3 * DAY))
    selection = select_time_interval(context, candidates=candidates, pilot_steps=20, seed=4)
    assert selection.label in {"6H", "3D"}


def test_empty_candidates_rejected(context):
    with pytest.raises(EstimationError):
        select_time_interval(context, candidates=())


def test_pilot_costs_queries(tiny_platform):
    client = CachingClient(SimulatedMicroblogClient(tiny_platform))
    context = QueryContext(client, count_users("privacy"))
    before = client.total_cost
    run_pilot(context, LevelIndex(DAY), label="1D", pilot_steps=30, seed=5)
    assert client.total_cost > before
