"""Chaos suite at the estimator level: faults must not move the numbers.

The headline contract of the fault-injection work (see docs/TESTING.md):
running MA-TARW or MA-SRW against a platform that injects transient
errors, timeouts, truncated pages and duplicate rows produces an
estimate *bit-identical* to the fault-free run with the same estimator
seed — same value, same trace, same budget spend — with every retry
visible in the meter's budget-exempt ``retries`` column.  Faults heal
below the walk; the walk never notices.

Runs here share module-scoped fixtures because each estimation is a
full budgeted walk; the assertions slice the same handful of runs.
"""

from __future__ import annotations

import pytest

from repro.api.accounting import RETRIES
from repro.api.faults import FAULT_PROFILES, FaultPlan
from repro.api.resilient import RetryPolicy
from repro.core.analyzer import MicroblogAnalyzer
from repro.core.query import FOLLOWERS, avg_of

pytestmark = pytest.mark.chaos

SERIAL_BUDGET = 6_000
PARALLEL_BUDGET = 9_000
WALK_SEED = 7
QUERY = avg_of("privacy", FOLLOWERS)
ALGORITHMS = ("ma-tarw", "ma-srw")


def _run(platform, algorithm, budget, fault_plan=None, retry_policy=None,
         n_workers=None):
    analyzer = MicroblogAnalyzer(
        platform,
        algorithm=algorithm,
        seed=WALK_SEED,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        n_workers=n_workers,
        n_shards=None if n_workers is None else 3,
        executor="auto" if n_workers is None else "thread",
    )
    return analyzer.estimate(QUERY, budget=budget)


def _clean_kinds(result):
    """Cost by kind with the retry column stripped — what a fault-free
    meter would have recorded."""
    kinds = dict(result.cost_by_kind)
    kinds.pop(RETRIES, None)
    return kinds


@pytest.fixture(scope="module")
def serial_runs(tiny_platform):
    hostile = FAULT_PROFILES["hostile"]
    return {
        (algorithm, profile): _run(
            tiny_platform, algorithm, SERIAL_BUDGET,
            fault_plan=hostile if profile else None,
        )
        for algorithm in ALGORITHMS
        for profile in (None, "hostile")
    }


@pytest.fixture(scope="module")
def parallel_runs(tiny_platform):
    hostile = FAULT_PROFILES["hostile"]
    return {
        "clean-w3": _run(tiny_platform, "ma-tarw", PARALLEL_BUDGET, n_workers=3),
        "hostile-w1": _run(tiny_platform, "ma-tarw", PARALLEL_BUDGET,
                           fault_plan=hostile, n_workers=1),
        "hostile-w3": _run(tiny_platform, "ma-tarw", PARALLEL_BUDGET,
                           fault_plan=hostile, n_workers=3),
    }


# ----------------------------------------------------------------------
# serial bit-identity under the hostile profile (20% transient errors)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_serial_estimate_bit_identical_under_faults(serial_runs, algorithm):
    clean = serial_runs[(algorithm, None)]
    faulted = serial_runs[(algorithm, "hostile")]
    assert clean.value is not None
    assert faulted.value == clean.value  # bit-identical, not approx
    assert faulted.cost_total == clean.cost_total


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_serial_trace_identical_under_faults(serial_runs, algorithm):
    """Not just the endpoint: every intermediate (cost, estimate) trace
    point matches, so convergence plots overlay exactly."""
    clean = serial_runs[(algorithm, None)]
    faulted = serial_runs[(algorithm, "hostile")]
    assert [(t.cost, t.estimate) for t in faulted.trace] == [
        (t.cost, t.estimate) for t in clean.trace
    ]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_serial_retries_fully_accounted(serial_runs, algorithm):
    clean = serial_runs[(algorithm, None)]
    faulted = serial_runs[(algorithm, "hostile")]
    # Query spend matches the fault-free run kind for kind; the waste
    # shows up only in the budget-exempt retries column.
    assert _clean_kinds(faulted) == _clean_kinds(clean)
    assert faulted.cost_by_kind[RETRIES] > 0
    assert RETRIES not in clean.cost_by_kind
    assert faulted.cost_total <= SERIAL_BUDGET


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_serial_resilience_diagnostics_surface(serial_runs, algorithm):
    faulted = serial_runs[(algorithm, "hostile")]
    diagnostics = faulted.diagnostics
    assert "degraded_serves" in diagnostics
    assert "backoff_wait_seconds" in diagnostics
    # All faults healed at the client layer: the walk itself never had
    # to retry a step, abort an instance or restart a chain.
    assert diagnostics.get("fault_step_retries", 0.0) == 0.0
    assert diagnostics.get("fault_aborted_instances", 0.0) == 0.0
    assert diagnostics.get("fault_restarts", 0.0) == 0.0


# ----------------------------------------------------------------------
# parallel: worker-count invariance survives fault injection
# ----------------------------------------------------------------------
def test_parallel_faulted_matches_clean_parallel(parallel_runs):
    clean = parallel_runs["clean-w3"]
    faulted = parallel_runs["hostile-w3"]
    assert clean.value is not None
    assert faulted.value == clean.value
    assert faulted.cost_total == clean.cost_total
    assert _clean_kinds(faulted) == _clean_kinds(clean)
    assert faulted.cost_by_kind[RETRIES] > 0


def test_parallel_worker_count_invariant_under_faults(parallel_runs):
    """Per-shard fault replay is a function of the request key and the
    attempt ordinal, never the worker interleaving."""
    one = parallel_runs["hostile-w1"]
    three = parallel_runs["hostile-w3"]
    assert one.value == three.value
    assert one.cost_total == three.cost_total
    assert one.cost_by_kind == three.cost_by_kind
    assert [(t.cost, t.estimate) for t in one.trace] == [
        (t.cost, t.estimate) for t in three.trace
    ]
    assert one.walk_stats is not None and three.walk_stats is not None


# ----------------------------------------------------------------------
# unhealable faults: the walk degrades gracefully instead of crashing
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_walk_survives_unhealable_faults(tiny_platform, algorithm):
    """When the retry budget is too small for the fault streaks, typed
    transient errors reach the walk itself — which retries the step,
    then abandons the instance/chain, and still returns a result with
    the damage fully visible in the diagnostics."""
    plan = FaultPlan(seed=11, transient_rate=0.85, max_consecutive_faults=50)
    policy = RetryPolicy(max_attempts=2, breaker_threshold=10**6)
    result = _run(tiny_platform, algorithm, 3_000,
                  fault_plan=plan, retry_policy=policy)
    assert result.cost_total <= 3_000
    diagnostics = result.diagnostics
    assert diagnostics.get("fault_step_retries", 0.0) > 0
    if algorithm == "ma-tarw":
        assert diagnostics.get("fault_aborted_instances", 0.0) > 0
    else:
        assert diagnostics.get("fault_restarts", 0.0) > 0
    assert result.cost_by_kind.get(RETRIES, 0) > 0
