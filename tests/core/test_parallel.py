"""The parallel execution engine: determinism, merging, accounting.

The contract under test (see ``repro/parallel/walkers.py``): the shard
plan is a function of the master seed, the budget and the shard count —
never of the worker count — so serial and parallel runs of the same
estimation are *identical*, and the merged cost accounting equals the sum
of what each shard's private meter charged.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro._rng import spawn_worker_seeds
from repro.api.accounting import CostMeter, merge_cost_by_kind
from repro.bench.harness import replicate_runs
from repro.core.analyzer import MicroblogAnalyzer
from repro.core.query import FOLLOWERS, avg_of, count_users
from repro.errors import EstimationError, ReproError
from repro.parallel import (
    DEFAULT_SHARDS,
    ExecutionEngine,
    ParallelConfig,
    PlatformRef,
    split_budget,
)

BUDGET = 9_000  # 3 adaptive shards at MIN_SHARD_BUDGET=2000 -> no starvation


# ----------------------------------------------------------------------
# planning primitives
# ----------------------------------------------------------------------
def test_spawn_worker_seeds_deterministic():
    assert spawn_worker_seeds(123, 4) == spawn_worker_seeds(123, 4)
    assert spawn_worker_seeds(123, 4) != spawn_worker_seeds(124, 4)
    assert len(set(spawn_worker_seeds(0, 16))) == 16


def test_split_budget():
    assert split_budget(10, 3) == [4, 3, 3]
    assert split_budget(9, 3) == [3, 3, 3]
    assert split_budget(None, 3) == [None, None, None]
    with pytest.raises(EstimationError):
        split_budget(2, 3)


def test_parallel_config_validation():
    with pytest.raises(ReproError):
        ParallelConfig(n_workers=0)
    with pytest.raises(ReproError):
        ParallelConfig(executor="gpu")
    assert ParallelConfig(n_shards=5).resolved_shards() == 5
    assert ParallelConfig().resolved_shards() == DEFAULT_SHARDS
    # the default backs off with the budget, floors at one shard
    assert ParallelConfig().resolved_shards(budget=100) == 1
    assert ParallelConfig().resolved_shards(budget=6_000) == 3
    assert ParallelConfig().resolved_shards(budget=10**9) == DEFAULT_SHARDS


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def test_engine_preserves_task_order():
    engine = ExecutionEngine(n_workers=4, executor="thread")
    assert engine.run(_square, [(i,) for i in range(20)]) == [i * i for i in range(20)]
    assert engine.resolved == "thread"
    assert len(engine.task_seconds) == 20


def test_engine_serial_modes():
    engine = ExecutionEngine(n_workers=1, executor="auto")
    assert engine.run(_square, [(3,), (4,)]) == [9, 16]
    assert engine.resolved == "serial"
    assert ExecutionEngine(4, "auto").run(_square, [(5,)]) == [25]


def test_engine_auto_falls_back_to_thread_for_closures():
    captured = []  # closures are unpicklable -> auto must not pick process
    engine = ExecutionEngine(n_workers=2, executor="auto")
    assert engine.run(lambda x: captured.append(x) or x, [(1,), (2,)]) == [1, 2]
    assert engine.resolved == "thread"


def test_engine_process_mode_rejects_unpicklable():
    with pytest.raises(ReproError):
        ExecutionEngine(2, "process").run(lambda x: x, [(1,), (2,)])


def test_engine_propagates_first_error_in_task_order():
    def boom(x):
        if x % 2:
            raise ValueError(f"task {x}")
        return x

    with pytest.raises(ValueError, match="task 1"):
        ExecutionEngine(4, "thread").run(boom, [(0,), (1,), (2,), (3,)])


# ----------------------------------------------------------------------
# thread-safe accounting
# ----------------------------------------------------------------------
def test_cost_meter_charge_is_race_safe():
    meter = CostMeter(budget=None)
    threads = [
        threading.Thread(
            target=lambda: [meter.charge("search", 1) for _ in range(500)]
        )
        for _ in range(8)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert meter.total == 4_000


def test_merge_cost_by_kind():
    merged = merge_cost_by_kind([{"search": 2, "timeline": 1}, {"search": 3}])
    assert merged["search"] == 5
    assert merged["timeline"] == 1


# ----------------------------------------------------------------------
# worker-count invariance of the estimators
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["ma-tarw", "ma-srw"])
def test_parallel_estimate_is_worker_count_invariant(tiny_platform, algorithm):
    query = count_users("boston")

    def run(n_workers):
        analyzer = MicroblogAnalyzer(
            tiny_platform, algorithm=algorithm, seed=5,
            n_workers=n_workers, executor="thread",
        )
        return analyzer.estimate(query, budget=BUDGET)

    serial, parallel = run(1), run(3)
    assert serial.value == parallel.value
    assert serial.cost_total == parallel.cost_total
    assert serial.cost_by_kind == parallel.cost_by_kind
    assert serial.num_samples == parallel.num_samples
    assert [(p.cost, p.estimate) for p in serial.trace] == [
        (p.cost, p.estimate) for p in parallel.trace
    ]
    assert serial.walk_stats.n_workers == 1
    assert parallel.walk_stats.n_workers == 3
    assert serial.walk_stats.n_shards == parallel.walk_stats.n_shards


def test_merged_cost_accounting_matches_shard_meters(tiny_platform):
    analyzer = MicroblogAnalyzer(
        tiny_platform, seed=5, n_workers=2, executor="thread"
    )
    result = analyzer.estimate(count_users("boston"), budget=BUDGET)
    stats = result.walk_stats
    assert stats is not None
    assert result.cost_total == sum(stats.queries_per_worker)
    assert result.cost_total <= BUDGET
    assert sum(result.cost_by_kind.values()) == result.cost_total
    assert stats.walks_completed <= stats.walks_launched
    assert "parallel_shards" in result.diagnostics


def test_parallel_avg_query(tiny_platform):
    query = avg_of("privacy", FOLLOWERS)
    r1 = MicroblogAnalyzer(
        tiny_platform, seed=9, n_workers=1
    ).estimate(query, budget=BUDGET)
    r2 = MicroblogAnalyzer(
        tiny_platform, seed=9, n_workers=3, executor="thread"
    ).estimate(query, budget=BUDGET)
    assert r1.value == r2.value


def test_parallel_auto_interval_still_invariant(tiny_platform):
    def run(n_workers):
        return MicroblogAnalyzer(
            tiny_platform, interval="auto", seed=7,
            n_workers=n_workers, executor="thread",
        ).estimate(count_users("boston"), budget=12_000)

    serial, parallel = run(1), run(3)
    assert serial.value == parallel.value
    assert serial.cost_total == parallel.cost_total


# ----------------------------------------------------------------------
# replicate fan-out + platform shipping
# ----------------------------------------------------------------------
def test_platform_ref_pickle_roundtrip(tiny_platform):
    # The parent ref must stay alive while its pickled copies are in use:
    # its garbage collection reclaims the spill directory.
    parent = PlatformRef(tiny_platform)
    ref = pickle.loads(pickle.dumps(parent))
    restored = ref.resolve()
    assert restored.store.num_users == tiny_platform.store.num_users


def test_replicate_runs_parallel_matches_serial(tiny_platform):
    query = count_users("privacy")
    serial = replicate_runs(tiny_platform, query, "ma-srw", 3, budget=2_000)
    parallel = replicate_runs(
        tiny_platform, query, "ma-srw", 3, n_workers=3, budget=2_000
    )
    assert [r.value for r in serial] == [r.value for r in parallel]
    assert [r.cost_total for r in serial] == [r.cost_total for r in parallel]
