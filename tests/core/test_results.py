"""Tests for EstimateResult and its trace-derived metrics."""

import pytest

from repro.core.query import count_users
from repro.core.results import EstimateResult, TracePoint
from repro.errors import EstimationError


def make_result(trace, value=100.0):
    return EstimateResult(
        query=count_users("x"),
        algorithm="test",
        value=value,
        cost_total=trace[-1].cost if trace else 0,
        trace=trace,
    )


def test_trace_point_error():
    point = TracePoint(cost=10, estimate=110.0)
    assert point.error_against(100.0) == pytest.approx(0.1)
    assert TracePoint(10, None).error_against(100.0) is None
    assert TracePoint(10, 1.0).error_against(0.0) is None


def test_relative_error():
    result = make_result([TracePoint(5, 100.0)], value=95.0)
    assert result.relative_error(100.0) == pytest.approx(0.05)
    result_none = make_result([], value=None)
    with pytest.raises(EstimationError):
        result_none.relative_error(100.0)
    with pytest.raises(EstimationError):
        make_result([]).relative_error(0.0)


class TestCostToReachError:
    def test_requires_stable_convergence(self):
        trace = [
            TracePoint(100, 104.0),  # inside 5% band...
            TracePoint(200, 150.0),  # ...but leaves again
            TracePoint(300, 103.0),
            TracePoint(400, 102.0),
        ]
        result = make_result(trace)
        assert result.cost_to_reach_error(100.0, 0.05) == 300

    def test_never_converging(self):
        trace = [TracePoint(100, 200.0), TracePoint(200, 300.0)]
        assert make_result(trace).cost_to_reach_error(100.0, 0.05) is None

    def test_none_estimates_skipped(self):
        trace = [TracePoint(50, None), TracePoint(100, 101.0)]
        assert make_result(trace).cost_to_reach_error(100.0, 0.05) == 100

    def test_validation(self):
        result = make_result([TracePoint(1, 1.0)])
        with pytest.raises(EstimationError):
            result.cost_to_reach_error(0.0, 0.05)
        with pytest.raises(EstimationError):
            result.cost_to_reach_error(100.0, 0.0)
