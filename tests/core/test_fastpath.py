"""Regression suite for the flattened client fast path.

Pins the :mod:`repro.api.fastpath` contract: resolution rules (clean
stacks flatten, fault stacks stay layered), bit-identical estimates and
accounting fast-vs-slow, the prepaid-timeline single-charge rule, the
once-per-(client, keyword) classification dedup across pilot candidates,
the capped-timeline slow detour, the DP epoch key, and the vectorised
level classification's scalar equivalence.
"""

import contextlib
import dataclasses
from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.api.fastpath import set_fast_path_enabled
from repro.api.faults import FaultInjectingClient, FaultPlan
from repro.api.resilient import ResilientClient
from repro.core.graph_builder import LevelByLevelOracle, QueryContext
from repro.core.interval import select_time_interval
from repro.core.levels import LevelIndex, QuantileLevelIndex
from repro.core.query import count_users
from repro.core.srw import MASRWEstimator
from repro.core.tarw import MATARWEstimator, TARWConfig
from repro.platform.clock import DAY

KEYWORD = "privacy"


@contextlib.contextmanager
def fast_path(enabled):
    previous = set_fast_path_enabled(enabled)
    try:
        yield
    finally:
        set_fast_path_enabled(previous)


def _stack(platform, budget=None, sim_cls=SimulatedMicroblogClient):
    client = CachingClient(sim_cls(platform, budget=budget))
    return client, QueryContext(client, count_users(KEYWORD))


SMALL_TARW = TARWConfig(
    discovery_instances=100, final_recount_instances=300, max_instances=400,
    stall_instances=50,
)


def _estimate(platform, algorithm, fast, budget=1_500, platform_mutator=None):
    with fast_path(fast):
        client, context = _stack(platform, budget=budget)
        if platform_mutator is not None:
            platform_mutator(context)
        oracle = LevelByLevelOracle(context, LevelIndex(interval=DAY))
        if algorithm == "ma-tarw":
            estimator = MATARWEstimator(context, oracle, config=SMALL_TARW, seed=3)
        else:
            estimator = MASRWEstimator(context, oracle, seed=3)
        result = estimator.estimate()
    return result, client, context, estimator


class TestResolution:
    def test_clean_stack_resolves(self, tiny_platform):
        _, context = _stack(tiny_platform)
        assert context.fast is not None
        assert context.fast.keyword == KEYWORD

    def test_switch_disables_resolution(self, tiny_platform):
        with fast_path(False):
            _, context = _stack(tiny_platform)
        assert context.fast is None

    def test_bare_sim_client_stays_layered(self, tiny_platform):
        client = SimulatedMicroblogClient(tiny_platform)
        context = QueryContext(client, count_users(KEYWORD))
        assert context.fast is None

    @pytest.mark.chaos
    def test_fault_stack_stays_layered(self, tiny_platform):
        plan = FaultPlan(seed=5, transient_rate=0.05)
        sim = SimulatedMicroblogClient(tiny_platform)
        client = CachingClient(ResilientClient(FaultInjectingClient(sim, plan)))
        context = QueryContext(client, count_users(KEYWORD))
        assert context.fast is None

    @pytest.mark.chaos
    def test_resilient_only_stack_stays_layered(self, tiny_platform):
        client = CachingClient(ResilientClient(SimulatedMicroblogClient(tiny_platform)))
        context = QueryContext(client, count_users(KEYWORD))
        assert context.fast is None


class TestBitIdentity:
    @pytest.mark.parametrize("algorithm", ["ma-tarw", "ma-srw"])
    def test_estimates_and_accounting_identical(self, tiny_platform, algorithm):
        slow, slow_client, slow_ctx, _ = _estimate(tiny_platform, algorithm, fast=False)
        fast, fast_client, fast_ctx, _ = _estimate(tiny_platform, algorithm, fast=True)
        assert slow_ctx.fast is None and fast_ctx.fast is not None
        assert fast.value == slow.value
        assert fast.cost_total == slow.cost_total
        assert fast.cost_by_kind == slow.cost_by_kind
        assert fast.trace == slow.trace
        assert (fast_client.hits, fast_client.misses) == (
            slow_client.hits, slow_client.misses
        )

    def test_memo_matches_slow_lookups(self, tiny_platform):
        """Batched column reads return exactly the per-user view answers."""
        _, fast_ctx = _stack(tiny_platform)
        with fast_path(False):
            _, slow_ctx = _stack(tiny_platform)
        store = tiny_platform.store
        users = store.user_ids()[:200]
        assert fast_ctx.first_mentions(users) == slow_ctx.first_mentions(users)
        assert fast_ctx._first_mentions == slow_ctx._first_mentions

    def test_capped_timelines_take_identical_slow_detour(self, tiny_platform):
        """A cap below some timeline lengths forces per-user fallbacks;
        estimates and charges must not move."""
        capped = tiny_platform.with_profile(
            dataclasses.replace(tiny_platform.profile, timeline_cap=2)
        )
        store = capped.store
        assert any(store.timeline_length(u) > 2 for u in store.user_ids()[:500])
        slow, _, _, _ = _estimate(capped, "ma-tarw", fast=False)
        fast, _, fast_ctx, _ = _estimate(capped, "ma-tarw", fast=True)
        assert fast.value == slow.value
        assert fast.cost_by_kind == slow.cost_by_kind
        assert fast_ctx.fast.slow_timeline_detours > 0

    def test_unknown_user_error_identical(self, tiny_platform):
        from repro.errors import APIError

        _, fast_ctx = _stack(tiny_platform)
        with fast_path(False):
            _, slow_ctx = _stack(tiny_platform)
        missing = max(tiny_platform.store.user_ids()) + 1
        with pytest.raises(APIError) as fast_err:
            fast_ctx.first_mention(missing)
        with pytest.raises(APIError) as slow_err:
            slow_ctx.first_mention(missing)
        assert str(fast_err.value) == str(slow_err.value)


class TestPrepaidTimelines:
    def test_prepay_charges_once_then_materialises_free(self, tiny_platform):
        sim = SimulatedMicroblogClient(tiny_platform)
        client = CachingClient(sim)
        twin = CachingClient(SimulatedMicroblogClient(tiny_platform))
        user = tiny_platform.store.user_ids()[0]
        slow_view = twin.user_timeline(user)
        charged = twin.meter.by_kind()["timeline"]
        assert charged > 0

        client.prepay_timeline(user, sim, charged)
        assert client.meter.by_kind() == twin.meter.by_kind()
        assert (client.hits, client.misses) == (0, 1)

        client.prepay_timeline(user, sim, charged)  # second prepay: pure hit
        assert client.meter.by_kind()["timeline"] == charged
        assert (client.hits, client.misses) == (1, 1)

        view = client.user_timeline(user)  # materialisation: hit, uncharged
        assert view == slow_view
        assert client.meter.by_kind()["timeline"] == charged
        assert (client.hits, client.misses) == (2, 1)


class CountingSim(SimulatedMicroblogClient):
    """Counts per-user timeline fetch charges through both serving paths."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.timeline_fetches = Counter()

    def user_timeline(self, user_id):
        self.timeline_fetches[user_id] += 1
        return super().user_timeline(user_id)

    def charge_timeline(self, user_id, calls):
        self.timeline_fetches[user_id] += 1
        super().charge_timeline(user_id, calls)


class TestCrossIntervalReuse:
    @pytest.mark.parametrize("fast", [False, True])
    def test_timeline_classified_at_most_once(self, tiny_platform, fast):
        """The regression pin for §4.2.3 pilot reuse: across *all*
        candidate intervals plus the final oracle, no user's timeline is
        fetched (charged) more than once per (client, keyword)."""
        with fast_path(fast):
            client, context = _stack(tiny_platform, sim_cls=CountingSim)
            assert (context.fast is not None) == fast
            selection = select_time_interval(context, pilot_repeats=2, seed=5)
            oracle = LevelByLevelOracle(
                context, LevelIndex(interval=selection.interval)
            )
            estimator = MATARWEstimator(context, oracle, config=SMALL_TARW, seed=7)
            estimator.estimate()
        sim = client.inner
        assert sim.timeline_fetches  # the run did classify users
        assert max(sim.timeline_fetches.values()) == 1


class UngatedTARW(MATARWEstimator):
    """Forgets the DP input fingerprint: every dirty check recomputes."""

    def _run_dp_if_dirty(self):
        self._dp_key = None
        super()._run_dp_if_dirty()


class TestDPEpochKey:
    def test_gated_run_matches_ungated_with_fewer_recomputes(self, tiny_platform):
        def run(cls):
            client, context = _stack(tiny_platform, budget=1_500)
            oracle = LevelByLevelOracle(context, LevelIndex(interval=DAY))
            estimator = cls(context, oracle, config=SMALL_TARW, seed=3)
            return estimator.estimate(), estimator

        gated_result, gated = run(MATARWEstimator)
        ungated_result, ungated = run(UngatedTARW)
        assert gated_result.value == ungated_result.value
        assert gated_result.cost_total == ungated_result.cost_total
        assert 1 <= gated._dp_recomputes <= ungated._dp_recomputes

    def test_unchanged_key_skips_recompute(self, tiny_platform):
        client, context = _stack(tiny_platform, budget=1_000)
        oracle = LevelByLevelOracle(context, LevelIndex(interval=DAY))
        estimator = MATARWEstimator(context, oracle, config=SMALL_TARW, seed=3)
        result = estimator.estimate()
        before = estimator._dp_recomputes
        estimator._dp_dirty = True  # dirty, but epoch and seeds unchanged
        assert estimator._recompute_value() == result.value
        assert estimator._dp_recomputes == before


class TestVectorisedLevels:
    @pytest.mark.property
    @settings(max_examples=60, deadline=None)
    @given(
        times=st.lists(
            st.floats(min_value=-1e12, max_value=1e12, allow_nan=False),
            min_size=1, max_size=40,
        ),
        interval=st.floats(min_value=1e-3, max_value=1e8),
        origin=st.floats(min_value=-1e9, max_value=1e9),
    )
    def test_fixed_width_matches_scalar(self, times, interval, origin):
        index = LevelIndex(interval=interval, origin=origin)
        batch = index.levels_of_array(np.array(times, dtype=np.float64)).tolist()
        assert batch == [index.level_of(t) for t in times]

    @pytest.mark.property
    @settings(max_examples=60, deadline=None)
    @given(
        boundaries=st.lists(
            st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
            min_size=1, max_size=10, unique=True,
        ),
        times=st.lists(
            st.floats(min_value=-2e9, max_value=2e9, allow_nan=False),
            min_size=1, max_size=40,
        ),
    )
    def test_quantile_matches_scalar(self, boundaries, times):
        index = QuantileLevelIndex(boundaries=tuple(sorted(boundaries)))
        batch = index.levels_of_array(np.array(times, dtype=np.float64)).tolist()
        assert batch == [index.level_of(t) for t in times]
