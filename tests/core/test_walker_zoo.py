"""Walker-zoo conformance: every registered walker honors one contract.

Three layers of guarantees, in increasing cost:

* **Registry conformance** — each :class:`~repro.core.registry.WalkerSpec`
  points at a class implementing the Walker protocol, and its one-line
  summary appears verbatim in the estimator docstring *and* in
  ``docs/ALGORITHMS.md`` (docs and code cannot drift apart silently).
* **Behavioral contract** — every walker runs end-to-end through the
  analyzer on the tiny platform: respects the budget, produces a trace,
  reports its registry name.
* **Execution invariants for the new walkers** — worker-count invariance
  (mirroring ``test_parallel``) and hostile-fault bit-identity
  (mirroring ``test_resilience``) for rewired-srw / wnw / frontier.

The CLI drift test at the bottom asserts the flags the docs advertise
actually exist in the parser and that registry names reach
``--algorithm``.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.api.accounting import RETRIES
from repro.api.faults import FAULT_PROFILES
from repro.core.analyzer import ALGORITHMS, MicroblogAnalyzer
from repro.core.query import count_users
from repro.core.registry import GRAPH_DESIGNS, get_walker, walker_names, walker_specs
from repro.core.walker import BaseWalker
from repro.errors import EstimationError

REPO_ROOT = Path(__file__).resolve().parents[2]
NEW_WALKERS = ("rewired-srw", "wnw", "frontier")
QUERY = count_users("privacy")
CONTRACT_BUDGET = 3_000
PARALLEL_BUDGET = 9_000


# ---------------------------------------------------------------- registry
def test_registry_is_the_analyzer_algorithm_list():
    assert ALGORITHMS == walker_names()
    assert set(NEW_WALKERS) <= set(ALGORITHMS)


@pytest.mark.parametrize("name", walker_names())
def test_spec_conforms_to_walker_protocol(name):
    spec = get_walker(name)
    assert spec.name == name == spec.estimator.algorithm
    assert issubclass(spec.estimator, BaseWalker)
    assert spec.parallel_kind in (None, "hh", "samples")
    assert spec.designs and set(spec.designs) <= set(GRAPH_DESIGNS)
    spec.config_cls()  # default config must be constructible
    assert callable(getattr(spec.estimator, "estimate"))
    assert callable(getattr(spec.estimator, "_estimate_serial"))


@pytest.mark.parametrize("name", walker_names())
def test_summary_matches_docstring_and_catalog(name):
    spec = get_walker(name)
    assert spec.summary.endswith(".")
    assert spec.summary in (spec.estimator.__doc__ or ""), (
        f"{spec.estimator.__name__} docstring must carry the registry "
        f"summary verbatim: {spec.summary!r}"
    )
    catalog = (REPO_ROOT / "docs" / "ALGORITHMS.md").read_text()
    assert spec.summary in catalog, (
        f"docs/ALGORITHMS.md must carry the registry summary for "
        f"{name!r} verbatim"
    )


def test_unknown_walker_and_design_are_rejected(tiny_platform):
    with pytest.raises(EstimationError):
        get_walker("no-such-walker")
    with pytest.raises(EstimationError):
        MicroblogAnalyzer(tiny_platform, algorithm="no-such-walker")
    with pytest.raises(EstimationError):
        MicroblogAnalyzer(tiny_platform, algorithm="ma-tarw", graph_design="social")


# ---------------------------------------------------------- behavioral contract
@pytest.mark.parametrize("name", walker_names())
def test_every_walker_runs_the_same_contract(tiny_platform, name):
    analyzer = MicroblogAnalyzer(tiny_platform, algorithm=name, seed=3)
    result = analyzer.estimate(QUERY, budget=CONTRACT_BUDGET)
    assert result.algorithm.startswith(name)
    assert result.cost_total <= CONTRACT_BUDGET
    assert result.trace, "every walker must emit at least the final trace point"
    assert result.trace[-1].cost == result.cost_total
    assert result.query is QUERY
    # Rerunning with the same seed is bit-identical (seeded RNG, no wall clock).
    again = MicroblogAnalyzer(tiny_platform, algorithm=name, seed=3).estimate(
        QUERY, budget=CONTRACT_BUDGET
    )
    assert again.value == result.value
    assert again.cost_total == result.cost_total


# ------------------------------------------------------ worker-count invariance
@pytest.mark.parametrize("name", NEW_WALKERS)
def test_new_walkers_are_worker_count_invariant(tiny_platform, name):
    def run(n_workers):
        analyzer = MicroblogAnalyzer(
            tiny_platform, algorithm=name, seed=5,
            n_workers=n_workers, executor="thread",
        )
        return analyzer.estimate(QUERY, budget=PARALLEL_BUDGET)

    one, three = run(1), run(3)
    assert one.value == three.value
    assert one.cost_total == three.cost_total
    assert one.cost_by_kind == three.cost_by_kind
    assert one.num_samples == three.num_samples
    assert [(p.cost, p.estimate) for p in one.trace] == [
        (p.cost, p.estimate) for p in three.trace
    ]
    assert one.walk_stats is not None and one.walk_stats.n_workers == 1
    assert three.walk_stats.n_workers == 3


# --------------------------------------------------------- fault bit-identity
@pytest.mark.chaos
@pytest.mark.parametrize("name", NEW_WALKERS)
def test_new_walkers_heal_hostile_faults_bit_identically(tiny_platform, name):
    def run(fault_plan=None):
        analyzer = MicroblogAnalyzer(
            tiny_platform, algorithm=name, seed=7, fault_plan=fault_plan
        )
        return analyzer.estimate(QUERY, budget=CONTRACT_BUDGET)

    clean = run()
    faulted = run(fault_plan=FAULT_PROFILES["hostile"])
    assert faulted.value == clean.value
    assert [(p.cost, p.estimate) for p in faulted.trace] == [
        (p.cost, p.estimate) for p in clean.trace
    ]
    clean_kinds = dict(faulted.cost_by_kind)
    retries = clean_kinds.pop(RETRIES, 0)
    assert clean_kinds == dict(clean.cost_by_kind)
    assert retries > 0, "the hostile profile must actually exercise the retries"
    assert RETRIES not in clean.cost_by_kind
    assert faulted.diagnostics.get("fault_restarts", 0.0) == 0.0


# ------------------------------------------------------------------ CLI drift
def _parser_options():
    import argparse

    from repro.cli import build_parser

    options = set()
    stack = [build_parser()]
    while stack:
        for action in stack.pop()._actions:
            options.update(o for o in action.option_strings if o.startswith("--"))
            if isinstance(action, argparse._SubParsersAction):
                stack.extend(action.choices.values())
    return options


def test_registry_names_reach_the_cli():
    from repro.cli import build_parser

    parser = build_parser()
    estimate = None
    for action in parser._actions:
        if getattr(action, "choices", None) and not action.option_strings:
            estimate = action.choices["estimate"]
    assert estimate is not None
    algorithm_action = next(
        a for a in estimate._actions if "--algorithm" in a.option_strings
    )
    assert tuple(algorithm_action.choices) == walker_names()


@pytest.mark.parametrize("doc", ["docs/API.md", "README.md"])
def test_documented_flags_exist_in_the_parser(doc):
    options = _parser_options()
    text = (REPO_ROOT / doc).read_text()
    documented = set(re.findall(r"(?<![\w-])(--[a-z][a-z-]+)\b", text))
    # Flags documented for other tools (pytest, pip, ...) are fenced off by
    # only scanning repro invocations' option spellings.
    unknown = {flag for flag in documented if flag not in options}
    # bench/pytest flags documented alongside repro's own, not parser options
    allowed = {"--quick", "--full", "--cov", "--benchmark-only"}
    assert unknown <= allowed, f"{doc} documents unknown flags: {sorted(unknown)}"


@pytest.mark.parametrize("doc", ["docs/ALGORITHMS.md", "README.md"])
def test_docs_name_every_registered_walker(doc):
    text = (REPO_ROOT / doc).read_text()
    for name in walker_names():
        assert name in text, f"{doc} must mention the registered walker {name!r}"
