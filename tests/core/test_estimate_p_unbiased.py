"""Statistical correctness of ESTIMATE-p (Algorithm 2) and Eq. 6.

On a graph small enough to enumerate, the selection probabilities of §5
have exact closed values computed here by an independent memoized
recursion.  Against that ground truth we pin:

* the deterministic DP (``p_method="dp"``) reproduces Eq. 6 *exactly*;
* the sampling estimator (Algorithm 2 as printed) is *unbiased*: a
  seeded Monte-Carlo mean lands within tolerance of the exact value;
* actual walk instances visit each node with frequency p(u) — the
  property that makes Hansen–Hurwitz reweighting work at all;
* with exact probabilities, the Hansen–Hurwitz COUNT estimator built
  from walk visits is unbiased for the node count.

The fixture graph (levels grow downward; seeds are the bottom sinks):

        A       B          level 0 (local roots)
       / \\     / \\
      C   D---+   E        level 1
       \\ / \\    /
        F     G            level 2 (sinks F, G)

A second variant adds D to the seed set: the paper states Eq. 6 with
seeds assumed to be sinks, and the implementation's ``start(u)`` term
generalises it to recent posters that still have down-neighbors.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.tarw import MATARWEstimator, TARWConfig

pytestmark = pytest.mark.statistical

A, B, C, D, E, F, G = range(7)
LEVELS = {A: 0, B: 0, C: 1, D: 1, E: 1, F: 2, G: 2}
EDGES = [(A, C), (A, D), (B, D), (B, E), (C, F), (D, F), (D, G), (E, G)]
SEED_SETS = {"sink-seeds": (F, G), "mid-level-seed": (D, F, G)}
N_DRAWS = 20_000


class EnumerableDAG:
    """A fully-classified level-by-level oracle over a hand-built DAG."""

    def __init__(self, levels, edges):
        self.levels = dict(levels)
        self._up = {node: [] for node in levels}
        self._down = {node: [] for node in levels}
        for parent, child in edges:
            assert levels[parent] < levels[child], "edges must point down-level"
            self._down[parent].append(child)
            self._up[child].append(parent)

    def up_neighbors(self, node):
        return list(self._up[node])

    def down_neighbors(self, node):
        return list(self._down[node])

    def level_of(self, node):
        return self.levels[node]

    def classified_nodes(self):
        return list(self.levels)


def exact_probabilities(dag, seeds):
    """Eq. 6 by direct memoized recursion — deliberately *not* the
    level-sorted DP under test."""
    start = 1.0 / len(seeds)
    p_up, p_down = {}, {}

    def up(u):
        if u not in p_up:
            p_up[u] = (start if u in seeds else 0.0) + sum(
                up(v) / len(dag.up_neighbors(v)) for v in dag.down_neighbors(u)
            )
        return p_up[u]

    def down(u):
        if u not in p_down:
            ups = dag.up_neighbors(u)
            p_down[u] = up(u) if not ups else sum(
                down(v) / len(dag.down_neighbors(v)) for v in ups
            )
        return p_down[u]

    for node in dag.levels:
        up(node)
        down(node)
    return p_up, p_down


def make_estimator(seeds, seed=12345):
    """A walker wired to the fixture DAG with Algorithm 2 sampling only:
    no root cache, and the pool-backup shortcut never fires because the
    pools are never populated."""
    config = TARWConfig(p_method="estimate", cache_root_probabilities=False)
    estimator = MATARWEstimator(
        context=None, oracle=EnumerableDAG(LEVELS, EDGES), config=config, seed=seed
    )
    estimator._seeds = sorted(seeds)
    estimator._seed_set = frozenset(seeds)
    return estimator


# ----------------------------------------------------------------------
# exact layer: the DP reproduces Eq. 6 to machine precision
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", sorted(SEED_SETS))
def test_dp_matches_exact_recursion(variant):
    seeds = SEED_SETS[variant]
    estimator = make_estimator(seeds)
    estimator._run_dp_if_dirty()
    exact_up, exact_down = exact_probabilities(estimator.oracle, set(seeds))
    for node in LEVELS:
        assert estimator._dp_p_up[node] == pytest.approx(exact_up[node], abs=1e-12)
        assert estimator._dp_p_down[node] == pytest.approx(exact_down[node], abs=1e-12)


@pytest.mark.parametrize("variant", sorted(SEED_SETS))
def test_probability_mass_conserved(variant):
    """Every up-walk ends at exactly one root; every down-walk at one
    sink — so the exact p values sum to 1 over each boundary."""
    seeds = SEED_SETS[variant]
    dag = EnumerableDAG(LEVELS, EDGES)
    exact_up, exact_down = exact_probabilities(dag, set(seeds))
    roots = [n for n in LEVELS if not dag.up_neighbors(n)]
    sinks = [n for n in LEVELS if not dag.down_neighbors(n)]
    assert sum(exact_up[n] for n in roots) == pytest.approx(1.0, abs=1e-12)
    assert sum(exact_down[n] for n in sinks) == pytest.approx(1.0, abs=1e-12)


# ----------------------------------------------------------------------
# sampling layer: Algorithm 2 is unbiased
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", sorted(SEED_SETS))
def test_estimate_p_up_is_unbiased(variant):
    seeds = SEED_SETS[variant]
    estimator = make_estimator(seeds)
    exact_up, _ = exact_probabilities(estimator.oracle, set(seeds))
    for node in LEVELS:
        mean = sum(estimator._estimate_p_up(node) for _ in range(N_DRAWS)) / N_DRAWS
        assert mean == pytest.approx(exact_up[node], abs=0.02), f"p_up({node})"


@pytest.mark.parametrize("variant", sorted(SEED_SETS))
def test_estimate_p_down_is_unbiased(variant):
    seeds = SEED_SETS[variant]
    estimator = make_estimator(seeds)
    _, exact_down = exact_probabilities(estimator.oracle, set(seeds))
    for node in LEVELS:
        mean = sum(estimator._estimate_p_down(node) for _ in range(N_DRAWS)) / N_DRAWS
        assert mean == pytest.approx(exact_down[node], abs=0.02), f"p_down({node})"


# ----------------------------------------------------------------------
# walk layer: visit frequencies realise p, and HH reweighting is unbiased
# ----------------------------------------------------------------------
def _run_walks(estimator, n):
    up_visits, down_visits = Counter(), Counter()
    for _ in range(n):
        start = estimator.rng.choice(estimator._seeds)
        up_path = estimator._walk_up(start)
        down_path = estimator._walk_down(up_path[-1])
        up_visits.update(up_path)      # levels strictly decrease going up,
        down_visits.update(down_path)  # so a node appears at most once
    return up_visits, down_visits


@pytest.mark.parametrize("variant", sorted(SEED_SETS))
def test_walk_visit_frequencies_match_p(variant):
    seeds = SEED_SETS[variant]
    estimator = make_estimator(seeds)
    exact_up, exact_down = exact_probabilities(estimator.oracle, set(seeds))
    up_visits, down_visits = _run_walks(estimator, N_DRAWS)
    for node in LEVELS:
        assert up_visits[node] / N_DRAWS == pytest.approx(exact_up[node], abs=0.015)
        assert down_visits[node] / N_DRAWS == pytest.approx(exact_down[node], abs=0.015)


@pytest.mark.parametrize("variant", sorted(SEED_SETS))
def test_hansen_hurwitz_count_is_unbiased(variant):
    """Σ visits(u)/p(u) over both phases, normalised by 2·instances,
    estimates COUNT(*) — Eq. 7 with exact probabilities plugged in."""
    seeds = SEED_SETS[variant]
    estimator = make_estimator(seeds, seed=777)
    exact_up, exact_down = exact_probabilities(estimator.oracle, set(seeds))
    up_visits, down_visits = _run_walks(estimator, N_DRAWS)
    estimate = (
        sum(count / exact_up[node] for node, count in up_visits.items())
        + sum(count / exact_down[node] for node, count in down_visits.items())
    ) / (2 * N_DRAWS)
    assert estimate == pytest.approx(len(LEVELS), rel=0.02)
