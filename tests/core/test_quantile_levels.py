"""Tests for the adaptive quantile level index (§4.2.3 extension)."""

import pytest

from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.core.analyzer import MicroblogAnalyzer
from repro.core.graph_builder import QueryContext
from repro.core.interval import quantile_index_from_pilot
from repro.core.levels import EdgeKind, QuantileLevelIndex
from repro.core.query import count_users
from repro.errors import EstimationError, QueryError
from repro.groundtruth import exact_value


class TestQuantileLevelIndex:
    def test_level_of_respects_boundaries(self):
        index = QuantileLevelIndex(boundaries=(10.0, 20.0, 30.0))
        assert index.num_levels == 4
        assert index.level_of(5.0) == 0
        assert index.level_of(10.0) == 1  # boundary belongs to the later level
        assert index.level_of(15.0) == 1
        assert index.level_of(29.9) == 2
        assert index.level_of(31.0) == 3

    def test_classify_ternary(self):
        index = QuantileLevelIndex(boundaries=(1.0,))
        assert index.classify(0, 0) is EdgeKind.INTRA
        assert index.classify(0, 1) is EdgeKind.ADJACENT
        assert index.classify(0, 2) is EdgeKind.CROSS

    def test_validation(self):
        with pytest.raises(QueryError):
            QuantileLevelIndex(boundaries=())
        with pytest.raises(QueryError):
            QuantileLevelIndex(boundaries=(2.0, 1.0))
        with pytest.raises(QueryError):
            QuantileLevelIndex(boundaries=(1.0, 1.0))

    def test_from_times_balances_mass(self):
        # bursty times: quantile buckets get narrower through the burst
        times = [float(t) for t in range(100)] + [100.0 + t / 100 for t in range(300)]
        index = QuantileLevelIndex.from_times(times, levels=8)
        counts = {}
        for t in times:
            counts[index.level_of(t)] = counts.get(index.level_of(t), 0) + 1
        sizes = sorted(counts.values())
        assert max(sizes) <= 3 * max(min(sizes), 1)

    def test_from_times_validation(self):
        with pytest.raises(QueryError):
            QuantileLevelIndex.from_times([1.0, 2.0], levels=1)
        with pytest.raises(QueryError):
            QuantileLevelIndex.from_times([1.0], levels=4)
        with pytest.raises(QueryError):
            QuantileLevelIndex.from_times([5.0] * 10, levels=4)


class TestPilotBuilder:
    def test_builds_index_from_api_data(self, small_platform):
        client = CachingClient(SimulatedMicroblogClient(small_platform))
        context = QueryContext(client, count_users("privacy"))
        index = quantile_index_from_pilot(context, levels=12, pilot_steps=50, seed=1)
        assert 2 <= index.num_levels <= 12
        horizon = small_platform.now
        assert all(0 <= b <= horizon for b in index.boundaries)

    def test_estimation_with_quantile_index(self, small_platform):
        client = CachingClient(SimulatedMicroblogClient(small_platform))
        context = QueryContext(client, count_users("privacy"))
        index = quantile_index_from_pilot(context, levels=20, pilot_steps=60, seed=2)
        query = count_users("privacy")
        truth = exact_value(small_platform.store, query)
        analyzer = MicroblogAnalyzer(
            small_platform, algorithm="ma-tarw", level_index=index, seed=3
        )
        result = analyzer.estimate(query, budget=10_000)
        assert result.value is not None
        assert result.relative_error(truth) < 0.6

    def test_unseedable_keyword_raises(self, small_platform):
        client = CachingClient(SimulatedMicroblogClient(small_platform))
        context = QueryContext(client, count_users("nobody-says-this"))
        with pytest.raises(EstimationError):
            quantile_index_from_pilot(context, seed=4)
