"""Cross-query reuse pins: a cache hit ≡ the recomputation it replaces.

Covers the :class:`~repro.core.reuse.SharedQueryState` seam directly
(the satellite regression for the QueryContext-lifetime fix), and at the
service level under a hostile fault profile and on the mmap data plane.
"""

from __future__ import annotations

import pytest

from repro.api.faults import FAULT_PROFILES
from repro.api.resilient import RetryPolicy
from repro.core.analyzer import MicroblogAnalyzer
from repro.core.query import count_users
from repro.core.reuse import QueryStateHandle, SharedQueryState, platform_fingerprint
from repro.obs import Observability, RecordingSink
from repro.obs.export import trace_lines
from repro.platform import PlatformConfig, build_platform

from tests.conftest import tiny_keywords
from tests.service.conftest import BUDGET, make_service, service_workload, snapshot

pytestmark = pytest.mark.service


def _estimate(platform, keyword, *, reuse=None, seed=3):
    sink = RecordingSink()
    analyzer = MicroblogAnalyzer(
        platform,
        interval="auto",
        seed=seed,
        obs=Observability(trace_sink=sink),
        reuse=reuse,
    )
    result = analyzer.estimate(count_users(keyword), BUDGET)
    trace = "\n".join(trace_lines(sink.records)).encode("ascii")
    return result, trace


class TestSequentialPilotReuse:
    """The satellite regression: two sequential analyzer estimates on the
    same keyword run the pilot exactly once — and hit ≡ miss bitwise."""

    def test_pilot_runs_exactly_once(self, tiny_platform):
        state = SharedQueryState(seed=3)
        first, trace_first = _estimate(tiny_platform, "privacy", reuse=state)
        assert state.stats()["pilot_runs"] == 1
        assert state.stats()["interval_misses"] == 1
        second, trace_second = _estimate(tiny_platform, "privacy", reuse=state)
        assert state.stats()["pilot_runs"] == 1  # the regression pin
        assert state.stats()["interval_hits"] == 1
        assert second.value == first.value
        assert second.cost_by_kind == first.cost_by_kind
        assert trace_second == trace_first

    def test_hit_identical_to_fresh_state_run(self, tiny_platform):
        state = SharedQueryState(seed=3)
        _estimate(tiny_platform, "privacy", reuse=state)  # prime the cache
        warm, warm_trace = _estimate(tiny_platform, "privacy", reuse=state)
        cold, cold_trace = _estimate(
            tiny_platform, "privacy", reuse=SharedQueryState(seed=3)
        )
        assert warm.value == cold.value
        assert warm.cost_by_kind == cold.cost_by_kind
        assert warm_trace == cold_trace

    def test_invalidate_forces_fresh_pilot(self, tiny_platform):
        state = SharedQueryState(seed=3)
        first, trace_first = _estimate(tiny_platform, "privacy", reuse=state)
        state.invalidate()
        assert len(state) == 0
        second, trace_second = _estimate(tiny_platform, "privacy", reuse=state)
        assert state.stats()["pilot_runs"] == 2
        # A fresh pilot from the same keyword-scoped stream is the same
        # pilot — invalidation costs CPU, never changes answers.
        assert second.value == first.value
        assert trace_second == trace_first

    def test_keyword_scoped_invalidate(self, tiny_platform):
        state = SharedQueryState(seed=3)
        _estimate(tiny_platform, "privacy", reuse=state)
        _estimate(tiny_platform, "boston", reuse=state)
        assert state.stats()["pilot_runs"] == 2
        state.invalidate("privacy")
        _estimate(tiny_platform, "boston", reuse=state)  # still cached
        assert state.stats()["pilot_runs"] == 2
        _estimate(tiny_platform, "privacy", reuse=state)  # re-piloted
        assert state.stats()["pilot_runs"] == 3


class TestQueryStateHandle:
    def test_invalidate_clears_in_place_and_bumps_epoch(self):
        handle = QueryStateHandle()
        first_mentions, views = handle.first_mentions, handle.views
        first_mentions[("k", 1)] = 2.0
        views[1] = object()
        assert len(handle) == 2
        epoch = handle.epoch
        handle.invalidate()
        assert handle.epoch == epoch + 1
        # Cleared *in place*: contexts already bound to the dicts see it.
        assert handle.first_mentions is first_mentions and not first_mentions
        assert handle.views is views and not views
        assert len(handle) == 0


class TestServiceWarmEqualsCold:
    def test_hostile_faults(self, tiny_platform):
        """Reuse stays bit-identical when every request can time out or
        flake — the ledger replays the *faults* too (retries column)."""
        plan = FAULT_PROFILES["hostile"]
        kwargs = dict(fault_plan=plan, retry_policy=RetryPolicy(), seed=13)
        cold_service = make_service(tiny_platform, **kwargs)
        cold = cold_service.run_workload(service_workload(), n_threads=1)
        warm_service = make_service(tiny_platform, **kwargs)
        warm_service.run_workload(service_workload(), n_threads=4)
        warm = warm_service.run_workload(service_workload(), n_threads=4)
        assert snapshot(warm) == snapshot(cold)
        assert all(o.cached for o in warm if o.status == "ok")
        # Faults actually fired: the budget-exempt retries column shows up.
        assert any(
            o.result is not None and o.result.cost_by_kind.get("retries", 0) > 0
            for o in cold
        )

    def test_mmap_plane(self):
        """The memoised first-mention columns stay sound when the frozen
        columns live on disk (materialised copies, not dangling views)."""
        platform = build_platform(
            PlatformConfig(
                num_users=400,
                keywords=tiny_keywords(),
                background_posts_mean=3.0,
                seed=11,
                data_plane="mmap",
                build_chunk_rows=911,
            )
        )
        assert platform.store.storage == "mmap"
        service = make_service(platform)
        cold = service.run_workload(service_workload(), n_threads=4)
        warm = service.run_workload(service_workload(), n_threads=4)
        assert snapshot(warm) == snapshot(cold)
        assert service.stats()["reuse_column_hits"] > 0


def test_platform_fingerprint_distinguishes_platforms(tiny_platform):
    other = build_platform(
        PlatformConfig(
            num_users=400,
            keywords=tiny_keywords(),
            background_posts_mean=3.0,
            seed=11,
        )
    )
    assert platform_fingerprint(tiny_platform) != platform_fingerprint(other)
    assert platform_fingerprint(other) == platform_fingerprint(other)
