"""Hypothesis stress: random tenant/keyword/cancel interleavings.

For any generated workload the service must (a) come back at all — no
deadlock between the reuse locks, result-cache lock and engine pool;
(b) keep every tenant's reservations within its allowance; (c) keep
per-tenant meters free of cross-contamination; and (d) answer the same
whether it ran serially or on four threads.

Budgets are deliberately small (some queries legitimately fail with
budget exhaustion) so the failure paths get interleaved too.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.query import FOLLOWERS, avg_of, count_users
from repro.service import EstimationService, QueryRequest, TenantConfig

from tests.service.conftest import snapshot

pytestmark = [pytest.mark.service, pytest.mark.statistical]

KEYWORDS = ("privacy", "boston")
TENANTS = ("alpha", "beta", "gamma")

query_specs = st.lists(
    st.tuples(
        st.sampled_from(TENANTS),
        st.sampled_from(KEYWORDS),
        st.booleans(),  # count_users vs avg_of(FOLLOWERS)
        st.integers(min_value=300, max_value=800),
        st.booleans(),  # cancel this one if it lands in a queue
    ),
    min_size=1,
    max_size=8,
)


def _tenants():
    return [
        TenantConfig("alpha", budget=2_000, admission="queue"),
        TenantConfig("beta", budget=1_500),
        TenantConfig("gamma"),  # unlimited
    ]


def _requests(specs):
    return [
        QueryRequest(
            tenant,
            count_users(keyword) if is_count else avg_of(keyword, FOLLOWERS),
            budget,
            tag=f"q{i}",
        )
        for i, (tenant, keyword, is_count, budget, _cancel) in enumerate(specs)
    ]


def _drive(platform, specs, n_threads):
    """One full service lifetime: submit (cancelling some queued ones),
    top up alpha mid-stream, execute, and return everything observable."""
    service = EstimationService(platform, _tenants(), seed=29)
    tickets = []
    for spec, request in zip(specs, _requests(specs)):
        ticket = service.submit(request)
        if spec[4] and ticket.status == "queued":
            service.cancel(ticket.request_id)
        tickets.append(ticket)
    service.top_up("alpha", 1_000)
    service.execute_pending(n_threads=n_threads)
    outcomes = [service.outcome(t.request_id) for t in tickets]
    bills = {name: service.tenant_bill(name) for name in TENANTS}
    return service, outcomes, bills


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(specs=query_specs)
def test_interleavings_safe_and_thread_invariant(tiny_platform, specs):
    serial_service, serial, serial_bills = _drive(tiny_platform, specs, n_threads=1)
    threaded_service, threaded, threaded_bills = _drive(
        tiny_platform, specs, n_threads=4
    )

    # (a) It returned — and every submission has a terminal-or-parked status.
    assert len(serial) == len(specs)
    for outcome in serial:
        assert outcome.status in ("ok", "failed", "rejected", "queued", "cancelled")

    # (b) Reservations never exceed any allowance, and a tenant's billed
    # budgeted spend never exceeds what it reserved.
    for name in TENANTS:
        tenant = serial_service.tenants[name]
        if tenant.allowance is not None:
            assert tenant.reserved <= tenant.allowance
        budgeted = sum(
            calls
            for kind, calls in serial_bills[name].items()
            if kind != "retries"
        )
        assert budgeted <= tenant.reserved or tenant.allowance is None

    # (c) No meter cross-contamination: the global fold of per-tenant
    # bills equals the fold of per-outcome costs — nothing double-billed,
    # nothing leaked across tenants.
    per_outcome: dict = {}
    for outcome in serial:
        if outcome.result is not None:
            fold = per_outcome.setdefault(outcome.request.tenant, {})
            for kind, calls in outcome.result.cost_by_kind.items():
                if calls:
                    fold[kind] = fold.get(kind, 0) + calls
    for name in TENANTS:
        bill = {k: v for k, v in serial_bills[name].items() if v}
        assert bill == per_outcome.get(name, {})

    # (d) Thread-count invariance, down to the trace bytes.
    assert snapshot(threaded) == snapshot(serial)
    assert threaded_bills == serial_bills
    assert threaded_service.stats() == serial_service.stats()
