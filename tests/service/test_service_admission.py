"""Admission control pins: exact budgets, FIFO queues, rate limits.

Admission never leaves the serial phase, so these run without threads;
what they pin is the *arithmetic* — exactness at the budget boundary,
no overtaking in the queue, limiter behaviour across clock jumps.
"""

from __future__ import annotations

import pytest

from repro.core.query import count_users
from repro.errors import ReproError
from repro.service import EstimationService, QueryRequest, TenantConfig

pytestmark = pytest.mark.service


def _req(tenant, budget, keyword="privacy", tag=""):
    return QueryRequest(tenant, count_users(keyword), budget, tag=tag)


def _service(tiny_platform, *tenants, **overrides):
    kwargs = dict(seed=7)
    kwargs.update(overrides)
    return EstimationService(tiny_platform, tenants, **kwargs)


class TestBudgetBoundary:
    def test_exact_boundary_inclusive_then_exclusive(self, tiny_platform):
        service = _service(tiny_platform, TenantConfig("t", budget=10_000))
        first = service.submit(_req("t", 5_000))
        second = service.submit(_req("t", 5_000))  # lands exactly on 10 000
        third = service.submit(_req("t", 1))  # one call past the boundary
        assert (first.status, second.status) == ("admitted", "admitted")
        assert third.status == "rejected" and third.reason == "over-budget"

    def test_zero_budget_tenant_rejects(self, tiny_platform):
        service = _service(tiny_platform, TenantConfig("broke", budget=0))
        ticket = service.submit(_req("broke", 1))
        assert ticket.status == "rejected" and ticket.reason == "over-budget"

    def test_zero_budget_tenant_queues(self, tiny_platform):
        service = _service(
            tiny_platform, TenantConfig("broke", budget=0, admission="queue")
        )
        ticket = service.submit(_req("broke", 1))
        assert ticket.status == "queued"
        assert service.queue_depth("broke") == 1
        assert service.top_up("broke", 1) == [ticket.request_id]
        assert service.outcome(ticket.request_id).status == "admitted"

    def test_unlimited_tenant_never_rejected_on_budget(self, tiny_platform):
        service = _service(tiny_platform, TenantConfig("open"))
        for _ in range(5):
            assert service.submit(_req("open", 10**9)).status == "admitted"

    def test_unknown_tenant_and_invalid_budget(self, tiny_platform):
        service = _service(tiny_platform, TenantConfig("t", budget=100))
        ghost = service.submit(_req("ghost", 10))
        assert (ghost.status, ghost.reason) == ("rejected", "unknown-tenant")
        broke = service.submit(_req("t", 0))
        assert (broke.status, broke.reason) == ("rejected", "invalid-budget")


class TestQueueing:
    def test_fifo_no_overtaking(self, tiny_platform):
        """A later small request never overtakes an earlier large one —
        head-of-line blocking is part of the determinism contract."""
        service = _service(
            tiny_platform, TenantConfig("t", budget=0, admission="queue")
        )
        big = service.submit(_req("t", 5_000, tag="big"))
        small = service.submit(_req("t", 100, tag="small"))
        # Enough for `small`, not for `big`: nothing may drain.
        assert service.top_up("t", 1_000) == []
        assert service.queue_depth("t") == 2
        assert service.outcome(small.request_id).status == "queued"
        # Now both fit, in order.
        assert service.top_up("t", 5_000) == [big.request_id, small.request_id]
        assert service.queue_depth("t") == 0

    def test_cancel_queued_only(self, tiny_platform):
        service = _service(
            tiny_platform, TenantConfig("t", budget=3_000, admission="queue")
        )
        admitted = service.submit(_req("t", 3_000))
        queued = service.submit(_req("t", 3_000))
        assert queued.status == "queued" and service.queue_depth("t") == 1
        assert service.cancel(queued.request_id) is True
        assert service.queue_depth("t") == 0
        assert service.outcome(queued.request_id).status == "cancelled"
        assert service.cancel(queued.request_id) is False  # already gone
        assert service.cancel(admitted.request_id) is False  # running state stands
        assert service.cancel(99_999) is False  # unknown id
        # A cancelled request releases nothing (it reserved nothing), and
        # a top-up after cancel admits nothing.
        assert service.top_up("t", 0) == []

    def test_queued_request_runs_after_top_up(self, tiny_platform):
        service = _service(
            tiny_platform, TenantConfig("t", budget=0, admission="queue")
        )
        ticket = service.submit(_req("t", 3_000))
        assert service.execute_pending() == []  # queued ≠ admitted
        service.top_up("t", 3_000)
        outcomes = service.execute_pending()
        assert [o.request_id for o in outcomes] == [ticket.request_id]
        assert outcomes[0].status == "ok"

    def test_unknown_tenant_top_up_raises(self, tiny_platform):
        service = _service(tiny_platform, TenantConfig("t", budget=1))
        with pytest.raises(ReproError):
            service.top_up("ghost", 10)


class TestRateLimits:
    def test_sleep_policy_accrues_wait_and_admits(self, tiny_platform):
        service = _service(
            tiny_platform,
            TenantConfig("t", rate_limit_calls=2, rate_limit_window=60.0),
        )
        tickets = [service.submit(_req("t", 100, tag=f"q{i}")) for i in range(5)]
        assert [t.status for t in tickets] == ["admitted"] * 5
        tenant = service.tenants["t"]
        # Submissions 3–5 each waited out a window on the tenant's clock.
        assert tenant.wait > 0
        assert tenant.clock.now() >= 2 * 60.0

    def test_raise_policy_rejects(self, tiny_platform):
        service = _service(
            tiny_platform,
            TenantConfig(
                "t", rate_limit_calls=2, rate_limit_window=60.0, rate_policy="raise"
            ),
        )
        tickets = [service.submit(_req("t", 100)) for _ in range(4)]
        assert [t.status for t in tickets] == [
            "admitted",
            "admitted",
            "rejected",
            "rejected",
        ]
        assert tickets[2].reason == "rate-limited"
        # The limiter refusal burned no allowance.
        assert service.tenants["t"].reserved == 200

    def test_rate_limited_rejection_beats_budget_check(self, tiny_platform):
        """The limiter gates the front door: an over-limit submission is
        'rate-limited', not 'over-budget', even when it also wouldn't fit."""
        service = _service(
            tiny_platform,
            TenantConfig(
                "t",
                budget=100,
                rate_limit_calls=1,
                rate_limit_window=60.0,
                rate_policy="raise",
            ),
        )
        service.submit(_req("t", 100))
        ticket = service.submit(_req("t", 10**6))
        assert ticket.reason == "rate-limited"


class TestBilling:
    def test_bill_reconciles_with_outcomes(self, tiny_platform):
        service = _service(
            tiny_platform,
            TenantConfig("a", budget=50_000),
            TenantConfig("b", budget=50_000),
        )
        requests = [
            _req("a", 4_000, "privacy", tag="a1"),
            _req("b", 4_000, "boston", tag="b1"),
            _req("a", 4_000, "boston", tag="a2"),
        ]
        outcomes = service.run_workload(requests, n_threads=2)
        for name in ("a", "b"):
            folded: dict = {}
            for outcome in outcomes:
                if outcome.request.tenant == name and outcome.result is not None:
                    for kind, calls in outcome.result.cost_by_kind.items():
                        if calls:
                            folded[kind] = folded.get(kind, 0) + calls
            bill = {k: v for k, v in service.tenant_bill(name).items() if v}
            assert bill == folded
            spent = sum(folded.get(k, 0) for k in ("search", "connections", "timeline"))
            assert spent <= service.tenants[name].reserved

    def test_duplicate_tenant_config_rejected(self, tiny_platform):
        with pytest.raises(ReproError):
            _service(
                tiny_platform, TenantConfig("t", budget=1), TenantConfig("t", budget=2)
            )
