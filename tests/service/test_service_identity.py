"""Concurrency/determinism pins: concurrent submission ≡ serial.

The acceptance bar: for the fixed workload (8 queries, 3 tenants), the
estimates, per-tenant CostMeter columns and exported per-query trace
bytes are identical at ``n_threads ∈ {1, 4}`` — and the service-level
telemetry stream is too.
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, Observability, RecordingSink
from repro.obs.export import metrics_json, trace_lines

from tests.service.conftest import bills, make_service, service_workload, snapshot

pytestmark = pytest.mark.service


@pytest.fixture(scope="module")
def serial_run(tiny_platform):
    service = make_service(tiny_platform)
    outcomes = service.run_workload(service_workload(), n_threads=1)
    return service, outcomes


@pytest.fixture(scope="module")
def threaded_run(tiny_platform):
    service = make_service(tiny_platform)
    outcomes = service.run_workload(service_workload(), n_threads=4)
    return service, outcomes


def test_workload_completes(serial_run):
    service, outcomes = serial_run
    assert len(outcomes) == 8
    assert [o.status for o in outcomes] == ["ok"] * 8
    assert {o.request.tenant for o in outcomes} == {"growth", "ads", "research"}


def test_concurrent_outcomes_identical_to_serial(serial_run, threaded_run):
    _, serial = serial_run
    _, threaded = threaded_run
    assert snapshot(threaded) == snapshot(serial)


def test_per_tenant_meter_columns_identical(serial_run, threaded_run):
    serial_service, serial = serial_run
    threaded_service, _ = threaded_run
    assert bills(threaded_service) == bills(serial_service)
    # ... and the bill reconciles exactly against the tenant's own outcomes.
    for name in serial_service.tenants:
        folded: dict = {}
        for outcome in serial:
            if outcome.request.tenant == name and outcome.result is not None:
                for kind, calls in outcome.result.cost_by_kind.items():
                    folded[kind] = folded.get(kind, 0) + calls
        bill = serial_service.tenant_bill(name)
        assert {k: v for k, v in bill.items() if v} == {
            k: v for k, v in folded.items() if v
        }


def test_reuse_counters_thread_count_invariant(serial_run, threaded_run):
    serial_service, _ = serial_run
    threaded_service, _ = threaded_run
    assert threaded_service.stats() == serial_service.stats()
    # The duplicate submissions in the fixed workload must have shared.
    assert serial_service.stats()["result_hits"] > 0
    assert serial_service.stats()["reuse_interval_hits"] > 0


@pytest.mark.parametrize("threads", [2, 8])
def test_other_thread_counts_match(tiny_platform, serial_run, threads):
    _, serial = serial_run
    service = make_service(tiny_platform)
    outcomes = service.run_workload(service_workload(), n_threads=threads)
    assert snapshot(outcomes) == snapshot(serial)


def test_warm_pass_bit_identical_with_cache_hits(serial_run):
    """Re-running the workload on the warm service changes nothing but
    the hit counters — the reuse-cache acceptance criterion."""
    service, cold = serial_run
    before = service.stats()
    warm = service.run_workload(service_workload(), n_threads=4)
    assert snapshot(warm) == snapshot(cold)
    assert all(outcome.cached for outcome in warm)
    after = service.stats()
    assert after["result_hits"] >= before["result_hits"] + len(warm)
    assert after["reuse_pilot_runs"] == before["reuse_pilot_runs"]  # no new pilots


def test_service_telemetry_stream_deterministic(tiny_platform):
    """The service's own obs plane (admission + query events, per-tenant
    metrics, queue gauges) is emitted from serial phases only, so its
    exported bytes are thread-count-invariant too."""

    def run(threads):
        sink = RecordingSink()
        obs = Observability(trace_sink=sink, metrics=MetricsRegistry())
        service = make_service(tiny_platform, obs=obs)
        service.run_workload(service_workload(), n_threads=threads)
        return "\n".join(trace_lines(sink.records)), metrics_json(obs.metrics)

    assert run(1) == run(4)


def test_service_trace_has_service_spans(tiny_platform):
    sink = RecordingSink()
    obs = Observability(trace_sink=sink)
    service = make_service(tiny_platform, obs=obs)
    service.run_workload(service_workload(), n_threads=2)
    names = [record["name"] for record in sink.records]
    assert names.count("service.admit") == 8
    assert names.count("service.query") == 8
    assert "service.batch" in names
    batch = next(r for r in sink.records if r["name"] == "service.batch")
    assert batch["kind"] == "span"
    assert batch["queries"] == 8 and batch["completed"] == 8
