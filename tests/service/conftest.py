"""Shared fixtures for the service tier.

One fixed workload — 8 queries across 3 tenants, two keywords, mixed
aggregates, with deliberate exact duplicates — drives every identity
test, so a determinism break shows up consistently across the tier.
The acceptance bar this encodes: estimates, per-tenant CostMeter
columns and exported trace bytes identical at every thread count, and
reuse-cache hits bit-identical to recomputation.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.query import FOLLOWERS, MATCHING_POST_COUNT, avg_of, count_users, sum_of
from repro.service import EstimationService, QueryOutcome, QueryRequest, TenantConfig

BUDGET = 4_000
"""One budget tier for the whole workload: the keyword→interval cache is
keyed on (keyword, budget), so a shared tier is what lets overlapping
queries share pilots — the realistic serving shape."""


def service_tenants() -> List[TenantConfig]:
    return [
        TenantConfig("growth", budget=64_000),
        TenantConfig("ads", budget=64_000),
        TenantConfig("research"),  # unlimited
    ]


def service_workload() -> List[QueryRequest]:
    """8 queries / 3 tenants / 2 keywords, with exact duplicates.

    Requests 6 and 7 duplicate requests 1 and 2 (same fingerprint from a
    different tenant), so even a cold batch exercises in-batch result
    sharing; the aggregate/measure variety exercises the interval cache
    (same keyword + budget, different query).
    """
    return [
        QueryRequest("growth", count_users("privacy"), BUDGET, tag="q1"),
        QueryRequest("ads", count_users("boston"), BUDGET, tag="q2"),
        QueryRequest("research", avg_of("privacy", FOLLOWERS), BUDGET, tag="q3"),
        QueryRequest("growth", sum_of("boston", MATCHING_POST_COUNT), BUDGET, tag="q4"),
        QueryRequest("ads", avg_of("privacy", MATCHING_POST_COUNT), BUDGET, tag="q5"),
        QueryRequest("research", count_users("privacy"), BUDGET, tag="q6"),
        QueryRequest("ads", count_users("boston"), BUDGET, tag="q7"),
        QueryRequest("research", sum_of("privacy", FOLLOWERS), BUDGET, tag="q8"),
    ]


def make_service(platform, **overrides) -> EstimationService:
    kwargs = dict(tenants=service_tenants(), seed=7)
    kwargs.update(overrides)
    tenants = kwargs.pop("tenants")
    return EstimationService(platform, tenants, **kwargs)


def snapshot(outcomes: List[QueryOutcome]) -> List[Tuple]:
    """Everything the bit-identity contract covers, per outcome."""
    rows = []
    for outcome in outcomes:
        result = outcome.result
        rows.append(
            (
                outcome.status,
                outcome.reason,
                outcome.error,
                None if result is None else result.value,
                None if result is None else result.cost_total,
                None if result is None else tuple(sorted(result.cost_by_kind.items())),
                None if result is None else result.num_samples,
                outcome.trace_bytes(),
            )
        )
    return rows


def bills(service: EstimationService) -> dict:
    return {name: service.tenant_bill(name) for name in sorted(service.tenants)}
