"""Tests for the Theorem 5.1 analysis module — including an exact,
path-enumerated proof of Algorithm 2's unbiasedness."""

import random

import pytest

from repro.analysis.theorem51 import (
    LevelDag,
    enumerate_estimate_paths,
    enumerate_instances,
    exact_estimate_p_distribution,
    exact_instance_variance,
    exact_selection_probabilities,
    theorem51_variance_as_printed,
)
from repro.errors import EstimationError, GraphError
from repro.graph.social_graph import SocialGraph


def path_dag():
    """0(top) - 1 - 2(bottom, seed): the minimal level graph."""
    graph = SocialGraph(edges=[(0, 1), (1, 2)])
    return LevelDag(graph, levels={0: 0, 1: 1, 2: 2}, seeds={2})


def diamond_dag():
    """Seed 3 at the bottom, two middle nodes, one root."""
    graph = SocialGraph(edges=[(0, 1), (0, 2), (1, 3), (2, 3)])
    return LevelDag(graph, levels={0: 0, 1: 1, 2: 1, 3: 2}, seeds={3})


def random_dag(seed, nodes=14, extra_edges=18):
    rng = random.Random(seed)
    levels = {n: rng.randrange(4) for n in range(nodes)}
    graph = SocialGraph(nodes=range(nodes))
    # spanning chain through levels to keep things connected-ish
    ordered = sorted(range(nodes), key=lambda n: levels[n])
    attempts = 0
    while graph.num_edges < extra_edges and attempts < 400:
        attempts += 1
        u, v = rng.sample(range(nodes), 2)
        if levels[u] != levels[v]:
            graph.add_edge(u, v)
    bottom_level = max(levels.values())
    seeds = {n for n in range(nodes) if levels[n] == bottom_level}
    return LevelDag(graph, levels=levels, seeds=seeds)


class TestValidation:
    def test_intra_level_edge_rejected(self):
        graph = SocialGraph(edges=[(0, 1)])
        with pytest.raises(GraphError):
            LevelDag(graph, levels={0: 1, 1: 1}, seeds={0})

    def test_unknown_seed_rejected(self):
        graph = SocialGraph(edges=[(0, 1)])
        with pytest.raises(GraphError):
            LevelDag(graph, levels={0: 0, 1: 1}, seeds={9})

    def test_empty_seed_set_rejected(self):
        graph = SocialGraph(edges=[(0, 1)])
        with pytest.raises(GraphError):
            LevelDag(graph, levels={0: 0, 1: 1}, seeds=set())


class TestSelectionProbabilities:
    def test_path_graph_probabilities_are_one(self):
        p_up, p_down = exact_selection_probabilities(path_dag())
        # single seed, single chain: the walk visits every node surely
        assert p_up == {2: 1.0, 1: 1.0, 0: 1.0}
        assert p_down == {0: 1.0, 1: 1.0, 2: 1.0}

    def test_diamond_probabilities(self):
        p_up, p_down = exact_selection_probabilities(diamond_dag())
        assert p_up[3] == pytest.approx(1.0)
        assert p_up[1] == pytest.approx(0.5)
        assert p_up[2] == pytest.approx(0.5)
        assert p_up[0] == pytest.approx(1.0)  # both middles lead to the root
        assert p_down[0] == pytest.approx(1.0)
        assert p_down[3] == pytest.approx(1.0)

    def test_probability_mass_per_level_bounded(self):
        dag = random_dag(3)
        p_up, _ = exact_selection_probabilities(dag)
        # at each step the walk is at exactly one node, so summed visit
        # probabilities per level never exceed 1
        by_level = {}
        for node, probability in p_up.items():
            by_level.setdefault(dag.levels[node], 0.0)
            by_level[dag.levels[node]] += probability
        for level, mass in by_level.items():
            assert mass <= 1.0 + 1e-9


class TestEstimatePUnbiasedness:
    @pytest.mark.parametrize("dag_seed", range(6))
    def test_exact_mean_equals_p_up_on_random_dags(self, dag_seed):
        """Algorithm 2 is unbiased: E[ω] == p_up, node by node, exactly."""
        dag = random_dag(dag_seed)
        p_up, _ = exact_selection_probabilities(dag)
        for node in dag.graph.nodes():
            mean, variance = exact_estimate_p_distribution(dag, node)
            assert mean == pytest.approx(p_up[node], abs=1e-12)
            assert variance >= -1e-12

    def test_path_probabilities_sum_to_one(self):
        dag = random_dag(9)
        for node in dag.graph.nodes():
            paths = enumerate_estimate_paths(dag, node)
            assert sum(p.probability for p in paths) == pytest.approx(1.0)

    def test_matches_monte_carlo_estimator(self, small_platform):
        """The production sampler agrees with the enumerated distribution."""
        dag = diamond_dag()
        rng = random.Random(1)

        def sample_once(node):
            # replicate the estimator's unroll on this tiny DAG
            estimate, factor, current = 0.0, 1.0, node
            while True:
                estimate += factor * dag.start_probability(current)
                downs = dag.down(current)
                if not downs:
                    return estimate
                chosen = rng.choice(downs)
                factor *= len(downs) / len(dag.up(chosen))
                current = chosen

        draws = [sample_once(0) for _ in range(20_000)]
        mean, _ = exact_estimate_p_distribution(dag, 0)
        assert sum(draws) / len(draws) == pytest.approx(mean, rel=0.05)


class TestInstanceEnumeration:
    def test_instance_probabilities_sum_to_one(self):
        for dag in (path_dag(), diamond_dag(), random_dag(2), random_dag(7)):
            instances = enumerate_instances(dag)
            assert sum(i.probability for i in instances) == pytest.approx(1.0)

    def test_paths_are_monotone_in_levels(self):
        dag = random_dag(4)
        for instance in enumerate_instances(dag):
            up_levels = [dag.levels[n] for n in instance.up_path]
            down_levels = [dag.levels[n] for n in instance.down_path]
            assert up_levels == sorted(up_levels, reverse=True)
            assert down_levels == sorted(down_levels)
            # the down phase starts where the up phase ended
            assert instance.down_path[0] == instance.up_path[-1]


class TestExactInstanceVariance:
    def test_zero_variance_on_deterministic_chain(self):
        dag = path_dag()
        f = {0: 1.0, 1: 1.0, 2: 1.0}
        mean, variance = exact_instance_variance(dag, f)
        assert mean == pytest.approx(3.0)
        assert variance == pytest.approx(0.0, abs=1e-12)

    @pytest.mark.parametrize("dag_seed", range(4))
    def test_unbiased_for_the_support_sum(self, dag_seed):
        """E[X] equals Σf over the up/down supports averaged — with full
        supports (every node reachable) it is exactly Σ f(u)."""
        dag = random_dag(dag_seed)
        p_up, p_down = exact_selection_probabilities(dag)
        f = {node: float(1 + node % 3) for node in dag.graph.nodes()}
        mean, variance = exact_instance_variance(dag, f)
        expected = 0.5 * (
            sum(v for n, v in f.items() if p_up[n] > 0)
            + sum(v for n, v in f.items() if p_down[n] > 0)
        )
        assert mean == pytest.approx(expected, abs=1e-9)
        assert variance >= -1e-12

    def test_matches_monte_carlo(self):
        dag = diamond_dag()
        f = {0: 2.0, 1: 1.0, 2: 1.0, 3: 5.0}
        mean, variance = exact_instance_variance(dag, f)
        p_up, p_down = exact_selection_probabilities(dag)
        rng = random.Random(3)
        draws = []
        for _ in range(20_000):
            # simulate one instance
            current = 3
            up_path = [current]
            while dag.up(current):
                current = rng.choice(dag.up(current))
                up_path.append(current)
            down_path = [current]
            while dag.down(current):
                current = rng.choice(dag.down(current))
                down_path.append(current)
            x = 0.5 * (
                sum(f[n] / p_up[n] for n in up_path)
                + sum(f[n] / p_down[n] for n in down_path)
            )
            draws.append(x)
        mc_mean = sum(draws) / len(draws)
        mc_var = sum((d - mc_mean) ** 2 for d in draws) / (len(draws) - 1)
        assert mc_mean == pytest.approx(mean, rel=0.05)
        assert mc_var == pytest.approx(variance, rel=0.15, abs=1e-6)


class TestTheorem51AsPrinted:
    def test_printed_formula_goes_negative_on_chain(self):
        """Documents the printed-formula defect: a deterministic chain has
        zero true variance, but the printed σ² is Σf² − Q² < 0."""
        dag = path_dag()
        f = {0: 1.0, 1: 1.0, 2: 1.0}
        sigma2 = theorem51_variance_as_printed(dag, f, instances=1)
        assert sigma2 == pytest.approx(3.0 - 9.0)

    def test_instances_validated(self):
        with pytest.raises(EstimationError):
            theorem51_variance_as_printed(path_dag(), {0: 1.0}, instances=0)
