"""End-to-end integration tests: the full MICROBLOG-ANALYZER pipeline
against exact ground truth, and the paper's qualitative claims at test
scale."""

import pytest

from repro import (
    MicroblogAnalyzer,
    avg_of,
    count_users,
    exact_value,
    DISPLAY_NAME_LENGTH,
    FOLLOWERS,
)
from repro.bench.harness import bench_platform, format_table, mean_cost_to_error, run_estimator
from repro.platform.clock import DAY
from repro.platform.profiles import GOOGLE_PLUS, TUMBLR


class TestEndToEnd:
    def test_count_pipeline(self, small_platform):
        query = count_users("privacy")
        truth = exact_value(small_platform.store, query)
        analyzer = MicroblogAnalyzer(small_platform, algorithm="ma-tarw",
                                     interval=DAY, seed=21)
        result = analyzer.estimate(query, budget=12_000)
        assert result.relative_error(truth) < 0.4

    def test_avg_pipeline_low_variance_measure(self, small_platform):
        query = avg_of("privacy", DISPLAY_NAME_LENGTH)
        truth = exact_value(small_platform.store, query)
        analyzer = MicroblogAnalyzer(small_platform, algorithm="ma-tarw",
                                     interval=DAY, seed=22)
        result = analyzer.estimate(query, budget=9_000)
        assert result.relative_error(truth) < 0.15

    def test_other_platform_profiles_run(self, small_platform):
        query = count_users("privacy")
        for profile in (GOOGLE_PLUS, TUMBLR):
            platform = small_platform.with_profile(profile)
            truth = exact_value(platform.store, query)
            analyzer = MicroblogAnalyzer(platform, algorithm="ma-srw",
                                         interval=DAY, seed=23)
            result = analyzer.estimate(query, budget=15_000)
            assert result.value is not None
            assert result.relative_error(truth) < 1.0

    def test_google_plus_costs_more_than_twitter(self, small_platform):
        """The §6.2 observation: Google+'s 20-per-page APIs make the same
        estimation far more expensive in API calls."""
        query = avg_of("privacy", DISPLAY_NAME_LENGTH)
        twitter_result = MicroblogAnalyzer(
            small_platform, algorithm="ma-srw", interval=DAY, seed=24
        ).estimate(query, budget=50_000)
        gplus_result = MicroblogAnalyzer(
            small_platform.with_profile(GOOGLE_PLUS),
            algorithm="ma-srw", interval=DAY, seed=24,
        ).estimate(query, budget=50_000)
        assert gplus_result.cost_total > twitter_result.cost_total


class TestBenchHarness:
    def test_bench_platform_cached(self):
        a = bench_platform(num_users=1_000, seed=3)
        b = bench_platform(num_users=1_000, seed=3)
        assert a is b

    def test_run_estimator_and_cost_metric(self, small_platform):
        query = count_users("privacy")
        truth = exact_value(small_platform.store, query)
        results = [
            run_estimator(small_platform, query, "ma-srw", budget=8_000, seed=seed)
            for seed in (1, 2)
        ]
        point = mean_cost_to_error(results, truth, target=0.9)
        assert point.total_runs == 2
        assert point.achieved_runs <= 2

    def test_format_table(self):
        text = format_table("Title", ["a", "b"], [[1, 2.5], ["x", None]])
        assert "Title" in text
        assert "n/a" in text
        assert "2.50" in text
