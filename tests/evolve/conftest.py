"""Shared fixtures for the evolving-platform (freeze-then-append) tier.

The tier's oracle is the *rebuild twin*: every test builds the same
platform twice — once on the frozen data plane (wrapped in an
:class:`~repro.platform.evolve.OverlayStore`) and once on the legacy
mutable plane — then applies the identical delta schedule through both
ingestion paths (`OverlayStore.append` vs
:func:`~repro.platform.evolve.apply_delta_to_store`).  Freezing the
mutable twin is what a from-scratch rebuild would produce, so
``store_divergences(overlay, twin.freeze())`` pins the overlay (and its
compactions) bit-for-bit against the monolithic path.

The twins must be *separate platform builds* with identical configs:
freezing the same mutable store that seeded the overlay would alias the
profile dict, letting overlay-side follower refreshes leak into the
oracle.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.platform.evolve import (
    OverlayStore,
    apply_delta_to_store,
    evolve_platform,
    synthesize_delta,
)
from repro.platform.simulator import PlatformConfig, build_platform
from repro.platform.workload import KeywordSpec, event_intensity, spiky_intensity

EVOLVE_USERS = 1_200
EVOLVE_SEED = 17


def evolve_keywords():
    """Two cheap keywords (the tiny_platform pair, re-declared locally so
    this tier's platforms are independent of the session fixtures)."""
    return [
        KeywordSpec("privacy", spiky_intensity(0.6, spikes=[(150, 8.0)]), 0.30),
        KeywordSpec("boston", event_intensity(0.5, event_day=104, peak_per_day=12.0), 0.33),
    ]


def evolve_config(**overrides) -> PlatformConfig:
    kwargs = dict(
        num_users=EVOLVE_USERS,
        keywords=evolve_keywords(),
        background_posts_mean=3.0,
        seed=EVOLVE_SEED,
    )
    kwargs.update(overrides)
    return PlatformConfig(**kwargs)


def build_twin_platforms(**overrides):
    """(overlay platform, legacy twin) with identical simulated content.

    The first is a frozen-plane build wrapped with
    :func:`evolve_platform` (store is an OverlayStore); the second is a
    legacy-plane build whose mutable store accepts
    :func:`apply_delta_to_store` and freezes into the rebuild oracle.
    """
    config = evolve_config(**overrides)
    overlay = evolve_platform(build_platform(config))
    legacy = build_platform(dataclasses.replace(config, data_plane="legacy"))
    return overlay, legacy


def apply_epochs(overlay_platform, legacy_platform, n_epochs, *, seed=99, **delta_kwargs):
    """Drive *n_epochs* synthesized deltas through both ingestion paths.

    Both platform clocks advance to each delta's newest timestamp, so
    sliding windows built from either clock are identical.  Returns the
    list of applied :class:`DeltaBatch` objects.
    """
    kwargs = dict(new_users=12, keyword_posts=80, background_posts=120)
    kwargs.update(delta_kwargs)
    deltas = []
    for epoch in range(1, n_epochs + 1):
        delta = synthesize_delta(overlay_platform, seed=seed * 1_000 + epoch, **kwargs)
        stats = overlay_platform.store.append(delta)
        apply_delta_to_store(legacy_platform.store, delta)
        if stats.max_time is not None:
            overlay_platform.clock.sleep_until(stats.max_time)
            legacy_platform.clock.sleep_until(stats.max_time)
        deltas.append(delta)
    return deltas


def rebuilt_platform(overlay_platform, legacy_platform):
    """The monolithic-rebuild oracle platform: the legacy twin's store
    frozen in place, wrapped in a platform shell matching the overlay's
    config and clock (so services over both see the same world)."""
    from repro.platform.simulator import SimulatedPlatform

    frozen = legacy_platform.store.freeze()
    frozen.delta_epoch = overlay_platform.store.delta_epoch
    return SimulatedPlatform(
        config=overlay_platform.config,
        store=frozen,
        clock=legacy_platform.clock,
        cascades=legacy_platform.cascades,
    )


@pytest.fixture(scope="module")
def evolved_pair():
    """(overlay platform, rebuild-oracle platform) after 2 delta epochs.

    Module-scoped: building twin 1 200-user platforms takes ~1 s and the
    equivalence tests only read from them (estimator runs touch their own
    client caches; services are constructed per-test).
    """
    overlay, legacy = build_twin_platforms()
    apply_epochs(overlay, legacy, 2)
    assert isinstance(overlay.store, OverlayStore)
    return overlay, rebuilt_platform(overlay, legacy)
