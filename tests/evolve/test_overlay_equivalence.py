"""Property tests: freeze-then-append ≡ monolithic rebuild, bit for bit.

Hypothesis drives random delta schedules — new users, new edges
(including duplicates of existing ones), post batches of arbitrary chunk
sizes with timestamp ties and brand-new keywords — through both
ingestion paths over the same deterministic base:

* ``OverlayStore.append`` over a frozen base (the incremental path);
* ``apply_delta_to_store`` into a mutable twin, then ``freeze()``
  (what a from-scratch rebuild produces).

:func:`store_divergences` then compares every serving structure — post
columns, timeline/keyword indexes, CSR graph, user order — on both the
RAM and mmap planes, and again after ``compact()``.
"""

from __future__ import annotations

import atexit
import random
import shutil
import tempfile

import numpy as np
import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform.evolve import (
    DeltaBatch,
    OverlayStore,
    PostDelta,
    apply_delta_to_store,
    store_divergences,
)
from repro.platform.serialization import dump_store_dir, load_store_dir
from repro.platform.store import MicroblogStore
from repro.platform.users import generate_profile

pytestmark = [pytest.mark.evolve, pytest.mark.property]

BASE_USERS = 8
FIRST_NEW_UID = 100
KEYWORD_POOL = ("alpha", "beta", "gamma", "delta")  # base mentions only the first two


def make_base_store() -> MicroblogStore:
    """A small deterministic base; called twice per example so the
    overlay's base and the rebuild twin never share mutable state."""
    store = MicroblogStore()
    rng = random.Random(0)
    for user_id in range(BASE_USERS):
        store.add_user(generate_profile(user_id, seed=rng))
    for u, v in [(0, 1), (0, 2), (1, 3), (2, 3), (4, 5), (5, 6), (6, 7), (0, 7)]:
        store.graph.add_edge(u, v)
    store.add_posts_columnar(
        np.array([0, 1, 2, 3, 4], dtype=np.int64),
        np.array([5.0, 12.0, 12.0, 20.0, 27.0]),
        np.array([20, 30, 25, 40, 15], dtype=np.int64),
        np.array([1, 0, 3, 2, 0], dtype=np.int64),
        "alpha",
    )
    store.add_posts_columnar(
        np.array([2, 5, 6], dtype=np.int64),
        np.array([8.0, 16.0, 16.0]),
        np.array([22, 18, 33], dtype=np.int64),
        np.array([0, 4, 1], dtype=np.int64),
        "beta",
    )
    store.add_posts_columnar(
        np.array([1, 7], dtype=np.int64),
        np.array([3.0, 24.0]),
        np.array([10, 12], dtype=np.int64),
        np.array([2, 0], dtype=np.int64),
        None,
    )
    store.refresh_follower_counts()
    return store


# One delta spec: (new-user count, edge picks, post batches); picks are
# arbitrary integers resolved modulo the id pool at materialisation time
# so every reference lands on a user that exists by then (including
# users added earlier in the same delta).
delta_schedules = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.lists(st.tuples(st.integers(0, 999), st.integers(0, 999)), max_size=6),
        st.lists(
            st.tuples(
                st.integers(0, len(KEYWORD_POOL)),  # == len → keyword-less batch
                st.lists(st.tuples(st.integers(0, 999), st.integers(0, 30)), max_size=6),
            ),
            max_size=3,
        ),
    ),
    max_size=4,
)


def materialize(specs):
    """Resolve a drawn schedule into concrete :class:`DeltaBatch` objects."""
    pool = list(range(BASE_USERS))
    next_uid = FIRST_NEW_UID
    deltas = []
    for n_users, edge_picks, batches in specs:
        profiles = []
        for _ in range(n_users):
            uid = next_uid
            next_uid += 1
            profiles.append(generate_profile(uid, seed=random.Random(f"evolve-test:{uid}")))
            pool.append(uid)
        edges = []
        for a, b in edge_picks:  # duplicates kept: both paths must no-op them
            u, v = pool[a % len(pool)], pool[b % len(pool)]
            if u != v:
                edges.append((u, v))
        posts = []
        for kw_sel, rows in batches:  # empty batches kept: both paths skip them
            authors = np.array([pool[a % len(pool)] for a, _ in rows], dtype=np.int64)
            times = np.array([float(t) for _, t in rows])  # integer grid → deliberate ties
            keyword = KEYWORD_POOL[kw_sel] if kw_sel < len(KEYWORD_POOL) else None
            posts.append(
                PostDelta(
                    authors,
                    times,
                    10 + (authors % 40),
                    np.array([t % 7 for _, t in rows], dtype=np.int64),
                    keyword,
                )
            )
        deltas.append(
            DeltaBatch(
                tuple(profiles),
                np.array(edges, dtype=np.int64).reshape(-1, 2),
                tuple(posts),
            )
        )
    return deltas


def apply_both(overlay: OverlayStore, twin: MicroblogStore, deltas) -> None:
    for delta in deltas:
        overlay.append(delta)
        apply_delta_to_store(twin, delta)


def assert_equivalent(overlay, rebuilt) -> None:
    divergences = store_divergences(overlay, rebuilt)
    assert divergences == [], divergences
    for uid in rebuilt._user_order:  # profiles aren't columns: pin followers too
        assert overlay._profiles[uid].followers == rebuilt._profiles[uid].followers


@settings(max_examples=30, deadline=None)
@given(delta_schedules)
def test_overlay_and_ram_compaction_match_rebuild(specs):
    deltas = materialize(specs)
    overlay = OverlayStore(make_base_store().freeze())
    twin = make_base_store()
    apply_both(overlay, twin, deltas)
    rebuilt = twin.freeze()

    assert_equivalent(overlay, rebuilt)
    assert overlay.delta_epoch == len(deltas)

    compacted = overlay.compact()
    assert type(compacted) is not OverlayStore
    assert_equivalent(compacted, rebuilt)
    assert compacted.delta_epoch == len(deltas)  # warm caches stay valid across compaction


@settings(max_examples=30, deadline=None)
@given(delta_schedules)
def test_tail_accounting_matches_schedule(specs):
    deltas = materialize(specs)
    overlay = OverlayStore(make_base_store().freeze())
    for delta in deltas:
        overlay.append(delta)
    tail = overlay.tail
    assert tail.epochs == len(deltas)
    assert tail.users == sum(len(d.new_users) for d in deltas)
    assert tail.rows == sum(d.num_posts for d in deltas)
    assert overlay.num_posts == tail.base_rows + tail.rows
    mentioned = [p.keyword for d in deltas for p in d.posts if p.size and p.keyword]
    assert set(tail.keywords) == set(mentioned)


_BASE_DIR = None


def base_store_dir() -> str:
    """The deterministic base dumped once, reopened per example via mmap."""
    global _BASE_DIR
    if _BASE_DIR is None:
        _BASE_DIR = tempfile.mkdtemp(prefix="repro-evolve-base-")
        atexit.register(shutil.rmtree, _BASE_DIR, ignore_errors=True)
        dump_store_dir(make_base_store().freeze(), _BASE_DIR)
    return _BASE_DIR


@settings(max_examples=12, deadline=None)
@given(delta_schedules)
def test_overlay_over_mmap_base_matches_rebuild(specs):
    deltas = materialize(specs)
    overlay = OverlayStore(load_store_dir(base_store_dir(), mmap_mode="r"))
    twin = make_base_store()
    apply_both(overlay, twin, deltas)
    rebuilt = twin.freeze()

    assert_equivalent(overlay, rebuilt)

    target = tempfile.mkdtemp(prefix="repro-evolve-compact-")
    try:
        compacted = overlay.compact(target)
        assert compacted.storage == "mmap"
        assert compacted.delta_epoch == len(deltas)
        assert_equivalent(compacted, rebuilt)
    finally:
        shutil.rmtree(target, ignore_errors=True)
