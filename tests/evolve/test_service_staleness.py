"""Stale-cache regression: ``advance(delta)`` must kill warm answers.

The reuse fingerprint carries ``delta_epoch``, and the service calls
``invalidate()`` on every applied delta — so a warm service can never
serve pre-delta bytes for a post-delta platform.  Conversely,
``compact()`` changes the representation but not the content, so warm
caches must stay valid across it (warm ≡ cold post-compaction).
"""

from __future__ import annotations

import pytest

from repro.core.query import count_users
from repro.core.reuse import platform_fingerprint
from repro.errors import ReproError
from repro.platform.evolve import OverlayStore, apply_delta_to_store, synthesize_delta
from repro.service import QueryRequest

from tests.evolve.conftest import apply_epochs, build_twin_platforms, rebuilt_platform
from tests.service.conftest import BUDGET, make_service, snapshot

pytestmark = pytest.mark.evolve


@pytest.fixture(scope="module")
def twin_pair():
    """(overlay platform, legacy twin) — pristine, 800 users; tests apply
    their own deltas, so this module keeps its own (smaller) pair."""
    return build_twin_platforms(num_users=800, seed=19)


def test_advance_requires_evolving_platform(twin_pair):
    _, legacy = twin_pair
    service = make_service(rebuilt_platform(*twin_pair))
    with pytest.raises(ReproError, match="evolve_platform"):
        service.advance(synthesize_delta(legacy, seed=1, new_users=1, keyword_posts=1,
                                         background_posts=1))


def test_fingerprint_tracks_epochs_not_compaction():
    overlay, legacy = build_twin_platforms(num_users=600, seed=23)
    before = platform_fingerprint(overlay)
    apply_epochs(overlay, legacy, 1, seed=31)
    after = platform_fingerprint(overlay)
    assert after != before  # warm keys die with the epoch bump

    compacted = overlay.store.compact()
    overlay.store = OverlayStore(compacted)
    assert platform_fingerprint(overlay) == after  # compaction keeps caches warm


def test_advance_invalidates_result_and_interval_caches():
    overlay, legacy = build_twin_platforms(num_users=800, seed=19)
    service = make_service(overlay)
    request = QueryRequest("growth", count_users("privacy"), BUDGET, tag="stale")

    (cold,) = service.run_workload([request])
    assert cold.status == "ok" and not cold.cached
    (warm,) = service.run_workload([request])
    assert warm.cached  # same epoch: whole-result replay
    assert snapshot([warm]) == snapshot([cold])
    pilots_before = service.stats()["reuse_pilot_runs"]

    delta = synthesize_delta(overlay, seed=47, new_users=10, keyword_posts=60,
                             background_posts=90)
    stats = service.advance(delta)
    assert stats.epoch == 1

    (fresh,) = service.run_workload([request])
    assert fresh.status == "ok"
    assert not fresh.cached  # pre-delta bytes must not be served
    assert service.stats()["reuse_pilot_runs"] > pilots_before  # it re-piloted

    # The post-delta answer equals a cold service over the rebuilt twin.
    apply_delta_to_store(legacy.store, delta)
    if stats.max_time is not None:
        legacy.clock.sleep_until(stats.max_time)
    (oracle,) = make_service(rebuilt_platform(overlay, legacy)).run_workload([request])
    assert snapshot([fresh]) == snapshot([oracle])


def test_warm_equals_cold_after_compaction():
    overlay, legacy = build_twin_platforms(num_users=800, seed=29)
    apply_epochs(overlay, legacy, 1, seed=53)
    workload = [
        QueryRequest("growth", count_users("privacy"), BUDGET, tag="c1"),
        QueryRequest("ads", count_users("boston"), BUDGET, tag="c2"),
    ]

    warm_service = make_service(overlay)
    first = warm_service.run_workload(workload)
    warm_service.compact()
    warm = warm_service.run_workload(workload)
    assert all(outcome.cached for outcome in warm)  # compaction kept the cache
    assert snapshot(warm) == snapshot(first)

    cold = make_service(overlay).run_workload(workload)  # recompute over compacted store
    assert not any(outcome.cached for outcome in cold)
    assert snapshot(warm) == snapshot(cold)
