"""Serving equivalence: an evolved overlay answers like a full rebuild.

After two delta epochs, the overlay platform and its monolithically
rebuilt twin must be indistinguishable to everything above the data
plane: ground truth (whole-history and sliding-window), estimates,
per-tenant CostMeter columns, and exported golden-trace *bytes* — at
every thread count and under the hostile fault profile — and again
after compaction.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api.faults import FAULT_PROFILES
from repro.api.resilient import RetryPolicy
from repro.core.query import (
    FOLLOWERS,
    MATCHING_POST_COUNT,
    avg_of,
    count_users,
    sliding_window,
    sum_of,
)
from repro.groundtruth import exact_value
from repro.service import QueryRequest

from tests.service.conftest import BUDGET, bills, make_service, snapshot

pytestmark = pytest.mark.evolve

WINDOW_DAYS = 30.0


def evolve_workload(platform):
    """Five queries over the evolved platform, sliding windows built from
    its clock; w5 duplicates w2 so result sharing is exercised too."""
    window = sliding_window(platform.clock.now(), WINDOW_DAYS)
    return [
        QueryRequest("growth", count_users("privacy"), BUDGET, tag="w1"),
        QueryRequest("ads", count_users("boston", window), BUDGET, tag="w2"),
        QueryRequest("research", avg_of("privacy", FOLLOWERS, window), BUDGET, tag="w3"),
        QueryRequest("growth", sum_of("boston", MATCHING_POST_COUNT), BUDGET, tag="w4"),
        QueryRequest("ads", count_users("boston", window), BUDGET, tag="w5"),
    ]


def test_ground_truth_identical(evolved_pair):
    overlay, rebuilt = evolved_pair
    assert overlay.clock.now() == rebuilt.clock.now()
    window = sliding_window(overlay.clock.now(), WINDOW_DAYS)
    for keyword in ("privacy", "boston"):
        whole = count_users(keyword)
        recent = count_users(keyword, window)
        assert exact_value(overlay.store, whole) == exact_value(rebuilt.store, whole)
        assert exact_value(overlay.store, recent) == exact_value(rebuilt.store, recent)
        assert exact_value(overlay.store, recent) > 0  # the window must be live


@pytest.mark.parametrize("n_threads", [1, 3])
@pytest.mark.parametrize("faults", [None, "hostile"])
def test_estimates_costs_and_trace_bytes_identical(evolved_pair, n_threads, faults):
    overlay, rebuilt = evolved_pair
    overrides = dict(n_threads=n_threads)
    if faults is not None:
        overrides.update(
            fault_plan=dataclasses.replace(FAULT_PROFILES[faults], seed=21),
            retry_policy=RetryPolicy(),
        )
    workload = evolve_workload(overlay)

    service_a = make_service(overlay, **overrides)
    service_b = make_service(rebuilt, **overrides)
    outcomes_a = service_a.run_workload(workload)
    outcomes_b = service_b.run_workload(workload)

    assert snapshot(outcomes_a) == snapshot(outcomes_b)
    assert [o.status for o in outcomes_a] == ["ok"] * len(workload)
    assert outcomes_a[4].cached  # w5 shares w2's result on both sides
    assert bills(service_a) == bills(service_b)  # CostMeter columns, per tenant


def test_post_compaction_estimates_identical(evolved_pair):
    overlay, rebuilt = evolved_pair
    workload = evolve_workload(overlay)

    service = make_service(overlay)
    compacted = service.compact()
    assert compacted.delta_epoch == rebuilt.store.delta_epoch

    outcomes_a = service.run_workload(workload)
    outcomes_b = make_service(rebuilt).run_workload(workload)
    assert snapshot(outcomes_a) == snapshot(outcomes_b)

    # Ground truth over the compacted store matches the rebuild too.
    window = sliding_window(overlay.clock.now(), WINDOW_DAYS)
    for keyword in ("privacy", "boston"):
        query = count_users(keyword, window)
        assert exact_value(compacted, query) == exact_value(rebuilt.store, query)
