"""Command-line interface: ``python -m repro <command> ...``.

Lets a user drive the full pipeline without writing Python:

* ``simulate`` — build a deterministic platform and save it (``.npz``
  archive, or a sharded memmap directory for any other path; add
  ``--data-plane mmap`` to stream the build itself out of core);
* ``keywords`` — list a platform's keywords with population statistics;
* ``estimate`` — run an aggregate estimation under a budget (optionally
  with a replicate confidence interval) and compare to ground truth;
* ``truth``    — print only the exact ground-truth answer.

Examples::

    python -m repro simulate --users 10000 --seed 42 --out platform.npz
    python -m repro keywords --platform platform.npz
    python -m repro estimate --platform platform.npz --keyword privacy \\
        --aggregate count --algorithm ma-tarw --budget 15000
    python -m repro estimate --users 5000 --keyword boston \\
        --aggregate avg --measure followers --budget 8000 --replicates 4
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Optional

from repro.api.faults import FAULT_PROFILES
from repro.core.analyzer import ALGORITHMS, GRAPH_DESIGNS, MicroblogAnalyzer
from repro.core.query import (
    AggregateQuery,
    Aggregate,
    CONSTANT_ONE,
    DISPLAY_NAME_LENGTH,
    FOLLOWERS,
    MATCHING_POST_COUNT,
    MEAN_LIKES,
    TOTAL_LIKES,
)
from repro.errors import ReproError
from repro.groundtruth import exact_value, relative_error
from repro.platform.clock import DAY
from repro.platform.profiles import ALL_PROFILES
from repro.platform.outofcore import DEFAULT_CHUNK_ROWS
from repro.platform.serialization import load_platform, save_platform
from repro.platform.simulator import (
    DATA_PLANES,
    PlatformConfig,
    SimulatedPlatform,
    build_platform,
)

MEASURES = {
    "one": CONSTANT_ONE,
    "followers": FOLLOWERS,
    "display_name_length": DISPLAY_NAME_LENGTH,
    "matching_post_count": MATCHING_POST_COUNT,
    "mean_likes": MEAN_LIKES,
    "total_likes": TOTAL_LIKES,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Aggregate estimation over a simulated microblog platform "
        "(SIGMOD 2014 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="build a platform and save it")
    _platform_build_args(simulate)
    simulate.add_argument("--out", required=True,
                          help="output path: a .npz archive, or (any other "
                               "path) a sharded layout directory that loads "
                               "via memmap")

    keywords = sub.add_parser("keywords", help="list keywords with statistics")
    _platform_source_args(keywords)

    estimate = sub.add_parser("estimate", help="estimate an aggregate query")
    _platform_source_args(estimate)
    _query_args(estimate)
    estimate.add_argument("--algorithm", default="ma-tarw", choices=ALGORITHMS,
                          help="estimation walker from the registry (default "
                               "ma-tarw; see docs/ALGORITHMS.md for the catalog)")
    estimate.add_argument("--graph-design", default="level-by-level",
                          choices=GRAPH_DESIGNS,
                          help="walkable graph design over the topic subgraph "
                               "(default level-by-level; ma-tarw requires it)")
    estimate.add_argument("--budget", type=int, default=15_000,
                          help="maximum API calls (default 15000)")
    estimate.add_argument("--interval-days", type=float, default=1.0,
                          help="level bucket width in days; 0 = auto-select")
    estimate.add_argument("--replicates", type=int, default=1,
                          help=">1 splits the budget and reports a 95%% CI")
    estimate.add_argument("--walk-seed", type=int, default=0,
                          help="random-walk seed (default 0); a fixed seed "
                               "makes estimates and traces deterministic")
    estimate.add_argument("--workers", type=int, default=None,
                          help="run the walk budget as parallel shards on this "
                               "many workers (walkers with a parallel driver: "
                               "ma-tarw, ma-srw, rewired-srw, wnw, frontier; "
                               "the point estimate is worker-count-invariant)")
    estimate.add_argument("--executor", default="auto",
                          choices=["auto", "process", "thread", "serial"],
                          help="worker pool kind for --workers (default auto)")
    estimate.add_argument("--fault-profile", default="none",
                          choices=sorted(FAULT_PROFILES),
                          help="inject seeded API faults (transient errors, "
                               "timeouts, truncated pages, duplicates) healed "
                               "by the resilient retry layer; estimates stay "
                               "bit-identical to a fault-free run")
    estimate.add_argument("--fault-seed", type=int, default=0,
                          help="seed for the injected-fault draws")
    estimate.add_argument("--trace-out", metavar="PATH",
                          help="write the structured walk trace as canonical "
                               "JSONL (byte-stable under a fixed seed; see "
                               "docs/OBSERVABILITY.md)")
    estimate.add_argument("--metrics", action="store_true",
                          help="print the run's metrics registry (query mix, "
                               "cache hits, walk-length histograms) as JSON")
    estimate.add_argument("--report", action="store_true",
                          help="print a human convergence report (estimate "
                               "stream mixing, burn-in adequacy, ESTIMATE-p "
                               "agreement, query mix)")
    estimate.add_argument("--profile", metavar="PATH",
                          help="run the estimation under cProfile and dump "
                               "binary stats to PATH (.pstats; inspect with "
                               "python -m pstats PATH — see docs/BENCHMARKS.md)")

    truth = sub.add_parser("truth", help="print the exact ground-truth answer")
    _platform_source_args(truth)
    _query_args(truth)

    serve = sub.add_parser(
        "serve",
        help="run a multi-tenant query workload through the estimation service",
    )
    _platform_source_args(serve)
    serve.add_argument("--tenants", required=True, metavar="PATH",
                       help="workload JSON: tenant grants (budgets, rate limits, "
                            "admission policy) plus the queries to run — see "
                            "repro.service.workload for the format")
    serve.add_argument("--threads", type=int, default=4,
                       help="service thread-pool width (default 4; outcomes "
                            "are bit-identical at every width)")
    serve.add_argument("--algorithm", default="ma-tarw", choices=ALGORITHMS,
                       help="estimation walker every query runs (default ma-tarw)")
    serve.add_argument("--graph-design", default="level-by-level",
                       choices=GRAPH_DESIGNS,
                       help="graph design for every query (default level-by-level)")
    serve.add_argument("--interval-days", type=float, default=0.0,
                       help="level bucket width in days; 0 = auto-select with "
                            "the cross-query interval cache (default)")
    serve.add_argument("--service-seed", type=int, default=0,
                       help="service seed; per-query seeds derive from it and "
                            "each query's fingerprint (default 0)")
    serve.add_argument("--fault-profile", default="none",
                       choices=sorted(FAULT_PROFILES),
                       help="inject seeded API faults under every query")
    serve.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the injected-fault draws")
    serve.add_argument("--truth", action="store_true",
                       help="also print each query's exact answer and error")
    serve.add_argument("--trace-out", metavar="PATH",
                       help="write the service-level trace (service.* admission "
                            "and query events) as canonical JSONL")
    serve.add_argument("--metrics", action="store_true",
                       help="print the service metrics registry (per-tenant "
                            "query/call counters, queue depths) as JSON")

    evolve = sub.add_parser(
        "evolve",
        help="stream synthetic deltas into the platform and track "
             "sliding-window estimates across epochs",
    )
    _platform_source_args(evolve)
    evolve.add_argument("--epochs", type=int, default=4,
                        help="delta epochs to ingest (default 4)")
    evolve.add_argument("--epoch-days", type=float, default=7.0,
                        help="simulated days each delta spans (default 7)")
    evolve.add_argument("--window-days", type=float, default=7.0,
                        help="sliding-window length for the per-epoch "
                             "queries: users who mentioned the keyword in "
                             "the trailing N days (default 7)")
    evolve.add_argument("--budget", type=int, default=6_000,
                        help="API-call budget per query (default 6000)")
    evolve.add_argument("--algorithm", default="ma-tarw", choices=ALGORITHMS,
                        help="estimation walker every query runs (default ma-tarw)")
    evolve.add_argument("--graph-design", default="level-by-level",
                        choices=GRAPH_DESIGNS,
                        help="graph design for every query (default level-by-level)")
    evolve.add_argument("--service-seed", type=int, default=0,
                        help="service seed (per-query seeds derive from it)")
    evolve.add_argument("--delta-seed", type=int, default=0,
                        help="base seed for the synthesized deltas (default 0)")
    evolve.add_argument("--new-users", type=int, default=20,
                        help="new users arriving per epoch (default 20)")
    evolve.add_argument("--keyword-posts", type=int, default=150,
                        help="new mentions per keyword per epoch (default 150)")
    evolve.add_argument("--background-posts", type=int, default=400,
                        help="keyword-free posts per epoch (default 400)")
    evolve.add_argument("--compact-every", type=int, default=0,
                        help="re-freeze frozen+tail every K epochs "
                             "(0 = never; serving is identical either way)")
    evolve.add_argument("--truth", action="store_true",
                        help="also print each epoch's exact answer and error")
    return parser


def _platform_build_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=10_000,
                        help="platform size when building (default 10000)")
    parser.add_argument("--seed", type=int, default=42,
                        help="platform generation seed (default 42)")
    parser.add_argument("--api-profile", default="twitter", choices=sorted(ALL_PROFILES),
                        help="API restriction profile (default twitter)")
    parser.add_argument("--data-plane", default="frozen", choices=DATA_PLANES,
                        help="post-store backend when building (default frozen; "
                             "'mmap' streams the build through an on-disk "
                             "sharded layout and serves columns via memmap — "
                             "bit-identical estimates at a flat RSS)")
    parser.add_argument("--chunk-rows", type=int, default=DEFAULT_CHUNK_ROWS,
                        help="rows per streaming chunk for the mmap plane "
                             f"(default {DEFAULT_CHUNK_ROWS})")
    parser.add_argument("--progress", action="store_true",
                        help="echo build progress (rows flushed, resident set) "
                             "to stderr while the platform is generated")


def _platform_source_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--platform", help="load a saved .npz platform")
    _platform_build_args(parser)


def _query_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--query",
                        help="full SQL-ish query, e.g. \"SELECT AVG(followers) FROM "
                             "users WHERE timeline CONTAINS 'privacy'\"; overrides "
                             "the flags below")
    parser.add_argument("--keyword",
                        help="topic keyword defining the user population")
    parser.add_argument("--aggregate", default="count",
                        choices=["count", "sum", "avg"],
                        help="aggregate function over matching users (default count)")
    parser.add_argument("--measure", default=None, choices=sorted(MEASURES),
                        help="f(u); defaults to 'one' for count and to "
                             "'followers' for sum/avg")
    parser.add_argument("--window-days", nargs=2, type=float, metavar=("START", "END"),
                        help="restrict matches to [START, END) in days since epoch")


def _resolve_platform(
    args: argparse.Namespace,
    obs=None,
    spill_dir: Optional[str] = None,
) -> SimulatedPlatform:
    if getattr(args, "platform", None):
        platform = load_platform(args.platform)
    else:
        plane = getattr(args, "data_plane", "frozen")
        print(f"building platform ({args.users:,} users, seed {args.seed}, "
              f"{plane} plane)...", file=sys.stderr)
        config = PlatformConfig(
            num_users=args.users,
            seed=args.seed,
            data_plane=plane,
            build_chunk_rows=getattr(args, "chunk_rows", None) or DEFAULT_CHUNK_ROWS,
            spill_dir=spill_dir,
        )
        platform = build_platform(
            config, obs=obs, progress=True if getattr(args, "progress", False) else None
        )
    profile = ALL_PROFILES[args.api_profile]
    if platform.profile.name != profile.name:
        platform = platform.with_profile(profile)
    return platform


def _resolve_query(args: argparse.Namespace) -> AggregateQuery:
    if getattr(args, "query", None):
        from repro.core.sql import parse_query

        return parse_query(args.query)
    if not args.keyword:
        raise ReproError("provide --keyword (or a full --query)")
    aggregate = Aggregate[args.aggregate.upper()]
    measure_name = args.measure
    if measure_name is None:
        measure_name = "one" if aggregate is Aggregate.COUNT else "followers"
    window = None
    if args.window_days:
        window = (args.window_days[0] * DAY, args.window_days[1] * DAY)
    return AggregateQuery(
        keyword=args.keyword,
        aggregate=aggregate,
        measure=MEASURES[measure_name],
        window=window,
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    # An mmap-plane build headed for a directory streams straight into the
    # destination: the spool IS the sharded layout, so the final save only
    # has to write the platform header.
    spill_dir = None
    if getattr(args, "data_plane", "frozen") == "mmap" and not args.out.endswith(".npz"):
        spill_dir = args.out
    platform = _resolve_platform(args, spill_dir=spill_dir)
    save_platform(platform, args.out)
    print(f"saved platform to {args.out} "
          f"({platform.store.num_users:,} users, {platform.store.num_posts:,} posts)")
    return 0


def cmd_keywords(args: argparse.Namespace) -> int:
    platform = _resolve_platform(args)
    store = platform.store
    now = platform.now
    print(f"{'keyword':16s} {'users':>8s} {'posts':>8s} {'recent posters':>15s}")
    for keyword in sorted(store.keywords()):
        users = len(store.users_mentioning(keyword))
        posts = sum(1 for _ in store.keyword_posts(keyword))
        recent = len(store.users_mentioning(keyword, now - 7 * DAY, now))
        print(f"{keyword:16s} {users:8,} {posts:8,} {recent:15,}")
    return 0


def cmd_truth(args: argparse.Namespace) -> int:
    platform = _resolve_platform(args)
    query = _resolve_query(args)
    value = exact_value(platform.store, query)
    print(f"{query.describe()}\n= {value:,.4f}")
    return 0


def _build_obs(args: argparse.Namespace):
    """Telemetry handles for the estimate run, or None when dark."""
    if not (args.trace_out or args.metrics or args.report):
        return None
    from repro.obs import MetricsRegistry, Observability
    from repro.obs.trace import RecordingSink

    return Observability(
        trace_sink=RecordingSink() if args.trace_out else None,
        metrics=MetricsRegistry() if (args.metrics or args.report) else None,
    )


def _emit_obs(args: argparse.Namespace, obs, result=None, truth=None) -> None:
    """Render the report / metrics / trace outputs after an estimate run."""
    from repro.obs.export import metrics_json, render_report, write_trace

    if args.report:
        if result is not None:
            print()
            print(render_report(result, metrics=obs.metrics, truth=truth))
        else:
            print("report   : unavailable with --replicates "
                  "(per-replicate results are pooled into the interval)")
    if args.metrics:
        print()
        print(metrics_json(obs.metrics))
    if args.trace_out:
        count = write_trace(obs.trace_records(), args.trace_out)
        print(f"trace    : {count:,} records -> {args.trace_out}")


def cmd_estimate(args: argparse.Namespace) -> int:
    obs = _build_obs(args)
    platform = _resolve_platform(args, obs=obs)
    query = _resolve_query(args)
    interval = "auto" if args.interval_days == 0 else args.interval_days * DAY
    fault_plan = None
    profile_plan = FAULT_PROFILES[args.fault_profile]
    if profile_plan.active:
        fault_plan = dataclasses.replace(profile_plan, seed=args.fault_seed)
    analyzer = MicroblogAnalyzer(
        platform,
        algorithm=args.algorithm,
        graph_design=args.graph_design,
        interval=interval,
        seed=args.walk_seed,
        n_workers=args.workers,
        executor=args.executor,
        fault_plan=fault_plan,
        obs=obs,
    )
    truth = exact_value(platform.store, query)
    print(query.describe())
    from repro.bench.profiling import profiled

    if args.replicates > 1:
        with profiled(args.profile):
            ci = analyzer.estimate_with_confidence(
                query, budget=args.budget, replicates=args.replicates
            )
        if args.profile:
            print(f"profile  : cProfile stats -> {args.profile}")
        print(f"estimate : {ci}")
        print(f"truth    : {truth:,.4f}  "
              f"({'inside' if ci.contains(truth) else 'outside'} the interval)")
        print(f"rel. err : {relative_error(ci.mean, truth):.2%}")
        if obs is not None:
            _emit_obs(args, obs, result=None, truth=truth)
        return 0
    with profiled(args.profile):
        result = analyzer.estimate(query, budget=args.budget)
    if args.profile:
        print(f"profile  : cProfile stats -> {args.profile}")
    if result.value is None:
        print("no estimate produced (budget too small for this algorithm)")
        if obs is not None:
            _emit_obs(args, obs, result=result, truth=truth)
        return 1
    print(f"estimate : {result.value:,.4f}")
    print(f"truth    : {truth:,.4f}")
    print(f"rel. err : {relative_error(result.value, truth):.2%}")
    print(f"cost     : {result.cost_total:,} API calls {result.cost_by_kind}")
    retry_calls = result.cost_by_kind.get("retries", 0)
    if retry_calls:
        print(f"faults   : {retry_calls:,} retried calls absorbed "
              f"(profile {args.fault_profile!r}; budget spend unaffected)")
    if result.walk_stats is not None:
        print(f"parallel : {result.walk_stats.summary()}")
    if obs is not None:
        _emit_obs(args, obs, result=result, truth=truth)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs import MetricsRegistry, Observability
    from repro.obs.trace import RecordingSink
    from repro.service import EstimationService, load_workload

    obs = None
    if args.trace_out or args.metrics:
        obs = Observability(
            trace_sink=RecordingSink() if args.trace_out else None,
            metrics=MetricsRegistry() if args.metrics else None,
        )
    platform = _resolve_platform(args)
    tenants, requests = load_workload(args.tenants)
    if not requests:
        raise ReproError(f"workload {args.tenants} defines no queries")
    fault_plan = None
    profile_plan = FAULT_PROFILES[args.fault_profile]
    if profile_plan.active:
        fault_plan = dataclasses.replace(profile_plan, seed=args.fault_seed)
    interval = "auto" if args.interval_days == 0 else args.interval_days * DAY
    service = EstimationService(
        platform,
        tenants,
        algorithm=args.algorithm,
        graph_design=args.graph_design,
        interval=interval,
        seed=args.service_seed,
        n_threads=args.threads,
        fault_plan=fault_plan,
        obs=obs if obs is not None else None,
    )
    outcomes = service.run_workload(requests)
    print(f"{'id':>4s} {'tenant':12s} {'status':9s} {'keyword':14s} "
          f"{'estimate':>14s} {'cost':>8s} {'cached':>6s}")
    for outcome in outcomes:
        value = "-" if outcome.result is None or outcome.result.value is None \
            else f"{outcome.result.value:,.2f}"
        cost = "-" if outcome.result is None else f"{outcome.result.cost_total:,}"
        note = outcome.reason or outcome.error
        line = (f"{outcome.request_id:4d} {outcome.request.tenant:12s} "
                f"{outcome.status:9s} {outcome.request.query.keyword:14s} "
                f"{value:>14s} {cost:>8s} {'yes' if outcome.cached else 'no':>6s}")
        if note:
            line += f"  ({note})"
        print(line)
        if args.truth and outcome.result is not None and outcome.result.value is not None:
            truth = exact_value(platform.store, outcome.request.query)
            print(f"     truth {truth:,.2f}  "
                  f"rel. err {relative_error(outcome.result.value, truth):.2%}")
    print()
    for name in sorted(service.tenants):
        tenant = service.tenants[name]
        bill = service.tenant_bill(name)
        spent = sum(v for k, v in bill.items() if k != "retries")
        allowance = "unlimited" if tenant.allowance is None else f"{tenant.allowance:,}"
        print(f"tenant {name:12s} reserved {tenant.reserved:,}/{allowance} "
              f"spent {spent:,} {bill} queued {service.queue_depth(name)}")
    stats = service.stats()
    print(f"service  : {stats['completed']} ok, {stats['failed']} failed, "
          f"{stats['rejected']} rejected, {stats['queued']} queued; "
          f"result cache {stats['result_hits']} hits / {stats['result_misses']} misses; "
          f"interval cache {stats['reuse_interval_hits']} hits, "
          f"{stats['reuse_pilot_runs']} pilot runs")
    if obs is not None and args.metrics:
        from repro.obs.export import metrics_json

        print()
        print(metrics_json(obs.metrics))
    if obs is not None and args.trace_out:
        from repro.obs.export import write_trace

        count = write_trace(obs.trace_records(), args.trace_out)
        print(f"trace    : {count:,} records -> {args.trace_out}")
    return 0


def cmd_evolve(args: argparse.Namespace) -> int:
    from repro.core.query import count_users, sliding_window
    from repro.platform.evolve import evolve_platform, synthesize_delta
    from repro.service import EstimationService
    from repro.service.tenants import TenantConfig

    platform = evolve_platform(_resolve_platform(args))
    service = EstimationService(
        platform,
        [TenantConfig("evolve")],
        algorithm=args.algorithm,
        graph_design=args.graph_design,
        seed=args.service_seed,
    )
    from repro.service.service import QueryRequest

    keywords = sorted(platform.store.keywords())
    print(f"{'epoch':>5s} {'keyword':14s} {'window users':>13s} "
          f"{'cost':>8s}  (trailing {args.window_days:g}-day window)")

    def query_epoch(epoch: int) -> None:
        window = sliding_window(platform.clock.now(), args.window_days)
        requests = [
            QueryRequest("evolve", count_users(kw, window=window), args.budget)
            for kw in keywords
        ]
        for outcome in service.run_workload(requests):
            result = outcome.result
            value = "-" if result is None or result.value is None \
                else f"{result.value:,.1f}"
            cost = "-" if result is None else f"{result.cost_total:,}"
            line = (f"{epoch:5d} {outcome.request.query.keyword:14s} "
                    f"{value:>13s} {cost:>8s}")
            if outcome.status != "ok":
                line += f"  ({outcome.error or outcome.reason})"
            elif args.truth:
                truth = exact_value(platform.store, outcome.request.query)
                err = "-" if result is None or result.value is None \
                    else f"{relative_error(result.value, truth):.1%}"
                line += f"  truth {truth:,.1f} rel. err {err}"
            print(line)

    query_epoch(0)
    for epoch in range(1, args.epochs + 1):
        delta = synthesize_delta(
            platform,
            seed=args.delta_seed * 10_000 + epoch,
            epoch_days=args.epoch_days,
            new_users=args.new_users,
            keyword_posts=args.keyword_posts,
            background_posts=args.background_posts,
        )
        stats = service.advance(delta)
        print(f"--- delta {stats.epoch}: +{stats.posts:,} posts, "
              f"+{stats.users:,} users, +{stats.edges:,} edges")
        if args.compact_every and epoch % args.compact_every == 0:
            service.compact()
            print(f"--- compacted at epoch {stats.epoch} "
                  f"(tail re-frozen; caches kept warm)")
        query_epoch(epoch)

    print()
    print("drift report (per query identity):")
    for key, entry in sorted(service.drift_report().items()):
        line = (f"  {key:30s} n={entry['n']:.0f} "
                f"{entry['first']:,.1f} -> {entry['last']:,.1f}")
        if "relative_drift" in entry:
            line += f"  drift {entry['relative_drift']:.1%}"
        if "ess" in entry:
            line += f"  ess {entry['ess']:.1f}"
        if "geweke_z" in entry:
            line += f"  geweke z {entry['geweke_z']:+.2f}"
        print(line)
    stats = service.stats()
    print(f"service  : {stats['completed']} ok, {stats['failed']} failed; "
          f"{stats['reuse_pilot_runs']} pilot runs, "
          f"{stats['reuse_interval_hits']} interval hits")
    return 0


COMMANDS = {
    "simulate": cmd_simulate,
    "keywords": cmd_keywords,
    "estimate": cmd_estimate,
    "truth": cmd_truth,
    "serve": cmd_serve,
    "evolve": cmd_evolve,
}


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
