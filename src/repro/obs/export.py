"""Exporters: canonical JSONL traces, metrics JSON, the human report.

The JSONL rendering is *canonical* — keys sorted, minimal separators,
ASCII only — so a deterministic run produces byte-identical files, which
is what lets the golden-trace test tier pin estimator behaviour
structurally (an extra API call, a reordered walk phase or a lost retry
changes the bytes even when the final estimate happens to survive).

This module deliberately avoids importing the estimator layers; the
report renders any object shaped like
:class:`~repro.core.results.EstimateResult` (duck-typed), so ``obs``
stays importable from every layer without cycles.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.errors import ReproError
from repro.obs.diagnostics import estimate_stream_diagnostics
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import KINDS, REQUIRED_KEYS

Snapshot = Dict[str, Dict[str, object]]


# ----------------------------------------------------------------------
# traces
# ----------------------------------------------------------------------
def format_record(record: Mapping[str, object]) -> str:
    """One record as a canonical JSON line (stable bytes)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"), ensure_ascii=True)


def trace_lines(records: Iterable[Mapping[str, object]]) -> List[str]:
    return [format_record(record) for record in records]


def write_trace(records: Sequence[Mapping[str, object]], path) -> int:
    """Write records as canonical JSONL; returns the record count."""
    lines = trace_lines(records)
    with open(path, "w", encoding="ascii", newline="\n") as handle:
        for line in lines:
            handle.write(line)
            handle.write("\n")
    return len(lines)


def parse_trace(text: str) -> List[Dict[str, object]]:
    """Records from JSONL text (inverse of :func:`write_trace`)."""
    records = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ReproError(f"trace line {number} is not valid JSON: {exc}") from None
    return records


def validate_trace(records: Sequence[Mapping[str, object]]) -> None:
    """Schema check: required keys, known kinds, monotonic ``seq``.

    Raises :class:`ReproError` on the first violation.  ``ts`` values are
    shard-local simulated times, so only ``seq`` (assigned by the final
    merging tracer) is required to be strictly increasing.
    """
    last_seq = -1
    for index, record in enumerate(records):
        for key in REQUIRED_KEYS:
            if key not in record:
                raise ReproError(f"trace record {index} is missing required key {key!r}")
        if record["kind"] not in KINDS:
            raise ReproError(f"trace record {index} has unknown kind {record['kind']!r}")
        seq = record["seq"]
        if not isinstance(seq, int) or seq <= last_seq:
            raise ReproError(f"trace record {index} breaks seq monotonicity ({seq!r})")
        last_seq = seq
        if record["kind"] == "span" and "t0" not in record:
            raise ReproError(f"span record {index} ({record['name']!r}) lacks t0")


def span_counts(records: Sequence[Mapping[str, object]]) -> Dict[str, int]:
    """Record count per name — the reconciliation view used by tests
    (e.g. ``api.call`` charges vs. the cost meter)."""
    counts: Dict[str, int] = {}
    for record in records:
        name = str(record["name"])
        counts[name] = counts.get(name, 0) + 1
    return counts


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def metrics_snapshot(metrics: Union[MetricsRegistry, Snapshot, None]) -> Optional[Snapshot]:
    if metrics is None:
        return None
    if isinstance(metrics, MetricsRegistry):
        return metrics.snapshot()
    return metrics


def metrics_json(metrics: Union[MetricsRegistry, Snapshot]) -> str:
    """Deterministic JSON rendering of a registry (or snapshot)."""
    return json.dumps(metrics_snapshot(metrics), sort_keys=True, indent=2)


# ----------------------------------------------------------------------
# the human report
# ----------------------------------------------------------------------
def _fmt(value: object) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:,.4f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def _section(title: str, rows: Sequence[Sequence[object]]) -> List[str]:
    lines = [title]
    width = max((len(str(label)) for label, _ in rows), default=0)
    for label, value in rows:
        lines.append(f"  {str(label).ljust(width)}  {_fmt(value)}")
    return lines


def render_report(result, metrics=None, truth: Optional[float] = None) -> str:
    """Human-readable convergence report for one estimation run.

    *result* is an :class:`~repro.core.results.EstimateResult` (or
    anything with its fields); *metrics* a registry or snapshot; *truth*
    the exact answer when known.  See docs/OBSERVABILITY.md for how to
    read each block.
    """
    header = f"convergence report — {result.algorithm} {result.query.describe()}"
    lines = [header, "=" * min(len(header), 78)]

    run_rows: List[Sequence[object]] = [("estimate", result.value)]
    if truth is not None:
        run_rows.append(("truth", truth))
        if result.value is not None and truth != 0:
            run_rows.append(("rel. error", f"{abs(result.value - truth) / abs(truth):.2%}"))
    mix = ", ".join(f"{kind}={count:,}" for kind, count in sorted(result.cost_by_kind.items()))
    run_rows.append(("query cost", f"{result.cost_total:,} ({mix})"))
    retries = result.cost_by_kind.get("retries", 0)
    if retries and result.cost_total:
        run_rows.append(("retry overhead", f"{retries:,} calls ({retries / result.cost_total:.1%} of spend)"))
    run_rows.append(("samples", result.num_samples))
    lines += _section("run", run_rows)

    stream = estimate_stream_diagnostics([point.estimate for point in result.trace])
    if stream:
        rows = [("checkpoints", int(stream["n"])), ("ess", stream["ess"])]
        if "geweke_z" in stream:
            z = stream["geweke_z"]
            verdict = "mixed" if abs(z) <= 0.1 else "NOT mixed"
            rows.append(("geweke |z|", f"{abs(z):.4f} ({verdict} at |z|<=0.1)"))
        lines += _section("estimate stream", rows)

    walk_rows = [
        (key[len("obs_"):], value)
        for key, value in sorted(result.diagnostics.items())
        if key.startswith("obs_")
    ]
    if walk_rows:
        lines += _section("walk diagnostics", walk_rows)

    snapshot = metrics_snapshot(metrics)
    if snapshot:
        rows = []
        counters = snapshot.get("counters", {})
        api = {k: v for k, v in counters.items() if k.startswith("api.calls{")}
        total_api = sum(api.values())
        if total_api:
            mix = "  ".join(
                f"{key.split('kind=')[1].rstrip('}')} {value / total_api:.1%}"
                for key, value in sorted(api.items())
            )
            rows.append(("query mix", mix))
        hits = counters.get("cache.hits", 0)
        misses = counters.get("cache.misses", 0)
        if hits + misses:
            rows.append(("cache hit ratio", f"{hits / (hits + misses):.2f} ({int(hits):,}/{int(hits + misses):,})"))
        for key, data in snapshot.get("histograms", {}).items():
            if data["count"]:
                rows.append((key, f"mean {data['sum'] / data['count']:.2f} over {data['count']:,} obs"))
        if rows:
            lines += _section("metrics", rows)

    return "\n".join(lines)
