"""The metrics registry: labelled counters, gauges and histograms.

A :class:`MetricsRegistry` is the numeric side of the observability
layer: instrumented code increments counters (query mix, cache hits,
retries), sets gauges (seed-set size, level count) and observes
histograms (walk length, ESTIMATE-p recursion depth).  Registries are
**mergeable across parallel walk shards exactly like**
:class:`~repro.api.accounting.CostMeter`: each shard accumulates into
its own registry, and the parent folds the per-shard snapshots in shard
order — counters and histograms add, gauges keep the maximum — so the
merged snapshot is identical for every worker count.

Snapshots are plain nested dicts with deterministically ordered keys
(``name{label=value,...}``, labels sorted), so they serialise to stable
JSON and cross process boundaries without a custom pickle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233)
"""Fibonacci-spaced upper bounds, a good fit for walk-length and
recursion-depth distributions; one overflow bucket is implicit."""


def _series_key(name: str, labels: Dict[str, object]) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing total (int or float increments)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ReproError("counters only move forward; inc must be >= 0")
        self.value += amount


class Gauge:
    """A point-in-time level (last value wins within one registry)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-boundary histogram: bucket counts plus sum and count.

    ``counts[i]`` tallies observations ``<= buckets[i]``; the final slot
    is the overflow bucket.  Fixed boundaries are what make histograms
    from independent shards addable.
    """

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        ordered = tuple(float(b) for b in buckets)
        if not ordered or any(later <= earlier for later, earlier in zip(ordered[1:], ordered)):
            raise ReproError("histogram buckets must be strictly increasing and non-empty")
        self.buckets = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.total: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1

    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None


class MetricsRegistry:
    """One run's (or one shard's) metric store."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # instrument accessors (create on first touch)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        key = _series_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _series_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS, **labels: object
    ) -> Histogram:
        key = _series_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(buckets)
        return metric

    # ------------------------------------------------------------------
    # snapshots and merging
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic plain-dict rendering (keys sorted), suitable for
        JSON export and for crossing process boundaries."""
        return {
            "counters": {key: self._counters[key].value for key in sorted(self._counters)},
            "gauges": {key: self._gauges[key].value for key in sorted(self._gauges)},
            "histograms": {
                key: {
                    "buckets": list(hist.buckets),
                    "counts": list(hist.counts),
                    "sum": hist.total,
                    "count": hist.count,
                }
                for key, hist in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold a shard's snapshot in: counters/histograms add, gauges max.

        Addition is commutative, and the gauge rule is order-free too, so
        any merge order yields the same totals — but the parallel engine
        still merges in shard order so *snapshots of the merge itself*
        are reproducible structurally (key insertion order included).
        """
        for key, value in snapshot.get("counters", {}).items():
            self.counter(key).value += value
        for key, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(key)
            gauge.value = max(gauge.value, value)
        for key, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(key, buckets=data["buckets"])
            if tuple(hist.buckets) != tuple(float(b) for b in data["buckets"]):
                raise ReproError(f"histogram {key!r} bucket mismatch on merge")
            hist.counts = [a + b for a, b in zip(hist.counts, data["counts"])]
            hist.total += data["sum"]
            hist.count += data["count"]

    def merge_from(self, other: "MetricsRegistry") -> None:
        self.merge_snapshot(other.snapshot())
