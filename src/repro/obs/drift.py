"""Drift diagnostics for the evolving platform.

*Evolving Twitter* (arXiv:1510.01091) tracks how graph properties change
over time; the serving analogue is tracking how **estimates** change as
deltas land.  :class:`DriftTracker` keeps one stream of
``(delta_epoch, estimate)`` points per query identity and summarises
each stream with the existing convergence toolkit
(:func:`~repro.obs.diagnostics.effective_sample_size`, Geweke) — low ESS
over re-runs of the same query means the platform is moving faster than
the estimator converges, i.e. the answer stream is trending, not noisy.

Recording happens on the service's serial collect path, so streams are
deterministic across worker counts, and only successful estimates are
recorded.  The tracker exports through the metrics plane
(``drift.*`` gauges) and a plain :meth:`report` dict; it deliberately
emits **no trace events**, so golden-trace byte identity between an
evolving platform and its rebuilt twin is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.diagnostics import (
    effective_sample_size,
    estimate_stream_diagnostics,
)

__all__ = ["DriftSeries", "DriftTracker"]

#: Streams shorter than this get recorded but not summarised — ESS and
#: Geweke over 2–3 points are noise dressed as diagnostics.
MIN_STREAM_LENGTH = 4


@dataclass
class DriftSeries:
    """One query identity's estimate stream across platform epochs."""

    key: str
    epochs: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def observe(self, epoch: int, value: float) -> None:
        self.epochs.append(int(epoch))
        self.values.append(float(value))

    @property
    def length(self) -> int:
        return len(self.values)

    def relative_drift(self) -> Optional[float]:
        """|last - first| / max(|first|, 1) — the headline drift figure."""
        if self.length < 2:
            return None
        first, last = self.values[0], self.values[-1]
        return abs(last - first) / max(abs(first), 1.0)

    def summary(self) -> Dict[str, float]:
        """ESS/Geweke summary of the stream (empty while too short)."""
        if self.length < MIN_STREAM_LENGTH:
            return {}
        stats = dict(estimate_stream_diagnostics(self.values))
        drift = self.relative_drift()
        if drift is not None:
            stats["relative_drift"] = drift
        return stats


class DriftTracker:
    """Per-query estimate streams over an evolving platform.

    The service calls :meth:`observe` once per successful query outcome
    (serial collect order) and :meth:`advance` once per applied delta;
    :meth:`report` renders everything the ``repro evolve`` CLI prints.
    """

    def __init__(self) -> None:
        self._series: Dict[str, DriftSeries] = {}
        self._epoch = 0

    def advance(self, epoch: int) -> None:
        """Note that the platform moved to *epoch* (monotonic)."""
        self._epoch = max(self._epoch, int(epoch))

    def observe(
        self, key: str, value: Optional[float], *, epoch: Optional[int] = None
    ) -> None:
        """Append *value* to *key*'s stream; None (failed query) is skipped."""
        if value is None:
            return
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = DriftSeries(key)
        series.observe(self._epoch if epoch is None else epoch, value)

    def series(self, key: str) -> Optional[DriftSeries]:
        return self._series.get(key)

    def keys(self) -> Tuple[str, ...]:
        return tuple(self._series)

    @property
    def epoch(self) -> int:
        return self._epoch

    def export_metrics(self, registry) -> None:
        """Write ``drift.*`` gauges into a metrics registry."""
        for key, series in self._series.items():
            registry.gauge("drift.stream_length", query=key).set(series.length)
            drift = series.relative_drift()
            if drift is not None:
                registry.gauge("drift.relative", query=key).set(drift)
            if series.length >= MIN_STREAM_LENGTH:
                registry.gauge("drift.ess", query=key).set(
                    effective_sample_size(series.values)
                )

    def report(self) -> Dict[str, Dict[str, float]]:
        """Per-query drift summaries keyed by query identity."""
        out: Dict[str, Dict[str, float]] = {}
        for key, series in self._series.items():
            entry: Dict[str, float] = {
                "n": float(series.length),
                "first": series.values[0] if series.values else float("nan"),
                "last": series.values[-1] if series.values else float("nan"),
            }
            entry.update(series.summary())
            out[key] = entry
        return out
