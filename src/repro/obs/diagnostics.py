"""Convergence diagnostics computed from walk telemetry.

Three families, matching how the paper's two estimators can fail:

* **Mixing of the estimate stream** — Geweke z-score (reusing the §4.1
  implementation in :mod:`repro.sampling.diagnostics`) and effective
  sample size (ESS) on any scalar series: the running-estimate stream of
  a convergence trace, or an SRW chain's degree series.  A run whose
  trace stream has tiny ESS spent its budget on correlated noise.
* **Burn-in adequacy for MA-SRW** — per-chain Geweke burn-in detection
  plus the fraction of samples it discards; a chain that never crosses
  the threshold (or discards almost everything) did not mix within the
  budget.
* **Visit-frequency agreement for MA-TARW** — the Hansen–Hurwitz
  reweighting is only unbiased if walks actually visit node ``u`` with
  the frequency ESTIMATE-p / Eq. 6 assigns to it; this module compares
  observed per-node (and per-level) visit frequencies against the
  estimator's selection probabilities with binomial z-scores.

Everything here is read-only over series and dicts: computing a
diagnostic never touches an RNG, a meter or the platform, so enabling
diagnostics cannot perturb an estimate.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence

from repro.sampling.diagnostics import detect_burn_in, geweke_z

__all__ = [
    "effective_sample_size",
    "estimate_stream_diagnostics",
    "srw_burn_in_report",
    "visit_probability_agreement",
]


def effective_sample_size(series: Sequence[float], max_lag: Optional[int] = None) -> float:
    """ESS of a stationary series: ``n / (1 + 2 Σ ρ_k)``.

    The autocorrelation sum is truncated by Geyer's initial positive
    sequence rule — accumulate consecutive lag pairs ``ρ_{2k} + ρ_{2k+1}``
    while they stay positive — the standard MCMC estimator that avoids
    summing pure noise at long lags.  Clamped to ``[1, n]``.  An i.i.d.
    stream scores ≈ n; an AR(1) stream with coefficient φ scores
    ≈ n·(1-φ)/(1+φ).
    """
    n = len(series)
    if n < 4:
        return float(n)
    mean = sum(series) / n
    centered = [value - mean for value in series]
    c0 = sum(v * v for v in centered) / n
    if c0 == 0.0:
        return float(n)  # constant series: every sample equally informative

    limit = n - 1 if max_lag is None else min(max_lag, n - 1)

    def rho(lag: int) -> float:
        return sum(centered[i] * centered[i + lag] for i in range(n - lag)) / (n * c0)

    tail = 0.0
    lag = 1
    while lag + 1 <= limit:
        pair = rho(lag) + rho(lag + 1)
        if pair <= 0.0:
            break
        tail += pair
        lag += 2
    ess = n / (1.0 + 2.0 * tail)
    return max(1.0, min(float(n), ess))


def estimate_stream_diagnostics(estimates: Sequence[Optional[float]]) -> Dict[str, float]:
    """Mixing summary of a running-estimate stream (trace checkpoints).

    ``None`` checkpoints (no estimate yet) are dropped.  Returns an empty
    dict when fewer than four numeric points exist — too short for any
    mixing statement.
    """
    stream = [value for value in estimates if value is not None]
    if len(stream) < 4:
        return {}
    out: Dict[str, float] = {
        "n": float(len(stream)),
        "ess": effective_sample_size(stream),
    }
    try:
        out["geweke_z"] = geweke_z(stream)
    except Exception:  # series too short for the segment split
        pass
    return out


def srw_burn_in_report(
    degree_chains: Sequence[Sequence[float]],
    threshold: float = 0.1,
    min_burn_in: int = 0,
) -> Dict[str, float]:
    """Burn-in adequacy over MA-SRW degree chains.

    Mirrors the estimator's own burn-in logic (Geweke scan with a
    quarter-chain fallback) and reports, pooled over chains: mean
    detected burn-in, the fraction of raw samples it discards, the count
    of chains where Geweke actually converged (vs. fell back), and the
    pooled post-burn-in ESS.  ``adequate`` is 1.0 when every chain
    converged and burn-in discards under half of it — the "did the walk
    mix inside the budget" verdict surfaced by ``--report``.
    """
    burn_ins = []
    converged = 0
    discarded = 0
    total = 0
    ess_total = 0.0
    for degrees in degree_chains:
        n = len(degrees)
        if n < 4:
            continue
        total += n
        scan_step = max(10, n // 20)
        burn_in = detect_burn_in(degrees, threshold=threshold, step=scan_step)
        if burn_in is None:
            burn_in = n // 4
        else:
            converged += 1
        burn_in = max(burn_in, min_burn_in)
        burn_ins.append(burn_in)
        discarded += min(burn_in, n)
        tail = list(degrees[burn_in:])
        if len(tail) >= 4:
            ess_total += effective_sample_size(tail)
    if not burn_ins:
        return {}
    chains = len(burn_ins)
    discard_fraction = discarded / total if total else 0.0
    return {
        "chains": float(chains),
        "geweke_converged_chains": float(converged),
        "mean_burn_in": sum(burn_ins) / chains,
        "discard_fraction": discard_fraction,
        "post_burn_in_ess": ess_total,
        "adequate": 1.0 if (converged == chains and discard_fraction < 0.5) else 0.0,
    }


def visit_probability_agreement(
    visits: Mapping[int, int],
    probabilities: Mapping[int, float],
    instances: int,
    level_of=None,
) -> Dict[str, float]:
    """Observed visit frequencies vs. ESTIMATE-p selection probabilities.

    For each node with ``p(u) > 0``, one walk instance visits ``u`` in a
    given phase at most once (paths are strictly level-monotonic), so the
    visit count over ``R`` instances is Binomial(R, p) and

        z(u) = (visits(u) - R·p(u)) / sqrt(R·p(u)·(1-p(u)))

    is ≈ N(0,1) under agreement.  Reported: the max |z| over nodes, the
    mean absolute frequency deviation, and the total-variation distance
    between the observed and expected visit distributions (both
    normalised over the probability-covered nodes).  With *level_of*,
    ``tv_distance_by_level`` aggregates the same comparison per level
    first — the coarse view that survives small per-node counts.
    """
    if instances <= 0:
        return {}
    covered = [node for node, p in probabilities.items() if p > 0.0]
    if not covered:
        return {}
    max_z = 0.0
    abs_dev = 0.0
    observed_mass: Dict[int, float] = {}
    expected_mass: Dict[int, float] = {}
    total_observed = 0.0
    total_expected = 0.0
    for node in covered:
        p = min(probabilities[node], 1.0)
        observed = visits.get(node, 0)
        frequency = observed / instances
        abs_dev += abs(frequency - p)
        spread = instances * p * (1.0 - p)
        if spread > 0.0:
            z = (observed - instances * p) / math.sqrt(spread)
            max_z = max(max_z, abs(z))
        total_observed += frequency
        total_expected += p
        if level_of is not None:
            level = level_of(node)
            if level is not None:
                observed_mass[level] = observed_mass.get(level, 0.0) + frequency
                expected_mass[level] = expected_mass.get(level, 0.0) + p
    out: Dict[str, float] = {
        "nodes": float(len(covered)),
        "instances": float(instances),
        "max_abs_z": max_z,
        "mean_abs_deviation": abs_dev / len(covered),
    }
    if total_observed > 0.0 and total_expected > 0.0:
        out["tv_distance"] = 0.5 * sum(
            abs(visits.get(node, 0) / instances / total_observed
                - min(probabilities[node], 1.0) / total_expected)
            for node in covered
        )
    if level_of is not None and observed_mass and total_observed > 0.0:
        out["tv_distance_by_level"] = 0.5 * sum(
            abs(observed_mass.get(level, 0.0) / total_observed
                - expected_mass.get(level, 0.0) / total_expected)
            for level in sorted(set(observed_mass) | set(expected_mass))
        )
    return out
