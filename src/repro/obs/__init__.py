"""Walk-level observability: tracing, metrics and convergence diagnostics.

The package is the telemetry plane of the reproduction — everything a
serving stack would expose about a walk-based sampler, with the hard
constraint that observing a run **never changes it**:

* :mod:`repro.obs.trace` — the structured trace bus (span/event records
  with simulated-clock timestamps);
* :mod:`repro.obs.metrics` — labelled counters/gauges/histograms,
  mergeable across parallel shards like ``CostMeter``;
* :mod:`repro.obs.diagnostics` — Geweke / ESS / burn-in adequacy /
  ESTIMATE-p visit agreement, computed from telemetry;
* :mod:`repro.obs.export` — canonical JSONL traces, metrics JSON, and
  the human ``--report`` rendering.

:class:`Observability` bundles one run's tracer and registry;
:data:`NULL_OBS` is the shared disabled instance every estimator and
client defaults to — hot paths guard on ``obs.enabled`` /
``obs.trace is None`` and pay one attribute read when telemetry is off.
The ``obs`` test tier pins the contract: with telemetry enabled,
estimates, convergence traces and clean cost columns are bit-identical
to a dark run, serially and across worker counts.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    NULL_SINK,
    RecordingSink,
    TraceSink,
    Tracer,
)
from repro.platform.clock import SimulatedClock

__all__ = [
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_SINK",
    "Observability",
    "RecordingSink",
    "TraceSink",
    "Tracer",
]


class Observability:
    """One run's telemetry handles: an optional tracer and registry.

    ``trace`` is a :class:`~repro.obs.trace.Tracer` or None; ``metrics``
    a :class:`~repro.obs.metrics.MetricsRegistry` or None.  ``enabled``
    is precomputed so hot-path guards cost a single attribute read.
    """

    __slots__ = ("trace", "metrics", "enabled")

    def __init__(
        self,
        trace_sink: Optional[TraceSink] = None,
        metrics: Optional[MetricsRegistry] = None,
        clock: Optional[SimulatedClock] = None,
    ) -> None:
        use_sink = trace_sink is not None and trace_sink.enabled
        self.trace: Optional[Tracer] = Tracer(trace_sink, clock) if use_sink else None
        self.metrics: Optional[MetricsRegistry] = metrics
        self.enabled: bool = self.trace is not None or self.metrics is not None

    def bind_clock(self, clock: SimulatedClock) -> None:
        """Point the tracer at a run's simulated clock (no-op when dark)."""
        if self.trace is not None:
            self.trace.bind_clock(clock)

    def trace_records(self):
        """The recorded trace buffer, when the sink keeps one (else [])."""
        if self.trace is not None and isinstance(self.trace.sink, RecordingSink):
            return self.trace.sink.records
        return []


NULL_OBS = Observability()
"""The shared disabled instance.  Instrumented code defaults to this
exact object — the overhead-guard test asserts identity, so never build
per-run 'null' Observability objects inside the library."""
