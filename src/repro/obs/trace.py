"""The structured trace bus.

Estimators, GRAPH-BUILDER, the parallel engine and the resilient client
emit *records* — flat dicts — into a :class:`Tracer`, which stamps each
one with a monotonic sequence number and the current
:class:`~repro.platform.clock.SimulatedClock` time before handing it to
a :class:`TraceSink`.  Two record kinds exist:

* ``event`` — a point observation (``srw.step``, ``api.retry``, ...);
* ``span``  — a completed unit of work carrying its open time ``t0``
  alongside the close time ``ts`` (``tarw.instance``, ``srw.chain``,
  ``parallel.shard``, ...).

Design constraints, enforced by the ``obs`` test tier:

* **Deterministic.**  Records carry only simulated time, never wall
  time, and emitting consumes no walker RNG and charges no cost meter —
  a traced run is bit-identical to an untraced one, and a fixed seed
  replays byte-identical JSONL (see :mod:`repro.obs.export`).
* **Zero overhead when off.**  The module-level :data:`NULL_SINK` is the
  single shared disabled sink; instrumented hot paths guard on
  ``obs.trace is None`` / ``obs.enabled`` and allocate nothing when
  tracing is off.
* **Zero dependencies.**  Pure stdlib; any layer may import this one.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.platform.clock import SimulatedClock

TRACE_SCHEMA_VERSION = 1
"""Bumped whenever the record layout changes incompatibly; the analyzer
stamps it into the run-opening ``run.begin`` event."""

REQUIRED_KEYS = ("seq", "ts", "kind", "name")
"""Every record carries at least these fields."""

KINDS = ("event", "span")


class TraceSink:
    """Where records go.  Subclasses set ``enabled`` and ``emit``."""

    enabled: bool = False

    def emit(self, record: Dict[str, object]) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class NullSink(TraceSink):
    """The disabled sink: swallows everything, allocates nothing."""

    enabled = False
    __slots__ = ()

    def emit(self, record: Dict[str, object]) -> None:
        pass


NULL_SINK = NullSink()
"""The one shared disabled sink.  Hot paths compare against this object
(identity) — constructing per-run null sinks would defeat the overhead
guard test."""


class RecordingSink(TraceSink):
    """Buffers records in memory, in emission order.

    The workhorse sink: the CLI records then writes JSONL at exit, and
    parallel walk shards record locally so the parent can replay their
    buffers in deterministic shard order after the fan-out completes.
    """

    enabled = True
    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []

    def emit(self, record: Dict[str, object]) -> None:
        self.records.append(record)


class Span:
    """An open unit of work; emitted as one record when closed.

    Use as a context manager; :meth:`add` attaches fields to the record
    before (or at) close.  The record carries ``t0`` (open time) and
    ``ts`` (close time) from the tracer's simulated clock.
    """

    __slots__ = ("_tracer", "_name", "_t0", "_fields", "_closed")

    def __init__(self, tracer: "Tracer", name: str, fields: Dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._t0 = tracer.now()
        self._fields = fields
        self._closed = False

    def add(self, **fields: object) -> "Span":
        self._fields.update(fields)
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._tracer._emit("span", self._name, self._fields, t0=self._t0)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._fields.setdefault("error", exc_type.__name__)
        self.close()


class Tracer:
    """Stamps and routes records for one run (or one walk shard)."""

    __slots__ = ("sink", "clock", "_seq")

    def __init__(self, sink: TraceSink, clock: Optional[SimulatedClock] = None) -> None:
        self.sink = sink
        self.clock = clock if clock is not None else SimulatedClock(0.0)
        self._seq = 0

    def bind_clock(self, clock: SimulatedClock) -> None:
        """Adopt a run's clock (the budgeted client's private clock), so
        timestamps reflect simulated crawl time including rate-limit and
        backoff waits."""
        self.clock = clock

    def now(self) -> float:
        return round(self.clock.now(), 6)

    # ------------------------------------------------------------------
    def _emit(self, kind: str, name: str, fields: Dict[str, object], **extra: object) -> None:
        record: Dict[str, object] = {"seq": self._seq, "ts": self.now(), "kind": kind, "name": name}
        record.update(extra)
        record.update(fields)
        self._seq += 1
        self.sink.emit(record)

    def event(self, name: str, **fields: object) -> None:
        """Emit a point event."""
        self._emit("event", name, fields)

    def span(self, name: str, **fields: object) -> Span:
        """Open a span; emitted as a single record when closed."""
        return Span(self, name, dict(fields))

    def replay(self, records: Iterable[Dict[str, object]], **labels: object) -> None:
        """Re-emit foreign records (a shard's buffer) through this tracer.

        Each record is copied, tagged with *labels* (e.g. ``shard=2``)
        and re-sequenced into this tracer's stream; its own ``ts``/``t0``
        are kept (they are shard-local simulated times).  Replaying in a
        fixed order is what makes merged parallel traces byte-identical
        across worker counts.
        """
        for original in records:
            record = dict(original)
            record.update(labels)
            record["seq"] = self._seq
            self._seq += 1
            self.sink.emit(record)
