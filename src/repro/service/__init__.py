"""Multi-tenant estimation service with cross-query reuse.

The long-lived serving layer over the paper's MICROBLOG-ANALYZER: many
tenants, one shared frozen/mmap platform, per-tenant budgets and rate
limits, admission control, and cross-query reuse that stays bit-identical
to cold runs.  See :mod:`repro.service.service` for the determinism
contract and docs/ARCHITECTURE.md for where the layer sits.
"""

from repro.service.service import EstimationService, QueryOutcome, QueryRequest
from repro.service.tenants import TenantConfig, TenantState
from repro.service.workload import load_workload, parse_workload

__all__ = [
    "EstimationService",
    "QueryOutcome",
    "QueryRequest",
    "TenantConfig",
    "TenantState",
    "load_workload",
    "parse_workload",
]
