"""Workload files: tenants + queries as JSON, for ``repro serve``.

The format mirrors the service API one-to-one:

.. code-block:: json

    {
      "tenants": [
        {"name": "growth", "budget": 40000,
         "rate_limit_calls": 100, "rate_limit_window": 900,
         "admission": "reject"}
      ],
      "queries": [
        {"tenant": "growth", "keyword": "privacy", "budget": 8000,
         "aggregate": "COUNT", "measure": "one",
         "window": [0, 864000], "tag": "daily-count"}
      ]
    }

``aggregate`` defaults to ``COUNT``, ``measure`` to ``one`` (the
registered measure names — see :mod:`repro.core.query`), ``window`` to
the whole history.  Profile predicates are code, not data, so workload
files cannot express them — submit those through the API.
"""

from __future__ import annotations

import json
from typing import Dict, List, Tuple

from repro.core.query import _MEASURE_REGISTRY, Aggregate, AggregateQuery
from repro.errors import ReproError
from repro.service.service import QueryRequest
from repro.service.tenants import TenantConfig


def _parse_tenant(spec: Dict) -> TenantConfig:
    known = {
        "name",
        "budget",
        "rate_limit_calls",
        "rate_limit_window",
        "admission",
        "rate_policy",
    }
    unknown = set(spec) - known
    if unknown:
        raise ReproError(f"unknown tenant fields {sorted(unknown)}")
    if "name" not in spec:
        raise ReproError("tenant entry needs a name")
    return TenantConfig(**spec)


def _parse_query(spec: Dict) -> QueryRequest:
    known = {"tenant", "keyword", "budget", "aggregate", "measure", "window", "tag"}
    unknown = set(spec) - known
    if unknown:
        raise ReproError(f"unknown query fields {sorted(unknown)}")
    for required in ("tenant", "keyword", "budget"):
        if required not in spec:
            raise ReproError(f"query entry needs {required!r}")
    aggregate_name = str(spec.get("aggregate", "COUNT")).upper()
    try:
        aggregate = Aggregate(aggregate_name)
    except ValueError:
        raise ReproError(
            f"unknown aggregate {aggregate_name!r}; "
            f"expected one of {[a.value for a in Aggregate]}"
        ) from None
    measure_name = spec.get("measure", "one")
    measure = _MEASURE_REGISTRY.get(measure_name)
    if measure is None:
        raise ReproError(
            f"unknown measure {measure_name!r}; "
            f"registered: {sorted(_MEASURE_REGISTRY)}"
        )
    window = spec.get("window")
    if window is not None:
        if len(window) != 2:
            raise ReproError("window must be a [start, end) pair")
        window = (float(window[0]), float(window[1]))
    query = AggregateQuery(
        keyword=spec["keyword"],
        aggregate=aggregate,
        measure=measure,
        window=window,
    )
    return QueryRequest(
        tenant=spec["tenant"],
        query=query,
        budget=int(spec["budget"]),
        tag=str(spec.get("tag", "")),
    )


def parse_workload(data: Dict) -> Tuple[List[TenantConfig], List[QueryRequest]]:
    """Tenants and requests from an already-decoded workload document."""
    if not isinstance(data, dict):
        raise ReproError("workload document must be a JSON object")
    tenants = [_parse_tenant(spec) for spec in data.get("tenants", [])]
    if not tenants:
        raise ReproError("workload defines no tenants")
    queries = [_parse_query(spec) for spec in data.get("queries", [])]
    names = {tenant.name for tenant in tenants}
    for request in queries:
        if request.tenant not in names:
            raise ReproError(
                f"query for undefined tenant {request.tenant!r} "
                f"(defined: {sorted(names)})"
            )
    return tenants, queries


def load_workload(path) -> Tuple[List[TenantConfig], List[QueryRequest]]:
    """Read and parse a workload JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ReproError(f"workload file {path} is not valid JSON: {exc}") from None
    return parse_workload(data)
