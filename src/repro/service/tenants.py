"""Tenants of the estimation service: budgets, rate limits, admission.

A *tenant* is one consumer of the long-lived :class:`EstimationService`
— a team, a dashboard, a batch pipeline — with its own query-call
allowance and its own API-rate envelope, exactly the per-consumer knobs
a real platform operator hands out.  The pieces compose what the repo
already has:

* the allowance is a reservation ledger checked at admission plus a
  :class:`~repro.api.accounting.CostMeter` recording what each query
  actually spent, per kind (so a tenant's bill reconciles against the
  sum of its queries' ``cost_by_kind`` columns exactly);
* the rate envelope is the stock :class:`~repro.api.ratelimit.RateLimiter`
  over a private :class:`~repro.platform.clock.SimulatedClock`, bound to
  a minimal profile shim carrying just the two fields the limiter reads.

Admission is **reservation-based and refund-free**: a query reserves its
full requested budget up front, and the reservation is never returned —
even when the walk finishes under budget.  That makes admission a pure
function of the submission order (what already ran, and how fast, can
never change who gets in), which is what lets the service promise the
same admission decisions at every thread count.  The trade-off is
deliberate: an allowance models *committed* capacity, like a reserved
API quota.  Topping up (:meth:`TenantState.top_up`) is the way to grant
more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.api.accounting import CostMeter
from repro.api.ratelimit import RateLimiter
from repro.errors import ReproError
from repro.platform.clock import SimulatedClock

ADMISSION_POLICIES = ("reject", "queue")


@dataclass(frozen=True)
class RateEnvelope:
    """The two fields :class:`~repro.api.ratelimit.RateLimiter` reads.

    Stands in for a full :class:`~repro.platform.profiles.PlatformProfile`
    when the thing being limited is a tenant's *submissions*, not a
    platform's API.
    """

    rate_limit_calls: int
    rate_limit_window: float

    def __post_init__(self) -> None:
        if self.rate_limit_calls < 1 or self.rate_limit_window <= 0:
            raise ReproError("rate envelope must allow >= 1 call per positive window")


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's standing grant.

    ``budget`` is the total query-call allowance across all of the
    tenant's queries (None = unlimited).  ``rate_limit_calls`` /
    ``rate_limit_window`` cap query *submissions* per simulated-time
    window (None disables rate limiting).  ``admission`` picks what
    happens to a submission the allowance cannot cover: ``"reject"``
    refuses it outright, ``"queue"`` parks it until a top-up.
    ``rate_policy`` is the limiter policy — ``"sleep"`` admits late on
    the tenant's simulated clock, ``"raise"`` rejects instead.
    """

    name: str
    budget: Optional[int] = None
    rate_limit_calls: Optional[int] = None
    rate_limit_window: float = 60.0
    admission: str = "reject"
    rate_policy: str = "sleep"

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("tenant must have a name")
        if self.budget is not None and self.budget < 0:
            raise ReproError("tenant budget must be non-negative")
        if self.admission not in ADMISSION_POLICIES:
            raise ReproError(
                f"unknown admission policy {self.admission!r}; "
                f"expected one of {ADMISSION_POLICIES}"
            )


class TenantState:
    """Live accounting for one tenant inside a running service.

    Mutated only from the service's *serial* phases (admission and
    collection), so it carries no lock of its own; the thread-pool
    execution phase never touches it.
    """

    def __init__(self, config: TenantConfig) -> None:
        self.config = config
        self.allowance = config.budget
        """Current total allowance (grows via :meth:`top_up`)."""
        self.reserved = 0
        """Query calls committed to admitted queries (never refunded)."""
        self.spend = CostMeter()
        """Actual per-kind spend folded in as each query completes —
        including the budget-exempt ``retries`` column, so a tenant sees
        the true overhead its fault profile cost it."""
        self.wait = 0.0
        """Total simulated seconds this tenant's submissions spent
        waiting out its rate window."""
        self.clock = SimulatedClock(0.0)
        self.limiter: Optional[RateLimiter] = None
        if config.rate_limit_calls is not None:
            self.limiter = RateLimiter(
                RateEnvelope(config.rate_limit_calls, config.rate_limit_window),  # type: ignore[arg-type]
                self.clock,
                policy=config.rate_policy,
            )

    # ------------------------------------------------------------------
    def can_reserve(self, calls: int) -> bool:
        """Would an admission of *calls* fit the remaining allowance?

        Exact at the boundary: a reservation that lands the ledger
        exactly on the allowance is admitted; one call more is not.
        """
        if self.allowance is None:
            return True
        return self.reserved + calls <= self.allowance

    def reserve(self, calls: int) -> None:
        if not self.can_reserve(calls):
            raise ReproError(
                f"tenant {self.config.name!r} cannot reserve {calls} calls "
                f"({self.reserved}/{self.allowance} committed)"
            )
        self.reserved += calls

    def top_up(self, calls: int) -> None:
        """Grow the allowance (a new grant; unlimited tenants ignore it)."""
        if calls < 0:
            raise ReproError("top_up must be non-negative")
        if self.allowance is not None:
            self.allowance += calls

    def remaining(self) -> Optional[int]:
        """Uncommitted allowance (None when unlimited)."""
        if self.allowance is None:
            return None
        return self.allowance - self.reserved

    def record_spend(self, cost_by_kind: Dict[str, int]) -> None:
        """Fold one completed query's per-kind columns into the bill."""
        for kind, calls in cost_by_kind.items():
            self.spend.charge(kind, calls)
