"""The long-lived multi-tenant estimation service.

:class:`EstimationService` is a thread-pool front end over the existing
:class:`~repro.parallel.engine.ExecutionEngine`: many tenants submit
aggregate queries against one shared frozen (or mmap) platform, and the
service answers them concurrently while reusing everything reusable
across queries — the keyword → chosen-interval cache with its replayable
pilot ledger, the shared first-mention columns (both via
:class:`~repro.core.reuse.SharedQueryState`), and a whole-result cache
for exact repeats.

The contract the ``service`` test tier pins, and how it is met:

* **Concurrent ≡ serial.**  A workload produces the same estimates,
  per-tenant :class:`~repro.api.accounting.CostMeter` columns, and
  exported trace bytes at every thread count.  Admission runs serially
  in submission order (reservation-based, refund-free — see
  :mod:`repro.service.tenants`); execution fans out through the engine,
  which returns results in task order; collection folds tenant bills and
  emits ``service.*`` telemetry serially in request order.  Each query's
  seed derives statelessly from the service seed and the query's own
  fingerprint, so no thread interleaving can reach any query's RNG.
* **Warm ≡ cold.**  A reuse-cache hit is bit-identical to the cache-miss
  recomputation it replaces: interval hits replay the recorded pilot
  ledger through the query's own fresh client stack (identical charges,
  rate-limit waits and trace bytes — see :mod:`repro.core.reuse`), and
  whole-result hits replay the stored trace records and return a copy of
  the stored result — valid because a recomputation is deterministic in
  the (seed, fingerprint) pair the cache key covers.
* **Admission is exact.**  A tenant allowance admits reservations up to
  the boundary inclusive and nothing past it, at any thread count,
  because admission never leaves the serial phase.

Failure isolation: one query's failure (budget too small to seed a walk,
say) becomes a ``"failed"`` outcome with the error message; it never
takes down the batch and never bills the tenant for calls it didn't
make (the bill folds the *actual* ``cost_by_kind``, which for an early
failure is whatever the run spent before raising — exactly what a real
crawl would have burned).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.api.faults import FaultPlan
from repro.api.resilient import RetryPolicy
from repro.core.query import _MEASURE_REGISTRY, AggregateQuery
from repro.core.results import EstimateResult
from repro.core.reuse import SharedQueryState
from repro.errors import (
    APIError,
    EstimationError,
    RateLimitError,
    ReproError,
)
from repro.obs import NULL_OBS, Observability, RecordingSink
from repro.obs.drift import DriftTracker
from repro.obs.export import trace_lines
from repro.service.tenants import TenantConfig, TenantState

STATUSES = ("admitted", "queued", "rejected", "cancelled", "ok", "failed")


@dataclass(frozen=True)
class QueryRequest:
    """One tenant's submission: a query plus its requested call budget."""

    tenant: str
    query: AggregateQuery
    budget: int
    tag: str = ""
    """Free-form correlation label, echoed on the outcome and in
    ``service.*`` trace events."""


@dataclass
class QueryOutcome:
    """What the service returns for one submission."""

    request_id: int
    request: QueryRequest
    status: str
    reason: str = ""
    """Why a submission did not run (``rejected``/``queued``/``cancelled``)."""
    result: Optional[EstimateResult] = None
    error: str = ""
    cached: bool = False
    """True when the whole result came from the cross-query result cache
    (bit-identical to recomputation — the service tier pins this)."""
    trace_records: List[dict] = field(default_factory=list)

    def trace_bytes(self) -> bytes:
        """The query's exported canonical trace (the pinned byte form)."""
        return ("\n".join(trace_lines(self.trace_records))).encode("ascii")


@dataclass
class _Ticket:
    """Internal per-submission state."""

    request_id: int
    request: QueryRequest
    status: str
    reason: str = ""
    outcome: Optional[QueryOutcome] = None


class EstimationService:
    """Concurrent aggregate estimation over one shared platform.

    Construction fixes the estimation stack (algorithm, graph design,
    interval policy, fault/retry layers) for every query the service
    answers — one service is one serving configuration, which is what
    makes the result cache sound with keys over query fingerprints only.

    ``obs`` is the *service's* telemetry plane (per-tenant metrics,
    ``service.*`` spans, queue-depth gauges).  Each query additionally
    records its own private trace, returned on the outcome, whose bytes
    are the object of the bit-identity guarantees.
    """

    def __init__(
        self,
        platform,
        tenants: Iterable[TenantConfig],
        *,
        algorithm: str = "ma-tarw",
        graph_design: str = "level-by-level",
        interval="auto",
        seed: int = 0,
        n_threads: int = 1,
        keep_intra_fraction: float = 0.0,
        api_latency: float = 0.0,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        if n_threads < 1:
            raise ReproError("n_threads must be >= 1")
        self.platform = platform
        self.tenants: Dict[str, TenantState] = {}
        for config in tenants:
            if config.name in self.tenants:
                raise ReproError(f"duplicate tenant {config.name!r}")
            self.tenants[config.name] = TenantState(config)
        self.algorithm = algorithm
        self.graph_design = graph_design
        self.interval = interval
        self.keep_intra_fraction = keep_intra_fraction
        self.api_latency = api_latency
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.n_threads = n_threads
        self.obs = obs if obs is not None else NULL_OBS
        self.reuse = SharedQueryState(seed=seed)
        """The cross-query reuse cache every per-query analyzer shares."""
        self.drift = DriftTracker()
        """Estimate streams per query identity across platform epochs
        (diagnostics only — never touches query traces or results)."""
        self._entropy = random.Random(seed).getrandbits(64)
        self._lock = threading.Lock()
        self._next_id = 1
        self._tickets: Dict[int, _Ticket] = {}
        self._queues: Dict[str, List[int]] = {name: [] for name in self.tenants}
        self._results: Dict[Tuple, Tuple[EstimateResult, Tuple[dict, ...]]] = {}
        self._stats: Dict[str, int] = {
            "submitted": 0,
            "admitted": 0,
            "rejected": 0,
            "queued": 0,
            "cancelled": 0,
            "completed": 0,
            "failed": 0,
            "result_hits": 0,
            "result_misses": 0,
            "uncacheable": 0,
        }

    # ------------------------------------------------------------------
    # admission (always on the caller's thread — serial by construction)
    # ------------------------------------------------------------------
    def submit(self, request: QueryRequest) -> _Ticket:
        """Admit, queue or reject one submission.

        Never executes anything; call :meth:`execute_pending` (or use
        :meth:`run_workload`) to run what was admitted.  Decisions are a
        pure function of the submission sequence so far.
        """
        ticket = _Ticket(self._next_id, request, status="rejected")
        self._next_id += 1
        self._tickets[ticket.request_id] = ticket
        self._count("submitted")
        tenant = self.tenants.get(request.tenant)
        if tenant is None:
            ticket.reason = "unknown-tenant"
        elif request.budget < 1:
            ticket.reason = "invalid-budget"
        else:
            waited = self._acquire_rate(tenant)
            if waited is None:
                ticket.reason = "rate-limited"
            elif tenant.can_reserve(request.budget):
                tenant.reserve(request.budget)
                ticket.status = "admitted"
            elif tenant.config.admission == "queue":
                ticket.status = "queued"
                self._queues[request.tenant].append(ticket.request_id)
            else:
                ticket.reason = "over-budget"
        self._count(ticket.status if ticket.status != "admitted" else "admitted")
        self._note_admission(ticket)
        return ticket

    def _acquire_rate(self, tenant: TenantState) -> Optional[float]:
        """Consume one submission token; None means the limiter refused."""
        limiter = tenant.limiter
        if limiter is None:
            return 0.0
        before = limiter.total_wait
        try:
            limiter.acquire(1)
        except RateLimitError:
            return None
        waited = limiter.total_wait - before
        tenant.wait += waited
        return waited

    def cancel(self, request_id: int) -> bool:
        """Withdraw a *queued* submission (running/finished ones stand)."""
        ticket = self._tickets.get(request_id)
        if ticket is None or ticket.status != "queued":
            return False
        ticket.status = "cancelled"
        ticket.reason = "cancelled"
        self._queues[ticket.request.tenant].remove(request_id)
        self._count("cancelled")
        self._stats["queued"] -= 1
        self._note_admission(ticket)
        return True

    def top_up(self, tenant_name: str, calls: int) -> List[int]:
        """Grow a tenant's allowance and drain its queue FIFO.

        Returns the request ids the top-up admitted.  Draining stops at
        the first queued request that still does not fit — FIFO order is
        part of the admission determinism contract, so a later small
        request never overtakes an earlier large one.
        """
        tenant = self.tenants.get(tenant_name)
        if tenant is None:
            raise ReproError(f"unknown tenant {tenant_name!r}")
        tenant.top_up(calls)
        admitted: List[int] = []
        queue = self._queues[tenant_name]
        while queue:
            ticket = self._tickets[queue[0]]
            if not tenant.can_reserve(ticket.request.budget):
                break
            queue.pop(0)
            tenant.reserve(ticket.request.budget)
            ticket.status = "admitted"
            ticket.reason = ""
            admitted.append(ticket.request_id)
            self._count("admitted")
            self._stats["queued"] -= 1
            self._note_admission(ticket)
        return admitted

    def queue_depth(self, tenant_name: str) -> int:
        return len(self._queues[tenant_name])

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute_pending(self, n_threads: Optional[int] = None) -> List[QueryOutcome]:
        """Run every admitted-but-unexecuted submission; ordered outcomes.

        Planning (which requests replay the result cache, which compute,
        which follow an identical request earlier in the same batch) and
        collection (tenant bills, ``service.*`` telemetry) are serial in
        request order; only the estimation work itself fans out, so the
        thread count is invisible in every output.
        """
        threads = self.n_threads if n_threads is None else n_threads
        if threads < 1:
            raise ReproError("n_threads must be >= 1")
        pending = [
            t
            for t in self._tickets.values()
            if t.status == "admitted" and t.outcome is None
        ]
        pending.sort(key=lambda t: t.request_id)
        if not pending:
            return []

        # Plan serially: reuse decisions (and their counters) must not
        # depend on execution interleaving.
        plan: List[Tuple[_Ticket, str, Optional[Tuple], Optional[int]]] = []
        batch_first: Dict[Tuple, int] = {}
        for ticket in pending:
            key = self._fingerprint(ticket.request)
            if key is None:
                self._count("uncacheable")
                plan.append((ticket, "compute", None, None))
            elif key in self._results:
                self._count("result_hits")
                plan.append((ticket, "replay", key, None))
            elif key in batch_first:
                self._count("result_hits")
                plan.append((ticket, "follow", key, batch_first[key]))
            else:
                self._count("result_misses")
                batch_first[key] = ticket.request_id
                plan.append((ticket, "compute", key, None))

        tracer = self.obs.trace
        # The thread count is deliberately absent from the span: the
        # service's whole telemetry stream is pinned byte-identical
        # across thread counts, configuration included.
        span = (
            tracer.span("service.batch", queries=len(pending))
            if tracer is not None
            else None
        )
        from repro.parallel.engine import ExecutionEngine

        engine = ExecutionEngine(n_workers=threads, executor="thread")
        tasks = [
            (ticket, mode, key)
            for ticket, mode, key, leader in plan
            if mode != "follow"
        ]
        ran = engine.run(self._execute_one, tasks)
        by_id = {outcome.request_id: outcome for outcome in ran}

        # Resolve followers from their leader's outcome — a recomputation
        # would be deterministic, so sharing it is exact.
        outcomes: List[QueryOutcome] = []
        for ticket, mode, key, leader in plan:
            if mode == "follow":
                source = by_id[leader]  # type: ignore[index]
                outcome = QueryOutcome(
                    request_id=ticket.request_id,
                    request=ticket.request,
                    status=source.status,
                    result=self._copy_result(source.result),
                    error=source.error,
                    cached=True,
                    trace_records=[dict(r) for r in source.trace_records],
                )
            else:
                outcome = by_id[ticket.request_id]
            outcomes.append(outcome)

        for outcome in outcomes:  # serial collection, request order
            self._collect(outcome)
        if span is not None:
            span.add(completed=len(outcomes)).close()
        return outcomes

    def run_workload(
        self, requests: Sequence[QueryRequest], n_threads: Optional[int] = None
    ) -> List[QueryOutcome]:
        """Submit *requests* in order, run what was admitted, and return
        one outcome per request (rejected/queued submissions included)."""
        tickets = [self.submit(request) for request in requests]
        self.execute_pending(n_threads=n_threads)
        return [self._outcome_of(ticket) for ticket in tickets]

    def outcome(self, request_id: int) -> QueryOutcome:
        """The current outcome of any submission (by request id)."""
        ticket = self._tickets.get(request_id)
        if ticket is None:
            raise ReproError(f"unknown request id {request_id}")
        return self._outcome_of(ticket)

    def _outcome_of(self, ticket: _Ticket) -> QueryOutcome:
        if ticket.outcome is not None:
            return ticket.outcome
        return QueryOutcome(
            request_id=ticket.request_id,
            request=ticket.request,
            status=ticket.status,
            reason=ticket.reason,
        )

    # ------------------------------------------------------------------
    def _execute_one(self, ticket: _Ticket, mode: str, key: Optional[Tuple]) -> QueryOutcome:
        request = ticket.request
        if mode == "replay":
            result, records = self._results[key]  # type: ignore[index]
            return QueryOutcome(
                request_id=ticket.request_id,
                request=request,
                status="ok",
                result=self._copy_result(result),
                cached=True,
                trace_records=[dict(r) for r in records],
            )
        sink = RecordingSink()
        analyzer = self._analyzer(request, Observability(trace_sink=sink))
        try:
            result = analyzer.estimate(request.query, request.budget)
            status, error = "ok", ""
        except (EstimationError, APIError, ReproError) as exc:
            result, status, error = None, "failed", str(exc)
        if status == "ok" and key is not None:
            with self._lock:
                self._results[key] = (
                    self._copy_result(result),  # type: ignore[arg-type]
                    tuple(dict(r) for r in sink.records),
                )
        return QueryOutcome(
            request_id=ticket.request_id,
            request=request,
            status=status,
            result=result,
            error=error,
            trace_records=list(sink.records),
        )

    def _analyzer(self, request: QueryRequest, obs: Observability):
        from repro.core.analyzer import MicroblogAnalyzer

        return MicroblogAnalyzer(
            self.platform,
            algorithm=self.algorithm,
            graph_design=self.graph_design,
            interval=self.interval,
            keep_intra_fraction=self.keep_intra_fraction,
            seed=self._request_rng(request),
            api_latency=self.api_latency,
            fault_plan=self.fault_plan,
            retry_policy=self.retry_policy,
            obs=obs,
            reuse=self.reuse,
        )

    def _request_rng(self, request: QueryRequest) -> random.Random:
        """The query's private RNG, derived statelessly from its identity.

        Identical submissions — any tenant, any order, any thread count —
        therefore walk identically, which is both the determinism
        guarantee and what makes whole-result reuse exact.
        """
        query = request.query
        identity = (
            query.keyword,
            query.aggregate.value,
            query.measure.name,
            query.window,
            query.predicate is not None,
            request.budget,
        )
        return random.Random(f"{self._entropy}:query:{identity}")

    def _fingerprint(self, request: QueryRequest) -> Optional[Tuple]:
        """Result-cache key, or None when the query is not cacheable.

        Ad-hoc measures (not pickle-by-name registered) and profile
        predicates are opaque callables — two distinct ones could share a
        name — so such queries always recompute.
        """
        query = request.query
        if query.predicate is not None:
            return None
        if _MEASURE_REGISTRY.get(query.measure.name) is not query.measure:
            return None
        return (
            query.keyword,
            query.aggregate.value,
            query.measure.name,
            query.window,
            request.budget,
        )

    @staticmethod
    def _copy_result(result: Optional[EstimateResult]) -> Optional[EstimateResult]:
        if result is None:
            return None
        return replace(
            result,
            cost_by_kind=dict(result.cost_by_kind),
            trace=list(result.trace),
            diagnostics=dict(result.diagnostics),
        )

    # ------------------------------------------------------------------
    # telemetry + stats
    # ------------------------------------------------------------------
    def _collect(self, outcome: QueryOutcome) -> None:
        ticket = self._tickets[outcome.request_id]
        ticket.status = outcome.status
        ticket.outcome = outcome
        request = outcome.request
        tenant = self.tenants[request.tenant]
        self._count("completed" if outcome.status == "ok" else "failed")
        if outcome.result is not None:
            tenant.record_spend(outcome.result.cost_by_kind)
        if outcome.status == "ok" and not outcome.cached and outcome.result is not None:
            # Serial, so streams are worker-count-invariant.  Cached hits
            # are skipped: a replay re-states an old epoch's estimate and
            # would dilute the drift signal with duplicates.
            query = request.query
            self.drift.observe(
                f"{query.keyword}/{query.aggregate.value}/{query.measure.name}",
                outcome.result.value,
            )
        metrics = self.obs.metrics
        if metrics is not None:
            metrics.counter(
                "service.queries", tenant=request.tenant, status=outcome.status
            ).inc()
            if outcome.cached:
                metrics.counter("service.result_cache_hits", tenant=request.tenant).inc()
            if outcome.result is not None:
                for kind, calls in sorted(outcome.result.cost_by_kind.items()):
                    if calls:
                        metrics.counter(
                            "service.calls", tenant=request.tenant, kind=kind
                        ).inc(calls)
        tracer = self.obs.trace
        if tracer is not None:
            tracer.event(
                "service.query",
                request=outcome.request_id,
                tenant=request.tenant,
                tag=request.tag,
                keyword=request.query.keyword,
                status=outcome.status,
                cached=outcome.cached,
                value=outcome.result.value if outcome.result else None,
                cost=outcome.result.cost_total if outcome.result else 0,
            )

    def _note_admission(self, ticket: _Ticket) -> None:
        request = ticket.request
        metrics = self.obs.metrics
        if metrics is not None:
            metrics.counter(
                "service.admissions", tenant=request.tenant, status=ticket.status
            ).inc()
            if request.tenant in self._queues:
                metrics.gauge("service.queue_depth", tenant=request.tenant).set(
                    len(self._queues[request.tenant])
                )
        tracer = self.obs.trace
        if tracer is not None:
            tracer.event(
                "service.admit",
                request=ticket.request_id,
                tenant=request.tenant,
                tag=request.tag,
                status=ticket.status,
                reason=ticket.reason,
                budget=request.budget,
            )

    def _count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._stats[name] = self._stats.get(name, 0) + amount

    def stats(self) -> Dict[str, int]:
        """Service counters plus the shared reuse cache's counters."""
        with self._lock:
            merged = dict(self._stats)
        for name, value in self.reuse.stats().items():
            merged[f"reuse_{name}"] = value
        return merged

    def tenant_bill(self, tenant_name: str) -> Dict[str, int]:
        """A tenant's per-kind spend columns (the reconciled bill)."""
        tenant = self.tenants.get(tenant_name)
        if tenant is None:
            raise ReproError(f"unknown tenant {tenant_name!r}")
        return tenant.spend.by_kind()

    def invalidate(self, keyword: Optional[str] = None) -> None:
        """Drop cross-query caches (for one keyword, or everything).

        The hook platform evolution needs: after the frozen columns
        change, cached intervals / columns / results are stale.
        """
        self.reuse.invalidate(keyword)
        with self._lock:
            if keyword is None:
                self._results.clear()
            else:
                name = keyword
                for key in [k for k in self._results if k[0] == name]:
                    del self._results[key]

    # ------------------------------------------------------------------
    # platform evolution
    # ------------------------------------------------------------------
    def advance(self, delta):
        """Ingest one :class:`~repro.platform.evolve.DeltaBatch` and
        re-key every cache against the new platform epoch.

        The store stitches the delta in (see
        :meth:`~repro.platform.evolve.OverlayStore.append`), the clock
        advances to the delta's latest timestamp so search windows cover
        the new posts, and *every* cross-query cache is dropped — the
        result cache's keys carry no platform component, and the reuse
        caches' fingerprint keys, while now epoch-tagged, hold memory
        that can never hit again.  Returns the
        :class:`~repro.platform.evolve.DeltaStats`.
        """
        from repro.platform.evolve import OverlayStore

        store = self.platform.store
        if not isinstance(store, OverlayStore):
            raise ReproError(
                "advance() needs an evolving platform — wrap it with "
                "repro.platform.evolve.evolve_platform first"
            )
        stats = store.append(delta)
        if stats.max_time is not None:
            self.platform.clock.sleep_until(stats.max_time)
        self.invalidate()
        self.drift.advance(stats.epoch)
        metrics = self.obs.metrics
        if metrics is not None:
            metrics.counter("service.deltas").inc()
            metrics.counter("service.delta_posts").inc(stats.posts)
            metrics.counter("service.delta_users").inc(stats.users)
            metrics.counter("service.delta_edges").inc(stats.edges)
            metrics.gauge("service.delta_epoch").set(stats.epoch)
        tracer = self.obs.trace
        if tracer is not None:
            tracer.event(
                "service.advance",
                epoch=stats.epoch,
                posts=stats.posts,
                users=stats.users,
                edges=stats.edges,
            )
        return stats

    def compact(self, directory: Optional[str] = None):
        """Re-freeze the overlay's frozen+tail state and serve from it.

        Content (and ``delta_epoch``) are carried over bit-identically —
        see :meth:`~repro.platform.evolve.OverlayStore.compact` — so warm
        caches stay valid across compaction; the service deliberately
        does **not** invalidate here, and the evolve tier pins that a
        warm post-compaction service answers byte-identically to a cold
        one.  The service keeps serving through a fresh (empty) overlay
        over the compacted store so later :meth:`advance` calls keep
        working; the compacted :class:`FrozenStore` itself is returned.
        """
        from repro.platform.evolve import OverlayStore

        store = self.platform.store
        if not isinstance(store, OverlayStore):
            raise ReproError("compact() needs an evolving platform")
        compacted = store.compact(directory)
        self.platform.store = OverlayStore(compacted)
        return compacted

    def drift_report(self) -> Dict[str, Dict[str, float]]:
        """Per-query drift summaries (and ``drift.*`` metrics export)."""
        if self.obs.metrics is not None:
            self.drift.export_metrics(self.obs.metrics)
        return self.drift.report()
