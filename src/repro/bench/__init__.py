"""Shared experiment drivers for the ``benchmarks/`` suite."""

from repro.bench.harness import (
    BENCH_BUDGETS,
    BENCH_PLATFORM_SEED,
    BENCH_REPLICATES,
    CostErrorPoint,
    bench_platform,
    budget_to_reach_error,
    cost_to_reach_error,
    emit,
    error_at_budget,
    format_table,
    ground_truth,
    mean_cost_to_error,
    median_error_at_budget,
    replicate_runs,
    run_estimator,
)

__all__ = [
    "BENCH_PLATFORM_SEED",
    "BENCH_BUDGETS",
    "BENCH_REPLICATES",
    "CostErrorPoint",
    "bench_platform",
    "replicate_runs",
    "run_estimator",
    "cost_to_reach_error",
    "mean_cost_to_error",
    "median_error_at_budget",
    "budget_to_reach_error",
    "error_at_budget",
    "ground_truth",
    "format_table",
    "emit",
]
