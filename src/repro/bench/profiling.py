"""cProfile capture shared by the CLI and the bench harness.

``--profile PATH`` on ``python -m repro estimate`` (and the bench
scripts) funnels through :func:`profiled`: the wrapped block runs under
:mod:`cProfile` and the binary stats land at *PATH*, ready for
``python -m pstats PATH`` or ``snakeviz``.  A falsy path disables
profiling entirely — the block runs with zero added overhead — so
callers can thread the option through unconditionally.

Profiling alters wall-clock (tracing overhead is substantial on the
per-call-heavy slow path), so speedup numbers must come from unprofiled
runs; the hot-path bench times unprofiled and profiles separately for
the phase breakdown.  See docs/BENCHMARKS.md.
"""

from __future__ import annotations

import contextlib
import cProfile
from typing import Iterator, Optional


@contextlib.contextmanager
def profiled(path: Optional[str]) -> Iterator[Optional[cProfile.Profile]]:
    """Run the block under cProfile, dumping ``.pstats`` to *path*.

    Yields the active profiler (None when disabled) so in-process
    callers can also read the stats without reloading the file.
    """
    if not path:
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(path)


__all__ = ["profiled"]
