"""Experiment drivers shared by every benchmark.

The paper's evaluation methodology (§6): for each (algorithm, graph
design, query) pair, measure the query cost required to reach a target
relative error, averaged over repeated runs.  This module provides

* :func:`bench_platform` — a process-wide cache of simulated platforms so
  all benchmark files share one deterministic build per configuration;
* :func:`run_estimator` — one budgeted run of a named algorithm;
* :func:`cost_to_reach_error` / :func:`mean_cost_to_error` — extract the
  paper's cost-at-error metric from convergence traces, over replicates;
* :func:`error_at_budget` — the inverse reading (error after a budget);
* :func:`format_table` — uniform plain-text rendering of result tables so
  the benchmark output mirrors the paper's tables/figure series.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.analyzer import MicroblogAnalyzer
from repro.core.query import AggregateQuery
from repro.core.results import EstimateResult
from repro.core.srw import SRWConfig
from repro.core.tarw import TARWConfig
from repro.groundtruth import exact_value
from repro.platform.clock import DAY
from repro.platform.profiles import PlatformProfile
from repro.platform.simulator import PlatformConfig, SimulatedPlatform, build_platform

BENCH_PLATFORM_SEED = 20140622  # SIGMOD'14 started June 22, 2014
BENCH_NUM_USERS = 8_000
BENCH_REPLICATES = 3
BENCH_BUDGETS = (1_500, 3_000, 5_000, 8_000)
"""Budget grid for error-at-budget sweeps: the bench platform's keyword
subgraphs cost roughly 4-7k calls to crawl fully, so this grid spans the
partial-coverage regime where the paper's comparisons live."""

_PLATFORM_CACHE: Dict[Tuple, SimulatedPlatform] = {}


def bench_platform(
    num_users: int = BENCH_NUM_USERS,
    seed: int = BENCH_PLATFORM_SEED,
    profile: Optional[PlatformProfile] = None,
) -> SimulatedPlatform:
    """The shared benchmark platform (cached per configuration)."""
    key = (num_users, seed, profile.name if profile else None)
    if key not in _PLATFORM_CACHE:
        config = PlatformConfig(num_users=num_users, seed=seed)
        platform = build_platform(config)
        if profile is not None:
            platform = platform.with_profile(profile)
        _PLATFORM_CACHE[key] = platform
    return _PLATFORM_CACHE[key]


@dataclass
class CostErrorPoint:
    """One point of a query-cost-vs-relative-error curve."""

    target_error: float
    mean_cost: Optional[float]
    achieved_runs: int
    total_runs: int


def run_estimator(
    platform: SimulatedPlatform,
    query: AggregateQuery,
    algorithm: str,
    graph_design: str = "level-by-level",
    budget: int = 30_000,
    interval: Union[float, str] = DAY,
    seed: int = 0,
    keep_intra_fraction: float = 0.0,
    tarw_config: Optional[TARWConfig] = None,
    srw_config: Optional[SRWConfig] = None,
    api_latency: float = 0.0,
    fault_plan=None,
    retry_policy=None,
    obs=None,
    profile_out: Optional[str] = None,
) -> EstimateResult:
    """One budgeted estimation run with benchmark-friendly defaults.

    *obs* is an optional :class:`repro.obs.Observability`; passing one
    makes the bench run emit the same traces/metrics as the CLI flags.
    *profile_out* dumps a cProfile ``.pstats`` of the run (the bench
    analogue of the CLI's ``--profile``); profiled wall-clock is not
    comparable to unprofiled wall-clock — see docs/BENCHMARKS.md.
    """
    analyzer = MicroblogAnalyzer(
        platform,
        algorithm=algorithm,
        graph_design=graph_design,
        interval=interval,
        keep_intra_fraction=keep_intra_fraction,
        tarw_config=tarw_config,
        srw_config=srw_config,
        seed=seed,
        api_latency=api_latency,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        obs=obs,
    )
    from repro.bench.profiling import profiled

    with profiled(profile_out):
        return analyzer.estimate(query, budget=budget)


def cost_to_reach_error(result: EstimateResult, truth: float, target: float) -> Optional[int]:
    """Cost at which *result*'s trace stabilises within *target* error."""
    return result.cost_to_reach_error(truth, target)


def mean_cost_to_error(
    results: Sequence[EstimateResult], truth: float, target: float
) -> CostErrorPoint:
    """Average cost-at-error over replicate runs (non-achieving runs noted).

    Runs that never stabilise within the band are excluded from the mean
    but reported via ``achieved_runs``/``total_runs`` so silently-dropped
    replicates are visible in every table.
    """
    costs = []
    for result in results:
        cost = result.cost_to_reach_error(truth, target)
        if cost is not None:
            costs.append(cost)
    mean = statistics.fmean(costs) if costs else None
    return CostErrorPoint(
        target_error=target,
        mean_cost=mean,
        achieved_runs=len(costs),
        total_runs=len(results),
    )


def error_at_budget(result: EstimateResult, truth: float) -> Optional[float]:
    """Final relative error of one run (None when no estimate emerged)."""
    if result.value is None:
        return None
    return abs(result.value - truth) / abs(truth)


def _replicate_task(
    ref,
    query: AggregateQuery,
    algorithm: str,
    seed: int,
    kwargs: Dict,
) -> EstimateResult:
    """One replicate, addressed through a :class:`PlatformRef`.

    Module-level (not a closure) so it is picklable: process workers
    receive the ref, load the platform from its ``.npz`` spill once per
    process, and run the replicate locally.
    """
    return run_estimator(ref.resolve(), query, algorithm, seed=seed, **kwargs)


def replicate_runs(
    platform: SimulatedPlatform,
    query: AggregateQuery,
    algorithm: str,
    replicates: int,
    n_workers: Optional[int] = None,
    executor: str = "auto",
    **kwargs,
) -> List[EstimateResult]:
    """*replicates* independent runs differing only in walk seed.

    With ``n_workers > 1`` the replicates are dispatched through the
    parallel execution engine (each on its own client, so there is no
    shared state to race on); results come back in replicate order and
    are identical to the serial ones — every replicate's seed is fixed
    by its index, not by scheduling.
    """
    if n_workers is None or n_workers <= 1:
        return [
            run_estimator(platform, query, algorithm, seed=1000 + rep, **kwargs)
            for rep in range(replicates)
        ]
    from repro.parallel.engine import ExecutionEngine
    from repro.parallel.platform_ref import PlatformRef

    ref = PlatformRef(platform)
    tasks = [
        (ref, query, algorithm, 1000 + rep, dict(kwargs)) for rep in range(replicates)
    ]
    engine = ExecutionEngine(n_workers=n_workers, executor=executor)
    return engine.run(_replicate_task, tasks)


def ground_truth(platform: SimulatedPlatform, query: AggregateQuery) -> float:
    """Exact answer on the benchmark platform."""
    return exact_value(platform.store, query)


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width plain-text table with a title rule, ready to print."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * max(len(title), 8)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def median_error_at_budget(
    platform: SimulatedPlatform,
    query: AggregateQuery,
    algorithm: str,
    budget: int,
    replicates: int = BENCH_REPLICATES,
    **kwargs,
) -> Optional[float]:
    """Median final relative error over replicate budgeted runs."""
    truth = exact_value(platform.store, query)
    errors = []
    for rep in range(replicates):
        result = run_estimator(
            platform, query, algorithm, budget=budget, seed=2000 + rep, **kwargs
        )
        if result.value is not None:
            errors.append(abs(result.value - truth) / abs(truth))
    return statistics.median(errors) if errors else None


def budget_to_reach_error(
    platform: SimulatedPlatform,
    query: AggregateQuery,
    algorithm: str,
    target: float,
    budgets: Sequence[int] = BENCH_BUDGETS,
    replicates: int = BENCH_REPLICATES,
    **kwargs,
) -> Optional[int]:
    """Smallest budget in the grid whose median error meets *target*.

    The budget-sweep analogue of the paper's query-cost-at-error metric:
    instead of reading one long run's trace (which favours algorithms with
    cheap incremental checkpoints), every algorithm gets fresh budgeted
    runs at each grid point.
    """
    for budget in sorted(budgets):
        error = median_error_at_budget(
            platform, query, algorithm, budget, replicates=replicates, **kwargs
        )
        if error is not None and error <= target:
            return budget
    return None


def emit(name: str, text: str) -> str:
    """Print a benchmark table and persist it under benchmarks/results/."""
    import pathlib

    print()
    print(text)
    results_dir = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    try:
        results_dir.mkdir(parents=True, exist_ok=True)
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    except OSError:
        pass  # persisting is best-effort; stdout still has the table
    return text


def _cell(value: object) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.2e}"
        return f"{value:,.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
