"""Deterministic random-number helpers.

All stochastic components in this library accept either an integer seed, a
``random.Random`` instance, or ``None``.  Funnelling construction through
:func:`ensure_rng` keeps experiments reproducible: a benchmark that passes
``seed=7`` gets the same platform, cascades and walks on every run.
"""

from __future__ import annotations

import random
from typing import Union

RandomLike = Union[int, random.Random, None]


def ensure_rng(seed: RandomLike = None) -> random.Random:
    """Return a ``random.Random`` for *seed*.

    ``None`` yields a fresh unseeded generator; an ``int`` yields a seeded
    generator; an existing ``Random`` is returned unchanged (shared state).
    """
    if seed is None:
        return random.Random()
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, int):
        return random.Random(seed)
    raise TypeError(f"seed must be int, random.Random or None, got {type(seed)!r}")


def spawn(rng: random.Random, label: str) -> random.Random:
    """Derive an independent child generator from *rng*.

    Components that consume randomness in data-dependent order (e.g. a
    cascade whose draw count depends on graph size) would otherwise perturb
    every downstream component.  Spawning one child per component isolates
    their streams while staying deterministic.
    """
    return random.Random(f"{rng.getrandbits(64)}:{label}")
