"""Deterministic random-number helpers.

All stochastic components in this library accept either an integer seed, a
``random.Random`` instance, or ``None``.  Funnelling construction through
:func:`ensure_rng` keeps experiments reproducible: a benchmark that passes
``seed=7`` gets the same platform, cascades and walks on every run.
"""

from __future__ import annotations

import random
from typing import List, Union

import numpy as np

RandomLike = Union[int, random.Random, None]


def ensure_rng(seed: RandomLike = None) -> random.Random:
    """Return a ``random.Random`` for *seed*.

    ``None`` yields a fresh unseeded generator; an ``int`` yields a seeded
    generator; an existing ``Random`` is returned unchanged (shared state).
    """
    if seed is None:
        return random.Random()
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, int):
        return random.Random(seed)
    raise TypeError(f"seed must be int, random.Random or None, got {type(seed)!r}")


def spawn(rng: random.Random, label: str) -> random.Random:
    """Derive an independent child generator from *rng*.

    Components that consume randomness in data-dependent order (e.g. a
    cascade whose draw count depends on graph size) would otherwise perturb
    every downstream component.  Spawning one child per component isolates
    their streams while staying deterministic.
    """
    return random.Random(f"{rng.getrandbits(64)}:{label}")


def spawn_worker_seeds(seed: RandomLike, n: int) -> List[int]:
    """*n* independent integer seeds for parallel walker streams.

    Derived through :class:`numpy.random.SeedSequence` spawning, so the
    streams are statistically independent regardless of how close the
    master seeds are (sequential integers included) — the property plain
    ``Random(seed + i)`` derivation lacks.  The result depends only on the
    master seed and *n*, never on worker count or scheduling, which is
    what makes parallel walk execution bit-reproducible: shard *i* always
    receives the same stream.

    An ``int`` master seed maps straight to SeedSequence entropy; a
    ``random.Random`` contributes 128 deterministic bits drawn from it
    (advancing it, identically for every worker count); ``None`` yields
    fresh OS entropy.
    """
    if n < 1:
        raise ValueError("need at least one worker seed")
    if seed is None:
        sequence = np.random.SeedSequence()
    elif isinstance(seed, random.Random):
        sequence = np.random.SeedSequence(seed.getrandbits(128))
    elif isinstance(seed, int):
        sequence = np.random.SeedSequence(seed)
    else:
        raise TypeError(f"seed must be int, random.Random or None, got {type(seed)!r}")
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in sequence.spawn(n)]
