"""Replicate-based confidence intervals for aggregate estimates.

A single budgeted run yields a point estimate with no honest error bar:
the walk's internal variance estimators (e.g. Theorem 5.1's expression)
need the very selection probabilities that are themselves estimated.  The
robust practitioner's alternative — and what the paper's own evaluation
does across runs — is replication: split the budget into R independent
runs (fresh walk seeds, no shared caches) and form a Student-t interval
over the run estimates.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import List

from repro.core.results import EstimateResult
from repro.errors import EstimationError

# Two-sided Student-t quantiles by degrees of freedom.  Enough entries for
# replicate counts a budgeted client would realistically run; beyond the
# table the normal quantile is an adequate approximation.
_T_TABLE = {
    0.90: {1: 6.314, 2: 2.920, 3: 2.353, 4: 2.132, 5: 2.015, 6: 1.943,
           7: 1.895, 8: 1.860, 9: 1.833, 10: 1.812, 15: 1.753, 20: 1.725,
           30: 1.697},
    0.95: {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
           7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 15: 2.131, 20: 2.086,
           30: 2.042},
    0.99: {1: 63.657, 2: 9.925, 3: 5.841, 4: 4.604, 5: 4.032, 6: 3.707,
           7: 3.499, 8: 3.355, 9: 3.250, 10: 3.169, 15: 2.947, 20: 2.845,
           30: 2.750},
}
_NORMAL_QUANTILE = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


def t_quantile(confidence: float, dof: int) -> float:
    """Two-sided Student-t critical value (table + conservative rounding)."""
    if confidence not in _T_TABLE:
        raise EstimationError(
            f"confidence must be one of {sorted(_T_TABLE)}, got {confidence}"
        )
    if dof < 1:
        raise EstimationError("need at least two replicates for an interval")
    table = _T_TABLE[confidence]
    if dof in table:
        return table[dof]
    available = [d for d in table if d <= dof]
    if not available:
        return table[min(table)]
    if dof > max(table):
        return _NORMAL_QUANTILE[confidence]
    return table[max(available)]  # round dof down -> conservative (wider)


@dataclass
class ConfidenceResult:
    """Point estimate with a replicate-based confidence interval."""

    mean: float
    half_width: float
    confidence: float
    replicates: int
    cost_total: int
    runs: List[EstimateResult] = field(default_factory=list)

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.mean:,.2f} ± {self.half_width:,.2f} "
            f"({self.confidence:.0%}, {self.replicates} runs, "
            f"{self.cost_total:,} calls)"
        )


def combine_replicates(
    runs: List[EstimateResult], confidence: float = 0.95
) -> ConfidenceResult:
    """Student-t interval over the point estimates of independent runs."""
    values = [run.value for run in runs if run.value is not None]
    if len(values) < 2:
        raise EstimationError(
            f"need >= 2 runs with estimates for an interval, got {len(values)}"
        )
    mean = statistics.fmean(values)
    stderr = statistics.stdev(values) / math.sqrt(len(values))
    half_width = t_quantile(confidence, len(values) - 1) * stderr
    return ConfidenceResult(
        mean=mean,
        half_width=half_width,
        confidence=confidence,
        replicates=len(values),
        cost_total=sum(run.cost_total for run in runs),
        runs=list(runs),
    )
