"""The brute-force crawl baseline (§3.2's "extremely inefficient technique").

Before introducing sampling, the paper describes what a naive practitioner
does: start from a seed and recursively follow edges, crawling every
timeline reached, then aggregate over the crawled data.  This estimator
implements that budgeted BFS crawl over any neighbor oracle:

* AVG — exact over the crawled matching users (biased toward the seeds'
  neighborhoods until the crawl covers the subgraph);
* COUNT — the number of matching users found so far: a *lower bound* that
  climbs toward the truth only as the budget approaches the cost of a
  full crawl — precisely the "prohibitively high query cost" (§3.2) that
  motivates sampling;
* SUM — the sum over crawled matching users (same lower-bound caveat).

Kept as an honest baseline: at small budgets it shows why the paper's
problem needs estimators at all.  For an *estimator* built on the same
multi-seed budgeted-crawl idea, see :class:`repro.core.frontier.
FrontierEstimator` — it revisits nodes and reweights by degree, turning
the crawl loop into an unbiased sampler instead of a lower bound.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass
from typing import ClassVar, List, Optional, Set

from repro.core.query import Aggregate
from repro.core.results import EstimateResult, TracePoint
from repro.core.walker import BaseWalker
from repro.errors import BudgetExhaustedError, EstimationError


@dataclass(frozen=True)
class CrawlConfig:
    """Knobs for the BFS crawl baseline."""

    max_nodes: Optional[int] = None
    trace_every: int = 25
    max_seeds: Optional[int] = 50

    def __post_init__(self) -> None:
        if self.trace_every < 1:
            raise EstimationError("trace_every must be >= 1")
        if self.max_nodes is not None and self.max_nodes < 1:
            raise EstimationError("max_nodes must be >= 1 or None")


class CrawlEstimator(BaseWalker):
    """Budgeted breadth-first crawl baseline (paper §3.2); superseded by the frontier walker.

    Budgeted breadth-first crawl from the search seeds.  Deprecated in
    favor of :class:`~repro.core.frontier.FrontierEstimator` for actual
    estimation — kept registered as the paper's honesty baseline.  Costs
    are read through the shared Walker cost probes (the pre-bound meter),
    so fast-path accounting is identical to every other walker's.
    """

    algorithm: ClassVar[str] = "crawl"
    parallel_kind: ClassVar[Optional[str]] = None
    config_cls: ClassVar[type] = CrawlConfig

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "CrawlEstimator is deprecated as an estimator: its COUNT/SUM are "
            "crawl-coverage lower bounds, not estimates. Use the 'frontier' "
            "walker (repro.core.frontier.FrontierEstimator) instead; 'crawl' "
            "stays registered as the paper's §3.2 honesty baseline.",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)

    def _estimate_serial(self) -> EstimateResult:
        config = self.config
        query = self.context.query
        visited: Set[int] = set()
        matching_values: List[float] = []
        trace: List[TracePoint] = []
        queue: deque = deque()
        try:
            seeds = self.context.seeds(config.max_seeds)
            self.rng.shuffle(seeds)
            queue.extend(seeds)
            while queue:
                if config.max_nodes is not None and len(visited) >= config.max_nodes:
                    break
                node = queue.popleft()
                if node in visited:
                    continue
                visited.add(node)
                if self.context.condition_matches(node):
                    matching_values.append(self.context.f_value(node))
                for neighbor in self.oracle.neighbors(node):
                    if neighbor not in visited:
                        queue.append(neighbor)
                if len(visited) % config.trace_every == 0:
                    trace.append(
                        TracePoint(self._cost(), self._value(matching_values))
                    )
        except BudgetExhaustedError:
            pass

        value = self._value(matching_values)
        trace.append(TracePoint(self._cost(), value))
        return EstimateResult(
            query=query,
            algorithm=self.algorithm_id(),
            value=value,
            cost_total=self._cost(),
            cost_by_kind=self._cost_by_kind(),
            trace=trace,
            num_samples=len(visited),
            diagnostics={
                "visited": float(len(visited)),
                "matching_found": float(len(matching_values)),
                "frontier_left": float(len(queue)),
            },
        )

    def _value(self, matching_values: List[float]) -> Optional[float]:
        query = self.context.query
        if query.aggregate is Aggregate.COUNT:
            return float(len(matching_values))
        if query.aggregate is Aggregate.SUM:
            return float(sum(matching_values))
        if not matching_values:
            return None
        return sum(matching_values) / len(matching_values)
