"""MICROBLOG-ANALYZER: the system facade of §3.1.

Wires together a budgeted, rate-limited, caching API client, GRAPH-BUILDER
(the neighbor oracle for the chosen graph design), the time-interval
selector, and GRAPH-WALKER (one of the estimation algorithms), mirroring
the architecture of Figure 1.  System inputs: an aggregate query and a
query budget; system output: an aggregate estimation.

>>> analyzer = MicroblogAnalyzer(platform)
>>> result = analyzer.estimate(count_users("privacy"), budget=20_000)
>>> result.value, result.cost_total
"""

from __future__ import annotations

from typing import Optional, Union

from repro._rng import RandomLike, ensure_rng, spawn
from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.api.faults import FaultInjectingClient, FaultPlan
from repro.api.resilient import ResilientClient, RetryPolicy
from repro.core.crawler import CrawlConfig
from repro.core.frontier import FrontierConfig
from repro.core.graph_builder import (
    LevelByLevelOracle,
    QueryContext,
    SocialGraphOracle,
    TermInducedOracle,
)
from repro.core.interval import select_time_interval
from repro.core.levels import LevelIndex
from repro.core.mr import MRConfig
from repro.core.query import AggregateQuery
from repro.core.registry import GRAPH_DESIGNS, get_walker, walker_names
from repro.core.results import EstimateResult
from repro.core.reuse import SharedQueryState
from repro.core.rewired import RewiredConfig
from repro.core.srw import SRWConfig
from repro.core.tarw import TARWConfig
from repro.core.wnw import WNWConfig
from repro.errors import BudgetExhaustedError, EstimationError
from repro.obs import NULL_OBS, Observability
from repro.obs.trace import TRACE_SCHEMA_VERSION
from repro.platform.clock import DAY
from repro.platform.simulator import SimulatedPlatform

ALGORITHMS = walker_names()


class MicroblogAnalyzer:
    """Budgeted aggregate estimation over one simulated platform.

    ``interval`` is the level bucket width in seconds, or the string
    ``"auto"`` to run the pilot-walk selection of §4.2.3 (its query cost
    is charged against the same budget, as in the paper).
    """

    def __init__(
        self,
        platform: SimulatedPlatform,
        algorithm: str = "ma-tarw",
        graph_design: str = "level-by-level",
        interval: Union[float, str] = DAY,
        level_index=None,
        srw_config: Optional[SRWConfig] = None,
        tarw_config: Optional[TARWConfig] = None,
        mr_config: Optional[MRConfig] = None,
        crawl_config: Optional[CrawlConfig] = None,
        rewired_config: Optional[RewiredConfig] = None,
        wnw_config: Optional[WNWConfig] = None,
        frontier_config: Optional[FrontierConfig] = None,
        keep_intra_fraction: float = 0.0,
        seed: RandomLike = None,
        n_workers: Optional[int] = None,
        n_shards: Optional[int] = None,
        executor: str = "auto",
        api_latency: float = 0.0,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        obs: Optional[Observability] = None,
        reuse: Optional[SharedQueryState] = None,
    ) -> None:
        spec = get_walker(algorithm)  # raises EstimationError when unknown
        if graph_design not in GRAPH_DESIGNS:
            raise EstimationError(
                f"unknown graph design {graph_design!r}; choose from {GRAPH_DESIGNS}"
            )
        if graph_design not in spec.designs:
            raise EstimationError(
                f"{algorithm} requires the {' / '.join(spec.designs)} graph design"
            )
        self.platform = platform
        self.algorithm = algorithm
        self.walker_spec = spec
        self.graph_design = graph_design
        self.interval = interval
        self.level_index = level_index
        """Explicit level index (e.g. a QuantileLevelIndex); overrides
        ``interval`` when set."""
        self.srw_config = srw_config or SRWConfig()
        self.tarw_config = tarw_config or TARWConfig()
        self.mr_config = mr_config or MRConfig()
        self.crawl_config = crawl_config or CrawlConfig()
        overrides = {
            "ma-tarw": tarw_config,
            "ma-srw": srw_config,
            "rewired-srw": rewired_config,
            "wnw": wnw_config,
            "frontier": frontier_config,
            "m&r": mr_config,
            "crawl": crawl_config,
        }
        override = overrides.get(algorithm)
        self.walker_config = override if override is not None else spec.config_cls()
        """The chosen walker's resolved config: the matching ``*_config``
        kwarg when given, the registry default otherwise."""
        self.keep_intra_fraction = keep_intra_fraction
        self.rng = ensure_rng(seed)
        self.api_latency = api_latency
        """Real seconds of emulated network latency per API call (0 =
        pure CPU).  See ``SimulatedMicroblogClient.latency``."""
        self.fault_plan = fault_plan
        """Seeded fault injection (see :mod:`repro.api.faults`).  When set
        (and active) the client stack becomes
        ``CachingClient(ResilientClient(FaultInjectingClient(simulator)))``
        — injected faults are retried, healed or degraded below the cache,
        and per-shard parallel clients rebuild the same stack."""
        self.retry_policy = retry_policy
        """Backoff/breaker settings for the resilient layer; None uses
        :class:`RetryPolicy` defaults whenever a fault plan is active."""
        self.obs = obs if obs is not None else NULL_OBS
        """The run's telemetry plane (see :mod:`repro.obs`): every layer of
        the client stack and the chosen estimator emit into it.  Defaults
        to the shared disabled instance — a dark run pays one attribute
        read per instrumented site and is bit-identical to a traced one."""
        self.reuse = reuse
        """Cross-query reuse cache (see :mod:`repro.core.reuse`).  When
        set, ``interval="auto"`` resolves through the shared keyword →
        interval cache (cold queries record a pilot ledger, warm queries
        replay it — identical charges/trace bytes, no pilot CPU) and the
        fast path's first-mention columns come from the shared memo.
        The pilot phase then draws from the cache's keyword-scoped RNG
        instead of this analyzer's run stream, so two analyzers sharing
        one cache — and one analyzer asked twice — agree bit for bit.
        ``None`` (the default) keeps the classic self-contained run."""
        self.parallel = None
        """Walk-shard execution plan for walkers with a parallel driver
        (``parallel_kind`` of ``"hh"`` or ``"samples"``), built from
        ``n_workers``/``n_shards``/``executor``.  ``n_workers=None``
        (the default) keeps the classic single-walker serial run; any
        integer — including 1 — switches to the shard-merge engine, whose
        point estimate depends on the seed and shard count but never on
        the worker count.  Walkers without a driver (``m&r``, ``crawl``)
        ignore it."""
        if n_workers is not None:
            from repro.parallel.engine import ParallelConfig

            self.parallel = ParallelConfig(
                n_workers=n_workers, n_shards=n_shards, executor=executor
            )
        self.n_workers = n_workers
        self.executor = executor

    # ------------------------------------------------------------------
    def estimate(self, query: AggregateQuery, budget: int) -> EstimateResult:
        """Estimate *query* spending at most *budget* API calls."""
        if budget < 1:
            raise EstimationError("budget must be >= 1")
        obs = self.obs
        inner = SimulatedMicroblogClient(
            self.platform, budget=budget, latency=self.api_latency, obs=obs
        )
        obs.bind_clock(inner.clock)
        if obs.trace is not None:
            obs.trace.event(
                "run.begin",
                schema=TRACE_SCHEMA_VERSION,
                algorithm=self.algorithm,
                design=self.graph_design,
                keyword=query.keyword,
                aggregate=query.aggregate.value,
                budget=budget,
            )
        if self.fault_plan is not None and self.fault_plan.active:
            inner = FaultInjectingClient(inner, self.fault_plan, obs=obs)
        if (self.fault_plan is not None and self.fault_plan.active) or (
            self.retry_policy is not None
        ):
            inner = ResilientClient(inner, self.retry_policy, obs=obs)
        client = CachingClient(inner, obs=obs)
        context = QueryContext(client, query, obs=obs)
        if self.reuse is not None and context.fast is not None:
            self.reuse.bind_first_mention_columns(
                context.fast, self.platform, query.keyword
            )
        run_rng = spawn(self.rng, f"run:{query.keyword}:{query.aggregate.value}")

        oracle = self._build_oracle(context, run_rng)
        spec = self.walker_spec
        estimator = spec.estimator(
            context,
            oracle,
            self.walker_config,
            seed=run_rng,
            parallel=self.parallel if spec.parallel_kind is not None else None,
        )
        result = estimator.estimate()
        if result.walk_stats is None:
            result.diagnostics["simulated_wait_seconds"] = client.inner.simulated_wait  # type: ignore[attr-defined]
            result.diagnostics["cache_hits"] = float(client.hits)
            if isinstance(inner, ResilientClient):
                result.diagnostics["degraded_serves"] = float(inner.degraded_serves)
                result.diagnostics["backoff_wait_seconds"] = inner.backoff_wait
        else:
            # Sharded runs account their own waits/hits; fold any cost the
            # outer client paid before sharding (interval selection) in.
            result.diagnostics["cache_hits"] += float(client.hits)
        if obs.trace is not None:
            obs.trace.event("run.end", value=result.value, cost=result.cost_total)
        return result

    def estimate_with_confidence(
        self,
        query: AggregateQuery,
        budget: int,
        replicates: int = 5,
        confidence: float = 0.95,
    ):
        """Split *budget* across independent runs and return a t-interval.

        Each replicate gets ``budget // replicates`` calls and a fresh
        client (no shared cache — the runs must be independent for the
        interval to be honest).  See :mod:`repro.core.confidence`.
        """
        from repro.core.confidence import combine_replicates

        if replicates < 2:
            raise EstimationError("need at least two replicates for an interval")
        per_run = budget // replicates
        if per_run < 1:
            raise EstimationError(f"budget {budget} too small for {replicates} replicates")
        runs = [self.estimate(query, budget=per_run) for _ in range(replicates)]
        return combine_replicates(runs, confidence=confidence)

    # ------------------------------------------------------------------
    def _build_oracle(self, context: QueryContext, run_rng):
        if self.graph_design == "social":
            return SocialGraphOracle(context)
        if self.graph_design == "term-induced":
            return TermInducedOracle(context)
        if self.level_index is not None:
            index = self.level_index
        else:
            interval = self._resolve_interval(context, run_rng)
            index = LevelIndex(interval=interval, origin=0.0)
        return LevelByLevelOracle(
            context,
            index,
            keep_intra_fraction=self.keep_intra_fraction,
            edge_seed=run_rng.randrange(2**31),
        )

    def _resolve_interval(self, context: QueryContext, run_rng) -> float:
        if self.interval != "auto":
            interval = float(self.interval)  # type: ignore[arg-type]
            if interval <= 0:
                raise EstimationError("interval must be positive")
            return interval
        try:
            if self.reuse is not None:
                selection = self.reuse.interval_for(
                    context,
                    self.platform,
                    budget=context.client.meter.budget,  # type: ignore[attr-defined]
                    token=self._reuse_token(),
                )
            else:
                selection = select_time_interval(
                    context,
                    seed=run_rng,
                    n_workers=self.n_workers,
                    executor=self.executor,
                )
        except BudgetExhaustedError:
            raise EstimationError("budget exhausted during interval selection") from None
        return selection.interval

    def _reuse_token(self) -> tuple:
        """Stack configuration folded into shared-cache keys.

        Anything that can change what the pilot phase *observes* — the
        fault plan shapes responses and retry charges, latency shapes the
        simulated clock — must split the cache, or a replayed ledger
        would assert a history this stack never produced.  Frozen
        dataclass reprs are content-based and deterministic.
        """
        return (
            self.graph_design,
            repr(self.fault_plan),
            repr(self.retry_policy),
            self.api_latency,
        )
