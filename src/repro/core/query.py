"""Aggregate queries: ``SELECT AGGR(f(u)) FROM U WHERE CONDITION`` (§2).

A query names a keyword predicate (always present — the paper focuses on
keyword-conditioned aggregates), an optional time window over the keyword
mentions, an optional extra predicate on profile attributes (e.g. gender,
Figure 13), an aggregate function, and a measure ``f(u)``.

Measures are evaluated against a :class:`UserView` — the uniform bundle of
profile fields plus the user's keyword-matching posts — which both the
API-driven estimators and the ground-truth evaluator can construct, so the
same :class:`AggregateQuery` object drives both sides of every experiment.

Note the paper's observation that this form covers post-level aggregates
too: COUNT of posts containing ``privacy`` is SUM over users of the
per-user matching-post count (§2).  :data:`MATCHING_POST_COUNT` is exactly
that measure.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.platform.posts import Post
from repro.platform.users import Gender


class Aggregate(enum.Enum):
    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"


@dataclass(frozen=True)
class UserView:
    """What a query can see about one user.

    ``matching_posts`` contains the user's posts that satisfy the query's
    keyword + time-window condition; profile fields are None when the
    platform hides them (gender on Twitter).
    """

    user_id: int
    display_name: str
    followers: int
    gender: Optional[Gender]
    age: Optional[int]
    matching_posts: Tuple[Post, ...]


MeasureFn = Callable[[UserView], float]
PredicateFn = Callable[[UserView], bool]


@dataclass(frozen=True)
class Measure:
    """A named numeric function ``f(u)`` over user views.

    The module-level measure constants pickle *by name* (resolved through
    a registry on load), so queries built from them can cross process
    boundaries — required by the parallel replicate engine — despite
    wrapping plain lambdas.  Ad-hoc measures built elsewhere fall back to
    default pickling and may not be process-portable.
    """

    name: str
    fn: MeasureFn

    def __call__(self, view: UserView) -> float:
        return float(self.fn(view))

    def __reduce__(self):
        if _MEASURE_REGISTRY.get(self.name) is self:
            return (_measure_from_registry, (self.name,))
        return super().__reduce__()


_MEASURE_REGISTRY: dict = {}


def _measure_from_registry(name: str) -> "Measure":
    return _MEASURE_REGISTRY[name]


def _registered(measure: Measure) -> Measure:
    _MEASURE_REGISTRY[measure.name] = measure
    return measure


CONSTANT_ONE = _registered(Measure("one", lambda view: 1.0))
FOLLOWERS = _registered(Measure("followers", lambda view: view.followers))
DISPLAY_NAME_LENGTH = _registered(
    Measure("display_name_length", lambda view: len(view.display_name))
)
MATCHING_POST_COUNT = _registered(
    Measure("matching_post_count", lambda view: len(view.matching_posts))
)


def _mean_likes(view: UserView) -> float:
    if not view.matching_posts:
        return 0.0
    return sum(post.likes for post in view.matching_posts) / len(view.matching_posts)


MEAN_LIKES = _registered(Measure("mean_likes", _mean_likes))
TOTAL_LIKES = _registered(
    Measure("total_likes", lambda view: sum(p.likes for p in view.matching_posts))
)


def gender_is(gender: Gender) -> PredicateFn:
    """Profile predicate: user's gender equals *gender*.

    Users whose gender the platform hides do **not** match — the estimator
    can only count what the API shows it, which is why the paper only runs
    gender-conditioned aggregates on Google+ (§6.2).
    """

    def predicate(view: UserView) -> bool:
        return view.gender == gender

    return predicate


def min_followers(threshold: int) -> PredicateFn:
    """Profile predicate: at least *threshold* connections."""

    def predicate(view: UserView) -> bool:
        return view.followers >= threshold

    return predicate


@dataclass(frozen=True)
class AggregateQuery:
    """One aggregate estimation task.

    ``window`` bounds the keyword mentions considered, as ``[start, end)``
    in simulated seconds; None means the whole history.  ``predicate``
    further filters users by profile attributes.
    """

    keyword: str
    aggregate: Aggregate
    measure: Measure = CONSTANT_ONE
    window: Optional[Tuple[float, float]] = None
    predicate: Optional[PredicateFn] = None

    def __post_init__(self) -> None:
        if not self.keyword or not self.keyword.strip():
            raise QueryError("query must have a keyword predicate")
        if self.window is not None and self.window[1] <= self.window[0]:
            raise QueryError(f"empty time window {self.window}")

    @property
    def window_start(self) -> float:
        return self.window[0] if self.window else float("-inf")

    @property
    def window_end(self) -> float:
        return self.window[1] if self.window else float("inf")

    def filter_matching_posts(self, posts: Sequence[Post]) -> Tuple[Post, ...]:
        """The subset of *posts* satisfying keyword + window."""
        needle = self.keyword.lower()
        return tuple(
            p
            for p in posts
            if needle in p.keywords and self.window_start <= p.timestamp < self.window_end
        )

    def matches(self, view: UserView) -> bool:
        """CONDITION of §2: keyword/window hit plus profile predicate."""
        if not view.matching_posts:
            return False
        if self.predicate is not None and not self.predicate(view):
            return False
        return True

    def value(self, view: UserView) -> float:
        """f(u) for a matching user (call only when :meth:`matches`)."""
        return self.measure(view)

    def describe(self) -> str:
        """SQL-ish rendering for logs and benchmark headers."""
        parts = [f"SELECT {self.aggregate.value}({self.measure.name}) FROM users"]
        parts.append(f"WHERE timeline CONTAINS {self.keyword!r}")
        if self.window is not None:
            parts.append(f"IN [{self.window[0]:.0f}, {self.window[1]:.0f})")
        if self.predicate is not None:
            parts.append("AND <profile predicate>")
        return " ".join(parts)


def sliding_window(now: float, days: float) -> Tuple[float, float]:
    """The trailing *days*-day window at *now*: ``[now - days·DAY, ∞)``.

    "Mentioned X in the last N days" over an evolving platform: build it
    from the clock's current ``now`` each epoch and pass it as a query's
    ``window``.  The upper bound is open so mentions a delta lands with
    timestamps past *now* still count once the clock catches up.
    """
    from repro.platform.clock import DAY

    if days <= 0:
        raise QueryError(f"sliding window must cover positive days, got {days}")
    return (now - days * DAY, float("inf"))


def count_users(keyword: str, window: Optional[Tuple[float, float]] = None,
                predicate: Optional[PredicateFn] = None) -> AggregateQuery:
    """COUNT of users who mentioned *keyword* — the paper's headline query."""
    return AggregateQuery(keyword, Aggregate.COUNT, CONSTANT_ONE, window, predicate)


def avg_of(keyword: str, measure: Measure, window: Optional[Tuple[float, float]] = None,
           predicate: Optional[PredicateFn] = None) -> AggregateQuery:
    """AVG(measure) over users who mentioned *keyword*."""
    return AggregateQuery(keyword, Aggregate.AVG, measure, window, predicate)


def sum_of(keyword: str, measure: Measure, window: Optional[Tuple[float, float]] = None,
           predicate: Optional[PredicateFn] = None) -> AggregateQuery:
    """SUM(measure) over users who mentioned *keyword*."""
    return AggregateQuery(keyword, Aggregate.SUM, measure, window, predicate)
