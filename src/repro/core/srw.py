"""MA-SRW: simple random walk over the level-by-level subgraph (Algorithm 1).

The estimator also runs unchanged over the social-graph and term-induced
oracles, which is how the Figure 2/3 baselines are produced — the only
difference between "Social Graph", "Term Induced Subgraph" and "Level By
Level Subgraph" curves is the neighbor oracle plugged in.

Aggregation from SRW samples (stationary probability ∝ subgraph degree):

* AVG — self-normalising ratio  Σ f/d / Σ 1/d  over condition-matching
  samples [20];
* COUNT — Katzir collision estimate of the sampled graph's population,
  multiplied by the degree-debiased fraction of samples matching the full
  condition (window + profile predicates);
* SUM — COUNT × AVG.

Burn-in is detected with the Geweke diagnostic on the walk's degree
series (§4.1 measures burn-in with Geweke Z ≤ 0.1), so slow-mixing graph
designs automatically pay their longer burn-in in samples discarded —
which is precisely the mechanism behind the paper's query-cost gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Protocol, Tuple

from repro._rng import RandomLike, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.parallel.engine import ParallelConfig
from repro.core.graph_builder import QueryContext
from repro.core.query import Aggregate
from repro.core.results import EstimateResult, TracePoint
from repro.errors import BudgetExhaustedError, EstimationError, TransientAPIError
from repro.obs import NULL_OBS, Observability
from repro.obs.diagnostics import srw_burn_in_report
from repro.sampling.diagnostics import detect_burn_in
from repro.sampling.estimators import ratio_average
from repro.sampling.mark_recapture import katzir_count


class NeighborOracle(Protocol):
    name: str

    def neighbors(self, user_id: int) -> List[int]: ...

    def degree(self, user_id: int) -> int: ...


@dataclass(frozen=True)
class SRWConfig:
    """Knobs for MA-SRW."""

    thinning: int = 3
    """Keep every k-th post-burn-in step as a sample (decorrelation)."""
    chains: int = 1
    """Independent chains stepped round-robin, samples pooled ([13]'s
    parallel walks).  Each chain pays its own burn-in, so more chains
    trade variance for bias removal only when steps are plentiful."""
    geweke_threshold: float = 0.1
    min_burn_in: int = 20
    trace_every: int = 10
    """Recompute the running estimate every this many raw steps."""
    max_steps: Optional[int] = 50_000
    stall_steps: int = 4_000
    """Stop when the query cost has not moved for this many steps.

    The caching client makes revisits free, so once the reachable subgraph
    is fully cached a walk could run forever without touching the budget;
    a long cost plateau means extra steps buy (almost) no new information.
    """
    teleport_after: int = 500
    """Jump to a fresh random seed after this many zero-cost steps.

    A walk seeded inside a small connected component of the (level-by-
    level) subgraph would otherwise orbit it forever; teleporting to
    another search-API seed — exactly what a practitioner restarting a
    stuck crawl does — lets the estimator cover every seeded component.
    """
    max_seeds: int = 50
    step_retries: int = 2
    """Walk-level fault recovery: a step whose oracle lookup raises a
    :class:`TransientAPIError` (after the resilient client gave up) is
    retried in place this many times; past that the chain checkpoints —
    its committed samples are kept — and restarts from a random seed.
    Retries re-issue the same lookup and consume no walker RNG, so runs
    whose faults all heal stay bit-identical to fault-free runs."""

    def __post_init__(self) -> None:
        if self.thinning < 1 or self.trace_every < 1:
            raise EstimationError("thinning and trace_every must be >= 1")
        if self.chains < 1:
            raise EstimationError("chains must be >= 1")
        if self.min_burn_in < 0:
            raise EstimationError("min_burn_in must be >= 0")
        if self.stall_steps < 1:
            raise EstimationError("stall_steps must be >= 1")
        if self.teleport_after < 1:
            raise EstimationError("teleport_after must be >= 1")
        if self.step_retries < 0:
            raise EstimationError("step_retries must be >= 0")


class MASRWEstimator:
    """Budgeted MA-SRW runs over any neighbor oracle."""

    def __init__(
        self,
        context: QueryContext,
        oracle: NeighborOracle,
        config: Optional[SRWConfig] = None,
        seed: RandomLike = None,
        parallel: Optional["ParallelConfig"] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.context = context
        self.oracle = oracle
        self.config = config or SRWConfig()
        self.rng = ensure_rng(seed)
        self.parallel = parallel
        if obs is None:
            obs = getattr(context, "obs", None)
        self.obs = obs if obs is not None else NULL_OBS
        """When set, :meth:`estimate` partitions the budget into logical
        walk shards executed by :mod:`repro.parallel` (each shard a full
        serial MA-SRW run on its own client and RNG stream) and pools the
        post-burn-in samples.  None keeps the classic run."""
        self._chain_nodes: List[List[int]] = []
        self._chain_degrees: List[List[float]] = []
        self._obs_excursions: List[int] = []
        self.fault_step_retries = 0
        self.fault_restarts = 0
        self._meter = getattr(getattr(context, "client", None), "meter", None)
        """Pre-bound cost meter (None for stub contexts/clients without
        one), so the per-step cost probe is one attribute read instead
        of a delegation chain."""

    # ------------------------------------------------------------------
    def estimate(self) -> EstimateResult:
        """Walk until the client's budget (or ``max_steps``) is exhausted.

        With ``config.chains > 1``, that many independent chains are
        stepped round-robin (each from its own seed) and their post-burn-in
        samples pooled — the parallel-walks idea of Gjoka et al. [13],
        which covers multi-component subgraphs faster than one teleporting
        chain.
        """
        if self.parallel is not None:
            from repro.parallel.walkers import run_parallel_estimate

            return run_parallel_estimate(self)
        return self._estimate_serial()

    def _estimate_serial(self) -> EstimateResult:
        config = self.config
        query = self.context.query
        chain_nodes: List[List[int]] = [[] for _ in range(config.chains)]
        chain_degrees: List[List[float]] = [[] for _ in range(config.chains)]
        self._chain_nodes = chain_nodes
        self._chain_degrees = chain_degrees
        trace: List[TracePoint] = []
        steps = 0
        restarts = 0
        last_cost = -1
        stalled_since = 0
        next_trace = config.trace_every
        self._obs_excursions = [0] * config.chains
        try:
            seeds = self._oracle_step(self.context.seeds, config.max_seeds)
            if self.obs.trace is not None:
                self.obs.trace.event("srw.seeds", n=len(seeds), chains=config.chains)
            currents = [self.rng.choice(seeds) for _ in range(config.chains)]
            for index, start in enumerate(currents):
                try:
                    self._observe(start, chain_nodes[index], chain_degrees[index], chain=index)
                except TransientAPIError:
                    # The chain starts dark: no sample committed, but the
                    # first step below reseeds it like any faulted step.
                    self.fault_restarts += 1
                    self._note_restart(index, "fault")
            while config.max_steps is None or steps < config.max_steps:
                index = steps % config.chains
                try:
                    neighbors = self._oracle_step(self.oracle.neighbors, currents[index])
                    if not neighbors:
                        currents[index] = self.rng.choice(seeds)
                        restarts += 1
                        self._note_restart(index, "dead_end")
                    else:
                        currents[index] = self.rng.choice(neighbors)
                    self._observe(currents[index], chain_nodes[index], chain_degrees[index], chain=index)
                except TransientAPIError:
                    # Walk-level recovery, stage 2: in-place retries were
                    # exhausted, so the chain checkpoints — every committed
                    # (node, degree) pair stays — and restarts from a seed.
                    # Steps still advance, so a permanently dark platform
                    # cannot trap the loop.
                    currents[index] = self.rng.choice(seeds)
                    self.fault_restarts += 1
                    self._note_restart(index, "fault")
                steps += 1
                cost = self._cost()
                if cost == last_cost:
                    stalled_since += 1
                    if stalled_since >= config.stall_steps:
                        break
                    if stalled_since % config.teleport_after == 0:
                        currents[index] = self.rng.choice(seeds)
                        restarts += 1
                        self._note_restart(index, "teleport")
                else:
                    last_cost = cost
                    stalled_since = 0
                if steps >= next_trace:
                    # Geometric spacing keeps total estimate-recomputation
                    # work O(chain log chain); each recompute is O(chain).
                    trace.append(
                        TracePoint(cost, self._current_estimate(chain_nodes, chain_degrees))
                    )
                    next_trace = steps + max(config.trace_every, steps // 20)
        except BudgetExhaustedError:
            pass
        except TransientAPIError:
            pass  # platform unrecoverable during seeding: report what we have

        value = self._current_estimate(chain_nodes, chain_degrees)
        trace.append(TracePoint(self._cost(), value))
        diagnostics = {
            "steps": float(steps),
            "dead_end_restarts": float(restarts),
            "chains": float(config.chains),
            "fault_restarts": float(self.fault_restarts),
            "fault_step_retries": float(self.fault_step_retries),
        }
        if self.obs.enabled:
            self._obs_chain_summary(chain_degrees, diagnostics)
        return EstimateResult(
            query=query,
            algorithm=f"ma-srw[{self.oracle.name}]",
            value=value,
            cost_total=self._cost(),
            cost_by_kind=self._cost_by_kind(),
            trace=trace,
            num_samples=sum(len(nodes) for nodes in chain_nodes),
            diagnostics=diagnostics,
        )

    def _obs_chain_summary(self, chain_degrees: List[List[float]], diagnostics) -> None:
        """Burn-in adequacy telemetry: per-chain trace events plus pooled
        ``obs_burn_in_*`` diagnostics.  Pure post-processing of committed
        degree series — no API calls, no RNG draws."""
        config = self.config
        if self.obs.trace is not None:
            for index, degrees in enumerate(chain_degrees):
                burn_in = None
                if len(degrees) >= 4:
                    scan_step = max(10, len(degrees) // 20)
                    burn_in = detect_burn_in(
                        degrees, threshold=config.geweke_threshold, step=scan_step
                    )
                    if burn_in is None:
                        burn_in = len(degrees) // 4
                    burn_in = max(burn_in, config.min_burn_in)
                self.obs.trace.event(
                    "srw.chain", chain=index, len=len(degrees), burn_in=burn_in
                )
        report = srw_burn_in_report(
            chain_degrees,
            threshold=config.geweke_threshold,
            min_burn_in=config.min_burn_in,
        )
        for key, value in report.items():
            diagnostics[f"obs_burn_in_{key}"] = value

    # ------------------------------------------------------------------
    def _oracle_step(self, lookup, node: int):
        """Walk-level recovery, stage 1: retry a failed step in place.

        See :meth:`MATARWEstimator._oracle_step` — same contract: no
        walker RNG is consumed, so recovery never perturbs the stream.
        """
        for _ in range(self.config.step_retries):
            try:
                return lookup(node)
            except TransientAPIError:
                self.fault_step_retries += 1
        return lookup(node)

    def _observe(
        self, node: int, nodes: List[int], degrees: List[float], chain: int = 0
    ) -> None:
        # Fetch the degree before appending anything: the lookup can raise
        # BudgetExhaustedError, and a half-appended observation would
        # desynchronise the two series.
        degree = float(self._oracle_step(self.oracle.degree, node))
        nodes.append(node)
        degrees.append(degree)
        obs = self.obs
        if obs.enabled:
            self._obs_excursions[chain] += 1
            if obs.metrics is not None:
                obs.metrics.counter("srw.steps").inc()
                obs.metrics.histogram("srw.degree").observe(degree)
            if obs.trace is not None:
                obs.trace.event("srw.step", chain=chain, node=node, degree=int(degree))

    def _note_restart(self, chain: int, reason: str) -> None:
        obs = self.obs
        if obs.enabled:
            if obs.metrics is not None:
                obs.metrics.counter("srw.restarts", reason=reason).inc()
                obs.metrics.histogram("srw.excursion").observe(self._obs_excursions[chain])
            if obs.trace is not None:
                obs.trace.event("srw.restart", chain=chain, reason=reason)
            self._obs_excursions[chain] = 0

    def _cost(self) -> int:
        meter = self._meter
        if meter is not None:
            return meter.query_total
        return self.context.client.total_cost  # type: ignore[attr-defined]

    def _cost_by_kind(self) -> dict:
        return self.context.client.meter.by_kind()  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def _usable_samples(self, nodes: List[int], degrees: List[float]):
        """Apply Geweke burn-in and thinning to the raw chain."""
        config = self.config
        # Coarsen the scan step with chain length so repeated trace-time
        # calls stay O(chain) rather than O(chain^2).
        scan_step = max(10, len(degrees) // 20)
        burn_in = detect_burn_in(degrees, threshold=config.geweke_threshold, step=scan_step)
        if burn_in is None:
            # Geweke never crossed the threshold.  On multi-component
            # subgraphs the teleporting chain is a mixture whose segments
            # legitimately differ, so a hard "no usable samples" would
            # starve the estimator forever; fall back to discarding the
            # first quarter, the usual fixed-fraction heuristic.
            burn_in = len(degrees) // 4
        burn_in = max(burn_in, config.min_burn_in)
        kept_nodes: List[int] = []
        kept_degrees: List[int] = []
        for offset in range(burn_in, len(nodes), config.thinning):
            if degrees[offset] <= 0:
                continue  # isolated node (seed restart target) cannot be reweighted
            kept_nodes.append(nodes[offset])
            kept_degrees.append(int(degrees[offset]))
        return kept_nodes, kept_degrees

    def _current_estimate(
        self, chain_nodes: List[List[int]], chain_degrees: List[List[float]]
    ) -> Optional[float]:
        kept_nodes: List[int] = []
        kept_degrees: List[int] = []
        for nodes, degrees in zip(chain_nodes, chain_degrees):
            if len(nodes) < 4:
                continue
            chain_kept_nodes, chain_kept_degrees = self._usable_samples(nodes, degrees)
            kept_nodes.extend(chain_kept_nodes)
            kept_degrees.extend(chain_kept_degrees)
        if len(kept_nodes) < 2:
            return None
        query = self.context.query
        try:
            if query.aggregate is Aggregate.AVG:
                return self._avg_estimate(kept_nodes, kept_degrees)
            count = self._count_estimate(kept_nodes, kept_degrees)
            if query.aggregate is Aggregate.COUNT:
                return count
            return count * self._avg_estimate(kept_nodes, kept_degrees)
        except EstimationError:
            return None

    # ------------------------------------------------------------------
    # partial samples for cross-walker merging (repro.parallel)
    # ------------------------------------------------------------------
    def shard_samples(self) -> List[Tuple[int, int, Optional[bool], float]]:
        """Post-burn-in, thinned samples of this walker's run, evaluated.

        Called after :meth:`estimate` by the parallel engine.  Each tuple
        is ``(node, subgraph_degree, condition_matches, f_value)`` with
        ``condition_matches`` None when the walker's budget died before
        the sample could be evaluated (the merge skips those, exactly as
        the serial estimator does).  Evaluation reuses the walker's own
        response cache, so extracting the samples costs no further API
        calls beyond what the final in-run estimate already paid.
        """
        samples: List[Tuple[int, int, Optional[bool], float]] = []
        for nodes, degrees in zip(self._chain_nodes, self._chain_degrees):
            if len(nodes) < 4:
                continue
            kept_nodes, kept_degrees = self._usable_samples(nodes, degrees)
            for node, degree in zip(kept_nodes, kept_degrees):
                matches = self._safe_matches(node)
                f_value = self.context.f_value(node) if matches else 0.0
                samples.append((node, degree, matches, f_value))
        return samples

    def _safe_matches(self, node: int) -> Optional[bool]:
        """Condition check that tolerates a just-exhausted budget.

        Evaluating a sample costs a timeline fetch (a real, counted cost);
        once the budget is gone, unaffordable samples are skipped rather
        than aborting the whole estimate — they are a random suffix of the
        chain, so dropping them loses information, not unbiasedness.
        """
        try:
            return self.context.condition_matches(node)
        except (BudgetExhaustedError, TransientAPIError):
            return None

    def _avg_estimate(self, nodes: List[int], degrees: List[int]) -> float:
        values: List[float] = []
        matching_degrees: List[int] = []
        for node, degree in zip(nodes, degrees):
            matches = self._safe_matches(node)
            if matches:
                values.append(self.context.f_value(node))
                matching_degrees.append(degree)
        return ratio_average(values, matching_degrees)

    def _count_estimate(self, nodes: List[int], degrees: List[int]) -> float:
        population = katzir_count(nodes, degrees).population
        indicator: List[float] = []
        affordable_degrees: List[int] = []
        for node, degree in zip(nodes, degrees):
            matches = self._safe_matches(node)
            if matches is None:
                continue
            indicator.append(1.0 if matches else 0.0)
            affordable_degrees.append(degree)
        fraction = ratio_average(indicator, affordable_degrees)
        return population * fraction
