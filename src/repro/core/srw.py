"""MA-SRW: simple random walk over the level-by-level subgraph (Algorithm 1).

The estimator also runs unchanged over the social-graph and term-induced
oracles, which is how the Figure 2/3 baselines are produced — the only
difference between "Social Graph", "Term Induced Subgraph" and "Level By
Level Subgraph" curves is the neighbor oracle plugged in.

Aggregation from SRW samples (stationary probability ∝ subgraph degree):

* AVG — self-normalising ratio  Σ f/d / Σ 1/d  over condition-matching
  samples [20];
* COUNT — Katzir collision estimate of the sampled graph's population,
  multiplied by the degree-debiased fraction of samples matching the full
  condition (window + profile predicates);
* SUM — COUNT × AVG.

Burn-in is detected with the Geweke diagnostic on the walk's degree
series (§4.1 measures burn-in with Geweke Z ≤ 0.1), so slow-mixing graph
designs automatically pay their longer burn-in in samples discarded —
which is precisely the mechanism behind the paper's query-cost gaps.

The chain loop, sample filtering and estimate assembly all live in
:class:`repro.core.walker.ChainSampleWalker`; this module contributes the
config and the registry identity.

When the query context resolved a compiled kernel
(:func:`repro.core.kernels.resolve_kernel`), the shared chain loop steps
the oracle *directly* instead of through the ``step_retries`` wrapper: a
kernel only resolves on the clean fast-path stack, where
``TransientAPIError`` cannot occur, so the retry wrapper is a guaranteed
no-op and skipping it is bit-identical (budget exhaustion propagates the
same either way).  The Geweke diagnostic, thinning and Katzir/ratio
accumulators stay scalar on purpose — reordering those float reductions
would break bit-identity with the interpreted path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Optional, Protocol

from repro.core.walker import ChainSampleWalker
from repro.errors import EstimationError


class NeighborOracle(Protocol):
    name: str

    def neighbors(self, user_id: int) -> List[int]: ...

    def degree(self, user_id: int) -> int: ...


@dataclass(frozen=True)
class SRWConfig:
    """Knobs for MA-SRW."""

    thinning: int = 3
    """Keep every k-th post-burn-in step as a sample (decorrelation)."""
    chains: int = 1
    """Independent chains stepped round-robin, samples pooled ([13]'s
    parallel walks).  Each chain pays its own burn-in, so more chains
    trade variance for bias removal only when steps are plentiful."""
    geweke_threshold: float = 0.1
    min_burn_in: int = 20
    trace_every: int = 10
    """Recompute the running estimate every this many raw steps."""
    max_steps: Optional[int] = 50_000
    stall_steps: int = 4_000
    """Stop when the query cost has not moved for this many steps.

    The caching client makes revisits free, so once the reachable subgraph
    is fully cached a walk could run forever without touching the budget;
    a long cost plateau means extra steps buy (almost) no new information.
    """
    teleport_after: int = 500
    """Jump to a fresh random seed after this many zero-cost steps.

    A walk seeded inside a small connected component of the (level-by-
    level) subgraph would otherwise orbit it forever; teleporting to
    another search-API seed — exactly what a practitioner restarting a
    stuck crawl does — lets the estimator cover every seeded component.
    """
    max_seeds: int = 50
    step_retries: int = 2
    """Walk-level fault recovery: a step whose oracle lookup raises a
    :class:`TransientAPIError` (after the resilient client gave up) is
    retried in place this many times; past that the chain checkpoints —
    its committed samples are kept — and restarts from a random seed.
    Retries re-issue the same lookup and consume no walker RNG, so runs
    whose faults all heal stay bit-identical to fault-free runs."""

    def __post_init__(self) -> None:
        if self.thinning < 1 or self.trace_every < 1:
            raise EstimationError("thinning and trace_every must be >= 1")
        if self.chains < 1:
            raise EstimationError("chains must be >= 1")
        if self.min_burn_in < 0:
            raise EstimationError("min_burn_in must be >= 0")
        if self.stall_steps < 1:
            raise EstimationError("stall_steps must be >= 1")
        if self.teleport_after < 1:
            raise EstimationError("teleport_after must be >= 1")
        if self.step_retries < 0:
            raise EstimationError("step_retries must be >= 0")


class MASRWEstimator(ChainSampleWalker):
    """Simple random walk with Geweke burn-in and degree reweighting (paper §4, Algorithm 1).

    Budgeted MA-SRW runs over any neighbor oracle.  With
    ``config.chains > 1``, that many independent chains are stepped
    round-robin (each from its own seed) and their post-burn-in samples
    pooled — the parallel-walks idea of Gjoka et al. [13], which covers
    multi-component subgraphs faster than one teleporting chain.
    """

    algorithm: ClassVar[str] = "ma-srw"
    parallel_kind: ClassVar[Optional[str]] = "samples"
    obs_prefix: ClassVar[str] = "srw"
    config_cls: ClassVar[type] = SRWConfig
