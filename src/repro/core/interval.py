"""Time-interval selection by pilot random walks (§4.2.3).

GRAPH-BUILDER must pick the bucket width ``T`` before the main walk
starts.  The paper's procedure: run a cheap pilot random walk for each
candidate interval, read off the partial topology it reveals, and rank
candidates by estimated conductance (Eq. 3's closed form for the
level-by-level lattice, or our spectral surrogate); the winner is used
for the rest of the estimation.  Corollary 4.1 supplies the theory the
ranking leans on: conductance of the level-by-level subgraph is maximised
when the mean adjacent-level degree ``d`` is small (≈ 2 for large level
counts ``h``), so the scorers reward candidates whose pilots observe
near-optimal ``d``.

Pilot walks for different candidates are independent, so
:func:`select_time_interval` accepts ``n_workers`` and dispatches the
(candidate × repeat) grid through the parallel execution engine.  Pilot
seeds are pre-spawned in grid order, making the chosen interval
independent of worker count whenever the pilot budget suffices (with a
near-exhausted budget, which pilot hits the wall first can depend on
scheduling — the serial default keeps the paper's exact semantics).

Every pilot shares the *one* :class:`QueryContext`, and first-mention
timestamps are memoised there per ``(client, keyword)`` — so only the
first candidate's pilot pays timeline queries for the users it touches;
each subsequent candidate ``T`` merely *re-buckets* the memoised
timestamps through its own :class:`LevelIndex` (a vectorised
``floor((t - origin)/T)`` over the already-known values — see
``LevelByLevelOracle._bucket``).  The memo lives on the context (and the
prepaid/response cache on its client), both thread-safe, so the reuse
holds unchanged when the pilot grid is sharded across workers.

Two scorers are provided:

* ``"spectral"`` (default) — build the *pilot-observed subgraph* (every
  node the pilot visited, plus the level-by-level edges to the neighbors
  its classification already revealed) and score it by the spectral
  conductance of its largest component times the pilot's *edge retention*
  (the fraction of term-subgraph edges the interval keeps).  Retention is
  the pilot-sized proxy for the high-recall requirement of §3.2: a huge
  bucket width (1 month) removes so many now-intra edges that the level
  graph fragments, which pure conductance of the surviving component
  cannot see.
* ``"eq3"`` — the paper's procedure as printed: plug the pilot-estimated
  level count ``h`` and mean adjacent degree ``d`` into the closed form
  of Eq. 3.  Kept for fidelity comparison; on our simulated platforms the
  closed form extrapolates poorly from 50-step pilots (see
  EXPERIMENTS.md), which is why the spectral scorer is the default.

Corollary 4.1's guidance is visible either way: candidates whose observed
``d`` is nearest the optimum (≈ 2 for large ``h``) rank highest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro._rng import RandomLike, ensure_rng, spawn
from repro.core.graph_builder import LevelByLevelOracle, QueryContext, TermInducedOracle
from repro.core.levels import LevelIndex, QuantileLevelIndex, STANDARD_INTERVALS
from repro.errors import BudgetExhaustedError, EstimationError
from repro.graph.components import largest_component
from repro.graph.conductance import estimate_conductance_spectral
from repro.graph.social_graph import SocialGraph

DEFAULT_CANDIDATE_INTERVALS: Tuple[Tuple[str, float], ...] = STANDARD_INTERVALS
SCORE_METHODS = ("spectral", "eq3")


@dataclass
class PilotTopology:
    """Partial topology revealed by one pilot walk."""

    label: str
    interval: float
    levels_spanned: int
    mean_down_degree: float
    mean_level_width: float
    nodes_visited: int
    retention: float
    """Fraction of observed term-subgraph edges that survive intra removal."""
    spectral_score: float
    """Spectral conductance of the pilot subgraph's largest component,
    times retention."""
    eq3_score: float
    """Eq. 3 evaluated on the pilot-estimated lattice parameters."""

    def score(self, method: str) -> float:
        return self.spectral_score if method == "spectral" else self.eq3_score


@dataclass
class IntervalSelection:
    """Outcome of the selection: the winner plus every pilot's scorecard."""

    interval: float
    label: str
    method: str
    pilots: List[PilotTopology] = field(default_factory=list)
    scores: Dict[str, float] = field(default_factory=dict)
    """Per-candidate mean score over the pilot repeats — the quantity the
    selection actually maximised (each entry in ``pilots`` is only the
    median repeat for its candidate)."""


def _eq3_lattice_conductance(h: int, d: float, level_width: float) -> float:
    """Eq. 3 evaluated on the pilot-estimated lattice (n = h * width)."""
    if h < 2:
        return 0.0  # a single level has no level-by-level structure at all
    width = max(level_width, 1.0)
    d_eff = max(min(d, width - 0.51), 0.01)  # clamp into Eq. 3's d < n/h domain
    per_level = width
    if d_eff <= per_level / 2:
        return h / ((per_level * h) * d_eff * (h - 1))
    return min((2 * h * d_eff - per_level * h) / (per_level * h * d_eff), 1.0 / (h - 1))


def run_pilot(
    context: QueryContext,
    index: LevelIndex,
    label: str,
    pilot_steps: int = 50,
    seed: RandomLike = None,
) -> PilotTopology:
    """One pilot walk over the level-by-level oracle for *index*.

    The walk is a simple random walk of *pilot_steps* transitions starting
    from a search-API seed; every visited node reveals its level, its
    retained level-by-level edges, and how many of its term-subgraph edges
    the interval classified as intra.  Budget exhaustion mid-pilot
    degrades gracefully to the topology seen so far.
    """
    rng = ensure_rng(seed)
    oracle = LevelByLevelOracle(context, index)
    levels_seen: Dict[int, Set[int]] = {}
    down_degrees: List[int] = []
    visited: Set[int] = set()

    def observe(node: int) -> None:
        level = oracle.level_of(node)
        if level is None:
            return
        levels_seen.setdefault(level, set()).add(node)
        if node not in visited:
            visited.add(node)
            down_degrees.append(len(oracle.down_neighbors(node)))

    try:
        seeds = context.seeds()
        current = rng.choice(seeds)
        observe(current)
        for _ in range(pilot_steps):
            neighbors = oracle.neighbors(current)
            if not neighbors:
                current = rng.choice(seeds)
            else:
                current = rng.choice(neighbors)
            observe(current)
    except BudgetExhaustedError:
        pass

    if not levels_seen:
        raise EstimationError(f"pilot walk for interval {label} observed no leveled users")

    # Pilot-observed subgraph: visited nodes plus the level-by-level edges
    # their classification revealed (all already cached — zero extra cost).
    pilot_graph = SocialGraph()
    kept_edges = 0
    intra_edges = 0
    for node in visited:
        own_level = oracle.level_of(node)
        pilot_graph.add_node(node)
        try:
            connections = context.connections(node)
        except BudgetExhaustedError:
            continue
        for neighbor in connections:
            neighbor_level = oracle.level_of(neighbor)
            if neighbor_level is None:
                continue
            if neighbor_level == own_level:
                intra_edges += 1
                continue
            kept_edges += 1
            pilot_graph.add_edge(node, neighbor)
    retention = kept_edges / max(kept_edges + intra_edges, 1)
    component = largest_component(pilot_graph)
    if len(component) > 2:
        spectral = estimate_conductance_spectral(pilot_graph.subgraph(component))
    else:
        spectral = 0.0

    level_ids = sorted(levels_seen)
    h = level_ids[-1] - level_ids[0] + 1
    mean_width = sum(len(users) for users in levels_seen.values()) / len(levels_seen)
    mean_down = sum(down_degrees) / len(down_degrees) if down_degrees else 0.0
    return PilotTopology(
        label=label,
        interval=index.interval,
        levels_spanned=h,
        mean_down_degree=mean_down,
        mean_level_width=mean_width,
        nodes_visited=len(visited),
        retention=retention,
        spectral_score=spectral * retention,
        eq3_score=_eq3_lattice_conductance(h, mean_down, mean_width),
    )


def quantile_index_from_pilot(
    context: QueryContext,
    levels: int = 30,
    pilot_steps: int = 80,
    seed: RandomLike = None,
) -> QuantileLevelIndex:
    """Build a :class:`QuantileLevelIndex` from API-observable data.

    §4.2.3's closing observation: adoption rates decline over a keyword's
    lifetime, so the bucket width should adapt.  A pilot walk over the
    term-induced graph samples first-mention times (each visited node's
    classification reveals its matching neighbors' times for free), and
    the index places its boundaries at the sample's quantiles — equal
    *adopter* mass per level instead of equal *time* per level.
    """
    rng = ensure_rng(seed)
    oracle = TermInducedOracle(context)
    times: List[float] = []
    seen: Set[int] = set()

    def collect(node: int) -> None:
        if node in seen:
            return
        seen.add(node)
        mention = context.first_mention(node)
        if mention is not None:
            times.append(mention)

    try:
        seeds = context.seeds()
        current = rng.choice(seeds)
        collect(current)
        for _ in range(pilot_steps):
            neighbors = oracle.neighbors(current)
            for neighbor in neighbors:
                collect(neighbor)  # classification already fetched them
            current = rng.choice(neighbors) if neighbors else rng.choice(seeds)
            collect(current)
    except BudgetExhaustedError:
        pass
    if len(times) < 2:
        raise EstimationError("pilot walk observed too few adoption times")
    return QuantileLevelIndex.from_times(times, levels=levels)


def _pilot_task(
    context: QueryContext,
    index: LevelIndex,
    label: str,
    pilot_steps: int,
    seed,
) -> Optional[PilotTopology]:
    try:
        return run_pilot(context, index, label, pilot_steps=pilot_steps, seed=seed)
    except EstimationError:
        return None  # this repeat revealed nothing


def select_time_interval(
    context: QueryContext,
    candidates: Sequence[Tuple[str, float]] = DEFAULT_CANDIDATE_INTERVALS,
    pilot_steps: int = 50,
    pilot_repeats: int = 3,
    origin: float = 0.0,
    score_method: str = "spectral",
    seed: RandomLike = None,
    n_workers: Optional[int] = None,
    executor: str = "auto",
) -> IntervalSelection:
    """Pick the score-maximising bucket width among *candidates*.

    Each candidate is scored by the *mean* over ``pilot_repeats``
    independent pilots — single short pilots have high score variance, and
    a mis-ranked interval costs far more downstream than a few extra pilot
    queries (which the response cache largely amortises across repeats
    anyway).  The returned ``pilots`` list holds the repeat whose score is
    the median for each candidate.

    Candidates also amortise each other: the shared context memoises
    every first-mention timestamp it resolves, so later candidates
    re-bucket the same timestamps under their own width instead of
    re-fetching timelines (see the module docstring) — a user's timeline
    is classified at most once across the whole selection.

    With ``n_workers > 1`` the (candidate × repeat) pilot grid runs on
    the parallel execution engine (threaded — the pilots share this
    context's caching client, whose cost meter and cache are
    thread-safe).  Pilot RNG streams are spawned in grid order up front,
    so every worker count walks identical pilots.
    """
    if not candidates:
        raise EstimationError("no candidate intervals")
    if pilot_repeats < 1:
        raise EstimationError("pilot_repeats must be >= 1")
    if score_method not in SCORE_METHODS:
        raise EstimationError(f"score_method must be one of {SCORE_METHODS}")
    rng = ensure_rng(seed)
    # Spawn every pilot's stream up front, in a fixed grid order, so the
    # dispatch mode cannot influence which walks the pilots take.
    grid = [
        (label, LevelIndex(interval=interval, origin=origin), repeat)
        for label, interval in candidates
        for repeat in range(pilot_repeats)
    ]
    tasks = [
        (context, index, label, pilot_steps, spawn(rng, f"{label}:{repeat}"))
        for label, index, repeat in grid
    ]
    from repro.parallel.engine import ExecutionEngine

    engine = ExecutionEngine(n_workers=n_workers or 1, executor=executor)
    grid_results = engine.run(_pilot_task, tasks)
    by_label: Dict[str, List[PilotTopology]] = {}
    for (label, _, _), pilot in zip(grid, grid_results):
        if pilot is not None:
            by_label.setdefault(label, []).append(pilot)

    pilots: List[PilotTopology] = []
    mean_scores: Dict[str, float] = {}
    for label, _interval in candidates:
        repeats = by_label.get(label, [])
        if not repeats:
            continue
        scores = sorted(pilot.score(score_method) for pilot in repeats)
        mean_scores[label] = sum(scores) / len(scores)
        median_pilot = min(
            repeats, key=lambda p: abs(p.score(score_method) - scores[len(scores) // 2])
        )
        pilots.append(median_pilot)
    if not pilots:
        raise EstimationError("every pilot walk failed; cannot select an interval")
    best = max(pilots, key=lambda pilot: mean_scores[pilot.label])
    return IntervalSelection(
        interval=best.interval,
        label=best.label,
        method=score_method,
        pilots=pilots,
        scores=mean_scores,
    )
