"""MA-TARW: the topology-aware random walk of §5 (Algorithms 2 and 3).

Paper map: walk instances and the aggregate assembly are Algorithm 3
(MA-TARW); per-node selection-probability estimation is Algorithm 2
(ESTIMATE-p); the probability recursions implemented here are Eq. 6 (its
``p_up`` form, generalised below) and the Hansen–Hurwitz aggregation that
turns ``f(u)/p(u)`` sums into unbiased SUM/COUNT estimates is Eq. 7 /
§5.1 (via :func:`repro.sampling.estimators.hansen_hurwitz` in spirit —
the accumulators below keep the sums incremental).

One walk *instance* is a bottom-top-bottom traversal of the level-by-level
subgraph: start at a seed returned by the search API, repeatedly move to a
uniformly random *up*-neighbor until reaching a node with none (a local
root), then reverse and move to uniformly random *down*-neighbors until a
node with none (a local sink).  No burn-in is needed because the visit
probability of every touched node can be estimated unbiasedly from the
level topology.

Selection probabilities (Eq. 6 generalised to seeds anywhere):

    p_up(u)   = start(u) + Σ_{v ∈ ∆(u)} p_up(v) / |∇(v)|
    p_down(u) = p_up(u)                        if ∇(u) = ∅  (local root)
              = Σ_{v ∈ ∇(u)} p_down(v) / |∆(v)|  otherwise

where start(u) = 1/s for each of the s seeds, 0 otherwise.  The paper
states the recursion with seeds assumed to be exactly the ∆ = ∅ sinks;
adding the ``start`` term makes it exact when a recent poster also has
down-neighbors (possible whenever someone adopted the keyword even more
recently).  ESTIMATE-p (Algorithm 2) unrolls one random downward path and
multiplies the branching factors — an unbiased estimator because each
recursion level replaces a sum by (size × uniformly-chosen term).

Estimation: for each instance, Σ_{u ∈ up-path} f(u)/p̂_up(u) and
Σ_{u ∈ down-path} f(u)/p̂_down(u) are each unbiased for the SUM over all
reachable users, and their mean is the instance estimate (the
``phase_sum`` combine).  ``combine="paper"`` reproduces Algorithm 3's
printed normalisation by 1/|R_i| instead — see EXPERIMENTS.md for why we
default to the corrected combine.  AVG is the ratio of accumulated SUM
and COUNT estimates; instances repeat until the query budget is spent.

The §5.2 cache ("a single cache ... saving about half of the query cost")
memoises p-estimates of local roots across instances; disable it with
``TARWConfig(cache_root_probabilities=False)`` for the ablation bench.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, ClassVar, Dict, List, Optional, Tuple

from repro._rng import RandomLike

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.parallel.engine import ParallelConfig
from repro.core.graph_builder import LevelByLevelOracle, QueryContext
from repro.core.query import Aggregate
from repro.core.results import EstimateResult, TracePoint
from repro.core.walker import BaseWalker
from repro.errors import BudgetExhaustedError, EstimationError, TransientAPIError
from repro.obs import Observability
from repro.obs.diagnostics import visit_probability_agreement

COMBINE_MODES = ("phase_sum", "paper")


@dataclass(frozen=True)
class TARWConfig:
    """Knobs for MA-TARW."""

    p_method: str = "dp"
    """How selection probabilities are obtained:

    * ``"dp"`` (default) — exact dynamic programming over the subgraph
      classified so far.  Every node a walk or probability path touches is
      fully classified anyway (its up/down neighbor lists are exact), so
      the Eq. 6 recursion can be evaluated *deterministically* over that
      region at zero additional API cost.  Probability mass flowing
      through still-unclassified nodes is missing, so early values are
      slight underestimates that converge from below as coverage grows —
      a far better trade than the sampling estimator's heavy-tailed noise.
    * ``"estimate"`` — Algorithm 2 exactly as printed: per-node unbiased
      estimates from random downward/upward paths, pooled across visits.
      Kept for fidelity comparisons and the ablation benches.
    """
    p_walks: int = 3
    """Independent ESTIMATE-p repetitions averaged per node *per visit*
    (variance reduction; the paper's analysis uses one).  Only used with
    ``p_method="estimate"``."""
    pool_min_samples: int = 128
    pool_decay: float = 0.95
    """Geometric forgetting applied to a node's pool on each refresh.

    Early ESTIMATE-p samples are computed while the pools of lower nodes
    (used by the sampled-backup shortcut) are still immature; without
    forgetting, that stale noise stays in the pool forever.  Decay < 1
    keeps the pool tracking the improving fixed point.  1.0 disables."""
    """Grow a node's ESTIMATE-p pool to at least this many samples on
    first visit.  Extra samples over already-classified regions cost no
    API calls (the cache absorbs them), only CPU."""
    discovery_budget_fraction: float = 0.25
    """At most this fraction of the query budget may be spent by the
    bottom-discovery warm-up, so small budgets still leave room for
    estimation instances."""
    discovery_instances: int = 600
    final_recount_instances: int = 4_000
    """After the budget is spent, refresh the seed set to *every*
    classified sink (sinks learned anywhere during the run, not just walk
    endpoints), reset the visit counters, and re-accumulate them with this
    many walk instances confined to the already-cached region.  These
    walks cost zero API calls — only CPU — and they fix two late-run
    inconsistencies at once: the start distribution matches the final
    (largest) seed set, and the visit counters reflect only that
    distribution.  0 disables."""
    """Warm-up walks that *discover bottom nodes* before estimation.

    The paper assumes the search API returns the complete bottom level,
    so every sink of the level-by-level graph is a seed (§5.2: "users at
    the bottom one or few levels are guaranteed to be returned by the
    search API").  On a real keyword graph many sinks are *local* (a
    community's last adopter) and post nothing recently, so search alone
    under-covers and the up-phase support collapses to ancestors of the
    few searchable users.  The warm-up runs plain bottom-top-bottom walks
    from the search seeds and promotes every sink they touch into the
    seed set, then freezes it — restoring the paper's assumption using
    only API-visible information."""
    accumulate_p_estimates: bool = True
    """Pool every ESTIMATE-p sample a node ever receives into a running
    mean.  ESTIMATE-p is unbiased but heavy-tailed — most single walks
    return 0 (the random downward path missed every seed) while rare walks
    return large values.  Pooling across instances is still unbiased for
    p(u) and converges, where per-visit estimates would either drop the
    node (downward bias) or explode the variance."""
    zero_retry_batches: int = 2
    """Extra batches of p_walks to try when a node's pooled estimate is
    still zero before dropping its contribution for this instance."""
    weight_cap: Optional[float] = 30.0
    """Winsorisation cap on one node's normalised contribution
    visits/(R * pooled_p).  That quantity concentrates near 1 as the run
    matures (empirical visit rate over estimated visit probability), so
    values far above 1 are almost always pooled-p underestimation noise
    rather than genuine rare-node mass; capping trades a small tail bias
    for a large variance reduction.  None disables."""
    combine: str = "phase_sum"
    cache_root_probabilities: bool = True
    max_instances: Optional[int] = 20_000
    stall_instances: int = 200
    """Stop when the query cost has not moved for this many instances
    (everything reachable is cached; see SRWConfig.stall_steps)."""
    max_seeds: Optional[int] = None
    """None = the complete search window (the whole bottom level)."""
    max_path_length: int = 10_000
    """Safety bound on one phase's length (cycles are impossible on a
    level-by-level graph, so this only guards corrupted oracles)."""
    step_retries: int = 2
    """Walk-level fault recovery: a step whose oracle lookup raises a
    :class:`TransientAPIError` (the resilient client gave up) is retried
    from the *current* node this many times before the instance aborts.
    Retries re-issue the same lookup and consume no walker RNG, so a run
    whose faults all heal stays bit-identical to a fault-free run."""

    def __post_init__(self) -> None:
        if self.p_method not in ("dp", "estimate"):
            raise EstimationError("p_method must be 'dp' or 'estimate'")
        if self.p_walks < 1:
            raise EstimationError("p_walks must be >= 1")
        if self.pool_min_samples < 1:
            raise EstimationError("pool_min_samples must be >= 1")
        if not 0.0 < self.pool_decay <= 1.0:
            raise EstimationError("pool_decay must be in (0, 1]")
        if self.discovery_instances < 0:
            raise EstimationError("discovery_instances must be >= 0")
        if self.final_recount_instances < 0:
            raise EstimationError("final_recount_instances must be >= 0")
        if not 0.0 < self.discovery_budget_fraction <= 1.0:
            raise EstimationError("discovery_budget_fraction must be in (0, 1]")
        if self.zero_retry_batches < 0:
            raise EstimationError("zero_retry_batches must be >= 0")
        if self.weight_cap is not None and self.weight_cap <= 0:
            raise EstimationError("weight_cap must be positive or None")
        if self.stall_instances < 1:
            raise EstimationError("stall_instances must be >= 1")
        if self.combine not in COMBINE_MODES:
            raise EstimationError(f"combine must be one of {COMBINE_MODES}")
        if self.step_retries < 0:
            raise EstimationError("step_retries must be >= 0")


class MATARWEstimator(BaseWalker):
    """Topology-aware random walk over the level-by-level subgraph (paper §5, Algorithms 2–3).

    Budgeted MA-TARW over a level-by-level oracle.  Bottom-top-bottom walk
    instances need no burn-in: every touched node's selection probability
    is recovered from the level topology (Eq. 6) and fed into unbiased
    Hansen–Hurwitz sums.
    """

    algorithm: ClassVar[str] = "ma-tarw"
    parallel_kind: ClassVar[Optional[str]] = "hh"
    config_cls: ClassVar[type] = TARWConfig

    def __init__(
        self,
        context: QueryContext,
        oracle: LevelByLevelOracle,
        config: Optional[TARWConfig] = None,
        seed: RandomLike = None,
        parallel: Optional["ParallelConfig"] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(context, oracle, config, seed=seed, parallel=parallel, obs=obs)
        self._obs_phase = "walk"  # flips to "recount" for the final pass
        self._seeds: List[int] = []
        self._seed_set: frozenset = frozenset()
        self._root_cache: Dict[int, float] = {}
        # Pooled ESTIMATE-p samples: node -> (sum of estimates, #estimates).
        self._p_up_pool: Dict[int, Tuple[float, int]] = {}
        self._p_down_pool: Dict[int, Tuple[float, int]] = {}
        # Visit counters per phase (only for condition-matching nodes).
        self._visits_up: Dict[int, int] = {}
        self._visits_down: Dict[int, int] = {}
        self._paper_paths: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
        self._instance_counter = 0
        self.zero_probability_drops = 0
        self.fault_aborted_instances = 0
        # Deterministic DP state (p_method="dp").
        self._dp_p_up: Dict[int, float] = {}
        self._dp_p_down: Dict[int, float] = {}
        self._dp_dirty = True
        self._dp_key: Optional[Tuple[int, int]] = None
        """Input fingerprint of the last DP evaluation: (oracle classify
        epoch, seed-set version).  A dirty flag with an unchanged key
        means walks ran but classified nothing new and the start
        distribution stands — the recursion would reproduce the previous
        table bit for bit, so it is skipped."""
        self._dp_recomputes = 0
        """Full Eq. 6 evaluations actually performed (the hot-path tests
        assert the epoch key collapses cache-confined recomputes)."""
        self._seed_version = 0
        """Bumped whenever the seed set changes; part of the DP key
        because Eq. 6's start(u) term depends on it."""

    def algorithm_id(self) -> str:
        return self.algorithm  # level-by-level only: no oracle suffix

    # ------------------------------------------------------------------
    # the serial run (BaseWalker.estimate handles parallel dispatch)
    # ------------------------------------------------------------------
    def _estimate_serial(self) -> EstimateResult:
        config = self.config
        query = self.context.query
        trace: List[TracePoint] = []
        instances = 0
        path_length_total = 0
        last_cost = -1
        stalled_since = 0
        next_trace = 1
        budget_aborted_instances = 0
        try:
            self._seeds = self._oracle_step(self.context.seeds, config.max_seeds)
            self._discover_bottom_nodes()
            self._seed_set = frozenset(self._seeds)
            self._seed_version += 1
            if self.obs.trace is not None:
                self.obs.trace.event("tarw.seeds", n=len(self._seeds))
            if self.obs.metrics is not None:
                self.obs.metrics.gauge("tarw.seed_set_size").set(len(self._seeds))
            run_instance = self._fused_instance_runner() or self._run_instance
            while config.max_instances is None or instances < config.max_instances:
                try:
                    path_length_total += run_instance()
                    instances += 1
                    self._instance_counter = instances
                except BudgetExhaustedError:
                    # Instances are independent restarts, so one that needed
                    # fresh (unaffordable) data can be skipped; later
                    # instances confined to already-cached regions complete
                    # at zero API cost and keep sharpening the estimate.
                    budget_aborted_instances += 1
                    stalled_since += 1
                    if stalled_since >= config.stall_instances:
                        break
                    continue
                except TransientAPIError:
                    # Walk-level recovery, stage 2: step retries were already
                    # exhausted (see _oracle_step), so checkpoint — visit
                    # counters only ever contain *completed* instances — and
                    # restart from a fresh seed.  The aborted instance's RNG
                    # draws are simply part of this (degraded) run's stream.
                    self.fault_aborted_instances += 1
                    stalled_since += 1
                    if stalled_since >= config.stall_instances:
                        break
                    continue
                cost = self._cost()
                if instances >= next_trace:
                    # Geometric spacing: each recompute scans the distinct
                    # visited nodes, so total trace work stays near-linear.
                    trace.append(TracePoint(cost, self._recompute_value()))
                    next_trace = instances + max(1, instances // 25)
                if cost == last_cost:
                    stalled_since += 1
                    if stalled_since >= config.stall_instances:
                        break
                else:
                    last_cost = cost
                    stalled_since = 0
        except BudgetExhaustedError:
            pass  # budget died during seeding/discovery: report what we have
        except TransientAPIError:
            pass  # platform unrecoverable during seeding: report what we have

        recounted = self._final_recount()
        if recounted:
            instances = self._instance_counter
        value = self._recompute_value()
        trace.append(TracePoint(self._cost(), value))
        mean_path = path_length_total / instances if instances else 0.0
        diagnostics = {
            "instances": float(instances),
            "mean_path_length": mean_path,
            "zero_probability_drops": float(self.zero_probability_drops),
            "budget_aborted_instances": float(budget_aborted_instances),
            "fault_aborted_instances": float(self.fault_aborted_instances),
            "fault_step_retries": float(self.fault_step_retries),
            "p_pool_nodes": float(len(self._p_up_pool) + len(self._p_down_pool)),
            "seed_set_size": float(len(self._seeds)),
        }
        if self.obs.enabled:
            self._agreement_diagnostics(diagnostics)
            if self.obs.trace is not None:
                self.obs.trace.event("tarw.done", instances=instances, cost=self._cost())
        return EstimateResult(
            query=query,
            algorithm=self.algorithm_id(),
            value=value,
            cost_total=self._cost(),
            cost_by_kind=self._cost_by_kind(),
            trace=trace,
            num_samples=instances,
            diagnostics=diagnostics,
        )

    def _agreement_diagnostics(self, diagnostics: Dict[str, float]) -> None:
        """ESTIMATE-p / Eq. 6 agreement: did walks visit each node with the
        frequency the probability machinery claims?  Reads only memoised
        oracle state and the p-pools — no API calls, no RNG draws."""
        instances = self._instances_run()
        if instances <= 0:
            return
        for direction, visits, pool in (
            ("up", self._visits_up, self._p_up_pool),
            ("down", self._visits_down, self._p_down_pool),
        ):
            probabilities = {node: self._pooled_p(node, pool) for node in visits}
            report = visit_probability_agreement(
                visits, probabilities, instances, self.oracle.level_of
            )
            for key in ("max_abs_z", "mean_abs_deviation", "tv_distance", "tv_distance_by_level"):
                if key in report:
                    diagnostics[f"obs_p_agree_{direction}_{key}"] = report[key]

    # ------------------------------------------------------------------
    # final zero-cost recount (see TARWConfig.final_recount_instances)
    # ------------------------------------------------------------------
    def _final_recount(self) -> bool:
        config = self.config
        if config.final_recount_instances == 0 or not self._seeds:
            return False
        sinks = {
            node
            for node in self.oracle.classified_nodes()
            if self.oracle.level_of(node) is not None
            and not self.oracle.down_neighbors(node)
        }
        self._seeds = sorted(set(self._seeds) | sinks)
        self._seed_set = frozenset(self._seeds)
        self._seed_version += 1
        self._visits_up.clear()
        self._visits_down.clear()
        self._paper_paths.clear()
        self._instance_counter = 0
        self._dp_dirty = True
        self._obs_phase = "recount"
        span = (
            self.obs.trace.span("tarw.recount", seeds=len(self._seeds))
            if self.obs.trace is not None
            else None
        )
        completed = 0
        aborted = 0
        attempts_left = config.final_recount_instances * 3
        run_instance = self._fused_instance_runner() or self._run_instance
        while completed < config.final_recount_instances and attempts_left > 0:
            attempts_left -= 1
            try:
                run_instance()
                completed += 1
            except (BudgetExhaustedError, TransientAPIError):
                aborted += 1
                if aborted > config.stall_instances and completed == 0:
                    break
        self._instance_counter = completed
        if span is not None:
            span.add(completed=completed, aborted=aborted).close()
        return completed > 0

    # ------------------------------------------------------------------
    # bottom-node discovery warm-up
    # ------------------------------------------------------------------
    def _discover_bottom_nodes(self) -> None:
        """Promote every sink touched by warm-up walks into the seed set.

        See ``TARWConfig.discovery_instances``.  The seed set is frozen
        afterwards so the start distribution (1/s each) stays consistent
        across all estimation instances.
        """
        discovered = set(self._seeds)
        initial = len(discovered)
        span = (
            self.obs.trace.span("tarw.discovery", seeds=initial)
            if self.obs.trace is not None
            else None
        )
        budget = getattr(self.context.client.meter, "budget", None)  # type: ignore[attr-defined]
        spend_cap = None if budget is None else budget * self.config.discovery_budget_fraction
        try:
            for _ in range(self.config.discovery_instances):
                if spend_cap is not None and self._cost() >= spend_cap:
                    break
                start = self.rng.choice(self._seeds)
                try:
                    up_path = self._walk_up(start)
                    down_path = self._walk_down(up_path[-1])
                except TransientAPIError:
                    # Abandon this warm-up walk (its sinks are lost) but
                    # keep discovering: each walk restarts from a seed.
                    self.fault_aborted_instances += 1
                    continue
                for node in up_path + down_path:
                    if not self.oracle.down_neighbors(node):
                        discovered.add(node)
        except BudgetExhaustedError:
            pass  # keep whatever was discovered; estimation may still run
        self._seeds = sorted(discovered)
        if span is not None:
            span.add(promoted=len(discovered) - initial).close()

    # ------------------------------------------------------------------
    # one bottom-top-bottom instance
    # ------------------------------------------------------------------
    def _run_instance(self) -> int:
        """Run one walk instance, updating visit counters and p-pools.

        Returns the instance's path length.  The instance's *contribution*
        to the estimate is not finalised here: all contributions are
        recomputed from the latest pooled p-estimates at read time
        (:meth:`_recompute_value`), so early instances are not frozen with
        the noisy p-estimates that were available when they ran.
        """
        obs = self.obs
        span = (
            obs.trace.span("tarw.instance", phase=self._obs_phase)
            if obs.trace is not None
            else None
        )
        try:
            start = self.rng.choice(self._seeds)
            # Walk both phases completely before recording anything: a walk
            # can abort on budget exhaustion, and recording a partial
            # instance would skew the visit counters.
            up_path = self._walk_up(start)
            root = up_path[-1]
            down_path = self._walk_down(root)  # includes the root
        except Exception as err:
            if span is not None:
                # Aborted instance: emit the span with the failure class so
                # traces show *where* walks die, then let walk-level
                # recovery in the caller decide what happens next.
                span.add(error=type(err).__name__).close()
            raise

        self._record_phase(up_path, "up")
        self._record_phase(down_path, "down")
        if self.config.combine == "paper":
            self._paper_paths.append((tuple(up_path), tuple(down_path)))
        length = len(up_path) + len(down_path) - 1
        if span is not None:
            # Every node on both paths was classified during the walk, so
            # the level lookups below are cache hits — zero API cost.
            span.add(
                start=start,
                root=root,
                sink=down_path[-1],
                up=len(up_path),
                down=len(down_path),
                l_root=self.oracle.level_of(root),
                l_sink=self.oracle.level_of(down_path[-1]),
            ).close()
        if obs.metrics is not None:
            obs.metrics.counter("tarw.instances", phase=self._obs_phase).inc()
            obs.metrics.histogram("tarw.walk_length").observe(length)
        return length

    def _fused_instance_runner(self) -> Optional[Callable[[], int]]:
        """Kernel-mode replacement for :meth:`_run_instance`: one closure
        with every per-step attribute lookup prebound.

        Engaged only when the run is *observably equivalent* to the
        interpreted instance: kernel resolved (clean stack, memo-direct
        stepping already proven safe by :meth:`_walk_up`), telemetry off
        (no spans/metrics to emit), DP probabilities (no per-visit
        ``_refresh_p``), mean combine (no paper-path capture), and a stock
        ``random.Random`` whose ``choice(seq)`` is literally
        ``seq[_randbelow(len(seq))]`` — so the closure consumes the
        identical RNG stream, touches the identical memos in the identical
        order, and raises at the identical points.  Anything else returns
        None and the caller keeps the interpreted :meth:`_run_instance`.

        ``self._seeds`` is read per call (the recount rebinds it) while
        the visit counters are prebound (the recount ``clear()``s the same
        dicts), matching the interpreted data flow exactly.
        """
        kernel = self._kernel
        config = self.config
        context = self.context
        rng = self.rng
        oracle = self.oracle
        if (
            kernel is None
            or self.obs.enabled
            or config.combine == "paper"
            or config.p_method != "dp"
            or config.max_path_length < 1
            or type(rng).choice is not random.Random.choice
            or type(context).condition_matches is not QueryContext.condition_matches
        ):
            return None
        up_map = getattr(oracle, "_up", None)
        down_map = getattr(oracle, "_down", None)
        randbelow = getattr(rng, "_randbelow", None)
        if up_map is None or down_map is None or randbelow is None:
            return None
        if type(rng)._randbelow is random.Random._randbelow_with_getrandbits:
            # Stock generator: the bit-loop below consumes the identical
            # getrandbits stream without the per-step method call.
            getrandbits: Optional[Callable[[int], int]] = rng.getrandbits
        else:
            getrandbits = None  # seeded subclass — keep its _randbelow
        up_accessor = oracle.up_neighbors
        down_accessor = oracle.down_neighbors
        cond_memo = context._cond_memo
        cond = context.condition_matches
        visits_up = self._visits_up
        visits_down = self._visits_down
        up_get = visits_up.get
        down_get = visits_down.get
        max_length = config.max_path_length
        # RAM plane has no prefetcher and prefetch_views is a no-op —
        # skip the 2-per-instance calls entirely (mmap plane keeps them).
        prefetch = kernel.prefetch_views if kernel.prefetcher is not None else None

        def run_instance() -> int:
            seeds = self._seeds
            current = seeds[randbelow(len(seeds))]
            up_path = [current]
            while True:
                ups = up_map.get(current)
                if ups is None:
                    ups = up_accessor(current)
                if not ups:
                    break
                if getrandbits is None:
                    current = ups[randbelow(len(ups))]
                else:
                    # _randbelow_with_getrandbits inlined (n >= 1 here).
                    n = len(ups)
                    k = n.bit_length()
                    r = getrandbits(k)
                    while r >= n:
                        r = getrandbits(k)
                    current = ups[r]
                up_path.append(current)
                if len(up_path) > max_length:
                    raise EstimationError(
                        "up-phase exceeded max_path_length; level oracle is cyclic?"
                    )
            current = up_path[-1]
            down_path = [current]
            while True:
                downs = down_map.get(current)
                if downs is None:
                    downs = down_accessor(current)
                if not downs:
                    break
                if getrandbits is None:
                    current = downs[randbelow(len(downs))]
                else:
                    n = len(downs)
                    k = n.bit_length()
                    r = getrandbits(k)
                    while r >= n:
                        r = getrandbits(k)
                    current = downs[r]
                down_path.append(current)
                if len(down_path) > max_length:
                    raise EstimationError(
                        "down-phase exceeded max_path_length; level oracle is cyclic?"
                    )
            if prefetch is not None:
                prefetch(up_path)
            for node in up_path:
                matches = cond_memo.get(node)
                if matches is None:
                    matches = cond(node)
                if matches:
                    visits_up[node] = up_get(node, 0) + 1
            self._dp_dirty = True
            if prefetch is not None:
                prefetch(down_path)
            for node in down_path:
                matches = cond_memo.get(node)
                if matches is None:
                    matches = cond(node)
                if matches:
                    visits_down[node] = down_get(node, 0) + 1
            self._dp_dirty = True
            return len(up_path) + len(down_path) - 1

        return run_instance

    def _record_phase(self, path: List[int], direction: str) -> None:
        visits = self._visits_up if direction == "up" else self._visits_down
        metrics = self.obs.metrics
        kernel = self._kernel
        if kernel is not None:
            # mmap plane: advise the timeline pages the condition checks
            # below will gather in one batch (no-op elsewhere).
            kernel.prefetch_views(path)
        condition_matches = self.context.condition_matches
        level_of = self.oracle.level_of
        refresh = self.config.p_method == "estimate"
        visits_get = visits.get
        for node in path:
            if metrics is not None:
                # level_of is memoised for every walked node (the walk
                # classified it), so occupancy telemetry is free.
                level = level_of(node)
                if level is not None:
                    metrics.counter("tarw.level_visits", level=level, phase=direction).inc()
            if not condition_matches(node):
                continue  # contributes 0 regardless of p(u): skip its cost
            visits[node] = visits_get(node, 0) + 1
            if refresh:
                self._refresh_p(node, direction)
        self._dp_dirty = True

    def _walk_up(self, start: int) -> List[int]:
        path = [start]
        current = start
        max_length = self.config.max_path_length
        choice = self.rng.choice
        oracle = self.oracle
        up_map = getattr(oracle, "_up", None) if self._kernel is not None else None
        if up_map is not None:
            # Kernel resolved ⇒ clean stack ⇒ no TransientAPIError, so
            # step straight off the oracle's memo (classifying on miss)
            # instead of paying the retry wrapper per step.
            up_accessor = oracle.up_neighbors
            while len(path) <= max_length:
                ups = up_map.get(current)
                if ups is None:
                    ups = up_accessor(current)
                if not ups:
                    return path
                current = choice(ups)
                path.append(current)
        else:
            while len(path) <= max_length:
                ups = self._oracle_step(oracle.up_neighbors, current)
                if not ups:
                    return path
                current = choice(ups)
                path.append(current)
        raise EstimationError("up-phase exceeded max_path_length; level oracle is cyclic?")

    def _walk_down(self, root: int) -> List[int]:
        path = [root]
        current = root
        max_length = self.config.max_path_length
        choice = self.rng.choice
        oracle = self.oracle
        down_map = getattr(oracle, "_down", None) if self._kernel is not None else None
        if down_map is not None:
            down_accessor = oracle.down_neighbors
            while len(path) <= max_length:
                downs = down_map.get(current)
                if downs is None:
                    downs = down_accessor(current)
                if not downs:
                    return path
                current = choice(downs)
                path.append(current)
        else:
            while len(path) <= max_length:
                downs = self._oracle_step(oracle.down_neighbors, current)
                if not downs:
                    return path
                current = choice(downs)
                path.append(current)
        raise EstimationError("down-phase exceeded max_path_length; level oracle is cyclic?")

    def _refresh_p(self, node: int, direction: str) -> float:
        """Add a batch of ESTIMATE-p samples for *node* to its pool.

        Returns the pooled mean.  With ``accumulate_p_estimates`` off, the
        pool is replaced per visit (the paper's literal per-instance use).
        """
        config = self.config
        if direction == "up":
            pool, p_estimator = self._p_up_pool, self._estimate_p_up
        else:
            pool, p_estimator = self._p_down_pool, self._estimate_p_down
        total, count = pool.get(node, (0.0, 0)) if config.accumulate_p_estimates else (0.0, 0)
        if config.pool_decay < 1.0 and count:
            total *= config.pool_decay
            count *= config.pool_decay
        target = max(count + config.p_walks, config.pool_min_samples)
        batches_left = 1 + config.zero_retry_batches
        while count < target or (total <= 0.0 and batches_left > 0):
            if count >= target:
                batches_left -= 1
                target += config.p_walks
            total += p_estimator(node)
            count += 1
        pool[node] = (total, count)
        return total / count

    def _pooled_p(self, node: int, pool: Dict[int, Tuple[float, int]]) -> float:
        if self.config.p_method == "dp":
            self._run_dp_if_dirty()
            dp = self._dp_p_up if pool is self._p_up_pool else self._dp_p_down
            return dp.get(node, 0.0)
        total, count = pool.get(node, (0.0, 0))
        return total / count if count else 0.0

    def _run_dp_if_dirty(self) -> None:
        """Evaluate Eq. 6 exactly over the classified subgraph.

        Edges always connect different levels, so sorting by level gives a
        topological order for both recursions.  Mass through unclassified
        neighbors is omitted (lower bound; converges as coverage grows).
        No API calls: every input is already in the oracle's caches.

        The dirty flag is necessary but not sufficient: visit counters
        move every instance, yet the recursion reads only the oracle's
        classified subgraph and the seed set.  Both are fingerprinted in
        ``_dp_key`` (oracle classify epoch, seed version); when the key
        is unchanged the previous table would be reproduced bit for bit,
        so cache-confined stretches — notably the whole final recount —
        collapse to a single evaluation.
        """
        if not self._dp_dirty:
            return
        epoch = getattr(self.oracle, "classify_epoch", None)
        key = None if epoch is None else (epoch, self._seed_version)
        if key is not None and key == self._dp_key:
            self._dp_dirty = False
            return
        oracle = self.oracle
        kernel = self._kernel if hasattr(oracle, "_up") else None
        if kernel is not None:
            # Flattened CSR evaluation (numba or numpy backend): the same
            # scalar IEEE-754 operations in the same order, so the tables
            # are bit-identical to the dict recursion below.
            self._dp_p_up, self._dp_p_down = kernel.dp_tables(
                oracle, self._seed_set, len(self._seeds)
            )
        else:
            nodes = [u for u in oracle.classified_nodes() if oracle.level_of(u) is not None]
            classified = set(nodes)
            level = {u: oracle.level_of(u) for u in nodes}
            p_up: Dict[int, float] = {}
            for u in sorted(nodes, key=lambda n: -level[n]):
                value = self._start_probability(u)
                for v in oracle.down_neighbors(u):
                    if v in classified and p_up.get(v, 0.0) > 0.0:
                        value += p_up[v] / len(oracle.up_neighbors(v))
                p_up[u] = value
            p_down: Dict[int, float] = {}
            for u in sorted(nodes, key=lambda n: level[n]):
                ups = oracle.up_neighbors(u)
                if not ups:
                    p_down[u] = p_up[u]
                    continue
                value = 0.0
                for v in ups:
                    if v in classified and p_down.get(v, 0.0) > 0.0:
                        value += p_down[v] / len(oracle.down_neighbors(v))
                p_down[u] = value
            self._dp_p_up = p_up
            self._dp_p_down = p_down
        self._dp_key = key
        self._dp_recomputes += 1
        self._dp_dirty = False

    # ------------------------------------------------------------------
    # estimate assembly from counters + pools
    # ------------------------------------------------------------------
    def _recompute_value(self) -> Optional[float]:
        if self.config.combine == "paper":
            return self._recompute_value_paper()
        instances = self._instances_run()
        if instances == 0:
            return None
        capped_sum = 0.0
        capped_count = 0.0
        raw_sum = 0.0
        raw_count = 0.0
        drops = 0
        cap = self.config.weight_cap
        use_dp = self.config.p_method == "dp"
        if use_dp:
            # Hoisted out of the per-node loop: _pooled_p would re-check
            # the dirty flag for every visited node, and nothing inside
            # the loop can re-dirty the tables (f_value never classifies).
            self._run_dp_if_dirty()
        f_of = self.context.f_value
        # Kernel runs memoise f(u); reading the memo directly skips one
        # method call per visited node (misses fall back to f_of, which
        # populates the same memo — identical values either way).
        f_memo_get = (
            self.context._f_memo.get if self._kernel is not None else None
        )
        for visits, pool, dp in (
            (self._visits_up, self._p_up_pool, self._dp_p_up),
            (self._visits_down, self._p_down_pool, self._dp_p_down),
        ):
            p_get = dp.get if use_dp else None
            pool_get = pool.get
            for node, visit_count in visits.items():
                if p_get is not None:
                    probability = p_get(node, 0.0)
                else:
                    total, count = pool_get(node, (0.0, 0))
                    probability = total / count if count else 0.0
                if probability <= 0.0:
                    drops += 1
                    continue
                normalised = visit_count / (instances * probability)
                if f_memo_get is not None:
                    f_value = f_memo_get(node)
                    if f_value is None:
                        f_value = f_of(node)
                else:
                    f_value = f_of(node)
                raw_sum += normalised * f_value
                raw_count += normalised
                if cap is not None and normalised > cap:
                    normalised = cap
                capped_sum += normalised * f_value
                capped_count += normalised
        self.zero_probability_drops = drops
        query = self.context.query
        if query.aggregate is Aggregate.SUM:
            return capped_sum / 2.0
        if query.aggregate is Aggregate.COUNT:
            return capped_count / 2.0
        # AVG: a self-normalising ratio — capping would bias it (the same
        # inflated weight appears in numerator and denominator and cancels),
        # so use the raw weights.
        if raw_count == 0:
            return None
        return raw_sum / raw_count

    def _recompute_value_paper(self) -> Optional[float]:
        """Algorithm 3's printed combine: per-instance 1/|R_i| normalising."""
        if not self._paper_paths:
            return None
        sum_estimates: List[float] = []
        count_estimates: List[float] = []
        for up_path, down_path in self._paper_paths:
            total_sum = 0.0
            total_count = 0.0
            for path, pool in ((up_path, self._p_up_pool), (down_path, self._p_down_pool)):
                for node in path:
                    if not self.context.condition_matches(node):
                        continue
                    probability = self._pooled_p(node, pool)
                    if probability <= 0.0:
                        continue
                    total_sum += self.context.f_value(node) / probability
                    total_count += 1.0 / probability
            size = len(up_path) + len(down_path)
            sum_estimates.append(total_sum / size)
            count_estimates.append(total_count / size)
        return self._value_from_totals(
            sum(sum_estimates), sum(count_estimates), len(sum_estimates)
        )

    def _instances_run(self) -> int:
        return self._instance_counter

    # ------------------------------------------------------------------
    # partial sums for cross-walker merging (repro.parallel)
    # ------------------------------------------------------------------
    def hh_partial(self) -> Dict[str, float]:
        """Unnormalised Hansen–Hurwitz accumulators of this walker's run.

        Called after :meth:`estimate` by the parallel engine.  The sums
        are *instance-unnormalised* (``Σ_u visits(u)·f(u)/p̂(u)`` rather
        than the per-instance mean), so independent walkers merge by
        plain addition; the merged estimate divides once by the pooled
        instance count (and the phase factor 2 for ``combine="phase_sum"``).
        Winsorisation stays within-walker: the cap applies to each
        walker's own ``visits/(R_i·p̂)`` ratio, which is the quantity that
        concentrates near 1 (see ``TARWConfig.weight_cap``).
        """
        if self.config.combine == "paper":
            sum_total = 0.0
            count_total = 0.0
            for up_path, down_path in self._paper_paths:
                path_sum = 0.0
                path_count = 0.0
                for path, pool in ((up_path, self._p_up_pool), (down_path, self._p_down_pool)):
                    for node in path:
                        if not self.context.condition_matches(node):
                            continue
                        probability = self._pooled_p(node, pool)
                        if probability <= 0.0:
                            continue
                        path_sum += self.context.f_value(node) / probability
                        path_count += 1.0 / probability
                size = len(up_path) + len(down_path)
                sum_total += path_sum / size
                count_total += path_count / size
            return {
                "sum": sum_total,
                "count": count_total,
                "raw_sum": sum_total,
                "raw_count": count_total,
                "instances": float(len(self._paper_paths)),
                "divisor": 1.0,
            }
        instances = self._instances_run()
        capped_sum = 0.0
        capped_count = 0.0
        raw_sum = 0.0
        raw_count = 0.0
        cap = self.config.weight_cap
        if instances:
            for visits, pool in (
                (self._visits_up, self._p_up_pool),
                (self._visits_down, self._p_down_pool),
            ):
                for node, visit_count in visits.items():
                    probability = self._pooled_p(node, pool)
                    if probability <= 0.0:
                        continue
                    unnormalised = visit_count / probability
                    f_value = self.context.f_value(node)
                    raw_sum += unnormalised * f_value
                    raw_count += unnormalised
                    if cap is not None and unnormalised > cap * instances:
                        unnormalised = cap * instances
                    capped_sum += unnormalised * f_value
                    capped_count += unnormalised
        return {
            "sum": capped_sum,
            "count": capped_count,
            "raw_sum": raw_sum,
            "raw_count": raw_count,
            "instances": float(instances),
            "divisor": 2.0,
        }

    # ------------------------------------------------------------------
    # ESTIMATE-p (Algorithm 2) and its top-down mirror
    # ------------------------------------------------------------------
    def _start_probability(self, node: int) -> float:
        return 1.0 / len(self._seeds) if node in self._seed_set else 0.0

    def _observe_p_depth(self, depth: int) -> None:
        """ESTIMATE-p recursion depth (unrolled path steps) histogram."""
        if self.obs.metrics is not None:
            self.obs.metrics.histogram("tarw.estimate_p_depth").observe(depth)

    def _estimate_p_up(self, node: int) -> float:
        """Estimate of p_up(node) by one random downward path.

        Unrolls  p_up(u) = start(u) + |∆(u)| * p_up(V) / |∇(V)|  with V
        uniform in ∆(u), accumulating the telescoped branching factor —
        Algorithm 2 of the paper, which is unbiased but heavy-tailed.

        Variance reduction (sampled backup): when the path reaches a node
        whose own p_up pool already holds ``pool_min_samples`` estimates,
        the walk terminates early with that pooled value in place of a
        fresh sub-walk.  Lower nodes' pools never depend on higher nodes'
        (paths go strictly down), so the bootstrapped values converge to
        the same fixed point as Algorithm 2, with drastically less noise.
        """
        estimate = 0.0
        factor = 1.0
        current = node
        first = True
        for depth in range(self.config.max_path_length):
            if not first:
                total, count = self._p_up_pool.get(current, (0.0, 0))
                if count >= self.config.pool_min_samples and total > 0.0:
                    self._observe_p_depth(depth)
                    return estimate + factor * (total / count)
            estimate += factor * self._start_probability(current)
            downs = self.oracle.down_neighbors(current)
            if not downs:
                self._observe_p_depth(depth)
                return estimate
            chosen = self.rng.choice(downs)
            up_count = len(self.oracle.up_neighbors(chosen))
            factor *= len(downs) / up_count  # up_count >= 1: current is above chosen
            current = chosen
            first = False
        raise EstimationError("ESTIMATE-p exceeded max_path_length; level oracle is cyclic?")

    def _estimate_p_down(self, node: int) -> float:
        """Estimate of p_down(node) by one random upward path.

        Walks up to a local root, then multiplies by an estimate of the
        root's p_up — pooled across instances when the §5.2 cache is on.
        The same sampled-backup shortcut as :meth:`_estimate_p_up` applies
        with the p_down pools of strictly-higher nodes.
        """
        factor = 1.0
        current = node
        first = True
        for depth in range(self.config.max_path_length):
            if not first:
                total, count = self._p_down_pool.get(current, (0.0, 0))
                if count >= self.config.pool_min_samples and total > 0.0:
                    self._observe_p_depth(depth)
                    return factor * (total / count)
            ups = self.oracle.up_neighbors(current)
            if not ups:
                self._observe_p_depth(depth)
                return factor * self._root_p_up(current)
            chosen = self.rng.choice(ups)
            down_count = len(self.oracle.down_neighbors(chosen))
            factor *= len(ups) / down_count  # down_count >= 1: current is below chosen
            current = chosen
            first = False
        raise EstimationError("ESTIMATE-p exceeded max_path_length; level oracle is cyclic?")

    def _root_p_up(self, root: int) -> float:
        """Pooled estimate of a local root's p_up (the §5.2 root cache).

        The paper reuses one estimate per root to halve the probability-
        estimation cost; we additionally keep *pooling* new samples into
        it (a frozen single sample would lock in its noise for the run).
        """
        if not self.config.cache_root_probabilities:
            return self._sample_root_p_up(root)
        total, count = self._p_up_pool.get(root, (0.0, 0))
        if count < self.config.pool_min_samples:
            total += self._sample_root_p_up(root)
            count += 1
            self._p_up_pool[root] = (total, count)
        return total / count

    def _sample_root_p_up(self, root: int) -> float:
        """One fresh Algorithm 2 sample for a root (no pool shortcut at
        the root itself — that would be self-referential)."""
        estimate = self._start_probability(root)
        downs = self.oracle.down_neighbors(root)
        if not downs:
            return estimate
        chosen = self.rng.choice(downs)
        factor = len(downs) / len(self.oracle.up_neighbors(chosen))
        return estimate + factor * self._estimate_p_up_from(chosen)

    def _estimate_p_up_from(self, node: int) -> float:
        """p_up sample for *node* allowing the pool shortcut at node itself."""
        total, count = self._p_up_pool.get(node, (0.0, 0))
        if count >= self.config.pool_min_samples and total > 0.0:
            return total / count
        return self._estimate_p_up(node)

    # ------------------------------------------------------------------
    # final value assembly
    # ------------------------------------------------------------------
    def _value_from_totals(
        self, total_sum: float, total_count: float, instances: int
    ) -> Optional[float]:
        if instances == 0:
            return None
        query = self.context.query
        mean_sum = total_sum / instances
        mean_count = total_count / instances
        if query.aggregate is Aggregate.SUM:
            return mean_sum
        if query.aggregate is Aggregate.COUNT:
            return mean_count
        if mean_count == 0:
            return None
        return mean_sum / mean_count
