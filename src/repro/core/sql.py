"""A tiny parser for the paper's SQL-ish aggregate query form (§2).

The paper writes queries as ``SELECT AGGR(f(u)) FROM U WHERE CONDITION``.
This module parses that surface syntax into :class:`AggregateQuery`
objects, for the CLI and for notebook ergonomics::

    parse_query("SELECT COUNT(*) FROM users WHERE timeline CONTAINS 'privacy'")
    parse_query(
        "SELECT AVG(followers) FROM users "
        "WHERE timeline CONTAINS 'boston' "
        "AND time BETWEEN 100 AND 200 "          # days since epoch
        "AND gender = 'male' AND followers >= 10"
    )

Grammar (case-insensitive keywords)::

    query      := SELECT aggr FROM USERS WHERE condition
    aggr       := COUNT(*) | COUNT(measure) | AVG(measure) | SUM(measure)
    condition  := clause (AND clause)*
    clause     := TIMELINE CONTAINS 'keyword'
                | TIME BETWEEN number AND number      -- days
                | GENDER = 'male' | 'female' | 'undisclosed'
                | FOLLOWERS >= integer

Exactly one ``TIMELINE CONTAINS`` clause is required (the paper's focus:
every aggregate has a keyword predicate).
"""

from __future__ import annotations

import re
from typing import Callable, List, Optional, Tuple

from repro.core.query import (
    Aggregate,
    AggregateQuery,
    CONSTANT_ONE,
    DISPLAY_NAME_LENGTH,
    FOLLOWERS,
    MATCHING_POST_COUNT,
    MEAN_LIKES,
    Measure,
    TOTAL_LIKES,
    UserView,
    gender_is,
    min_followers,
)
from repro.errors import QueryError
from repro.platform.clock import DAY
from repro.platform.users import Gender

MEASURES = {
    "one": CONSTANT_ONE,
    "*": CONSTANT_ONE,
    "followers": FOLLOWERS,
    "display_name_length": DISPLAY_NAME_LENGTH,
    "matching_post_count": MATCHING_POST_COUNT,
    "mean_likes": MEAN_LIKES,
    "total_likes": TOTAL_LIKES,
}

_HEAD = re.compile(
    r"^\s*select\s+(count|avg|sum)\s*\(\s*([\w*]+)\s*\)\s+from\s+users\s+where\s+(.*)$",
    re.IGNORECASE | re.DOTALL,
)
_CONTAINS = re.compile(
    r"^timeline\s+contains\s+'([^']+)'$", re.IGNORECASE
)
_BETWEEN = re.compile(
    r"^time\s+between\s+(-?\d+(?:\.\d+)?)\s+and\s+(-?\d+(?:\.\d+)?)$", re.IGNORECASE
)
_GENDER = re.compile(r"^gender\s*=\s*'(\w+)'$", re.IGNORECASE)
_FOLLOWERS = re.compile(r"^followers\s*>=\s*(\d+)$", re.IGNORECASE)


def _split_clauses(condition: str) -> List[str]:
    """Split on AND outside quotes (the AND inside BETWEEN is protected)."""
    protected = re.sub(
        r"(?i)\bbetween\s+(-?\d+(?:\.\d+)?)\s+and\s+",
        r"between \1 ~and~ ",
        condition,
    )
    clauses: List[str] = []
    in_quote = False
    current: List[str] = []
    for token in protected.split():
        if token.count("'") % 2:
            in_quote = not in_quote
        if token.lower() == "and" and not in_quote:
            clauses.append(" ".join(current))
            current = []
        else:
            current.append(token)
    clauses.append(" ".join(current))
    return [clause.replace("~and~", "and").strip() for clause in clauses if clause.strip()]


def parse_query(text: str) -> AggregateQuery:
    """Parse the §2 query form into an :class:`AggregateQuery`."""
    head = _HEAD.match(text)
    if not head:
        raise QueryError(
            "query must look like: SELECT COUNT(*) FROM users WHERE "
            "timeline CONTAINS '<keyword>' [AND ...]"
        )
    aggregate = Aggregate[head.group(1).upper()]
    measure_name = head.group(2).lower() if head.group(2) != "*" else "*"
    if measure_name not in MEASURES:
        raise QueryError(
            f"unknown measure {head.group(2)!r}; choose from "
            f"{sorted(name for name in MEASURES if name != '*')}"
        )
    measure = MEASURES[measure_name]
    if aggregate is not Aggregate.COUNT and measure is CONSTANT_ONE and measure_name == "*":
        raise QueryError("AVG(*)/SUM(*) are not meaningful; name a measure")

    keyword: Optional[str] = None
    window: Optional[Tuple[float, float]] = None
    predicates: List[Callable[[UserView], bool]] = []
    for clause in _split_clauses(head.group(3)):
        contains = _CONTAINS.match(clause)
        if contains:
            if keyword is not None:
                raise QueryError("only one TIMELINE CONTAINS clause is supported")
            keyword = contains.group(1)
            continue
        between = _BETWEEN.match(clause)
        if between:
            if window is not None:
                raise QueryError("only one TIME BETWEEN clause is supported")
            window = (float(between.group(1)) * DAY, float(between.group(2)) * DAY)
            continue
        gender = _GENDER.match(clause)
        if gender:
            try:
                predicates.append(gender_is(Gender(gender.group(1).lower())))
            except ValueError:
                raise QueryError(
                    f"unknown gender {gender.group(1)!r}; use male/female/undisclosed"
                ) from None
            continue
        followers = _FOLLOWERS.match(clause)
        if followers:
            predicates.append(min_followers(int(followers.group(1))))
            continue
        raise QueryError(f"cannot parse WHERE clause: {clause!r}")

    if keyword is None:
        raise QueryError("the WHERE condition must include TIMELINE CONTAINS '<keyword>'")

    predicate: Optional[Callable[[UserView], bool]] = None
    if predicates:
        def predicate(view: UserView, _predicates=tuple(predicates)) -> bool:
            return all(p(view) for p in _predicates)

    return AggregateQuery(
        keyword=keyword,
        aggregate=aggregate,
        measure=measure,
        window=window,
        predicate=predicate,
    )
