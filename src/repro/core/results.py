"""Estimation results and convergence traces.

Every estimator returns an :class:`EstimateResult` carrying the point
estimate, the full query-cost accounting, and a convergence trace of
``(cost, running_estimate)`` checkpoints — the raw material for the
paper's query-cost-vs-relative-error plots (Figures 2–3, 8–14) and the
convergence plot (Figure 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.query import AggregateQuery
from repro.errors import EstimationError
from repro.parallel.stats import WalkStats


@dataclass
class TracePoint:
    """One convergence checkpoint."""

    cost: int
    estimate: Optional[float]

    def error_against(self, truth: float) -> Optional[float]:
        if self.estimate is None or truth == 0:
            return None
        return abs(self.estimate - truth) / abs(truth)


@dataclass
class EstimateResult:
    """Outcome of one budgeted estimation run."""

    query: AggregateQuery
    algorithm: str
    value: Optional[float]
    cost_total: int
    cost_by_kind: Dict[str, int] = field(default_factory=dict)
    trace: List[TracePoint] = field(default_factory=list)
    num_samples: int = 0
    diagnostics: Dict[str, float] = field(default_factory=dict)
    walk_stats: Optional[WalkStats] = None
    """Parallel-execution instrumentation; None for classic serial runs.
    See :class:`repro.parallel.stats.WalkStats`."""

    def relative_error(self, truth: float) -> float:
        if self.value is None:
            raise EstimationError("estimator produced no value")
        if truth == 0:
            raise EstimationError("relative error undefined for zero ground truth")
        return abs(self.value - truth) / abs(truth)

    def cost_to_reach_error(self, truth: float, target: float) -> Optional[int]:
        """Smallest cost after which the running estimate *stays* within
        *target* relative error of *truth*.

        "Stays" (rather than "first touches") matches how the paper
        measures cost-to-accuracy: a trace that crosses the truth on its
        way elsewhere has not converged.  Returns None when the run never
        stabilises inside the band.
        """
        if truth == 0:
            raise EstimationError("relative error undefined for zero ground truth")
        if target <= 0:
            raise EstimationError("target error must be positive")
        achieved_at: Optional[int] = None
        for point in self.trace:
            error = point.error_against(truth)
            if error is None or math.isnan(error):
                continue
            if error <= target:
                if achieved_at is None:
                    achieved_at = point.cost
            else:
                achieved_at = None
        return achieved_at
