"""MICROBLOG-ANALYZER: the paper's primary contribution.

Public surface:

* :mod:`repro.core.query` — aggregate queries (§2's problem definition);
* :mod:`repro.core.levels` — level assignment and the intra/adjacent/cross
  edge taxonomy (§4.2.1);
* :mod:`repro.core.graph_builder` — GRAPH-BUILDER: neighbor oracles for the
  social, term-induced and level-by-level graphs, built on the fly over the
  restricted API (§3, §4);
* :mod:`repro.core.interval` — pilot-walk time-interval selection (§4.2.3);
* :mod:`repro.core.srw` — MA-SRW (Algorithm 1);
* :mod:`repro.core.tarw` — MA-TARW: topology-aware random walk with
  unbiased selection-probability estimation (Algorithms 2–3, §5);
* :mod:`repro.core.mr` — the mark-and-recapture COUNT baseline (M&R);
* :mod:`repro.core.analyzer` — the MICROBLOG-ANALYZER facade (§3.1).
"""

from repro.core.query import (
    Aggregate,
    AggregateQuery,
    Measure,
    UserView,
    CONSTANT_ONE,
    DISPLAY_NAME_LENGTH,
    FOLLOWERS,
    MATCHING_POST_COUNT,
    MEAN_LIKES,
    gender_is,
)
from repro.core.results import EstimateResult
from repro.core.levels import EdgeKind, LevelIndex, classify_edge
from repro.core.graph_builder import (
    LevelByLevelOracle,
    SocialGraphOracle,
    TermInducedOracle,
)
from repro.core.interval import IntervalSelection, select_time_interval, DEFAULT_CANDIDATE_INTERVALS
from repro.core.srw import MASRWEstimator, SRWConfig
from repro.core.tarw import MATARWEstimator, TARWConfig
from repro.core.mr import MarkRecaptureEstimator, MRConfig
from repro.core.crawler import CrawlConfig, CrawlEstimator
from repro.core.confidence import ConfidenceResult, combine_replicates, t_quantile
from repro.core.sql import parse_query
from repro.core.analyzer import MicroblogAnalyzer

__all__ = [
    "Aggregate",
    "AggregateQuery",
    "Measure",
    "UserView",
    "CONSTANT_ONE",
    "FOLLOWERS",
    "DISPLAY_NAME_LENGTH",
    "MATCHING_POST_COUNT",
    "MEAN_LIKES",
    "gender_is",
    "EstimateResult",
    "EdgeKind",
    "LevelIndex",
    "classify_edge",
    "SocialGraphOracle",
    "TermInducedOracle",
    "LevelByLevelOracle",
    "IntervalSelection",
    "select_time_interval",
    "DEFAULT_CANDIDATE_INTERVALS",
    "MASRWEstimator",
    "SRWConfig",
    "MATARWEstimator",
    "TARWConfig",
    "MarkRecaptureEstimator",
    "MRConfig",
    "CrawlEstimator",
    "CrawlConfig",
    "ConfidenceResult",
    "combine_replicates",
    "t_quantile",
    "parse_query",
    "MicroblogAnalyzer",
]
