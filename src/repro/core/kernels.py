"""Compiled walk kernels: the batched hot loop behind the interpreted walkers.

PR 5's fast path (:mod:`repro.api.fastpath`) flattened the *client stack*;
this module flattens the *walk loop on top of it*.  :func:`resolve_kernel`
inspects a :class:`~repro.core.graph_builder.QueryContext` once per query
and, when the fast path resolved and the store's columns are clean 1-D
contiguous int64/float64 arrays, returns a :class:`KernelOps` providing

* **fused batch classification** — one pass resolves a node's whole
  neighborhood: batched ``timeline_lengths`` + first-mention
  ``searchsorted`` over the frozen columns, ``levels_of_array`` level
  bucketing and the up/down split as numpy masks, replacing the
  per-neighbor python loop of ``LevelByLevelOracle._classify``;
* **capped-window resolution** — users whose timeline exceeds the
  platform cap historically fell back to materialising the entire capped
  timeline (thousands of :class:`~repro.platform.posts.Post` objects) to
  read one timestamp.  The kernel reads the same answer from the capped
  row window of the columns (`timeline_rows[-cap:]` + keyword-code mask),
  with byte-identical charges, cache counters and trace events;
* **columnar condition views** — ``build_view`` assembles the
  :class:`~repro.core.query.UserView` for a prepaid user straight from
  the columns (only *matching* posts are materialised) instead of
  building the full timeline tuple;
* **the Eq. 6 DP recursion over flat CSR arrays** — ``dp_tables``
  compiles the classified subgraph into index arrays and runs both
  recursion passes as tight loops: numba-JIT when available, a
  pure-python twin otherwise.  Both execute the *same scalar IEEE-754
  operations in the same order* as the interpreted dict recursion, so
  the tables are bit-identical by construction;
* **paged prefetch (mmap plane)** — :class:`PagePrefetcher` batches
  ``madvise(WILLNEED)`` over the timeline pages a walk batch is about to
  touch, so classification of a 10M-row mapped store overlaps its page
  faults instead of serialising them.  The touch-ahead window is
  ``drop_caches``-aware: the store's ``cache_epoch`` invalidates the
  already-advised set.

Resolution rules / fallback matrix (mirrors ``resolve_fast_path``; the
``kernel.fallback{reason}`` counter names the failing rule):

========================  =====================================================
reason                    rule
========================  =====================================================
``disabled``              :func:`set_kernel_enabled` switch off, or the
                          ``REPRO_NO_KERNEL=1`` environment override
``no-fastpath``           the context's fast path did not resolve (fault or
                          resilient layers, legacy store, non-caching client)
``non-contiguous``        any serving column is not a clean 1-D C-contiguous
                          int64/float64 array
========================  =====================================================

On success ``kernel.resolved`` and ``kernel.backend{backend}`` fire, where
the backend is ``numba`` when the JIT imports (and ``REPRO_NO_NUMBA=1`` is
unset) and ``numpy`` otherwise.  numba is an *optional* dependency: absent,
the pure-python/numpy twins serve identically — the backends differ only
in speed, never in bits.

Bit-identity argument, in brief: every charge, cache counter, trace event
and RNG draw happens in the same order with the same values as on the
interpreted path — the kernel batches *reads* (pure column lookups) and
replays *effects* per user in input order, exactly like the PR 5 fast
path.  Floating point stays bit-identical because the kernel only
vectorises elementwise operations (floor, division, comparison,
``searchsorted``) and keeps every accumulation a sequential scalar loop
in the interpreted operation order.  The memoisation the kernel enables
(`condition_matches`/`f_value` caches) assumes query predicates and
measures are pure functions of the view — true of every measure in
:mod:`repro.core.query`, and a documented requirement for custom ones.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PlatformError
from repro.obs import NULL_OBS, Observability

_ENABLED = True
_ENABLED_LOCK = threading.Lock()

_COLUMN_DTYPES = (np.dtype(np.int64), np.dtype(np.float64))

_SCALAR_CLASSIFY_MAX = 32
"""Neighborhood size below which :meth:`KernelOps.classify` loops scalar
instead of paying four numpy array round-trips.  Pure perf threshold:
both branches are element-wise bit-identical (see the kernels test
tier), so the value only moves the crossover, never the answer."""


def set_kernel_enabled(enabled: bool) -> bool:
    """Process-wide kernel switch; returns the previous setting.

    Exists for the kernel bench (kernel-off/kernel-on timing on identical
    inputs) and the bit-identity regression tests.  Contexts resolve the
    switch at construction time, so flipping it mid-run has no effect on
    runs already started.
    """
    global _ENABLED
    with _ENABLED_LOCK:
        previous = _ENABLED
        _ENABLED = bool(enabled)
    return previous


def kernel_enabled() -> bool:
    return _ENABLED and os.environ.get("REPRO_NO_KERNEL") != "1"


# ----------------------------------------------------------------------
# optional numba backend
# ----------------------------------------------------------------------
_NUMBA_PROBED = False
_NUMBA_OK = False
_DP_COMPILED = None


def numba_available() -> bool:
    """True when the numba JIT can back the DP kernel.

    ``REPRO_NO_NUMBA=1`` forces the numpy/pure-python backend even with
    numba installed — CI runs the whole kernel suite both ways.
    """
    global _NUMBA_PROBED, _NUMBA_OK
    if os.environ.get("REPRO_NO_NUMBA") == "1":
        return False
    if not _NUMBA_PROBED:
        try:
            import numba  # noqa: F401

            _NUMBA_OK = True
        except Exception:
            _NUMBA_OK = False
        _NUMBA_PROBED = True
    return _NUMBA_OK


def _njit_dp():
    """Lazily compile the array DP twin (first kernel-backed DP pays it)."""
    global _DP_COMPILED
    if _DP_COMPILED is None:
        from numba import njit

        _DP_COMPILED = njit(cache=False)(_dp_passes_arrays)
    return _DP_COMPILED


# ----------------------------------------------------------------------
# column primitives (module-level so property tests hit them directly)
# ----------------------------------------------------------------------
def match_mask(store, rows: np.ndarray, match_codes: np.ndarray,
               extra_pids: np.ndarray) -> np.ndarray:
    """Boolean mask over column *rows*: post's keywords contain the needle.

    ``match_codes`` are the registered keyword codes whose singleton
    keyword set contains the needle; ``extra_pids`` the (sorted) post ids
    of multi-keyword posts matching it.  A code match implies a true
    keyword match even for multi-keyword posts, because a post's code is
    its alphabetically-first word — always a member of its keyword set.
    """
    codes = store.post_keyword[rows]
    if match_codes.size == 1:
        mask = codes == match_codes[0]
    elif match_codes.size:
        mask = np.isin(codes, match_codes)
    else:
        mask = np.zeros(rows.shape[0], dtype=bool)
    if extra_pids.size:
        mask |= np.isin(store.post_id[rows], extra_pids)
    return mask


def first_mention_from_columns(store, match_codes: np.ndarray,
                               extra_pids: np.ndarray, user_id: int,
                               cap: Optional[int]) -> Optional[float]:
    """First *visible* mention time read from the capped row window.

    Equivalent to ``TimelineView.first_mention_time`` over the capped
    timeline: the per-user rows are time-sorted at freeze, so the first
    masked row inside ``rows[-cap:]`` is the earliest visible mention.
    """
    rows = store.timeline_rows(user_id)
    if cap is not None and rows.shape[0] > cap:
        rows = rows[-cap:]
    hits = np.flatnonzero(match_mask(store, rows, match_codes, extra_pids))
    if hits.size == 0:
        return None
    return float(store.post_time[rows[hits[0]]])


def _dp_passes_python(order_up, order_down, start, d_indptr, d_indices,
                      up_counts, u_indptr, u_indices, down_counts):
    """Eq. 6 recursion passes over flattened (list) CSR inputs.

    Scalar loops in the exact interpreted operation order — each addition
    and division happens on the same values, in the same sequence, as the
    dict-based recursion in ``MATARWEstimator._run_dp_if_dirty`` — so the
    resulting tables are bit-identical.  The numba twin
    (:func:`_dp_passes_arrays`) runs the same algorithm over arrays.
    """
    n = len(order_up)
    p_up = [0.0] * n
    for i in order_up:
        value = start[i]
        for k in range(d_indptr[i], d_indptr[i + 1]):
            j = d_indices[k]
            pj = p_up[j]
            if pj > 0.0:
                value += pj / up_counts[j]
        p_up[i] = value
    p_down = [0.0] * n
    for i in order_down:
        if up_counts[i] == 0:
            p_down[i] = p_up[i]
            continue
        value = 0.0
        for k in range(u_indptr[i], u_indptr[i + 1]):
            j = u_indices[k]
            pj = p_down[j]
            if pj > 0.0:
                value += pj / down_counts[j]
        p_down[i] = value
    return p_up, p_down


def _dp_passes_rows(order_up, order_down, start, d_rows, up_counts,
                    u_rows, down_counts):
    """Eq. 6 recursion passes over per-node adjacency rows.

    The incremental twin of :func:`_dp_passes_python`: rows come from
    :class:`_DPGraphState` and may hold ``-1`` placeholders for partners
    that never classified (or classified with no level) — skipping them
    is the interpreted recursion's ``v in classified`` guard.  The skip
    is branch-free: the tables carry one extra trailing slot that is
    never written, so a ``-1`` row entry indexes a permanent ``0.0`` and
    falls through the existing ``pj > 0.0`` guard.  The live entries
    appear in neighbor-list order, so each node's additions happen on
    the same values in the same sequence and the tables are
    bit-identical to both the interpreted recursion and the flat pass.
    Callers must ignore the sentinel slot (``zip`` against the n-row id
    list already does).
    """
    n = len(order_up)
    p_up = [0.0] * (n + 1)
    for i in order_up:
        value = start[i]
        for j in d_rows[i]:
            pj = p_up[j]
            if pj > 0.0:
                value += pj / up_counts[j]
        p_up[i] = value
    p_down = [0.0] * (n + 1)
    for i in order_down:
        if up_counts[i] == 0:
            p_down[i] = p_up[i]
            continue
        value = 0.0
        for j in u_rows[i]:
            pj = p_down[j]
            if pj > 0.0:
                value += pj / down_counts[j]
        p_down[i] = value
    return p_up, p_down


def _dp_passes_arrays(order_up, order_down, start, d_indptr, d_indices,
                      up_counts, u_indptr, u_indices, down_counts,
                      p_up, p_down):  # pragma: no cover - numba twin
    """Array twin of :func:`_dp_passes_python` (njit-compiled on demand).

    Same scalar float64 adds/divides in the same order; IEEE-754 makes
    the two backends produce the same bits.  Accepts the incremental
    state's flattened rows too: negative indices are unresolved
    placeholders and skip, exactly as in :func:`_dp_passes_rows` (the
    full flatten never produces them, so the branch is never taken
    there).
    """
    n = order_up.shape[0]
    for oi in range(n):
        i = order_up[oi]
        value = start[i]
        for k in range(d_indptr[i], d_indptr[i + 1]):
            j = d_indices[k]
            if j < 0:
                continue
            pj = p_up[j]
            if pj > 0.0:
                value += pj / up_counts[j]
        p_up[i] = value
    for oi in range(n):
        i = order_down[oi]
        if up_counts[i] == 0.0:
            p_down[i] = p_up[i]
            continue
        value = 0.0
        for k in range(u_indptr[i], u_indptr[i + 1]):
            j = u_indices[k]
            if j < 0:
                continue
            pj = p_down[j]
            if pj > 0.0:
                value += pj / down_counts[j]
        p_down[i] = value


# ----------------------------------------------------------------------
# incremental adjacency state for the Eq. 6 DP recursion
# ----------------------------------------------------------------------
class _DPGraphState:
    """Incrementally maintained row adjacency of an oracle's classified
    subgraph.

    Fed one node at a time by :meth:`KernelOps.classify` (classification
    is append-only within an oracle's lifetime: a node classifies once
    and its up/down lists never mutate afterwards), consumed by
    :meth:`KernelOps.dp_tables`.  Each classified node owns one row per
    direction, listing partner *row indices* in neighbor-list order —
    the interpreted recursion's iteration order.  Edges to
    not-yet-classified partners hold ``-1`` plus a ``(row, offset)``
    pending entry; they resolve in place the moment the partner
    classifies, which is also the only event that changes the node count
    ``len(ids)`` — so the per-count caches (level argsort orders) stay
    valid exactly as long as the count does.  The DP passes skip ``-1``
    entries, reproducing the interpreted guard ``v in classified``.
    """

    __slots__ = (
        "total_classified", "ids", "levels", "up_counts", "down_counts",
        "idx", "dead", "d_rows", "u_rows", "d_pending", "u_pending",
        "cached_n", "order_up", "order_down", "start_key", "start_list",
    )

    def __init__(self) -> None:
        self.total_classified = 0
        self.ids: List[int] = []
        self.levels: List[int] = []
        self.up_counts: List[int] = []
        self.down_counts: List[int] = []
        self.idx: Dict[int, int] = {}
        self.dead: set = set()
        """Classified nodes with no level: edges into them never resolve."""
        self.d_rows: List[List[int]] = []
        self.u_rows: List[List[int]] = []
        self.d_pending: Dict[int, List[Tuple[int, int]]] = {}
        self.u_pending: Dict[int, List[Tuple[int, int]]] = {}
        self.cached_n = -1
        self.order_up: Optional[List[int]] = None
        self.order_down: Optional[List[int]] = None
        self.start_key: Optional[frozenset] = None
        self.start_list: List[float] = []

    def note_classified(self, user_id: int, level: Optional[int],
                        ups: Sequence[int], downs: Sequence[int]) -> None:
        self.total_classified += 1
        d_pos = self.d_pending.pop(user_id, None)
        u_pos = self.u_pending.pop(user_id, None)
        if level is None:
            self.dead.add(user_id)
            return
        j = len(self.ids)
        self.idx[user_id] = j
        self.ids.append(user_id)
        self.levels.append(level)
        self.up_counts.append(len(ups))
        self.down_counts.append(len(downs))
        d_rows = self.d_rows
        u_rows = self.u_rows
        if d_pos:
            for ri, off in d_pos:
                d_rows[ri][off] = j
        if u_pos:
            for ri, off in u_pos:
                u_rows[ri][off] = j
        idx_get = self.idx.get
        dead = self.dead
        row: List[int] = []
        for off, v in enumerate(downs):
            k = idx_get(v)
            if k is None:
                k = -1
                if v not in dead:
                    self.d_pending.setdefault(v, []).append((j, off))
            row.append(k)
        d_rows.append(row)
        row = []
        for off, v in enumerate(ups):
            k = idx_get(v)
            if k is None:
                k = -1
                if v not in dead:
                    self.u_pending.setdefault(v, []).append((j, off))
            row.append(k)
        u_rows.append(row)


# ----------------------------------------------------------------------
# paged prefetch over the mmap plane
# ----------------------------------------------------------------------
class PagePrefetcher:
    """Batch ``madvise(WILLNEED)`` over the timeline pages a walk batch
    is about to touch.

    Scoped to one mapped store.  ``prefetch_users`` resolves the users'
    (cap-sliced) timeline row windows and advises the backing pages of
    the value columns the classification/condition gathers will read, so
    the kernel's random-access faults overlap in one readahead batch
    instead of serialising one 4 KiB fault at a time.

    The already-advised set (the touch-ahead window) is keyed on the
    store's ``cache_epoch``: ``FrozenStore.drop_caches`` bumps it, so a
    bench that cold-starts the store also cold-starts the prefetcher.
    Purely advisory — a platform without ``madvise`` (or a RAM column
    that happens to flow through) degrades to a no-op.
    """

    __slots__ = ("store", "columns", "max_runs", "batches", "pages_advised",
                 "_seen", "_epoch")

    def __init__(self, store, columns, max_runs: int = 512) -> None:
        self.store = store
        self.columns = [c for c in columns if getattr(c, "size", 0)]
        self.max_runs = max_runs
        """Cap on madvise syscalls per column per batch: page runs beyond
        it are simply not advised (they still fault on demand)."""
        self.batches = 0
        self.pages_advised = 0
        self._seen: set = set()
        self._epoch = getattr(store, "cache_epoch", 0)

    def prefetch_users(self, user_ids: Sequence[int], cap: Optional[int]) -> None:
        store = self.store
        epoch = getattr(store, "cache_epoch", 0)
        if epoch != self._epoch:
            self._seen.clear()
            self._epoch = epoch
        seen = self._seen
        todo = [u for u in user_ids if u not in seen]
        if not todo:
            return
        seen.update(todo)
        ids = store._sorted_user_ids
        if ids.size == 0:
            return
        arr = np.asarray(todo, dtype=np.int64)
        pos = np.minimum(np.searchsorted(ids, arr), ids.size - 1)
        pos = pos[ids[pos] == arr]
        if pos.size == 0:
            return
        indptr = store._tl_indptr
        starts = indptr[pos]
        stops = indptr[pos + 1]
        if cap is not None:
            starts = np.maximum(starts, stops - cap)
        order = store._tl_order
        parts = [order[s:e] for s, e in zip(starts.tolist(), stops.tolist()) if e > s]
        if not parts:
            return
        rows = np.concatenate(parts) if len(parts) > 1 else parts[0]
        self.batches += 1
        from repro.platform.outofcore import advise_value_pages

        for column in self.columns:
            self.pages_advised += advise_value_pages(column, rows, self.max_runs)


# ----------------------------------------------------------------------
# the kernel ops bundle
# ----------------------------------------------------------------------
class KernelOps:
    """Batched walk-loop operations over a resolved fast-path stack.

    One instance is scoped to one :class:`QueryContext` (client × query),
    like :class:`~repro.api.fastpath.FastPathOps` which it builds on.
    Thread-safety matches the slow path: all cache mutation happens under
    the caching client's lock (the batch loops hold it across a
    neighborhood, which only coarsens granularity — the per-user effect
    order is unchanged).
    """

    __slots__ = (
        "context", "fast", "cache", "sim", "store", "keyword", "query",
        "window", "match_codes", "extra_pids", "timeline_cap",
        "timeline_page", "calls_for_items", "backend", "prefetcher",
        "_log_exact", "_capped_calls", "_cache_metrics",
    )

    def __init__(self, context, fast, backend: str,
                 prefetcher: Optional[PagePrefetcher] = None) -> None:
        self.context = context
        self.fast = fast
        self.cache = fast.cache
        self.sim = fast.sim
        self.store = fast.store
        self.keyword = fast.keyword
        self.query = context.query
        self.window = context.query.window
        store = fast.store
        self.match_codes = store.matching_keyword_codes(self.keyword)
        self.extra_pids = store.matching_extra_post_ids(self.keyword)
        self.timeline_cap = fast.timeline_cap
        self.timeline_page = fast.timeline_page
        self.calls_for_items = fast.calls_for_items
        self.backend = backend
        self.prefetcher = prefetcher
        self._log_exact = store.has_keyword_log(self.keyword) or (
            self.match_codes.size == 0 and self.extra_pids.size == 0
        )
        """When True, absence from the keyword's first-mention columns
        proves the user has no matching post anywhere — the capped-window
        gather can be skipped for never-mentioners.  Only an unregistered
        needle that still matches multi-keyword posts breaks the
        implication; those (never produced by the builders) gather
        unconditionally."""
        cap = fast.timeline_cap
        self._capped_calls = (
            0 if cap is None else fast.calls_for_items(cap, fast.timeline_page)
        )
        self._cache_metrics = fast.cache.obs.metrics

    # ------------------------------------------------------------------
    # first mentions (fused batch classification, stage 1)
    # ------------------------------------------------------------------
    def _count_cache(self, outcome: str) -> None:
        metrics = self._cache_metrics
        if metrics is not None:
            metrics.counter("cache." + outcome).inc()

    def _capped_first_mention(self, user_id: int, mentioned: bool) -> Optional[float]:
        """Observable twin of ``FastPathOps._slow_first_mention`` for a
        capped timeline: same detour counter, same cache hit/miss
        counters, same charge (``cap`` surviving rows ⇒ the same call
        count), but the answer is read from the capped row window of the
        columns instead of materialising the timeline.  A prepaid user
        stays prepaid (the slow path would materialise the view; every
        later operation behaves identically either way).  The caller
        holds the caching client's lock.
        """
        self.fast.note_slow_detour()
        cache = self.cache
        view = cache._timelines.get(user_id)
        if view is not None:
            cache.hits += 1
            self._count_cache("hits")
            return view.first_mention_time(self.keyword)
        if user_id in cache._prepaid_timelines:
            cache.hits += 1
            self._count_cache("hits")
        else:
            cache.misses += 1
            self._count_cache("misses")
            self.sim.charge_timeline(user_id, self._capped_calls)
            cache._prepaid_timelines.add(user_id)
        if self._log_exact and not mentioned:
            return None
        return first_mention_from_columns(
            self.store, self.match_codes, self.extra_pids, user_id, self.timeline_cap
        )

    def resolve_mentions(self, user_ids: Sequence[int],
                         memo: Dict[int, Optional[float]]) -> None:
        """Batched first-mention resolution into *memo*.

        The batch twin of ``FastPathOps.first_mentions_into``: reads
        (lengths, membership, times) resolve vectorised; effects (cache
        counters, charges, memo writes) replay per user in input order
        under one lock hold, so a mid-batch ``BudgetExhaustedError``
        leaves exactly the slow-path prefix state.  Capped users resolve
        through :meth:`_capped_first_mention` instead of the slow
        materialising detour.
        """
        missing = [u for u in user_ids if u not in memo]
        if not missing:
            return
        fast = self.fast
        store = self.store
        if len(missing) == 1:
            # Scalar twin of the batch below (walk steps mostly miss one
            # user at a time): same reads, same charge/counter order,
            # no array construction.
            user_id = missing[0]
            try:
                length = store.timeline_length(user_id)
            except PlatformError:
                fast.first_mention_into(user_id, memo)
                return
            kw_users = fast.kw_users
            pos = int(np.searchsorted(kw_users, user_id))
            is_mentioned = bool(pos < kw_users.size and kw_users[pos] == user_id)
            cap = self.timeline_cap
            if cap is not None and length > cap:
                if self.prefetcher is not None:
                    self.prefetcher.prefetch_users([user_id], cap)
                cache = self.cache
                with cache._lock:
                    memo[user_id] = self._capped_first_mention(user_id, is_mentioned)
                return
            cache = self.cache
            with cache._lock:
                if user_id in cache._timelines or user_id in cache._prepaid_timelines:
                    cache.hits += 1
                    self._count_cache("hits")
                else:
                    cache.misses += 1
                    self._count_cache("misses")
                    self.sim.charge_timeline(
                        user_id, self.calls_for_items(length, self.timeline_page)
                    )
                    cache._prepaid_timelines.add(user_id)
                memo[user_id] = float(fast.kw_times[pos]) if is_mentioned else None
            return
        arr = np.asarray(missing, dtype=np.int64)
        try:
            lengths = store.timeline_lengths(arr)
        except PlatformError:
            # Unknown user in the batch: degrade to scalar resolution so
            # the caller sees the exact slow-path APIError.
            for user_id in missing:
                fast.first_mention_into(user_id, memo)
            return
        kw_users = fast.kw_users
        if kw_users.size:
            pos = np.minimum(np.searchsorted(kw_users, arr), kw_users.size - 1)
            mentioned = kw_users[pos] == arr
            times = fast.kw_times[pos]
        else:
            mentioned = np.zeros(arr.size, dtype=bool)
            times = np.zeros(arr.size, dtype=np.float64)
        cap = self.timeline_cap
        page = self.timeline_page
        calls_for_items = self.calls_for_items
        cache = self.cache
        sim = self.sim
        lengths_list = lengths.tolist()
        mentioned_list = mentioned.tolist()
        times_list = times.tolist()
        if cap is not None and self.prefetcher is not None:
            over = arr[lengths > cap]
            if over.size:
                self.prefetcher.prefetch_users(over.tolist(), cap)
        with cache._lock:
            timelines = cache._timelines
            prepaid = cache._prepaid_timelines
            for i, user_id in enumerate(missing):
                length = lengths_list[i]
                if cap is not None and length > cap:
                    memo[user_id] = self._capped_first_mention(
                        user_id, mentioned_list[i]
                    )
                    continue
                # Inlined CachingClient.prepay_timeline (same counters,
                # same charge order) minus the per-user lock round-trip.
                if user_id in timelines or user_id in prepaid:
                    cache.hits += 1
                    self._count_cache("hits")
                else:
                    cache.misses += 1
                    self._count_cache("misses")
                    sim.charge_timeline(user_id, calls_for_items(length, page))
                    prepaid.add(user_id)
                memo[user_id] = times_list[i] if mentioned_list[i] else None

    # ------------------------------------------------------------------
    # fused neighborhood classification (stage 2)
    # ------------------------------------------------------------------
    def classify(self, oracle, user_id: int) -> None:
        """Fused twin of ``LevelByLevelOracle._classify`` for oracles with
        no intra-level edge retention: batch first-mention resolution,
        one ``levels_of_array`` call, and the up/down split as boolean
        masks.  Same memo writes, same telemetry, same epoch bump.
        """
        own_level = oracle.level_of(user_id)
        if own_level is None:
            oracle._cache[user_id] = []
            oracle._up[user_id] = []
            oracle._down[user_id] = []
            self._dp_state_for(oracle).note_classified(user_id, None, (), ())
            oracle._note_classified(user_id, None, 0, 0)
            oracle.classify_epoch += 1
            return
        context = self.context
        neighbors = context.connections(user_id)
        memo = context._first_mentions
        self.resolve_mentions(neighbors, memo)
        if len(neighbors) <= _SCALAR_CLASSIFY_MAX:
            # Small neighborhoods (the common walk-step case) classify
            # scalar: ``index.level_of`` is element-wise identical to
            # ``levels_of_array`` (same float64 ops — pinned by the
            # kernels property tier), and the python loop beats four
            # array round-trips below ~a few dozen elements.
            level_of = oracle.index.level_of
            levels_memo = oracle._levels
            cache_list: List[int] = []
            up_list: List[int] = []
            down_list: List[int] = []
            for v in neighbors:
                m = memo[v]
                if m is None:
                    levels_memo[v] = None
                    continue
                lv_v = level_of(m)
                levels_memo[v] = lv_v
                if lv_v == own_level:
                    continue
                cache_list.append(v)
                if lv_v < own_level:
                    up_list.append(v)
                else:
                    down_list.append(v)
            oracle._cache[user_id] = cache_list
            oracle._up[user_id] = up_list
            oracle._down[user_id] = down_list
            self._dp_state_for(oracle).note_classified(
                user_id, own_level, up_list, down_list
            )
            oracle._note_classified(user_id, own_level, len(up_list), len(down_list))
            oracle.classify_epoch += 1
            return
        times_list: List[float] = []
        unknown_idx: List[int] = []
        append = times_list.append
        for i, v in enumerate(neighbors):
            m = memo[v]
            if m is None:
                unknown_idx.append(i)
                append(0.0)
            else:
                append(m)
        times = np.asarray(times_list, dtype=np.float64)
        lv = oracle.index.levels_of_array(times)
        # Box levels to python ints before they can reach the level memo
        # (and from there trace events / JSON export): a leaked np.int64
        # would change — or crash — the serialised bytes.
        lv_list = lv.tolist()
        if unknown_idx:
            for i in unknown_idx:
                lv_list[i] = None
        oracle._levels.update(zip(neighbors, lv_list))
        neigh = np.asarray(neighbors, dtype=np.int64)
        elig = lv != own_level
        if unknown_idx:
            known = np.ones(len(neighbors), dtype=bool)
            known[unknown_idx] = False
            elig &= known
        up = neigh[elig & (lv < own_level)].tolist()
        down = neigh[elig & (lv > own_level)].tolist()
        oracle._cache[user_id] = neigh[elig].tolist()
        oracle._up[user_id] = up
        oracle._down[user_id] = down
        self._dp_state_for(oracle).note_classified(user_id, own_level, up, down)
        oracle._note_classified(user_id, own_level, len(up), len(down))
        oracle.classify_epoch += 1

    # ------------------------------------------------------------------
    # columnar condition views
    # ------------------------------------------------------------------
    def build_view(self, user_id: int):
        """Assemble a :class:`UserView` without materialising the full
        timeline, or return None to send the caller down the slow path.

        A cached timeline serves exactly as before; a *prepaid* user —
        the common case after kernel classification — gets its matching
        posts gathered from the columns (only matching rows materialise)
        and stays prepaid.  Anyone else (never classified, e.g. after a
        budget abort) returns None: the slow path charges and counts for
        them exactly as without the kernel.
        """
        from repro.core.query import UserView

        try:
            view = self.cache.note_timeline_hit(user_id)
        except KeyError:
            return None
        if view is not None:
            matching = self.query.filter_matching_posts(view.posts)
            profile = view.profile
        else:
            matching = self._matching_posts(user_id)
            profile = self.sim.profile_view(user_id)
        return UserView(
            user_id=user_id,
            display_name=profile.display_name,
            followers=profile.followers,
            gender=profile.gender,
            age=profile.age,
            matching_posts=matching,
        )

    def _matching_posts(self, user_id: int):
        """Columnar ``query.filter_matching_posts`` over the capped window."""
        store = self.store
        rows = store.timeline_rows(user_id)
        cap = self.timeline_cap
        if cap is not None and rows.shape[0] > cap:
            rows = rows[-cap:]
        mask = match_mask(store, rows, self.match_codes, self.extra_pids)
        if self.window is not None:
            lo, hi = self.window
            times = store.post_time[rows]
            mask &= (times >= lo) & (times < hi)
        hits = rows[mask]
        if hits.size == 0:
            return ()
        return store.materialize_rows(hits)

    def prefetch_views(self, nodes: Sequence[int]) -> None:
        """Advise the timeline pages of upcoming condition checks (mmap
        plane only; a no-op otherwise)."""
        prefetcher = self.prefetcher
        if prefetcher is None:
            return
        views = self.context._views
        todo = [u for u in nodes if u not in views]
        if todo:
            prefetcher.prefetch_users(todo, self.timeline_cap)

    # ------------------------------------------------------------------
    # the Eq. 6 DP recursion over flat arrays
    # ------------------------------------------------------------------
    @staticmethod
    def _dp_state_for(oracle) -> _DPGraphState:
        state = getattr(oracle, "_dp_state", None)
        if state is None:
            state = _DPGraphState()
            oracle._dp_state = state
        return state

    def dp_tables(self, oracle, seed_set, seed_count: int):
        """Both Eq. 6 tables for the oracle's classified subgraph.

        Fast path: the incremental CSR the classify hook maintains
        (:class:`_DPGraphState`) — per call, only the valid-edge filter,
        level argsorts and seed vector are recomputed (all vectorised and
        cached per node count), then the backend passes run.  When the
        state does not cover every classified node (interpreted
        classifications, e.g. intra-edge retention, or a foreign oracle),
        the full flatten below rebuilds from the oracle's dicts — exactly
        the interpreted recursion's inputs either way.  Stable level
        argsort reproduces the interpreted ``sorted`` tie-breaking over
        insertion order; row order inside the CSR is the neighbor-list
        order, so every addition happens on the same values in the same
        sequence and the tables are bit-identical by construction.
        """
        state = getattr(oracle, "_dp_state", None)
        cache_dict = getattr(oracle, "_cache", None)
        if (
            state is not None
            and cache_dict is not None
            and state.total_classified == len(cache_dict)
        ):
            return self._dp_tables_incremental(state, seed_set, seed_count)
        return self._dp_tables_full(oracle, seed_set, seed_count)

    def _dp_tables_incremental(self, state: _DPGraphState, seed_set, seed_count: int):
        n = len(state.ids)
        if n == 0:
            return {}, {}
        if state.cached_n != n:
            levels_arr = np.asarray(state.levels, dtype=np.int64)
            state.order_up = np.argsort(-levels_arr, kind="stable").tolist()
            state.order_down = np.argsort(levels_arr, kind="stable").tolist()
            state.cached_n = n
        start_list = state.start_list
        if state.start_key is not seed_set:
            sv = 1.0 / seed_count if seed_count else 0.0
            state.start_list = start_list = [
                sv if u in seed_set else 0.0 for u in state.ids
            ]
            state.start_key = seed_set
        elif len(start_list) < n:
            # Same seed set, new rows since the last evaluation: extend.
            sv = 1.0 / seed_count if seed_count else 0.0
            for u in state.ids[len(start_list):]:
                start_list.append(sv if u in seed_set else 0.0)
        if self.backend == "numba" and numba_available():
            d_indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum([len(r) for r in state.d_rows], out=d_indptr[1:])
            u_indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum([len(r) for r in state.u_rows], out=u_indptr[1:])
            d_indices = np.asarray(
                [j for row in state.d_rows for j in row], dtype=np.int64
            )
            u_indices = np.asarray(
                [j for row in state.u_rows for j in row], dtype=np.int64
            )
            p_up_arr = np.zeros(n, dtype=np.float64)
            p_down_arr = np.zeros(n, dtype=np.float64)
            _njit_dp()(
                np.asarray(state.order_up, dtype=np.int64),
                np.asarray(state.order_down, dtype=np.int64),
                np.asarray(start_list, dtype=np.float64),
                d_indptr, d_indices,
                np.asarray(state.up_counts, dtype=np.float64),
                u_indptr, u_indices,
                np.asarray(state.down_counts, dtype=np.float64),
                p_up_arr, p_down_arr,
            )
            p_up_list = p_up_arr.tolist()
            p_down_list = p_down_arr.tolist()
        else:
            p_up_list, p_down_list = _dp_passes_rows(
                state.order_up, state.order_down, start_list,
                state.d_rows, state.up_counts,
                state.u_rows, state.down_counts,
            )
        # zip stops at the value count, so the (shared, still-growing)
        # ids list reads as a snapshot of the first n rows.
        return (
            dict(zip(state.ids, p_up_list)),
            dict(zip(state.ids, p_down_list)),
        )

    def _dp_tables_full(self, oracle, seed_set, seed_count: int):
        nodes = [u for u in oracle.classified_nodes()
                 if oracle.level_of(u) is not None]
        n = len(nodes)
        if n == 0:
            return {}, {}
        idx = {u: i for i, u in enumerate(nodes)}
        levels = np.empty(n, dtype=np.int64)
        start = np.empty(n, dtype=np.float64)
        up_counts = np.empty(n, dtype=np.int64)
        down_counts = np.empty(n, dtype=np.int64)
        d_indptr = np.empty(n + 1, dtype=np.int64)
        u_indptr = np.empty(n + 1, dtype=np.int64)
        d_indptr[0] = 0
        u_indptr[0] = 0
        d_idx: List[int] = []
        u_idx: List[int] = []
        sv = 1.0 / seed_count if seed_count else 0.0
        level_of = oracle.level_of
        up_map = oracle._up
        down_map = oracle._down
        get = idx.get
        for i, u in enumerate(nodes):
            levels[i] = level_of(u)
            start[i] = sv if u in seed_set else 0.0
            ups = up_map[u]
            downs = down_map[u]
            up_counts[i] = len(ups)
            down_counts[i] = len(downs)
            for v in downs:
                j = get(v)
                if j is not None:
                    d_idx.append(j)
            d_indptr[i + 1] = len(d_idx)
            for v in ups:
                j = get(v)
                if j is not None:
                    u_idx.append(j)
            u_indptr[i + 1] = len(u_idx)
        order_up = np.argsort(-levels, kind="stable")
        order_down = np.argsort(levels, kind="stable")
        if self.backend == "numba" and numba_available():
            d_indices = np.asarray(d_idx, dtype=np.int64)
            u_indices = np.asarray(u_idx, dtype=np.int64)
            p_up_arr = np.zeros(n, dtype=np.float64)
            p_down_arr = np.zeros(n, dtype=np.float64)
            _njit_dp()(
                order_up, order_down, start,
                d_indptr, d_indices, up_counts.astype(np.float64),
                u_indptr, u_indices, down_counts.astype(np.float64),
                p_up_arr, p_down_arr,
            )
            p_up_list = p_up_arr.tolist()
            p_down_list = p_down_arr.tolist()
        else:
            p_up_list, p_down_list = _dp_passes_python(
                order_up.tolist(), order_down.tolist(), start.tolist(),
                d_indptr.tolist(), d_idx, up_counts.tolist(),
                u_indptr.tolist(), u_idx, down_counts.tolist(),
            )
        return dict(zip(nodes, p_up_list)), dict(zip(nodes, p_down_list))


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------
def resolve_kernel(context, obs: Optional[Observability] = None) -> Optional[KernelOps]:
    """Resolve *context* to kernel ops, or None for the interpreted path.

    Emits ``kernel.resolved`` / ``kernel.backend{backend}`` /
    ``kernel.fallback{reason}`` counters when a metrics registry is
    attached, so CI's perf-smoke guard can fail a run whose stack
    silently stopped resolving (mirrors :func:`resolve_fast_path`).
    """
    obs = obs if obs is not None else NULL_OBS
    metrics = obs.metrics

    def fallback(reason: str) -> None:
        if metrics is not None:
            metrics.counter("kernel.fallback", reason=reason).inc()

    if not kernel_enabled():
        fallback("disabled")
        return None
    if not getattr(context, "kernel_eligible", True):
        # Context subclasses that reinterpret the first-mention family
        # (e.g. Walk-Not-Wait's bounded probes) opt out: the kernel's
        # column reads would answer membership with full-fetch semantics
        # and silently bypass their overrides.
        fallback("ineligible-context")
        return None
    fast = getattr(context, "fast", None)
    if fast is None:
        fallback("no-fastpath")
        return None
    store = fast.store
    for column in (
        store.post_user, store.post_time, store.post_id, store.post_keyword,
        fast.kw_users, fast.kw_times,
        store._sorted_user_ids, store._tl_order, store._tl_indptr,
    ):
        arr = np.asarray(column)
        if (
            arr.ndim != 1
            or not arr.flags.c_contiguous
            or arr.dtype not in _COLUMN_DTYPES
        ):
            fallback("non-contiguous")
            return None
    backend = "numba" if numba_available() else "numpy"
    if metrics is not None:
        metrics.counter("kernel.resolved").inc()
        metrics.counter("kernel.backend", backend=backend).inc()
    prefetcher = None
    if getattr(store, "storage", "ram") == "mmap":
        prefetcher = PagePrefetcher(store, [store.post_keyword, store.post_time])
    return KernelOps(context, fast, backend=backend, prefetcher=prefetcher)


__all__: List[str] = [
    "KernelOps",
    "PagePrefetcher",
    "first_mention_from_columns",
    "kernel_enabled",
    "match_mask",
    "numba_available",
    "resolve_kernel",
    "set_kernel_enabled",
]
