"""Walk, Not Wait: partial-page timeline probes for membership (arXiv:1410.7833).

*Walk, Not Wait: Faster Sampling Over Online Social Networks* (same
authors as the source paper) attacks the dominant cost of subgraph walks:
deciding whether a neighbor *belongs* to the walked subgraph requires
fetching its timeline, and a full fetch of a prolific user costs
``ceil(posts / page_size)`` calls just to answer a yes/no question.  The
insight is that membership is usually decidable from a **bounded probe**
— a couple of pages — so the walk should keep walking instead of waiting
out full fetches.

The adaptation here (the simulator charges per page, like the real API):

* Membership / first-mention questions are answered by reading only the
  ``probe_pages`` **oldest** pages of the timeline, charged at the paged
  rate.  Timelines are served oldest-first, so a mention found inside the
  probe window *is* the first mention — exact, at probe price.
* A probe that reads the entire (visible) timeline without a mention is
  also definitive: the user is not a member.
* A probe that runs out of window with no mention is **unresolved**: the
  user is treated as a non-member for this run.  This is the walker's
  documented bias — late adopters whose first mention lies beyond the
  probe window are invisible to it, so estimates skew toward early/light
  posters (§5 of the paper discusses the analogous truncation error).
  Raising ``probe_pages`` trades cost for bias.
* Members the aggregate actually needs values from escalate to a full
  fetch through the ordinary layered client (cache, resilience, fault
  injection all apply) — probes only short-circuit the *negative* and
  *membership-only* answers, which dominate a walk's spend.

Probes consume no walker RNG and are charged at the simulator's meter
below the fault-injection layer (fault draws are keyed per request, not
sequential), so worker-count invariance and fault bit-identity hold
exactly as for the other walkers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, List, Optional, Sequence, Set

from repro._rng import RandomLike

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.parallel.engine import ParallelConfig
from repro.api.client import SimulatedMicroblogClient
from repro.api.interface import MicroblogAPI
from repro.core.graph_builder import QueryContext, rebuild_oracle
from repro.core.query import AggregateQuery
from repro.core.srw import MASRWEstimator, SRWConfig
from repro.errors import EstimationError
from repro.obs import Observability


@dataclass(frozen=True)
class WNWConfig(SRWConfig):
    """Knobs for the Walk-Not-Wait SRW (extends :class:`SRWConfig`)."""

    probe_pages: int = 2
    """Timeline pages read (and charged) per membership probe.  More
    pages resolve more users exactly (less truncation bias) at a higher
    per-probe cost; the paper's regime is a small constant."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.probe_pages < 1:
            raise EstimationError("probe_pages must be >= 1")


class ProbingContext(QueryContext):
    """A :class:`QueryContext` whose membership answers come from probes.

    Only the first-mention family is overridden; connections and seeds
    keep the inherited (fast-path-aware) behavior.  Every probe outcome
    is memoised, so a user is probed at most once per run; users whose
    full timeline is already cached are answered through the ordinary
    path at zero cost.
    """

    kernel_eligible = False
    """The compiled kernel resolves membership from full-timeline
    columns — exactly the semantics probes exist to avoid — so this
    context always takes the interpreted path (its parent class still
    uses the fast path for connections and seeds)."""

    def __init__(
        self,
        client: MicroblogAPI,
        query: AggregateQuery,
        probe_pages: int = 2,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(client, query, obs=obs)
        self.probe_pages = probe_pages
        self._probe_unknown: Set[int] = set()
        """Users whose probe ran out of window: treated non-member."""
        self.probe_calls = 0
        self.probe_resolved = 0
        self.probe_unresolved = 0
        sim = client
        while sim is not None and not isinstance(sim, SimulatedMicroblogClient):
            sim = getattr(sim, "inner", None)
        self._sim = sim
        """Bottom of the client stack; None means no simulator backing
        (probes degrade to ordinary full fetches)."""

    def first_mention(self, user_id: int) -> Optional[float]:
        memo = self._first_mentions
        if user_id in memo:
            return memo[user_id]
        if user_id in self._probe_unknown:
            return None
        sim = self._sim
        if sim is None:
            return super().first_mention(user_id)
        timelines = getattr(self.client, "_timelines", None)
        if timelines is not None and user_id in timelines:
            # Full timeline already cached (pilot walks, an earlier
            # escalation): the exact answer is free — don't pay a probe.
            return super().first_mention(user_id)
        posts, _truncated = sim._timeline_posts(user_id)
        profile = sim.platform.profile
        window = posts[: self.probe_pages * profile.timeline_page_size]
        calls = profile.calls_for_items(len(window), profile.timeline_page_size)
        # Charged below the fault-injection layer: a probe is a paged
        # read of data the simulator already holds, so it consumes no
        # fault draws and cannot perturb fault bit-identity.
        sim.charge_timeline(user_id, calls)
        self.probe_calls += calls
        needle = self.query.keyword.lower()
        for post in window:
            # Oldest-first: the first hit in the window is the global
            # first (visible) mention, exactly as a full fetch reports.
            if needle in post.keywords:
                memo[user_id] = post.timestamp
                self.probe_resolved += 1
                return post.timestamp
        if len(window) == len(posts):
            memo[user_id] = None  # whole visible timeline read: definitive
            self.probe_resolved += 1
            return None
        self.probe_unresolved += 1
        self._probe_unknown.add(user_id)
        return None

    def first_mentions(self, user_ids: Sequence[int]) -> List[Optional[float]]:
        # No batch fast path: each user resolves through its own probe.
        return [self.first_mention(u) for u in user_ids]

    def condition_matches(self, user_id: int) -> bool:
        if self.first_mention(user_id) is None:
            return False  # non-member (or unresolved probe): no escalation
        return super().condition_matches(user_id)

    def f_value(self, user_id: int) -> float:
        if self.first_mention(user_id) is None:
            return 0.0
        return super().f_value(user_id)


class WNWEstimator(MASRWEstimator):
    """Walk-Not-Wait SRW: partial-page timeline probes replace blocking full fetches (arXiv:1410.7833).

    Subclasses MA-SRW; the walk itself is unchanged, but its context is
    swapped for a :class:`ProbingContext` (and the oracle rebound to it),
    so every membership classification the oracle performs goes through
    bounded probes instead of full timeline fetches.
    """

    algorithm: ClassVar[str] = "wnw"
    parallel_kind: ClassVar[Optional[str]] = "samples"
    obs_prefix: ClassVar[str] = "wnw"
    config_cls: ClassVar[type] = WNWConfig

    def __init__(
        self,
        context: QueryContext,
        oracle,
        config: Optional[WNWConfig] = None,
        seed: RandomLike = None,
        parallel: Optional["ParallelConfig"] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(context, oracle, config, seed=seed, parallel=parallel, obs=obs)
        if isinstance(context, QueryContext) and not isinstance(context, ProbingContext):
            probing = ProbingContext(
                context.client,
                context.query,
                probe_pages=self.config.probe_pages,
                obs=self.obs,
            )
            self.context = probing
            self.oracle = rebuild_oracle(oracle, probing)
            # Re-sync the walker's kernel binding: the probing context is
            # kernel-ineligible, so direct-stepping shortcuts bound from
            # the original context must be dropped with it.
            self._kernel = probing.kernel

    def _walker_diagnostics(self) -> dict:
        context = self.context
        return {
            "probe_calls": float(getattr(context, "probe_calls", 0)),
            "probe_resolved": float(getattr(context, "probe_resolved", 0)),
            "probe_unresolved": float(getattr(context, "probe_unresolved", 0)),
        }
