"""The common Walker protocol: shared substrate of every estimator.

Every estimation algorithm in the zoo — MA-TARW, MA-SRW, the rewired and
Walk-Not-Wait variants, the frontier sampler, M&R and the crawl baseline —
is a *budgeted walker*: it consumes a :class:`~repro.core.graph_builder.
QueryContext` (memoised API knowledge + cost accounting), steps a neighbor
oracle under a query budget, and assembles an
:class:`~repro.core.results.EstimateResult`.  This module extracts the
machinery those walkers used to duplicate:

* **construction** — context/oracle/config binding, RNG stream creation
  (:func:`repro._rng.ensure_rng`), observability inheritance from the
  context (falling back to the shared :data:`~repro.obs.NULL_OBS`), and
  fast-path cost-meter pre-binding (one attribute read per cost probe
  instead of a delegation chain);
* **parallel dispatch** — :meth:`BaseWalker.estimate` hands walkers whose
  ``parallel_kind`` declares a shard-merge strategy to
  :func:`repro.parallel.walkers.run_parallel_estimate`;
* **fault recovery, stage 1** — :meth:`BaseWalker._oracle_step` retries a
  failed oracle lookup in place without consuming walker RNG, so runs
  whose faults all heal stay bit-identical to fault-free runs;
* **step accounting** — :meth:`BaseWalker._cost` /
  :meth:`BaseWalker._cost_by_kind` read the pre-bound meter;
* **chain state + sample assembly** — :class:`ChainSampleWalker` carries
  the degree-reweighted sample machinery shared by every SRW-family
  walker (chain buffers, Geweke burn-in, thinning, the AVG/COUNT/SUM
  assembly, trace/metric emission, and the ``shard_samples`` partials the
  parallel merge consumes).

The :class:`Walker` protocol is what the registry
(:mod:`repro.core.registry`), the analyzer facade and the parallel engine
program against; anything satisfying it plugs into the whole system —
sharding, fault profiles, observability — unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, List, Optional, Protocol, Tuple, Type

from repro._rng import RandomLike, ensure_rng

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.parallel.engine import ParallelConfig
from repro.core.graph_builder import QueryContext
from repro.core.query import Aggregate
from repro.core.results import EstimateResult, TracePoint
from repro.errors import BudgetExhaustedError, EstimationError, TransientAPIError
from repro.obs import NULL_OBS, Observability
from repro.obs.diagnostics import srw_burn_in_report
from repro.sampling.diagnostics import detect_burn_in
from repro.sampling.estimators import ratio_average
from repro.sampling.mark_recapture import katzir_count


class Walker(Protocol):
    """What the registry, analyzer and parallel engine require of a walker.

    ``algorithm`` is the registry name; ``parallel_kind`` declares the
    shard-merge strategy (``"hh"`` for Hansen–Hurwitz partial sums,
    ``"samples"`` for pooled degree-reweighted samples, None for walkers
    without a parallel driver).  :meth:`estimate` runs the walk to budget
    exhaustion and returns the assembled result.
    """

    algorithm: ClassVar[str]
    parallel_kind: ClassVar[Optional[str]]
    context: QueryContext
    oracle: object
    config: object

    def estimate(self) -> EstimateResult: ...

    def algorithm_id(self) -> str: ...


class BaseWalker:
    """Shared constructor, dispatch, fault recovery and cost probes.

    Subclasses set the class attributes below and implement
    :meth:`_estimate_serial`; everything else — parallel dispatch, the
    in-place step-retry fault hook, meter-bound cost probes — is
    inherited.  The constructor signature is part of the Walker contract:
    the parallel engine rebuilds shard walkers via
    ``type(estimator)(context, oracle, config, seed=...)``.
    """

    algorithm: ClassVar[str] = "?"
    """Registry name (also the default ``algorithm_id`` prefix)."""
    parallel_kind: ClassVar[Optional[str]] = None
    """Shard-merge strategy: ``"hh"``, ``"samples"`` or None."""
    config_cls: ClassVar[Type] = type(None)
    """Constructed with no arguments when ``config`` is not supplied."""

    def __init__(
        self,
        context: QueryContext,
        oracle,
        config=None,
        seed: RandomLike = None,
        parallel: Optional["ParallelConfig"] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.context = context
        self.oracle = oracle
        self.config = config if config is not None else self.config_cls()
        self.rng = ensure_rng(seed)
        self.parallel = parallel
        """When set (and ``parallel_kind`` declares a merge strategy),
        :meth:`estimate` partitions the budget into logical walk shards
        executed by :mod:`repro.parallel` — each shard a full serial run
        of this walker class on its own client and RNG stream — and
        merges the shard partials.  None keeps the classic run."""
        if obs is None:
            obs = getattr(context, "obs", None)
        self.obs = obs if obs is not None else NULL_OBS
        self.fault_step_retries = 0
        self._meter = getattr(getattr(context, "client", None), "meter", None)
        """Pre-bound cost meter (None for stub contexts/clients without
        one), so the per-step cost probe is one attribute read instead
        of a delegation chain."""
        oracle_context = getattr(oracle, "context", None)
        self._kernel = getattr(
            oracle_context if oracle_context is not None else context, "kernel", None
        )
        """The oracle's compiled kernel (:mod:`repro.core.kernels`), or
        None.  Bound from the *oracle's* context — Walk-Not-Wait rebinds
        its oracle to a probing context, and the kernel must describe the
        stack the oracle actually steps.  A resolved kernel implies the
        clean stack, where :class:`TransientAPIError` cannot surface, so
        hot loops may call the oracle directly instead of through the
        :meth:`_oracle_step` retry wrapper — a guaranteed no-op there —
        with ``BudgetExhaustedError`` propagating identically."""

    # ------------------------------------------------------------------
    def algorithm_id(self) -> str:
        """Result label; most walkers tag the oracle they walked over."""
        return f"{self.algorithm}[{self.oracle.name}]"

    def estimate(self) -> EstimateResult:
        """Walk until the budget (or the config's step cap) is exhausted."""
        if self.parallel is not None:
            if self.parallel_kind is None:
                raise EstimationError(
                    f"no parallel driver for {type(self).__name__}"
                )
            from repro.parallel.walkers import run_parallel_estimate

            return run_parallel_estimate(self)
        return self._estimate_serial()

    def _estimate_serial(self) -> EstimateResult:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _oracle_step(self, lookup, node):
        """Walk-level fault recovery, stage 1: retry a step in place.

        *lookup* is an oracle/context accessor.  A transient failure
        (everything below — resilient retries, degraded fallbacks —
        already gave up) re-issues the same lookup up to the config's
        ``step_retries`` times.  No walker RNG is consumed, so recovery
        never perturbs the walk's random stream; past the retries the
        error propagates and the walker's stage-2 recovery (abort the
        instance, reseed the chain) takes over.
        """
        for _ in range(getattr(self.config, "step_retries", 0)):
            try:
                return lookup(node)
            except TransientAPIError:
                self.fault_step_retries += 1
        return lookup(node)

    def _cost(self) -> int:
        meter = self._meter
        if meter is not None:
            return meter.query_total
        return self.context.client.total_cost  # type: ignore[attr-defined]

    def _cost_by_kind(self) -> dict:
        return self.context.client.meter.by_kind()  # type: ignore[attr-defined]


class ChainSampleWalker(BaseWalker):
    """Degree-reweighted chain samplers (the SRW family).

    Carries the state and assembly every SRW-style walker shares: raw
    per-chain ``(node, degree)`` buffers, the Geweke-burn-in + thinning
    sample filter, the AVG / COUNT / SUM estimate assembly over the
    stationary-probability-∝-degree reweighting, restart/excursion
    telemetry, and the ``shard_samples`` partials the parallel merge
    pools.  The default :meth:`_estimate_serial` is the round-robin
    multi-chain loop of MA-SRW; subclasses customise stepping
    (:meth:`_advance`), the recorded degree (:meth:`_sample_degree`),
    burn-in (:meth:`_burn_in_for`) or the whole loop (the frontier
    sampler's degree-proportional scheduling).
    """

    parallel_kind: ClassVar[Optional[str]] = "samples"
    obs_prefix: ClassVar[str] = "walker"
    """Namespace for trace events and metrics (``srw`` keeps MA-SRW's
    telemetry byte-identical to the pre-protocol layout)."""

    def __init__(
        self,
        context: QueryContext,
        oracle,
        config=None,
        seed: RandomLike = None,
        parallel: Optional["ParallelConfig"] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(context, oracle, config, seed=seed, parallel=parallel, obs=obs)
        self._chain_nodes: List[List[int]] = []
        self._chain_degrees: List[List[float]] = []
        self._obs_excursions: List[int] = []
        self.fault_restarts = 0
        self._restarts = 0
        prefix = self.obs_prefix
        # Event/metric names are precomputed: the observe path runs once
        # per step and must not pay per-call string formatting.
        self._ev_seeds = prefix + ".seeds"
        self._ev_step = prefix + ".step"
        self._ev_restart = prefix + ".restart"
        self._ev_chain = prefix + ".chain"
        self._metric_steps = prefix + ".steps"
        self._metric_degree = prefix + ".degree"
        self._metric_restarts = prefix + ".restarts"
        self._metric_excursion = prefix + ".excursion"

    # ------------------------------------------------------------------
    # the default serial loop (round-robin chains, MA-SRW's Algorithm 1)
    # ------------------------------------------------------------------
    def _estimate_serial(self) -> EstimateResult:
        config = self.config
        chain_nodes: List[List[int]] = [[] for _ in range(config.chains)]
        chain_degrees: List[List[float]] = [[] for _ in range(config.chains)]
        self._chain_nodes = chain_nodes
        self._chain_degrees = chain_degrees
        trace: List[TracePoint] = []
        steps = 0
        self._restarts = 0
        last_cost = -1
        stalled_since = 0
        next_trace = config.trace_every
        self._obs_excursions = [0] * config.chains
        try:
            seeds = self._oracle_step(self.context.seeds, config.max_seeds)
            if self.obs.trace is not None:
                self.obs.trace.event(self._ev_seeds, n=len(seeds), chains=config.chains)
            currents = [self.rng.choice(seeds) for _ in range(config.chains)]
            for index, start in enumerate(currents):
                try:
                    self._observe(start, chain_nodes[index], chain_degrees[index], chain=index)
                except TransientAPIError:
                    # The chain starts dark: no sample committed, but the
                    # first step below reseeds it like any faulted step.
                    self.fault_restarts += 1
                    self._note_restart(index, "fault")
            while config.max_steps is None or steps < config.max_steps:
                index = steps % config.chains
                try:
                    self._advance(currents, index, seeds)
                except TransientAPIError:
                    # Walk-level recovery, stage 2: in-place retries were
                    # exhausted, so the chain checkpoints — every committed
                    # (node, degree) pair stays — and restarts from a seed.
                    # Steps still advance, so a permanently dark platform
                    # cannot trap the loop.
                    currents[index] = self.rng.choice(seeds)
                    self.fault_restarts += 1
                    self._note_restart(index, "fault")
                steps += 1
                cost = self._cost()
                if cost == last_cost:
                    stalled_since += 1
                    if stalled_since >= config.stall_steps:
                        break
                    if stalled_since % config.teleport_after == 0:
                        currents[index] = self.rng.choice(seeds)
                        self._restarts += 1
                        self._note_restart(index, "teleport")
                else:
                    last_cost = cost
                    stalled_since = 0
                if steps >= next_trace:
                    # Geometric spacing keeps total estimate-recomputation
                    # work O(chain log chain); each recompute is O(chain).
                    trace.append(
                        TracePoint(cost, self._current_estimate(chain_nodes, chain_degrees))
                    )
                    next_trace = steps + max(config.trace_every, steps // 20)
        except BudgetExhaustedError:
            pass
        except TransientAPIError:
            pass  # platform unrecoverable during seeding: report what we have

        diagnostics = {
            "steps": float(steps),
            "dead_end_restarts": float(self._restarts),
            "chains": float(config.chains),
            "fault_restarts": float(self.fault_restarts),
            "fault_step_retries": float(self.fault_step_retries),
        }
        diagnostics.update(self._walker_diagnostics())
        return self._chain_result(trace, diagnostics)

    def _advance(self, currents: List[int], index: int, seeds: List[int]) -> None:
        """One chain step: move to a uniform neighbor (reseed dead ends)
        and commit the reached node as an observation."""
        if self._kernel is not None:
            neighbors = self.oracle.neighbors(currents[index])
        else:
            neighbors = self._oracle_step(self.oracle.neighbors, currents[index])
        if not neighbors:
            currents[index] = self.rng.choice(seeds)
            self._restarts += 1
            self._note_restart(index, "dead_end")
        else:
            currents[index] = self.rng.choice(neighbors)
        self._observe(
            currents[index], self._chain_nodes[index], self._chain_degrees[index], chain=index
        )

    def _walker_diagnostics(self) -> dict:
        """Extra per-walker diagnostics merged into the result (hook)."""
        return {}

    def _chain_result(self, trace: List[TracePoint], diagnostics: dict) -> EstimateResult:
        """Final estimate + result assembly shared by every chain loop."""
        value = self._current_estimate(self._chain_nodes, self._chain_degrees)
        trace.append(TracePoint(self._cost(), value))
        if self.obs.enabled:
            self._obs_chain_summary(self._chain_degrees, diagnostics)
        return EstimateResult(
            query=self.context.query,
            algorithm=self.algorithm_id(),
            value=value,
            cost_total=self._cost(),
            cost_by_kind=self._cost_by_kind(),
            trace=trace,
            num_samples=sum(len(nodes) for nodes in self._chain_nodes),
            diagnostics=diagnostics,
        )

    # ------------------------------------------------------------------
    # observation + telemetry
    # ------------------------------------------------------------------
    def _sample_degree(self, node: int) -> float:
        """Reweighting degree recorded for a visited node (hook: the
        rewired walker adds its virtual edges here)."""
        if self._kernel is not None:
            return float(self.oracle.degree(node))
        return float(self._oracle_step(self.oracle.degree, node))

    def _observe(
        self, node: int, nodes: List[int], degrees: List[float], chain: int = 0
    ) -> None:
        # Fetch the degree before appending anything: the lookup can raise
        # BudgetExhaustedError, and a half-appended observation would
        # desynchronise the two series.
        degree = self._sample_degree(node)
        nodes.append(node)
        degrees.append(degree)
        obs = self.obs
        if obs.enabled:
            self._obs_excursions[chain] += 1
            if obs.metrics is not None:
                obs.metrics.counter(self._metric_steps).inc()
                obs.metrics.histogram(self._metric_degree).observe(degree)
            if obs.trace is not None:
                obs.trace.event(self._ev_step, chain=chain, node=node, degree=int(degree))

    def _note_restart(self, chain: int, reason: str) -> None:
        obs = self.obs
        if obs.enabled:
            if obs.metrics is not None:
                obs.metrics.counter(self._metric_restarts, reason=reason).inc()
                obs.metrics.histogram(self._metric_excursion).observe(
                    self._obs_excursions[chain]
                )
            if obs.trace is not None:
                obs.trace.event(self._ev_restart, chain=chain, reason=reason)
            self._obs_excursions[chain] = 0

    def _obs_chain_summary(self, chain_degrees: List[List[float]], diagnostics) -> None:
        """Burn-in adequacy telemetry: per-chain trace events plus pooled
        ``obs_burn_in_*`` diagnostics.  Pure post-processing of committed
        degree series — no API calls, no RNG draws."""
        config = self.config
        if self.obs.trace is not None:
            for index, degrees in enumerate(chain_degrees):
                burn_in = None
                if len(degrees) >= 4:
                    burn_in = self._burn_in_for(degrees)
                self.obs.trace.event(
                    self._ev_chain, chain=index, len=len(degrees), burn_in=burn_in
                )
        report = srw_burn_in_report(
            chain_degrees,
            threshold=config.geweke_threshold,
            min_burn_in=config.min_burn_in,
        )
        for key, value in report.items():
            diagnostics[f"obs_burn_in_{key}"] = value

    # ------------------------------------------------------------------
    # sample filtering and estimate assembly
    # ------------------------------------------------------------------
    def _burn_in_for(self, degrees: List[float]) -> int:
        """Samples discarded from the head of one chain (hook: walkers
        whose start distribution needs no mixing return a constant)."""
        config = self.config
        # Coarsen the scan step with chain length so repeated trace-time
        # calls stay O(chain) rather than O(chain^2).
        scan_step = max(10, len(degrees) // 20)
        burn_in = detect_burn_in(degrees, threshold=config.geweke_threshold, step=scan_step)
        if burn_in is None:
            # Geweke never crossed the threshold.  On multi-component
            # subgraphs the teleporting chain is a mixture whose segments
            # legitimately differ, so a hard "no usable samples" would
            # starve the estimator forever; fall back to discarding the
            # first quarter, the usual fixed-fraction heuristic.
            burn_in = len(degrees) // 4
        return max(burn_in, config.min_burn_in)

    def _usable_samples(self, nodes: List[int], degrees: List[float]):
        """Apply burn-in and thinning to the raw chain."""
        config = self.config
        burn_in = self._burn_in_for(degrees)
        kept_nodes: List[int] = []
        kept_degrees: List[int] = []
        for offset in range(burn_in, len(nodes), config.thinning):
            if degrees[offset] <= 0:
                continue  # isolated node (seed restart target) cannot be reweighted
            kept_nodes.append(nodes[offset])
            kept_degrees.append(int(degrees[offset]))
        return kept_nodes, kept_degrees

    def _current_estimate(
        self, chain_nodes: List[List[int]], chain_degrees: List[List[float]]
    ) -> Optional[float]:
        kept_nodes: List[int] = []
        kept_degrees: List[int] = []
        for nodes, degrees in zip(chain_nodes, chain_degrees):
            if len(nodes) < 4:
                continue
            chain_kept_nodes, chain_kept_degrees = self._usable_samples(nodes, degrees)
            kept_nodes.extend(chain_kept_nodes)
            kept_degrees.extend(chain_kept_degrees)
        if len(kept_nodes) < 2:
            return None
        if self._kernel is not None:
            # mmap plane: batch-advise the timeline pages the condition
            # checks below are about to gather (no-op elsewhere).
            self._kernel.prefetch_views(kept_nodes)
        query = self.context.query
        try:
            if query.aggregate is Aggregate.AVG:
                return self._avg_estimate(kept_nodes, kept_degrees)
            count = self._count_estimate(kept_nodes, kept_degrees)
            if query.aggregate is Aggregate.COUNT:
                return count
            return count * self._avg_estimate(kept_nodes, kept_degrees)
        except EstimationError:
            return None

    # ------------------------------------------------------------------
    # partial samples for cross-walker merging (repro.parallel)
    # ------------------------------------------------------------------
    def shard_samples(self) -> List[Tuple[int, int, Optional[bool], float]]:
        """Post-burn-in, thinned samples of this walker's run, evaluated.

        Called after :meth:`estimate` by the parallel engine.  Each tuple
        is ``(node, subgraph_degree, condition_matches, f_value)`` with
        ``condition_matches`` None when the walker's budget died before
        the sample could be evaluated (the merge skips those, exactly as
        the serial estimator does).  Evaluation reuses the walker's own
        response cache, so extracting the samples costs no further API
        calls beyond what the final in-run estimate already paid.
        """
        samples: List[Tuple[int, int, Optional[bool], float]] = []
        for nodes, degrees in zip(self._chain_nodes, self._chain_degrees):
            if len(nodes) < 4:
                continue
            kept_nodes, kept_degrees = self._usable_samples(nodes, degrees)
            for node, degree in zip(kept_nodes, kept_degrees):
                matches = self._safe_matches(node)
                f_value = self.context.f_value(node) if matches else 0.0
                samples.append((node, degree, matches, f_value))
        return samples

    def _safe_matches(self, node: int) -> Optional[bool]:
        """Condition check that tolerates a just-exhausted budget.

        Evaluating a sample costs a timeline fetch (a real, counted cost);
        once the budget is gone, unaffordable samples are skipped rather
        than aborting the whole estimate — they are a random suffix of the
        chain, so dropping them loses information, not unbiasedness.
        """
        try:
            return self.context.condition_matches(node)
        except (BudgetExhaustedError, TransientAPIError):
            return None

    def _avg_estimate(self, nodes: List[int], degrees: List[int]) -> float:
        values: List[float] = []
        matching_degrees: List[int] = []
        for node, degree in zip(nodes, degrees):
            matches = self._safe_matches(node)
            if matches:
                values.append(self.context.f_value(node))
                matching_degrees.append(degree)
        return ratio_average(values, matching_degrees)

    def _count_estimate(self, nodes: List[int], degrees: List[int]) -> float:
        population = katzir_count(nodes, degrees).population
        indicator: List[float] = []
        affordable_degrees: List[int] = []
        for node, degree in zip(nodes, degrees):
            matches = self._safe_matches(node)
            if matches is None:
                continue
            indicator.append(1.0 if matches else 0.0)
            affordable_degrees.append(degree)
        fraction = ratio_average(indicator, affordable_degrees)
        return population * fraction
