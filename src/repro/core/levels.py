"""Level assignment and the edge taxonomy of §4.2.1.

Users in the term-induced subgraph are bucketed by the time they *first*
qualified for the keyword predicate (first posted the keyword), using a
bucket width ``T``.  Buckets drawn top-to-bottom in chronological order
classify every edge as:

* **intra-level** — both endpoints in the same bucket (detrimental to
  sampling: they knit the tight communities that trap walks);
* **adjacent-level** — endpoints in consecutive buckets (beneficial);
* **cross-level** — endpoints in non-adjacent, unequal buckets (beneficial
  but rare, ~1–3% in Table 2).

:class:`LevelIndex` maps first-mention times to level numbers.  Levels are
numbered so **smaller = earlier = nearer the top**; the topology-aware
walk of §5 moves from the bottom (most recent, search-API-reachable)
toward the top, then back down.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.errors import QueryError
from repro.graph.social_graph import SocialGraph
from repro.platform.clock import DAY


class EdgeKind(enum.Enum):
    INTRA = "intra"
    ADJACENT = "adjacent"
    CROSS = "cross"


@dataclass(frozen=True)
class LevelIndex:
    """Buckets first-mention timestamps into levels of width ``interval``.

    ``origin`` anchors bucket boundaries (typically the start of the
    ground-truth window); any real timestamp maps to some level, so the
    index never rejects a user for being early or late.
    """

    interval: float
    origin: float = 0.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise QueryError("level interval must be positive")

    def level_of(self, first_mention_time: float) -> int:
        return math.floor((first_mention_time - self.origin) / self.interval)

    def levels_of_array(self, times: "np.ndarray") -> "np.ndarray":
        """Vectorised :meth:`level_of` over a float64 array.

        ``np.floor`` on the float64 quotient performs the same IEEE-754
        division and floor as ``math.floor`` on a python float, so the
        result is element-wise identical to scalar calls (pinned by a
        property test) — the batch classifier depends on that.
        """
        import numpy as np

        # copy=False: the quotient is a fresh float64 array, so the int64
        # conversion never aliases caller memory — and when a caller ever
        # hands an already-int64 array through, the hot path skips the
        # defensive copy it used to pay per classification batch.
        return np.floor((times - self.origin) / self.interval).astype(np.int64, copy=False)

    def classify(self, level_u: int, level_v: int) -> EdgeKind:
        gap = abs(level_u - level_v)
        if gap == 0:
            return EdgeKind.INTRA
        if gap == 1:
            return EdgeKind.ADJACENT
        return EdgeKind.CROSS


def classify_edge(index: "AnyLevelIndex", time_u: float, time_v: float) -> EdgeKind:
    """Taxonomy of the edge between users first-mentioning at the given times."""
    return index.classify(index.level_of(time_u), index.level_of(time_v))


@dataclass(frozen=True)
class QuantileLevelIndex:
    """Variable-width levels: one bucket per adoption-count quantile.

    §4.2.3 observes that "the average number of 'pick ups' tends to
    decline over time — indicating that the time interval should be
    dynamically changed throughout the duration of propagation".  A
    quantile index realises that: bucket boundaries are placed so each
    level holds roughly the same number of adopters — narrow buckets
    through the bursts, wide buckets through the quiet months — instead
    of a fixed width ``T``.

    ``boundaries`` are the sorted interior cut points; level ``i`` is
    ``[boundaries[i-1], boundaries[i])`` with open ends at both extremes,
    so every timestamp maps to some level (as with :class:`LevelIndex`).
    """

    boundaries: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.boundaries:
            raise QueryError("need at least one boundary (two levels)")
        if list(self.boundaries) != sorted(set(self.boundaries)):
            raise QueryError("boundaries must be strictly increasing")

    @classmethod
    def from_times(cls, times: "Iterable[float]", levels: int) -> "QuantileLevelIndex":
        """Boundaries at the empirical quantiles of *times*.

        *times* is typically a pilot sample of first-mention timestamps;
        duplicate quantile values (heavy bursts) are collapsed, so the
        realised level count can be lower than requested.
        """
        if levels < 2:
            raise QueryError("need at least two levels")
        ordered = sorted(times)
        if len(ordered) < 2:
            raise QueryError("need at least two observed times")
        if ordered[0] == ordered[-1]:
            raise QueryError("observed times are all identical; no quantile levels")
        boundaries = []
        for cut in range(1, levels):
            index = min(len(ordered) - 1, round(cut * len(ordered) / levels))
            boundaries.append(ordered[index])
        unique = tuple(sorted(set(boundaries)))
        if not unique:
            raise QueryError("observed times are all identical; no quantile levels")
        return cls(boundaries=unique)

    @property
    def num_levels(self) -> int:
        return len(self.boundaries) + 1

    def level_of(self, first_mention_time: float) -> int:
        import bisect

        return bisect.bisect_right(self.boundaries, first_mention_time)

    def levels_of_array(self, times: "np.ndarray") -> "np.ndarray":
        """Vectorised :meth:`level_of`: ``searchsorted(..., side="right")``
        is element-wise identical to ``bisect.bisect_right`` on the same
        float64 values."""
        import numpy as np

        boundaries = np.asarray(self.boundaries, dtype=np.float64)
        # searchsorted already returns the platform default integer —
        # int64 everywhere we run — so copy=False makes the astype a
        # no-op view instead of a per-batch allocation.
        return np.searchsorted(boundaries, times, side="right").astype(np.int64, copy=False)

    def classify(self, level_u: int, level_v: int) -> EdgeKind:
        gap = abs(level_u - level_v)
        if gap == 0:
            return EdgeKind.INTRA
        if gap == 1:
            return EdgeKind.ADJACENT
        return EdgeKind.CROSS


AnyLevelIndex = "LevelIndex | QuantileLevelIndex"


@dataclass
class EdgeTaxonomyStats:
    """Per-graph edge-kind composition — the last column of Table 2."""

    total_edges: int
    intra: int
    adjacent: int
    cross: int

    @property
    def intra_fraction(self) -> float:
        return self.intra / self.total_edges if self.total_edges else 0.0

    @property
    def adjacent_fraction(self) -> float:
        return self.adjacent / self.total_edges if self.total_edges else 0.0

    @property
    def cross_fraction(self) -> float:
        return self.cross / self.total_edges if self.total_edges else 0.0


def edge_taxonomy(
    graph: SocialGraph, first_mentions: Dict[int, float], index: LevelIndex
) -> EdgeTaxonomyStats:
    """Classify every edge of the term-induced *graph*.

    *graph* must already be induced on keyword-matching users;
    *first_mentions* maps each of its nodes to its first-mention time.
    """
    counts = {EdgeKind.INTRA: 0, EdgeKind.ADJACENT: 0, EdgeKind.CROSS: 0}
    total = 0
    for u, v in graph.edges():
        kind = classify_edge(index, first_mentions[u], first_mentions[v])
        counts[kind] += 1
        total += 1
    return EdgeTaxonomyStats(
        total_edges=total,
        intra=counts[EdgeKind.INTRA],
        adjacent=counts[EdgeKind.ADJACENT],
        cross=counts[EdgeKind.CROSS],
    )


def level_by_level_subgraph(
    graph: SocialGraph,
    first_mentions: Dict[int, float],
    index: LevelIndex,
    keep_intra_fraction: float = 0.0,
    seed=None,
) -> SocialGraph:
    """Materialise the level-by-level subgraph of a term-induced *graph*.

    Removes intra-level edges; ``keep_intra_fraction`` retains a random
    fraction of them, which is exactly the Figure 4 experiment ("impact of
    removing 10%–100% of randomly chosen intra-level edges").  The oracles
    in :mod:`repro.core.graph_builder` apply the same rule lazily over the
    API; this eager version serves offline analysis and tests.
    """
    from repro._rng import ensure_rng  # local import to avoid cycles

    if not 0.0 <= keep_intra_fraction <= 1.0:
        raise QueryError("keep_intra_fraction must be in [0, 1]")
    rng = ensure_rng(seed)
    result = SocialGraph(nodes=graph.nodes())
    for u, v in graph.edges():
        kind = classify_edge(index, first_mentions[u], first_mentions[v])
        if kind is EdgeKind.INTRA and rng.random() >= keep_intra_fraction:
            continue
        result.add_edge(u, v)
    return result


def levels_present(first_mentions: Dict[int, float], index: LevelIndex) -> List[int]:
    """Sorted distinct level numbers occupied by the given users."""
    return sorted({index.level_of(t) for t in first_mentions.values()})


STANDARD_INTERVALS: Tuple[Tuple[str, float], ...] = (
    ("2H", 2 * 3600.0),
    ("4H", 4 * 3600.0),
    ("12H", 12 * 3600.0),
    ("1D", DAY),
    ("2D", 2 * DAY),
    ("1W", 7 * DAY),
    ("1M", 30 * DAY),
)
"""The candidate bucket widths of Figure 5 (H=hours, D=days, W=weeks, M=months)."""
