"""Cross-query reuse: invalidatable query state and shared pilot results.

The paper's cost model makes GRAPH-BUILDER and the pilot walks of §4.2.3
the dominant expense of every aggregate query, yet a classic
:meth:`~repro.core.analyzer.MicroblogAnalyzer.estimate` pays them from
scratch and its :class:`~repro.core.graph_builder.QueryContext` dies with
the run.  This module is the seam that lets that state outlive one
estimate without changing what any single query observes:

* :class:`QueryStateHandle` — an explicit, invalidatable container for
  one query's memoised per-user facts (first mentions, user views).  A
  ``QueryContext`` stores its memos *through* the handle, so a caller
  that owns the handle can inspect or invalidate them (e.g. after a
  platform delta merge) instead of relying on the context's lifetime.

* :class:`SharedQueryState` — the cross-query reuse cache a long-lived
  service (or a reused analyzer) shares across estimates: a
  keyword → chosen-interval cache backed by a **replayable pilot
  ledger**, plus memoised first-mention columns keyed on
  ``(platform fingerprint, keyword)``.

The hard constraint — pinned by the ``service`` test tier — is that a
reuse-cache *hit* is **bit-identical** to a cache-miss recomputation of
the same query: same estimate, same :class:`~repro.api.accounting.CostMeter`
columns, same exported trace bytes.  Reuse therefore never skips a
*charge*; it only skips *work*:

* the pilot phase of a cache miss runs through a
  :class:`RecordingContext` that records every logical client operation
  the pilots issue (``seeds`` / ``connections`` / ``first_mention`` /
  ``first_mentions``) in order;
* a cache hit **replays** that ledger against the warm query's own fresh
  client stack.  Each replayed operation performs the real charge, rate
  limiter acquisition, cache fill and trace emission — and because every
  layer of the stack is deterministic (including injected faults, which
  are pure functions of ``(seed, request key, attempt)``), the warm
  query's meter, caches and trace bytes end up exactly where a cold
  pilot phase would have left them.  What the hit skips is the pilot
  *logic*: the walks themselves, level bucketing, pilot-subgraph
  construction and spectral conductance scoring.

Determinism contract: the pilot phase under reuse draws from a
*keyword-scoped* RNG owned by the :class:`SharedQueryState` (never from
the per-run walk stream), so (a) whether pilots run or replay cannot
perturb the walk, and (b) every query on the same keyword agrees on the
chosen interval.  Pilot-oracle telemetry (``graph.classify`` events from
the throwaway pilot oracles) is suppressed symmetrically on both the
miss and hit paths — pilot telemetry belongs to the shared state, not to
whichever query happened to arrive first.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import BudgetExhaustedError, ReproError
from repro.obs import NULL_OBS

__all__ = [
    "QueryStateHandle",
    "RecordingContext",
    "SharedQueryState",
    "platform_fingerprint",
]


def platform_fingerprint(platform) -> Tuple:
    """A cheap identity for *platform*'s frozen content.

    Two platforms with the same fingerprint serve identical API
    responses for the reuse cache's purposes: same generation config,
    same population, same API restriction profile.  Used to key shared
    state so a cache can never leak across platforms.

    ``delta_epoch`` is the evolving-platform tag: an
    :class:`~repro.platform.evolve.OverlayStore` bumps it on every
    applied delta, so warm entries keyed against the pre-delta platform
    can never be served afterwards.  Compaction copies the epoch along
    with the (identical) content, leaving warm caches valid across it.
    """
    store = platform.store
    config = platform.config
    return (
        getattr(config, "seed", None),
        getattr(config, "data_plane", None),
        getattr(store, "num_users", None),
        getattr(store, "num_posts", None),
        getattr(store, "delta_epoch", 0),
        platform.profile.name,
    )


class QueryStateHandle:
    """Invalidatable container for one query's memoised API knowledge.

    :class:`~repro.core.graph_builder.QueryContext` keeps its per-user
    memos (first-mention timestamps, assembled user views) in the dicts
    this handle owns.  By default every context creates a private handle,
    which reproduces the classic one-estimate lifetime exactly; a caller
    may construct the handle first, pass it in, and later
    :meth:`invalidate` it — the explicit seam a long-lived service needs.

    ``epoch`` counts invalidations.  Consumers that cache anything
    *derived* from the memos should fingerprint the epoch and recompute
    when it moves (the same pattern as the level oracle's
    ``classify_epoch``).

    Note what the handle deliberately does **not** enable: sharing one
    handle across two *budgeted* estimates, because the second run would
    then skip the charges the first already paid and its cost accounting
    would no longer match a cold run.  Cost-preserving cross-query reuse
    goes through :class:`SharedQueryState`'s replayable ledger instead.
    """

    __slots__ = ("first_mentions", "views", "epoch")

    def __init__(self) -> None:
        self.first_mentions: Dict[int, Optional[float]] = {}
        self.views: Dict[int, object] = {}
        self.epoch = 0

    def invalidate(self) -> None:
        """Forget everything memoised and advance the epoch."""
        self.first_mentions.clear()
        self.views.clear()
        self.epoch += 1

    def __len__(self) -> int:
        return len(self.first_mentions) + len(self.views)


# ----------------------------------------------------------------------
# the pilot ledger
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _LedgerOp:
    """One recorded logical client operation of the pilot phase."""

    method: str
    args: Tuple
    raised: bool
    """True when the operation ended in ``BudgetExhaustedError`` on the
    recording run — the replay expects (and swallows) the same raise."""


class RecordingContext:
    """A :class:`QueryContext` view that records the ops pilots issue.

    Wraps a real context and forwards the four operations the interval
    selection path funnels everything through, appending each to the
    ledger *after* it executed (so the ledger reflects exactly what the
    client stack observed, including a trailing budget-exhausted op).

    ``obs`` is exposed as the disabled :data:`~repro.obs.NULL_OBS`:
    pilot-*oracle* telemetry (``graph.classify`` events, level-occupancy
    counters from the throwaway pilot oracles) is suppressed so the miss
    path and the replaying hit path emit identical trace bytes — client
    level telemetry (``api.call`` events, cache counters) still flows,
    because the client stack carries its own handles.
    """

    __slots__ = ("_context", "ledger")

    def __init__(self, context) -> None:
        self._context = context
        self.ledger: List[_LedgerOp] = []

    # -- pass-through identity -----------------------------------------
    @property
    def query(self):
        return self._context.query

    @property
    def client(self):
        return self._context.client

    @property
    def obs(self):
        return NULL_OBS

    @property
    def fast(self):
        return self._context.fast

    # -- recorded operations ---------------------------------------------
    def _record(self, method: str, args: Tuple, fn):
        try:
            result = fn()
        except BudgetExhaustedError:
            self.ledger.append(_LedgerOp(method, args, True))
            raise
        self.ledger.append(_LedgerOp(method, args, False))
        return result

    def seeds(self, max_seeds: Optional[int] = None):
        return self._record(
            "seeds", (max_seeds,), lambda: self._context.seeds(max_seeds)
        )

    def connections(self, user_id: int):
        return self._record(
            "connections", (user_id,), lambda: self._context.connections(user_id)
        )

    def first_mention(self, user_id: int):
        return self._record(
            "first_mention", (user_id,), lambda: self._context.first_mention(user_id)
        )

    def first_mentions(self, user_ids: Sequence[int]):
        ids = tuple(user_ids)
        return self._record(
            "first_mentions", (ids,), lambda: self._context.first_mentions(list(ids))
        )

    def matches_keyword(self, user_id: int) -> bool:
        return self.first_mention(user_id) is not None


def _replay_ledger(ledger: Sequence[_LedgerOp], context) -> None:
    """Re-issue a recorded pilot op sequence against a fresh context.

    Every op performs its real charges/trace/cache effects; a recorded
    budget-exhausted op must exhaust again (the ledger key includes the
    budget, so divergence here means the cache was mis-keyed — fail
    loudly rather than serve corrupted accounting).
    """
    for op in ledger:
        fn = getattr(context, op.method)
        try:
            if op.method == "first_mentions":
                fn(list(op.args[0]))
            else:
                fn(*op.args)
        except BudgetExhaustedError:
            if not op.raised:
                raise ReproError(
                    "pilot ledger replay diverged: unexpected budget exhaustion "
                    f"during {op.method}{op.args!r}"
                ) from None
            continue
        if op.raised:
            raise ReproError(
                "pilot ledger replay diverged: recorded budget exhaustion "
                f"did not recur for {op.method}{op.args!r}"
            )


@dataclass
class _IntervalEntry:
    selection: object  # IntervalSelection (kept duck-typed: no core import cycle)
    ledger: List[_LedgerOp] = field(default_factory=list)


class SharedQueryState:
    """Cross-query reuse cache: intervals, pilot ledgers, mention columns.

    One instance is scoped to one *service configuration* — the
    estimation service creates one per platform+stack configuration and
    threads it through every per-query analyzer via the ``reuse=``
    kwarg.  All methods are thread-safe; per-key locks single-flight the
    expensive computations so concurrent queries on the same keyword
    compute once and replay thereafter, with hit/miss counters that are
    deterministic in submission order regardless of worker count.

    ``seed`` feeds the keyword-scoped pilot RNG streams — two states
    built with the same seed run identical pilots, which is what makes a
    "cold run" reproducible: a fresh state replays the exact history a
    warm cache recorded.
    """

    def __init__(self, seed: int = 0) -> None:
        self._entropy = random.Random(seed).getrandbits(64)
        self._lock = threading.Lock()
        self._key_locks: Dict[Tuple, threading.Lock] = {}
        self._intervals: Dict[Tuple, _IntervalEntry] = {}
        self._columns: Dict[Tuple, Tuple[np.ndarray, np.ndarray]] = {}
        self._stats: Dict[str, int] = {
            "pilot_runs": 0,
            "interval_hits": 0,
            "interval_misses": 0,
            "column_hits": 0,
            "column_misses": 0,
        }
        self.epoch = 0
        """Bumped by :meth:`invalidate`; consumers holding entries they
        pulled out of the state can fingerprint it."""

    # ------------------------------------------------------------------
    def _key_lock(self, key: Tuple) -> threading.Lock:
        with self._lock:
            lock = self._key_locks.get(key)
            if lock is None:
                lock = self._key_locks[key] = threading.Lock()
            return lock

    def _count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._stats[name] = self._stats.get(name, 0) + amount

    def stats(self) -> Dict[str, int]:
        """A snapshot of the reuse counters."""
        with self._lock:
            return dict(self._stats)

    def pilot_rng(self, keyword: str) -> random.Random:
        """The keyword-scoped pilot stream (stateless derivation)."""
        return random.Random(f"{self._entropy}:pilot:{keyword.lower()}")

    # ------------------------------------------------------------------
    # keyword -> chosen interval (with replayable pilot ledger)
    # ------------------------------------------------------------------
    def interval_for(self, context, platform, budget: Optional[int], token: Tuple = ()):
        """The chosen interval for *context*'s keyword, computing once.

        On a miss the paper's pilot selection (§4.2.3) runs over a
        :class:`RecordingContext` seeded from the keyword-scoped stream;
        on a hit the recorded ledger replays against *context* so the
        warm query pays the identical charges in the identical order.
        *token* folds any extra stack configuration (graph design, fault
        plan, retry policy) into the key — entries never cross stacks
        whose charge sequences could differ.

        Returns the :class:`~repro.core.interval.IntervalSelection`.
        """
        keyword = context.query.keyword.lower()
        key = (platform_fingerprint(platform), keyword, budget) + tuple(token)
        with self._key_lock(key):
            entry = self._intervals.get(key)
            if entry is not None:
                self._count("interval_hits")
                _replay_ledger(entry.ledger, context)
                return entry.selection
            from repro.core.interval import select_time_interval

            recorder = RecordingContext(context)
            selection = select_time_interval(recorder, seed=self.pilot_rng(keyword))
            self._intervals[key] = _IntervalEntry(selection, recorder.ledger)
            self._count("interval_misses")
            self._count("pilot_runs")
            return selection

    # ------------------------------------------------------------------
    # (platform fingerprint, keyword) -> first-mention columns
    # ------------------------------------------------------------------
    def bind_first_mention_columns(self, fast, platform, keyword: str) -> None:
        """Point *fast*'s first-mention columns at the shared copies.

        The columns are platform facts (compiled at freeze), so sharing
        them is value-identical by construction.  On the mmap plane the
        first binding materialises the mapped columns into RAM once, so
        every later query on the keyword reads hot memory instead of
        re-faulting pages.
        """
        key = (platform_fingerprint(platform), keyword.lower())
        with self._key_lock(key):
            cached = self._columns.get(key)
            if cached is None:
                users, times = fast.kw_users, fast.kw_times
                if getattr(platform.store, "storage", "ram") == "mmap":
                    users = np.ascontiguousarray(users)
                    times = np.ascontiguousarray(times)
                cached = self._columns[key] = (users, times)
                self._count("column_misses")
            else:
                self._count("column_hits")
            fast.kw_users, fast.kw_times = cached

    # ------------------------------------------------------------------
    def invalidate(self, keyword: Optional[str] = None) -> None:
        """Drop cached state (for *keyword*, or everything) and bump epoch.

        The hook an evolving platform needs: after a delta merge the
        chosen intervals and mention columns are stale, and the next
        query on each keyword re-pays its pilot.
        """
        with self._lock:
            if keyword is None:
                self._intervals.clear()
                self._columns.clear()
            else:
                name = keyword.lower()
                for cache in (self._intervals, self._columns):
                    for key in [k for k in cache if k[1] == name]:
                        del cache[key]
            self.epoch += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._intervals) + len(self._columns)
