"""M&R: the mark-and-recapture COUNT baseline (Katzir et al. [15]).

The paper's strongest prior-art competitor for COUNT queries: run a
simple random walk over the (sub)graph and estimate the population size
from sample collisions.  "We adapted [15] to only consider nodes that
match the query and used it to measure the size of the term induced
subgraph" (§6.1) — and Figure 10 runs it *on the level-by-level subgraph*
because that is where it performs best, making the comparison against
MA-TARW as strong as possible.

Differences from MA-SRW's internal COUNT path: the classic protocol keeps
*every* post-burn-in step as a sample (collisions are the signal — thinning
them away is counter-productive) and uses a short fixed burn-in, as in the
original paper, rather than an adaptive Geweke cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, List, Optional

from repro._rng import RandomLike

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.parallel.engine import ParallelConfig
from repro.core.graph_builder import QueryContext
from repro.core.query import Aggregate
from repro.core.results import EstimateResult, TracePoint
from repro.core.srw import NeighborOracle
from repro.core.walker import BaseWalker
from repro.errors import BudgetExhaustedError, EstimationError
from repro.obs import Observability
from repro.sampling.estimators import ratio_average
from repro.sampling.mark_recapture import katzir_count


@dataclass(frozen=True)
class MRConfig:
    """Knobs for the M&R baseline."""

    burn_in: int = 100
    trace_every: int = 10
    max_steps: Optional[int] = 50_000
    stall_steps: int = 4_000
    """Stop on a long cost plateau (see SRWConfig.stall_steps)."""
    max_seeds: int = 50

    def __post_init__(self) -> None:
        if self.burn_in < 0 or self.trace_every < 1:
            raise EstimationError("burn_in must be >= 0 and trace_every >= 1")
        if self.stall_steps < 1:
            raise EstimationError("stall_steps must be >= 1")


class MarkRecaptureEstimator(BaseWalker):
    """Mark-and-recapture COUNT baseline from walk collisions (Katzir et al., paper §6).

    Budgeted Katzir-style COUNT estimation over any neighbor oracle.
    """

    algorithm: ClassVar[str] = "m&r"
    parallel_kind: ClassVar[Optional[str]] = None
    config_cls: ClassVar[type] = MRConfig

    def __init__(
        self,
        context: QueryContext,
        oracle: NeighborOracle,
        config: Optional[MRConfig] = None,
        seed: RandomLike = None,
        parallel: Optional["ParallelConfig"] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        if context.query.aggregate is not Aggregate.COUNT:
            raise EstimationError("M&R supports COUNT queries only (as in the paper)")
        super().__init__(context, oracle, config, seed=seed, parallel=parallel, obs=obs)

    def _estimate_serial(self) -> EstimateResult:
        config = self.config
        nodes: List[int] = []
        degrees: List[int] = []
        trace: List[TracePoint] = []
        steps = 0
        last_cost = -1
        stalled_since = 0
        next_trace = config.trace_every
        try:
            seeds = self.context.seeds(config.max_seeds)
            current = self.rng.choice(seeds)
            while config.max_steps is None or steps < config.max_steps:
                neighbors = self.oracle.neighbors(current)
                current = self.rng.choice(neighbors) if neighbors else self.rng.choice(seeds)
                steps += 1
                if steps > config.burn_in:
                    degree = self.oracle.degree(current)
                    if degree > 0:
                        nodes.append(current)
                        degrees.append(degree)
                cost = self._cost()
                if cost == last_cost:
                    stalled_since += 1
                    if stalled_since >= config.stall_steps:
                        break
                else:
                    last_cost = cost
                    stalled_since = 0
                if steps >= next_trace:
                    # Geometric spacing: O(chain log chain) total trace work.
                    trace.append(TracePoint(cost, self._current_estimate(nodes, degrees)))
                    next_trace = steps + max(config.trace_every, steps // 20)
        except BudgetExhaustedError:
            pass

        value = self._current_estimate(nodes, degrees)
        trace.append(TracePoint(self._cost(), value))
        return EstimateResult(
            query=self.context.query,
            algorithm=self.algorithm_id(),
            value=value,
            cost_total=self._cost(),
            cost_by_kind=self._cost_by_kind(),
            trace=trace,
            num_samples=len(nodes),
            diagnostics={"steps": float(steps)},
        )

    def _current_estimate(self, nodes: List[int], degrees: List[int]) -> Optional[float]:
        if len(nodes) < 2:
            return None
        try:
            population = katzir_count(nodes, degrees).population
            indicator: List[float] = []
            affordable_degrees: List[int] = []
            for node, degree in zip(nodes, degrees):
                try:
                    matches = self.context.condition_matches(node)
                except BudgetExhaustedError:
                    continue  # unaffordable suffix samples are skipped
                indicator.append(1.0 if matches else 0.0)
                affordable_degrees.append(degree)
            fraction = ratio_average(indicator, affordable_degrees)
            return population * fraction
        except EstimationError:
            return None  # typically: no collisions yet
