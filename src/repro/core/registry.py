"""The walker registry: one catalog of every estimation algorithm.

Each :class:`WalkerSpec` binds a CLI/analyzer name to an estimator class
satisfying the :class:`~repro.core.walker.Walker` protocol, the graph
designs it supports, and a one-line summary.  The summary is the *same
string* that opens the estimator's class docstring and appears in
``docs/ALGORITHMS.md`` — the conformance tests assert all three places
agree, so the catalog cannot drift from the code.

:class:`~repro.core.analyzer.MicroblogAnalyzer` and the CLI resolve
``--algorithm`` values through :func:`get_walker`; adding a walker here
is all it takes to expose it end to end (construction is uniform:
``spec.estimator(context, oracle, config, seed=..., parallel=...)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.crawler import CrawlEstimator
from repro.core.frontier import FrontierEstimator
from repro.core.mr import MarkRecaptureEstimator
from repro.core.rewired import RewiredSRWEstimator
from repro.core.srw import MASRWEstimator
from repro.core.tarw import MATARWEstimator
from repro.core.wnw import WNWEstimator
from repro.errors import EstimationError

GRAPH_DESIGNS = ("level-by-level", "term-induced", "social")


@dataclass(frozen=True)
class WalkerSpec:
    """Registry entry for one estimation algorithm."""

    name: str
    """The ``--algorithm`` value (also ``estimator.algorithm``)."""
    estimator: type
    """Class satisfying the Walker protocol (see ``core/walker.py``)."""
    summary: str
    """One line, verbatim in the class docstring and docs/ALGORITHMS.md."""
    designs: Tuple[str, ...]
    """Graph designs the walker accepts (subset of ``GRAPH_DESIGNS``)."""

    @property
    def config_cls(self) -> type:
        return self.estimator.config_cls

    @property
    def parallel_kind(self):
        return self.estimator.parallel_kind


_REGISTRY: Dict[str, WalkerSpec] = {}


def register_walker(spec: WalkerSpec) -> WalkerSpec:
    if spec.name in _REGISTRY:
        raise EstimationError(f"walker {spec.name!r} is already registered")
    unknown = [d for d in spec.designs if d not in GRAPH_DESIGNS]
    if unknown:
        raise EstimationError(f"walker {spec.name!r} names unknown designs {unknown}")
    _REGISTRY[spec.name] = spec
    return spec


def get_walker(name: str) -> WalkerSpec:
    spec = _REGISTRY.get(name)
    if spec is None:
        raise EstimationError(
            f"unknown algorithm {name!r}; choose from {walker_names()}"
        )
    return spec


def walker_names() -> Tuple[str, ...]:
    """Registration order — the order docs and ``--help`` present."""
    return tuple(_REGISTRY)


def walker_specs() -> Tuple[WalkerSpec, ...]:
    return tuple(_REGISTRY.values())


register_walker(
    WalkerSpec(
        name="ma-tarw",
        estimator=MATARWEstimator,
        summary=(
            "Topology-aware random walk over the level-by-level subgraph "
            "(paper §5, Algorithms 2–3)."
        ),
        designs=("level-by-level",),
    )
)
register_walker(
    WalkerSpec(
        name="ma-srw",
        estimator=MASRWEstimator,
        summary=(
            "Simple random walk with Geweke burn-in and degree reweighting "
            "(paper §4, Algorithm 1)."
        ),
        designs=GRAPH_DESIGNS,
    )
)
register_walker(
    WalkerSpec(
        name="rewired-srw",
        estimator=RewiredSRWEstimator,
        summary=(
            "SRW over a graph rewired on the fly: virtual edges among visited "
            "nodes speed mixing (arXiv:1211.5184)."
        ),
        designs=GRAPH_DESIGNS,
    )
)
register_walker(
    WalkerSpec(
        name="wnw",
        estimator=WNWEstimator,
        summary=(
            "Walk-Not-Wait SRW: partial-page timeline probes replace blocking "
            "full fetches (arXiv:1410.7833)."
        ),
        designs=GRAPH_DESIGNS,
    )
)
register_walker(
    WalkerSpec(
        name="frontier",
        estimator=FrontierEstimator,
        summary=(
            "Multi-seed frontier sampler: dependent walkers scheduled "
            "proportional to degree (Ribeiro–Towsley)."
        ),
        designs=GRAPH_DESIGNS,
    )
)
register_walker(
    WalkerSpec(
        name="m&r",
        estimator=MarkRecaptureEstimator,
        summary=(
            "Mark-and-recapture COUNT baseline from walk collisions "
            "(Katzir et al., paper §6)."
        ),
        designs=GRAPH_DESIGNS,
    )
)
register_walker(
    WalkerSpec(
        name="crawl",
        estimator=CrawlEstimator,
        summary=(
            "Budgeted breadth-first crawl baseline (paper §3.2); superseded "
            "by the frontier walker."
        ),
        designs=GRAPH_DESIGNS,
    )
)
