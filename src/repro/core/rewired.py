"""Rewired SRW: on-the-fly virtual edges among visited nodes (arXiv:1211.5184).

*Faster Random Walks By Rewiring Online Social Networks On-The-Fly*
observes that an SRW's mixing time is bounded by the graph's conductance,
and that a crawler — unlike the platform — is free to walk a *modified*
graph as long as it can account for the modification.  The walker below
implements the paper's CDRW idea in its simplest budget-relevant form:

* On the **first visit** to a node, wire it to ``rewire_degree`` nodes
  drawn uniformly from the already-visited set (§3's random rewiring —
  the added edges form an expander over the visited subgraph, collapsing
  its diameter).  Virtual edges are undirected and cost nothing: both
  endpoints' adjacency is already cached.
* Each step moves to a uniform choice over **real + virtual** neighbors.
  Jumping a virtual edge lands on a visited node whose real adjacency is
  cached, so the step is free; the walk escapes the community it is stuck
  in without the teleport heuristic's full restart.
* Reweighting uses the **rewired degree** (real + virtual at visit time):
  the walk's stationary distribution on the rewired graph is ∝ rewired
  degree, so the usual SRW estimators apply unchanged — this is the
  paper's key point, that rewiring changes the sampling distribution in a
  *known* way.  The rewired graph evolves while the walk runs (§4 of the
  paper analyses this evolving-graph approximation); degrees recorded at
  visit time are a snapshot, and the approximation error vanishes as the
  visited set saturates.

Everything else — chain loop, Geweke burn-in, estimate assembly, fault
recovery, sharding — is inherited from MA-SRW via the Walker substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Dict, List, Optional

from repro._rng import RandomLike

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.parallel.engine import ParallelConfig
from repro.core.graph_builder import QueryContext
from repro.core.srw import MASRWEstimator, SRWConfig
from repro.errors import EstimationError
from repro.obs import Observability


@dataclass(frozen=True)
class RewiredConfig(SRWConfig):
    """Knobs for the rewired SRW (extends :class:`SRWConfig`)."""

    rewire_degree: int = 3
    """Virtual edges wired from each newly visited node to uniformly
    chosen previously visited nodes (0 degenerates to plain MA-SRW).
    The paper's trade-off: more virtual edges mix faster but dilute the
    real-graph signal each sample carries, since the recorded degree —
    and hence each sample's weight — absorbs the virtual additions."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.rewire_degree < 0:
            raise EstimationError("rewire_degree must be >= 0")


class RewiredSRWEstimator(MASRWEstimator):
    """SRW over a graph rewired on the fly: virtual edges among visited nodes speed mixing (arXiv:1211.5184).

    Subclasses MA-SRW; only the visit hook (wire new nodes), the recorded
    degree (real + virtual) and the step distribution (union adjacency)
    change.
    """

    algorithm: ClassVar[str] = "rewired-srw"
    parallel_kind: ClassVar[Optional[str]] = "samples"
    obs_prefix: ClassVar[str] = "rewired"
    config_cls: ClassVar[type] = RewiredConfig

    def __init__(
        self,
        context: QueryContext,
        oracle,
        config: Optional[RewiredConfig] = None,
        seed: RandomLike = None,
        parallel: Optional["ParallelConfig"] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(context, oracle, config, seed=seed, parallel=parallel, obs=obs)
        self._virtual: Dict[int, List[int]] = {}
        self._visited: set = set()
        self._visited_order: List[int] = []
        """Uniform-sampling substrate for wiring: append-only, so the
        draw ``rng.sample(order, k)`` is deterministic given the walk."""
        self._virtual_edges = 0

    # ------------------------------------------------------------------
    def _wire(self, node: int) -> None:
        """First-visit hook: wire *node* into the visited expander."""
        if node in self._visited:
            return
        order = self._visited_order
        k = min(self.config.rewire_degree, len(order))
        if k > 0:
            mine = self._virtual.setdefault(node, [])
            for other in self.rng.sample(order, k):
                mine.append(other)
                self._virtual.setdefault(other, []).append(node)
                self._virtual_edges += 1
        self._visited.add(node)
        order.append(node)

    def _observe(
        self, node: int, nodes: List[int], degrees: List[float], chain: int = 0
    ) -> None:
        # Wire before the degree lookup so the recorded degree includes
        # this node's own fresh virtual edges (visit-time snapshot).
        self._wire(node)
        super()._observe(node, nodes, degrees, chain=chain)

    def _sample_degree(self, node: int) -> float:
        real = float(self._oracle_step(self.oracle.degree, node))
        return real + len(self._virtual.get(node, ()))

    def _advance(self, currents: List[int], index: int, seeds: List[int]) -> None:
        node = currents[index]
        real = self._oracle_step(self.oracle.neighbors, node)
        virtual = self._virtual.get(node)
        if virtual:
            currents[index] = self.rng.choice(list(real) + virtual)
        elif real:
            currents[index] = self.rng.choice(real)
        else:
            # Isolated *and* unwired (only possible before any wiring
            # happened): fall back to the SRW dead-end reseed.
            currents[index] = self.rng.choice(seeds)
            self._restarts += 1
            self._note_restart(index, "dead_end")
        self._observe(
            currents[index], self._chain_nodes[index], self._chain_degrees[index], chain=index
        )

    def _walker_diagnostics(self) -> dict:
        return {"virtual_edges": float(self._virtual_edges)}
