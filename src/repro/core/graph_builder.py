"""GRAPH-BUILDER: on-the-fly neighbor oracles over the restricted API.

The conceptual graphs of §3–§4 are never materialised — they are *implied*
by API responses.  A :class:`QueryContext` memoises everything learned
about users (timelines, connections, keyword membership, levels) during an
estimation run, and the three oracles expose progressively refined
neighborhoods over it:

* :class:`SocialGraphOracle` — every connection (the baseline graph);
* :class:`TermInducedOracle` — connections whose (visible) timeline
  contains the query keyword (§4.1);
* :class:`LevelByLevelOracle` — term-induced neighbors in a *different*
  level (§4.2), with optional retention of a fraction of intra-level
  edges for the Figure 4 ablation, plus the up-/down-neighbor split the
  topology-aware walk needs.

Cost model: classifying a user (one timeline fetch) and listing their
connections (paged connection calls) are charged once each through the
caching client; afterwards they are free, as for a real crawler with a
response cache.  Classifying *all* neighbors of a visited node is what
drives the per-node query cost — exactly the paper's accounting, where
walking the term-induced graph near tightly-knit communities is expensive
because so many neighbors must be inspected.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.api.interface import MicroblogAPI, TimelineView
from repro.core.levels import LevelIndex
from repro.core.query import AggregateQuery, UserView
from repro.errors import EstimationError
from repro.obs import NULL_OBS, Observability


class QueryContext:
    """Memoised API knowledge scoped to one aggregate query."""

    def __init__(
        self,
        client: MicroblogAPI,
        query: AggregateQuery,
        obs: Optional[Observability] = None,
    ) -> None:
        self.client = client
        self.query = query
        self.obs = obs if obs is not None else NULL_OBS
        """The run's telemetry handles; estimators and oracles built on
        this context inherit them (the shared :data:`~repro.obs.NULL_OBS`
        when dark)."""
        self._first_mentions: Dict[int, Optional[float]] = {}
        self._views: Dict[int, UserView] = {}

    # ------------------------------------------------------------------
    # raw API passthroughs (the client caches repeats)
    # ------------------------------------------------------------------
    def timeline(self, user_id: int) -> TimelineView:
        return self.client.user_timeline(user_id)

    def connections(self, user_id: int) -> Sequence[int]:
        """Sorted neighbor ids; an immutable sequence — do not mutate."""
        return self.client.user_connections(user_id)

    # ------------------------------------------------------------------
    # derived, memoised per-user facts
    # ------------------------------------------------------------------
    def first_mention(self, user_id: int) -> Optional[float]:
        """First *visible* mention time of the query keyword, or None.

        "Visible" = within the platform's timeline cap; prolific users may
        have their true first mention hidden (§2's 3 200-tweet caveat).
        """
        if user_id not in self._first_mentions:
            view = self.timeline(user_id)
            self._first_mentions[user_id] = view.first_mention_time(self.query.keyword)
        return self._first_mentions[user_id]

    def matches_keyword(self, user_id: int) -> bool:
        """Term-induced-subgraph membership: keyword anywhere in timeline.

        Deliberately ignores the query's window/predicate — §4.1 explains
        the subgraph filters on keyword only, since harsher filters (short
        time windows) would break connectivity and hurt recall.
        """
        return self.first_mention(user_id) is not None

    def user_view(self, user_id: int) -> UserView:
        if user_id not in self._views:
            timeline = self.timeline(user_id)
            profile = timeline.profile
            self._views[user_id] = UserView(
                user_id=user_id,
                display_name=profile.display_name,
                followers=profile.followers,
                gender=profile.gender,
                age=profile.age,
                matching_posts=self.query.filter_matching_posts(timeline.posts),
            )
        return self._views[user_id]

    def condition_matches(self, user_id: int) -> bool:
        """Full §2 CONDITION: keyword + window + profile predicate."""
        return self.query.matches(self.user_view(user_id))

    def f_value(self, user_id: int) -> float:
        """f(u) when the user matches the condition, else 0.

        The zero default is what makes level-graph samples usable for
        narrower conditions: non-matching users contribute nothing."""
        view = self.user_view(user_id)
        return self.query.value(view) if self.query.matches(view) else 0.0

    # ------------------------------------------------------------------
    # seeds
    # ------------------------------------------------------------------
    def seeds(self, max_seeds: Optional[int] = None) -> List[int]:
        """Distinct recent posters of the keyword, via the search API (§3.1).

        ``max_seeds=None`` pages through the whole search window — the
        topology-aware walk wants the *complete* bottom level as its seed
        set, since its selection probabilities put mass 1/s on each seed.
        """
        hits = self.client.search(
            self.query.keyword, max_results=None if max_seeds is None else max_seeds * 4
        )
        seen: Dict[int, None] = {}
        for hit in hits:
            seen.setdefault(hit.user_id)
            if max_seeds is not None and len(seen) >= max_seeds:
                break
        if not seen:
            raise EstimationError(
                f"search API returned no recent posters of {self.query.keyword!r}; "
                "cannot seed the walk"
            )
        return list(seen)


class SocialGraphOracle:
    """Neighborhoods of the unrestricted social graph."""

    name = "social"

    def __init__(self, context: QueryContext) -> None:
        self.context = context
        self._cache: Dict[int, Sequence[int]] = {}

    def neighbors(self, user_id: int) -> Sequence[int]:
        if user_id not in self._cache:
            self._cache[user_id] = self.context.connections(user_id)
        return self._cache[user_id]

    def degree(self, user_id: int) -> int:
        return len(self.neighbors(user_id))


class TermInducedOracle:
    """Neighborhoods of the term-induced subgraph (§4.1).

    Each first classification of a node costs one timeline fetch; a full
    neighborhood evaluation therefore costs ``1 + degree`` uncached calls.
    """

    name = "term-induced"

    def __init__(self, context: QueryContext) -> None:
        self.context = context
        self._cache: Dict[int, List[int]] = {}

    def neighbors(self, user_id: int) -> List[int]:
        if user_id not in self._cache:
            self._cache[user_id] = [
                v for v in self.context.connections(user_id) if self.context.matches_keyword(v)
            ]
        return self._cache[user_id]

    def degree(self, user_id: int) -> int:
        return len(self.neighbors(user_id))


class LevelByLevelOracle:
    """Neighborhoods of the level-by-level subgraph (§4.2).

    Transit rule: "move from a user to its neighbor if and only if they
    did not first tweet the keyword in the same interval".  With
    ``keep_intra_fraction > 0`` a deterministic pseudo-random subset of
    intra-level edges survives (Figure 4's partial-removal sweep); the
    decision hashes the edge so both endpoints agree on it.
    """

    name = "level-by-level"

    def __init__(
        self,
        context: QueryContext,
        index: LevelIndex,
        keep_intra_fraction: float = 0.0,
        edge_seed: int = 0,
    ) -> None:
        if not 0.0 <= keep_intra_fraction <= 1.0:
            raise EstimationError("keep_intra_fraction must be in [0, 1]")
        self.context = context
        self.index = index
        self.keep_intra_fraction = keep_intra_fraction
        self.edge_seed = edge_seed
        self._cache: Dict[int, List[int]] = {}
        self._up: Dict[int, List[int]] = {}
        self._down: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    def level_of(self, user_id: int) -> Optional[int]:
        mention = self.context.first_mention(user_id)
        if mention is None:
            return None
        return self.index.level_of(mention)

    def _keep_intra_edge(self, u: int, v: int) -> bool:
        if self.keep_intra_fraction <= 0.0:
            return False
        if self.keep_intra_fraction >= 1.0:
            return True
        low, high = (u, v) if u <= v else (v, u)
        draw = random.Random(f"{self.edge_seed}:{low}:{high}").random()
        return draw < self.keep_intra_fraction

    def _classify(self, user_id: int) -> None:
        own_level = self.level_of(user_id)
        if own_level is None:
            self._cache[user_id] = []
            self._up[user_id] = []
            self._down[user_id] = []
            self._note_classified(user_id, None, 0, 0)
            return
        all_neighbors: List[int] = []
        up: List[int] = []
        down: List[int] = []
        for v in self.context.connections(user_id):
            level = self.level_of(v)
            if level is None:
                continue
            if level == own_level:
                if self._keep_intra_edge(user_id, v):
                    all_neighbors.append(v)
                continue
            all_neighbors.append(v)
            if level < own_level:
                up.append(v)
            else:
                down.append(v)
        self._cache[user_id] = all_neighbors
        self._up[user_id] = up
        self._down[user_id] = down
        self._note_classified(user_id, own_level, len(up), len(down))

    def _note_classified(
        self, user_id: int, level: Optional[int], up: int, down: int
    ) -> None:
        """Level-occupancy telemetry: one unit per first classification."""
        obs = self.context.obs
        if obs.enabled:
            if obs.metrics is not None:
                obs.metrics.counter("graph.classified").inc()
                if level is not None:
                    obs.metrics.counter("graph.level_nodes", level=level).inc()
            if obs.trace is not None:
                obs.trace.event(
                    "graph.classify", node=user_id, level=level, up=up, down=down
                )

    # ------------------------------------------------------------------
    def neighbors(self, user_id: int) -> List[int]:
        if user_id not in self._cache:
            self._classify(user_id)
        return self._cache[user_id]

    def degree(self, user_id: int) -> int:
        return len(self.neighbors(user_id))

    def up_neighbors(self, user_id: int) -> List[int]:
        """Neighbors in strictly earlier levels — toward the top (∇(u))."""
        if user_id not in self._up:
            self._classify(user_id)
        return self._up[user_id]

    def down_neighbors(self, user_id: int) -> List[int]:
        """Neighbors in strictly later levels — toward the bottom (∆(u))."""
        if user_id not in self._down:
            self._classify(user_id)
        return self._down[user_id]

    def classified_nodes(self) -> List[int]:
        """All nodes whose neighborhoods have been fully classified.

        For each of these, :meth:`up_neighbors`/:meth:`down_neighbors`
        are exact and already paid for — the basis for the deterministic
        selection-probability computation in MA-TARW's ``p_method="dp"``.
        """
        return list(self._cache)
