"""GRAPH-BUILDER: on-the-fly neighbor oracles over the restricted API.

The conceptual graphs of §3–§4 are never materialised — they are *implied*
by API responses.  A :class:`QueryContext` memoises everything learned
about users (timelines, connections, keyword membership, levels) during an
estimation run, and the three oracles expose progressively refined
neighborhoods over it:

* :class:`SocialGraphOracle` — every connection (the baseline graph);
* :class:`TermInducedOracle` — connections whose (visible) timeline
  contains the query keyword (§4.1);
* :class:`LevelByLevelOracle` — term-induced neighbors in a *different*
  level (§4.2), with optional retention of a fraction of intra-level
  edges for the Figure 4 ablation, plus the up-/down-neighbor split the
  topology-aware walk needs.

Cost model: classifying a user (one timeline fetch) and listing their
connections (paged connection calls) are charged once each through the
caching client; afterwards they are free, as for a real crawler with a
response cache.  Classifying *all* neighbors of a visited node is what
drives the per-node query cost — exactly the paper's accounting, where
walking the term-induced graph near tightly-knit communities is expensive
because so many neighbors must be inspected.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.api.fastpath import resolve_fast_path
from repro.api.interface import MicroblogAPI, TimelineView
from repro.core.kernels import resolve_kernel
from repro.core.levels import LevelIndex
from repro.core.query import AggregateQuery, UserView
from repro.core.reuse import QueryStateHandle
from repro.errors import EstimationError
from repro.obs import NULL_OBS, Observability


class QueryContext:
    """Memoised API knowledge scoped to one aggregate query.

    At construction the client stack is resolved once against the fast-
    path rules (see :mod:`repro.api.fastpath`): a clean caching stack
    over a frozen store gets flattened per-API-kind operations — batched
    first-mention resolution from the store's columns and single-lock
    connection serving — with charges, counters and trace bytes identical
    to the layered path.  Any fault/resilient layer, legacy store or
    non-caching client keeps every operation on the layered slow path.
    """

    kernel_eligible = True
    """Subclasses that reinterpret the first-mention family (probes,
    truncation) set this False so :func:`resolve_kernel` falls back to
    the interpreted path instead of bypassing their overrides."""

    def __init__(
        self,
        client: MicroblogAPI,
        query: AggregateQuery,
        obs: Optional[Observability] = None,
        state: Optional[QueryStateHandle] = None,
    ) -> None:
        self.client = client
        self.query = query
        self.obs = obs if obs is not None else NULL_OBS
        """The run's telemetry handles; estimators and oracles built on
        this context inherit them (the shared :data:`~repro.obs.NULL_OBS`
        when dark)."""
        self.state = state if state is not None else QueryStateHandle()
        """The memoised per-user facts live behind this invalidatable
        handle (see :mod:`repro.core.reuse`); a private handle per context
        — the default — reproduces the classic one-estimate lifetime."""
        self._first_mentions = self.state.first_mentions
        self._views: Dict[int, UserView] = self.state.views  # type: ignore[assignment]
        self.fast = resolve_fast_path(client, query.keyword, obs=self.obs)
        """Flattened ops for this ``(client, keyword)`` pair, or None when
        any resolution rule forces the layered slow path."""
        self.kernel = resolve_kernel(self, obs=self.obs)
        """Compiled walk kernel over the fast path (see
        :mod:`repro.core.kernels`), or None for the interpreted loop."""
        self._cond_memo: Dict[int, bool] = {}
        self._f_memo: Dict[int, float] = {}
        """Kernel-enabled memos for the condition/f-value hot calls.
        Valid because query predicates and measures are pure functions of
        the (already memoised) view; private to this context, so service
        cross-query reuse never observes them."""

    # ------------------------------------------------------------------
    # raw API passthroughs (the client caches repeats)
    # ------------------------------------------------------------------
    def timeline(self, user_id: int) -> TimelineView:
        return self.client.user_timeline(user_id)

    def connections(self, user_id: int) -> Sequence[int]:
        """Sorted neighbor ids; an immutable sequence — do not mutate."""
        fast = self.fast
        if fast is not None:
            return fast.connections(user_id)
        return self.client.user_connections(user_id)

    # ------------------------------------------------------------------
    # derived, memoised per-user facts
    # ------------------------------------------------------------------
    def first_mention(self, user_id: int) -> Optional[float]:
        """First *visible* mention time of the query keyword, or None.

        "Visible" = within the platform's timeline cap; prolific users may
        have their true first mention hidden (§2's 3 200-tweet caveat).
        """
        memo = self._first_mentions
        if user_id not in memo:
            kernel = self.kernel
            fast = self.fast
            if kernel is not None:
                kernel.resolve_mentions((user_id,), memo)
            elif fast is not None:
                fast.first_mention_into(user_id, memo)
            else:
                view = self.timeline(user_id)
                memo[user_id] = view.first_mention_time(self.query.keyword)
        return memo[user_id]

    def first_mentions(self, user_ids: Sequence[int]) -> List[Optional[float]]:
        """Batched :meth:`first_mention` preserving input order.

        The batch classifier's entry point: with the fast path resolved,
        all uncached users are answered from the frozen first-mention
        columns in one vectorised lookup (charges replayed per user in
        input order — identical accounting to sequential calls); the
        slow path degrades to exactly those sequential calls.  Results
        land in the same per-context memo either way, which is what makes
        a timeline classified at most once per ``(client, keyword)``
        across pilot candidates and the final oracle.
        """
        kernel = self.kernel
        if kernel is not None:
            memo = self._first_mentions
            kernel.resolve_mentions(user_ids, memo)
            return [memo[u] for u in user_ids]
        fast = self.fast
        if fast is not None:
            memo = self._first_mentions
            fast.first_mentions_into(user_ids, memo)
            return [memo[u] for u in user_ids]
        return [self.first_mention(u) for u in user_ids]

    def matches_keyword(self, user_id: int) -> bool:
        """Term-induced-subgraph membership: keyword anywhere in timeline.

        Deliberately ignores the query's window/predicate — §4.1 explains
        the subgraph filters on keyword only, since harsher filters (short
        time windows) would break connectivity and hurt recall.
        """
        return self.first_mention(user_id) is not None

    def user_view(self, user_id: int) -> UserView:
        views = self._views
        view = views.get(user_id)
        if view is None:
            kernel = self.kernel
            if kernel is not None:
                # Columnar assembly for paid-for timelines (only matching
                # posts materialise); None sends unknown/unpaid users down
                # the ordinary charging path below.
                view = kernel.build_view(user_id)
            if view is None:
                timeline = self.timeline(user_id)
                profile = timeline.profile
                view = UserView(
                    user_id=user_id,
                    display_name=profile.display_name,
                    followers=profile.followers,
                    gender=profile.gender,
                    age=profile.age,
                    matching_posts=self.query.filter_matching_posts(timeline.posts),
                )
            views[user_id] = view
        return view

    def condition_matches(self, user_id: int) -> bool:
        """Full §2 CONDITION: keyword + window + profile predicate."""
        if self.kernel is not None:
            memo = self._cond_memo
            value = memo.get(user_id)
            if value is None:
                value = memo[user_id] = self.query.matches(self.user_view(user_id))
            return value
        return self.query.matches(self.user_view(user_id))

    def f_value(self, user_id: int) -> float:
        """f(u) when the user matches the condition, else 0.

        The zero default is what makes level-graph samples usable for
        narrower conditions: non-matching users contribute nothing."""
        if self.kernel is not None:
            memo = self._f_memo
            value = memo.get(user_id)
            if value is None:
                view = self.user_view(user_id)
                value = memo[user_id] = (
                    self.query.value(view) if self.query.matches(view) else 0.0
                )
            return value
        view = self.user_view(user_id)
        return self.query.value(view) if self.query.matches(view) else 0.0

    # ------------------------------------------------------------------
    # seeds
    # ------------------------------------------------------------------
    def seeds(self, max_seeds: Optional[int] = None) -> List[int]:
        """Distinct recent posters of the keyword, via the search API (§3.1).

        ``max_seeds=None`` pages through the whole search window — the
        topology-aware walk wants the *complete* bottom level as its seed
        set, since its selection probabilities put mass 1/s on each seed.
        """
        hits = self.client.search(
            self.query.keyword, max_results=None if max_seeds is None else max_seeds * 4
        )
        seen: Dict[int, None] = {}
        for hit in hits:
            seen.setdefault(hit.user_id)
            if max_seeds is not None and len(seen) >= max_seeds:
                break
        if not seen:
            raise EstimationError(
                f"search API returned no recent posters of {self.query.keyword!r}; "
                "cannot seed the walk"
            )
        return list(seen)


class SocialGraphOracle:
    """Neighborhoods of the unrestricted social graph."""

    name = "social"

    def __init__(self, context: QueryContext) -> None:
        self.context = context
        self._cache: Dict[int, Sequence[int]] = {}

    def neighbors(self, user_id: int) -> Sequence[int]:
        if user_id not in self._cache:
            self._cache[user_id] = self.context.connections(user_id)
        return self._cache[user_id]

    def degree(self, user_id: int) -> int:
        return len(self.neighbors(user_id))


class TermInducedOracle:
    """Neighborhoods of the term-induced subgraph (§4.1).

    Each first classification of a node costs one timeline fetch; a full
    neighborhood evaluation therefore costs ``1 + degree`` uncached calls.
    """

    name = "term-induced"

    def __init__(self, context: QueryContext) -> None:
        self.context = context
        self._cache: Dict[int, List[int]] = {}

    def neighbors(self, user_id: int) -> List[int]:
        if user_id not in self._cache:
            connections = self.context.connections(user_id)
            mentions = self.context.first_mentions(connections)
            self._cache[user_id] = [
                v for v, mention in zip(connections, mentions) if mention is not None
            ]
        return self._cache[user_id]

    def degree(self, user_id: int) -> int:
        return len(self.neighbors(user_id))


class LevelByLevelOracle:
    """Neighborhoods of the level-by-level subgraph (§4.2).

    Transit rule: "move from a user to its neighbor if and only if they
    did not first tweet the keyword in the same interval".  With
    ``keep_intra_fraction > 0`` a deterministic pseudo-random subset of
    intra-level edges survives (Figure 4's partial-removal sweep); the
    decision hashes the edge so both endpoints agree on it.
    """

    name = "level-by-level"

    def __init__(
        self,
        context: QueryContext,
        index: LevelIndex,
        keep_intra_fraction: float = 0.0,
        edge_seed: int = 0,
    ) -> None:
        if not 0.0 <= keep_intra_fraction <= 1.0:
            raise EstimationError("keep_intra_fraction must be in [0, 1]")
        self.context = context
        self.index = index
        self.keep_intra_fraction = keep_intra_fraction
        self.edge_seed = edge_seed
        self._cache: Dict[int, List[int]] = {}
        self._up: Dict[int, List[int]] = {}
        self._down: Dict[int, List[int]] = {}
        self._levels: Dict[int, Optional[int]] = {}
        """Memoised level per user.  The batch classifier fills it for
        every neighbor it buckets, so the DP / recount phases' repeated
        ``level_of`` calls stop re-deriving levels from mention times."""
        self.classify_epoch = 0
        """Bumped once per :meth:`_classify`.  MA-TARW's ESTIMATE-p DP
        keys its recomputation on this counter: an unchanged epoch means
        the classified subgraph — and therefore the exact DP fixed point —
        is unchanged, so the full-table Eq. 6 sweep can be skipped."""

    # ------------------------------------------------------------------
    def level_of(self, user_id: int) -> Optional[int]:
        levels = self._levels
        if user_id in levels:
            return levels[user_id]
        mention = self.context.first_mention(user_id)
        level = None if mention is None else self.index.level_of(mention)
        levels[user_id] = level
        return level

    def _keep_intra_edge(self, u: int, v: int) -> bool:
        if self.keep_intra_fraction <= 0.0:
            return False
        if self.keep_intra_fraction >= 1.0:
            return True
        low, high = (u, v) if u <= v else (v, u)
        draw = random.Random(f"{self.edge_seed}:{low}:{high}").random()
        return draw < self.keep_intra_fraction

    def _bucket(self, mentions: List[Optional[float]]) -> List[Optional[int]]:
        """Level per mention time (None passes through), vectorised.

        ``levels_of_array`` is element-wise identical to scalar
        ``level_of`` calls (same IEEE float64 operations — see
        :mod:`repro.core.levels`), so batch and sequential classification
        produce the same buckets bit for bit.  Indexes without the array
        method fall back to scalar calls.
        """
        levels_of_array = getattr(self.index, "levels_of_array", None)
        if levels_of_array is None:
            level_of = self.index.level_of
            return [None if m is None else level_of(m) for m in mentions]
        out: List[Optional[int]] = [None] * len(mentions)
        times = np.array(
            [np.nan if m is None else m for m in mentions], dtype=np.float64
        )
        mask = ~np.isnan(times)
        if mask.any():
            values = levels_of_array(times[mask]).tolist()
            for i, value in zip(np.flatnonzero(mask).tolist(), values):
                out[i] = value
        return out

    def _classify(self, user_id: int) -> None:
        kernel = getattr(self.context, "kernel", None)
        if (
            kernel is not None
            and self.keep_intra_fraction == 0.0
            and getattr(self.index, "levels_of_array", None) is not None
        ):
            # Fused batch classification: one pass resolves the whole
            # neighborhood (first mentions, levels, up/down split) with
            # identical memo writes, charges and telemetry.  Intra-edge
            # retention keeps the interpreted loop — the kept-edge draws
            # are per-edge decisions the masks don't model.
            kernel.classify(self, user_id)
            return
        own_level = self.level_of(user_id)
        if own_level is None:
            self._cache[user_id] = []
            self._up[user_id] = []
            self._down[user_id] = []
            self._note_classified(user_id, None, 0, 0)
            self.classify_epoch += 1
            return
        # One batched call resolves every neighbor's first mention (and
        # therefore its level): a single vectorised column lookup on the
        # fast path, per-user fetches with identical charges otherwise.
        neighbors = self.context.connections(user_id)
        levels = self._bucket(self.context.first_mentions(neighbors))
        all_neighbors: List[int] = []
        up: List[int] = []
        down: List[int] = []
        level_memo = self._levels
        for v, level in zip(neighbors, levels):
            level_memo[v] = level
            if level is None:
                continue
            if level == own_level:
                if self._keep_intra_edge(user_id, v):
                    all_neighbors.append(v)
                continue
            all_neighbors.append(v)
            if level < own_level:
                up.append(v)
            else:
                down.append(v)
        self._cache[user_id] = all_neighbors
        self._up[user_id] = up
        self._down[user_id] = down
        self._note_classified(user_id, own_level, len(up), len(down))
        self.classify_epoch += 1

    def _note_classified(
        self, user_id: int, level: Optional[int], up: int, down: int
    ) -> None:
        """Level-occupancy telemetry: one unit per first classification."""
        obs = self.context.obs
        if obs.enabled:
            if obs.metrics is not None:
                obs.metrics.counter("graph.classified").inc()
                if level is not None:
                    obs.metrics.counter("graph.level_nodes", level=level).inc()
            if obs.trace is not None:
                obs.trace.event(
                    "graph.classify", node=user_id, level=level, up=up, down=down
                )

    # ------------------------------------------------------------------
    def neighbors(self, user_id: int) -> List[int]:
        if user_id not in self._cache:
            self._classify(user_id)
        return self._cache[user_id]

    def degree(self, user_id: int) -> int:
        return len(self.neighbors(user_id))

    def up_neighbors(self, user_id: int) -> List[int]:
        """Neighbors in strictly earlier levels — toward the top (∇(u))."""
        if user_id not in self._up:
            self._classify(user_id)
        return self._up[user_id]

    def down_neighbors(self, user_id: int) -> List[int]:
        """Neighbors in strictly later levels — toward the bottom (∆(u))."""
        if user_id not in self._down:
            self._classify(user_id)
        return self._down[user_id]

    def classified_nodes(self) -> List[int]:
        """All nodes whose neighborhoods have been fully classified.

        For each of these, :meth:`up_neighbors`/:meth:`down_neighbors`
        are exact and already paid for — the basis for the deterministic
        selection-probability computation in MA-TARW's ``p_method="dp"``.
        """
        return list(self._cache)


def rebuild_oracle(template, context: QueryContext):
    """A fresh oracle of the template's kind over a different context.

    Two consumers: the parallel engine rebuilds each shard's oracle over
    the shard's private client stack, and the Walk-Not-Wait walker
    rebinds the analyzer-built oracle to its probing context.  Every
    graph-design parameter (level index, intra-edge retention, edge
    seed) carries over; only the memoised API knowledge starts empty.
    """
    if isinstance(template, LevelByLevelOracle):
        return LevelByLevelOracle(
            context,
            template.index,
            keep_intra_fraction=template.keep_intra_fraction,
            edge_seed=template.edge_seed,
        )
    if isinstance(template, (SocialGraphOracle, TermInducedOracle)):
        return type(template)(context)
    raise EstimationError(
        f"cannot rebuild oracle {type(template).__name__}; "
        "only the graph-builder oracles are supported"
    )
