"""Frontier sampling: m dependent walkers scheduled ∝ degree (Ribeiro–Towsley).

*Estimating and Sampling Graphs with Multidimensional Random Walks*
(Ribeiro & Towsley, IMC 2010) fixes two chronic SRW failure modes on
budget-limited crawls — seed bias on disconnected subgraphs and the
burn-in paid per chain — by running ``walkers`` coupled walkers as one
process:

* Initialise m walkers on (search-API) seeds.
* Each step, pick walker *i* with probability proportional to the degree
  of its current node, then move it to a uniformly chosen neighbor.

The coupled process is equivalent to a single random walk on the m-th
Cartesian power of the graph, whose stationary distribution starts *in*
the right family: marginally, each walker's location converges to the
degree-proportional distribution, and the degree-weighted scheduling
means high-degree regions are drained first instead of trapping one
chain.  Two practical consequences implemented here:

* **No burn-in** — the paper starts estimation immediately (its E1/E2
  estimators are asymptotically unbiased from step one); this walker
  keeps every sample (``min_burn_in`` defaults to 0 and replaces the
  Geweke scan).
* **No teleport heuristic** — m seeds already cover up to m components;
  a walker stuck in a tiny component is simply scheduled rarely (its
  degree mass is small), which is the paper's budget argument.

Sample assembly is the shared degree-reweighted machinery (stationary
probability ∝ degree holds marginally for each walker), generalising the
budgeted multi-seed crawl loop of ``core/crawler.py`` into an unbiased
estimator — the crawl baseline visits each node once and cannot reweight;
frontier revisits carry exactly the information Katzir's collision
counter and the ratio estimators need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Optional

from repro.core.results import EstimateResult, TracePoint
from repro.core.srw import SRWConfig
from repro.core.walker import ChainSampleWalker
from repro.errors import BudgetExhaustedError, EstimationError, TransientAPIError


@dataclass(frozen=True)
class FrontierConfig(SRWConfig):
    """Knobs for the frontier sampler (extends :class:`SRWConfig`).

    ``chains`` is ignored (the walker count is ``walkers``); burn-in and
    thinning default to the paper's keep-everything regime.
    """

    walkers: int = 8
    """Coupled walkers (the paper's m).  More walkers cover more
    components and sharpen the degree scheduling, but spread the budget
    thinner per walker."""
    thinning: int = 1
    min_burn_in: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.walkers < 1:
            raise EstimationError("walkers must be >= 1")


class FrontierEstimator(ChainSampleWalker):
    """Multi-seed frontier sampler: dependent walkers scheduled proportional to degree (Ribeiro–Towsley).

    Budgeted frontier sampling over any neighbor oracle; per-walker
    sample series feed the shared degree-reweighted assembly with no
    burn-in discarded.
    """

    algorithm: ClassVar[str] = "frontier"
    parallel_kind: ClassVar[Optional[str]] = "samples"
    obs_prefix: ClassVar[str] = "frontier"
    config_cls: ClassVar[type] = FrontierConfig

    def _burn_in_for(self, degrees: List[float]) -> int:
        # Frontier sampling needs no mixing before sampling starts; the
        # floor is kept as an explicit knob (0 by default).
        return self.config.min_burn_in

    def _pick_walker(self, degrees: List[float]) -> int:
        """Index of the next walker to move, chosen ∝ current degree.

        Walkers parked on zero-degree nodes (reseeded after a fault, or
        on an isolated seed) carry no degree mass; when *no* walker has
        positive degree the choice degrades to uniform so the process
        cannot deadlock before the dead-end reseeds kick in.
        """
        total = 0.0
        for degree in degrees:
            if degree > 0:
                total += degree
        if total <= 0.0:
            return self.rng.randrange(len(degrees))
        threshold = self.rng.random() * total
        acc = 0.0
        for index, degree in enumerate(degrees):
            if degree <= 0:
                continue
            acc += degree
            if threshold < acc:
                return index
        return len(degrees) - 1

    def _estimate_serial(self) -> EstimateResult:
        config = self.config
        m = config.walkers
        chain_nodes: List[List[int]] = [[] for _ in range(m)]
        chain_degrees: List[List[float]] = [[] for _ in range(m)]
        self._chain_nodes = chain_nodes
        self._chain_degrees = chain_degrees
        trace: List[TracePoint] = []
        steps = 0
        self._restarts = 0
        last_cost = -1
        stalled_since = 0
        next_trace = config.trace_every
        self._obs_excursions = [0] * m
        current_degree = [0.0] * m
        try:
            seeds = self._oracle_step(self.context.seeds, config.max_seeds)
            if self.obs.trace is not None:
                self.obs.trace.event(self._ev_seeds, n=len(seeds), walkers=m)
            currents = [self.rng.choice(seeds) for _ in range(m)]
            for index, start in enumerate(currents):
                try:
                    self._observe(start, chain_nodes[index], chain_degrees[index], chain=index)
                    current_degree[index] = chain_degrees[index][-1]
                except TransientAPIError:
                    # Dark start: degree mass 0 until a later move lands.
                    self.fault_restarts += 1
                    self._note_restart(index, "fault")
            while config.max_steps is None or steps < config.max_steps:
                index = self._pick_walker(current_degree)
                try:
                    self._advance(currents, index, seeds)
                    current_degree[index] = chain_degrees[index][-1]
                except TransientAPIError:
                    # Same stage-2 recovery as the SRW family: keep the
                    # committed samples, restart this walker from a seed.
                    currents[index] = self.rng.choice(seeds)
                    current_degree[index] = 0.0
                    self.fault_restarts += 1
                    self._note_restart(index, "fault")
                steps += 1
                cost = self._cost()
                if cost == last_cost:
                    # No teleport here: m seeds already cover the seeded
                    # components, so a plateau only ever means the
                    # reachable region is fully cached.
                    stalled_since += 1
                    if stalled_since >= config.stall_steps:
                        break
                else:
                    last_cost = cost
                    stalled_since = 0
                if steps >= next_trace:
                    trace.append(
                        TracePoint(cost, self._current_estimate(chain_nodes, chain_degrees))
                    )
                    next_trace = steps + max(config.trace_every, steps // 20)
        except BudgetExhaustedError:
            pass
        except TransientAPIError:
            pass  # platform unrecoverable during seeding: report what we have

        diagnostics = {
            "steps": float(steps),
            "dead_end_restarts": float(self._restarts),
            "chains": float(m),
            "fault_restarts": float(self.fault_restarts),
            "fault_step_retries": float(self.fault_step_retries),
        }
        diagnostics.update(self._walker_diagnostics())
        return self._chain_result(trace, diagnostics)
