"""Retry, backoff and circuit-breaking for the microblog API.

:class:`ResilientClient` wraps any :class:`MicroblogAPI` and absorbs the
transient-fault family (:class:`TransientAPIError` and subclasses):

* **Retries with capped exponential backoff.**  Failed attempts retry up
  to :attr:`RetryPolicy.max_attempts` times.  Backoff delays grow
  geometrically, are capped, carry *deterministic* jitter (a pure hash
  of policy seed, request key and attempt number — no shared RNG
  stream), and advance only the wrapped client's :class:`SimulatedClock`
  so wall time and estimator randomness are untouched.
* **Retry accounting.**  Every failed attempt charges one call to the
  :class:`~repro.api.accounting.CostMeter` under the budget-exempt
  ``retries`` kind, so the waste a crawl pays is fully visible without
  distorting the paper's query-cost metric.
* **Circuit breaker.**  After ``breaker_threshold`` *consecutive*
  failures the circuit opens for ``breaker_cooldown`` simulated seconds:
  requests stop hitting the platform and are served from the last good
  response for the same request, flagged as degraded.  After the
  cooldown a single probe request half-opens the circuit.
* **Degraded fallbacks.**  When retries are exhausted the client falls
  back — in order — to the last good response for the key, then to the
  ``.partial`` payload of a truncated transfer.  Served fallbacks set
  :attr:`last_response_degraded` so an outer
  :class:`~repro.api.client.CachingClient` knows not to memoise them
  (the poisoned-cache scenario).  Only when no fallback exists does the
  error propagate to walk-level recovery in the estimators.
* **Duplicate healing.**  Every response is deduplicated (connections:
  sorted-unique; timelines and search pages: stable-unique by post id).
  Healing is the identity on clean responses, so a healed faulty run
  returns bit-identical data to a fault-free one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

import random

from repro.api import accounting
from repro.api.interface import MicroblogAPI, SearchHit, TimelineView
from repro.errors import (
    BudgetExhaustedError,
    CircuitOpenError,
    ReproError,
    TransientAPIError,
    TruncatedResponseError,
)
from repro.obs import NULL_OBS, Observability
from repro.platform.clock import SimulatedClock

RequestKey = Tuple[str, object, object]


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff, retry-budget and breaker configuration.

    The defaults out-retry the default :class:`~repro.api.faults.FaultPlan`
    (``max_attempts`` exceeds ``max_consecutive_faults``) so every
    injected fault heals, and keep the breaker threshold above the
    longest healable failure streak so the circuit never opens during a
    healable run — two invariants the chaos suite pins.
    """

    max_attempts: int = 8
    base_delay: float = 2.0
    max_delay: float = 120.0
    backoff_factor: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    breaker_threshold: int = 12
    breaker_cooldown: float = 900.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError("max_attempts must be positive")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ReproError("delays must satisfy 0 <= base_delay <= max_delay")
        if self.backoff_factor < 1.0:
            raise ReproError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ReproError("jitter must be in [0, 1)")
        if self.breaker_threshold < 1:
            raise ReproError("breaker_threshold must be positive")
        if self.breaker_cooldown < 0:
            raise ReproError("breaker_cooldown must be non-negative")

    def delay_for(self, key: RequestKey, attempt: int) -> float:
        """Backoff before retry *attempt* of *key* (simulated seconds).

        Deterministic jitter: a pure function of (seed, key, attempt),
        so retry timing cannot depend on request interleaving.
        """
        base = min(self.max_delay, self.base_delay * self.backoff_factor**attempt)
        if self.jitter == 0.0:
            return base
        u = random.Random(f"{self.seed}:backoff:{key!r}:{attempt}").random()
        return base * (1.0 - self.jitter + 2.0 * self.jitter * u)


def _dedupe_hits(hits: Sequence[SearchHit]) -> Tuple[SearchHit, ...]:
    seen = set()
    out = []
    for hit in hits:
        marker = (hit.user_id, hit.post_id)
        if marker not in seen:
            seen.add(marker)
            out.append(hit)
    return tuple(out)


def _dedupe_posts(posts: Sequence) -> Tuple:
    seen = set()
    out = []
    for post in posts:
        if post.post_id not in seen:
            seen.add(post.post_id)
            out.append(post)
    return tuple(out)


class ResilientClient(MicroblogAPI):
    """Fault-absorbing wrapper: retries, heals, degrades, then raises."""

    def __init__(
        self,
        inner: MicroblogAPI,
        policy: Optional[RetryPolicy] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()
        self.obs = obs if obs is not None else NULL_OBS
        # Backoff advances the wrapped client's private simulated clock
        # when it has one (keeping one notion of elapsed crawl time);
        # otherwise a standalone clock tracks backoff on its own.
        self._clock: SimulatedClock = getattr(inner, "clock", None) or SimulatedClock(0.0)
        self._last_good: Dict[RequestKey, object] = {}
        self._consecutive_failures = 0
        self._open_until: Optional[float] = None
        self.retries = 0
        """Failed attempts absorbed (mirrors the meter's ``retries`` column)."""
        self.degraded_serves = 0
        """Responses served from a fallback instead of the platform."""
        self.backoff_wait = 0.0
        """Simulated seconds spent backing off between attempts."""
        self.last_response_degraded = False
        """True iff the most recent response was a fallback (stale or
        partial).  An outer cache must not memoise such responses."""

    # ------------------------------------------------------------------
    # breaker
    # ------------------------------------------------------------------
    @property
    def circuit_open(self) -> bool:
        return self._open_until is not None and self._clock.now() < self._open_until

    def _record_failure(self) -> None:
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.policy.breaker_threshold:
            was_open = self._open_until is not None
            self._open_until = self._clock.now() + self.policy.breaker_cooldown
            if not was_open and self.obs.trace is not None:
                self.obs.trace.event(
                    "api.circuit_open",
                    failures=self._consecutive_failures,
                    until=round(self._open_until, 6),
                )

    def _record_success(self) -> None:
        self._consecutive_failures = 0
        if self._open_until is not None:
            self._open_until = None
            if self.obs.trace is not None:
                self.obs.trace.event("api.circuit_close")

    # ------------------------------------------------------------------
    # retry loop
    # ------------------------------------------------------------------
    def _charge_retry(self, key: RequestKey, attempt: int, err: TransientAPIError) -> None:
        self.retries += 1
        meter = getattr(self.inner, "meter", None)
        if meter is not None:
            meter.charge(accounting.RETRIES, 1)
        obs = self.obs
        if obs.enabled:
            # One telemetry unit per failed attempt, the same grain as the
            # meter's budget-exempt ``retries`` column — the obs test tier
            # reconciles the two exactly.
            if obs.metrics is not None:
                obs.metrics.counter("api.calls", kind=accounting.RETRIES).inc()
            if obs.trace is not None:
                obs.trace.event(
                    "api.retry", api=key[0], attempt=attempt, error=type(err).__name__
                )

    def _degrade(self, key: RequestKey, err: TransientAPIError):
        """Last-resort fallback once retries are exhausted (or skipped)."""
        if key in self._last_good:
            self.degraded_serves += 1
            self.last_response_degraded = True
            self._note_degraded(key, "last_good")
            return self._last_good[key]
        if isinstance(err, TruncatedResponseError) and err.partial is not None:
            self.degraded_serves += 1
            self.last_response_degraded = True
            self._note_degraded(key, "partial")
            return self._heal(key[0], err.partial)
        raise err

    def _note_degraded(self, key: RequestKey, source: str) -> None:
        obs = self.obs
        if obs.enabled:
            if obs.metrics is not None:
                obs.metrics.counter("api.degraded", source=source).inc()
            if obs.trace is not None:
                obs.trace.event("api.degraded", api=key[0], source=source)

    def _call(self, key: RequestKey, fetch):
        self.last_response_degraded = False
        if self.circuit_open:
            # While open, don't touch the platform at all: serve stale
            # or fail fast so a melting-down API gets room to recover.
            return self._degrade(key, CircuitOpenError(f"circuit open for {key}"))
        last_err: Optional[TransientAPIError] = None
        for attempt in range(self.policy.max_attempts):
            if attempt > 0:
                delay = self.policy.delay_for(key, attempt - 1)
                self.backoff_wait += delay
                self._clock.advance(delay)
            try:
                response = fetch()
            except BudgetExhaustedError:
                # The platform is healthy — the caller's own budget
                # refused the call.  A fault-free run would have raised
                # before any attempt was made, so this request's injected
                # failures must not poison the breaker: walkers that end
                # by exhaustion (not plateau) would otherwise see
                # CircuitOpenError where the clean run sees budget
                # exhaustion, breaking fault bit-identity.
                self._record_success()
                raise
            except TransientAPIError as err:
                last_err = err
                self._charge_retry(key, attempt, err)
                self._record_failure()
                if self.circuit_open:
                    break  # the breaker tripped mid-request: stop hammering
            else:
                self._record_success()
                healed = self._heal(key[0], response)
                self._last_good[key] = healed
                return healed
        return self._degrade(key, last_err)

    # ------------------------------------------------------------------
    # duplicate healing
    # ------------------------------------------------------------------
    @staticmethod
    def _heal(kind: str, response):
        """Deduplicate corrupted pages; identity on clean responses."""
        if kind == "connections":
            healed = tuple(sorted(set(response)))
            return healed if len(healed) != len(response) else tuple(response)
        if kind == "timeline":
            posts = _dedupe_posts(response.posts)
            if len(posts) != len(response.posts):
                return replace(response, posts=posts)
            return response
        healed_hits = _dedupe_hits(response)
        return healed_hits if len(healed_hits) != len(response) else tuple(response)

    # ------------------------------------------------------------------
    # MicroblogAPI
    # ------------------------------------------------------------------
    def search(self, keyword: str, max_results: Optional[int] = None) -> Sequence[SearchHit]:
        key: RequestKey = ("search", keyword.lower(), max_results)
        return self._call(key, lambda: tuple(self.inner.search(keyword, max_results)))

    def user_connections(self, user_id: int) -> Sequence[int]:
        key: RequestKey = ("connections", user_id, None)
        return self._call(key, lambda: tuple(self.inner.user_connections(user_id)))

    def user_timeline(self, user_id: int) -> TimelineView:
        key: RequestKey = ("timeline", user_id, None)
        return self._call(key, lambda: self.inner.user_timeline(user_id))

    # ------------------------------------------------------------------
    # passthroughs
    # ------------------------------------------------------------------
    @property
    def meter(self):
        return self.inner.meter

    @property
    def platform(self):
        return self.inner.platform

    @property
    def limiter(self):
        return self.inner.limiter

    @property
    def latency(self):
        return self.inner.latency

    @property
    def clock(self):
        return self._clock

    @property
    def total_cost(self) -> int:
        return self.inner.total_cost

    @property
    def simulated_wait(self) -> float:
        return self.inner.simulated_wait
