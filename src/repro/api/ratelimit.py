"""Windowed API rate limiting under the simulated clock.

Real platforms cap calls per window (Twitter: 180 per 15 minutes; Google+:
10 000 per day; Tumblr: 1 per 10 seconds — §2, §6.1).  Under the simulated
clock the limiter has two policies:

* ``"sleep"`` (default) — when the window quota is exhausted the limiter
  advances the clock to the next window, recording the simulated wait.
  Experiments then report *wall-clock-equivalent* time alongside call
  counts (e.g. 49 000 Twitter calls ≈ 2.8 simulated days of waiting).
* ``"raise"`` — raise :class:`RateLimitError` instead, for callers that
  want to schedule around the limit themselves.
"""

from __future__ import annotations

from repro.errors import RateLimitError, ReproError
from repro.platform.clock import SimulatedClock
from repro.platform.profiles import PlatformProfile

POLICIES = ("sleep", "raise")


class RateLimiter:
    """Fixed-window rate limiter bound to a profile and clock."""

    def __init__(
        self,
        profile: PlatformProfile,
        clock: SimulatedClock,
        policy: str = "sleep",
    ) -> None:
        if policy not in POLICIES:
            raise ReproError(f"unknown policy {policy!r}; expected one of {POLICIES}")
        self.profile = profile
        self.clock = clock
        self.policy = policy
        self.total_wait = 0.0
        self._window_start = clock.now()
        self._used_in_window = 0

    def _roll_window(self) -> None:
        now = self.clock.now()
        window = self.profile.rate_limit_window
        if now - self._window_start >= window:
            elapsed_windows = int((now - self._window_start) // window)
            self._window_start += elapsed_windows * window
            self._used_in_window = 0

    def acquire(self, calls: int = 1) -> None:
        """Consume quota for *calls* API calls, sleeping or raising as needed.

        A batch larger than a whole window's quota is split across
        consecutive windows under the ``"sleep"`` policy.
        """
        if calls < 0:
            raise ReproError("calls must be non-negative")
        remaining = calls
        while remaining > 0:
            self._roll_window()
            available = self.profile.rate_limit_calls - self._used_in_window
            if available > 0:
                take = min(available, remaining)
                self._used_in_window += take
                remaining -= take
                continue
            next_window = self._window_start + self.profile.rate_limit_window
            if self.policy == "raise":
                raise RateLimitError(retry_at=next_window)
            wait = next_window - self.clock.now()
            self.total_wait += max(wait, 0.0)
            self.clock.sleep_until(next_window)

    @property
    def used_in_current_window(self) -> int:
        self._roll_window()
        return self._used_in_window
