"""Flattened client fast path for the estimate-time hot loop.

A clean estimation stack is always the same four layers::

    QueryContext -> CachingClient -> SimulatedMicroblogClient -> FrozenStore

and the walk's dominant operation — classify every neighbor of a visited
node — funnels each user through all of them one at a time: a cache-dict
probe, a delegation call, a budget charge, then a full timeline
materialisation (thousands of :class:`~repro.platform.posts.Post`
objects) just to read *one* timestamp out of it.

:func:`resolve_fast_path` inspects a client stack once per query and,
when every layer is the plain clean-path object (caching client directly
over the simulator, frozen columnar store, no fault or resilient layers),
returns a :class:`FastPathOps` whose operations are pre-resolved
closures over the store's columns:

* **first-mention resolution** reads the per-keyword first-mention
  columns compiled at freeze time (``searchsorted`` on the sorted user
  column) instead of materialising the timeline, and batches all
  neighbors of a node into one vectorised lookup;
* **connections** serve the CSR adjacency tuple with a single lock
  acquisition instead of three delegation hops.

Accounting is *identical* to the slow path by construction: each
logical fetch still performs the same ``CostMeter`` charge (same kind,
same call count, same order), the same rate-limiter acquisition, the
same ``api.call`` trace event and cache hit/miss counters — a traced
fast-path run emits byte-identical records to a slow-path run.  The
cache is kept honest through *prepaid* timelines
(:meth:`CachingClient.prepay_timeline`): the fast path pays for the
timeline now, and if a later operation (a condition check) needs the
materialised view, the caching client builds it uncharged.

The slow path is taken whenever any resolution rule fails:

* a fault-injection or resilient layer sits in the stack (chaos runs
  must exercise the layered clients they are testing);
* the store is not a :class:`FrozenStore` (legacy mutable planes);
* the client is not a :class:`CachingClient` over a
  :class:`SimulatedMicroblogClient`;
* per user: the timeline exceeds the profile's cap — the store's global
  first mention may be invisible in the capped window, so truncated
  users take the ordinary per-user fetch (identical accounting either
  way).

``set_fast_path_enabled(False)`` disables resolution process-wide; the
hot-path bench uses it to time the before/after pair on identical
inputs, and the regression tests to prove bit-identity.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api.client import CachingClient, SimulatedMicroblogClient
from repro.errors import PlatformError
from repro.obs import NULL_OBS, Observability
from repro.platform.frozen import FrozenStore

_ENABLED = True
_ENABLED_LOCK = threading.Lock()


def set_fast_path_enabled(enabled: bool) -> bool:
    """Process-wide fast-path switch; returns the previous setting.

    Exists for the hot-path bench (before/after timing on identical
    inputs) and the bit-identity regression tests.  Contexts resolve the
    switch at construction time, so flipping it mid-run has no effect on
    runs already started.
    """
    global _ENABLED
    with _ENABLED_LOCK:
        previous = _ENABLED
        _ENABLED = bool(enabled)
    return previous


def fast_path_enabled() -> bool:
    return _ENABLED


class FastPathOps:
    """Pre-resolved per-API-kind operations over a clean client stack.

    One instance is scoped to one ``(client, keyword)`` pair — exactly
    the scope of a :class:`~repro.core.graph_builder.QueryContext` — so
    the keyword's first-mention columns are bound once.  All methods are
    thread-safe: mutation of the shared cache happens under the caching
    client's own lock, as on the slow path.
    """

    __slots__ = (
        "cache",
        "sim",
        "store",
        "keyword",
        "kw_users",
        "kw_times",
        "timeline_cap",
        "timeline_page",
        "calls_for_items",
        "slow_timeline_detours",
        "_metrics",
    )

    def __init__(
        self,
        cache: CachingClient,
        sim: SimulatedMicroblogClient,
        store: FrozenStore,
        keyword: str,
        metrics=None,
    ) -> None:
        self.cache = cache
        self.sim = sim
        self.store = store
        self.keyword = keyword
        self.kw_users, self.kw_times = store.first_mention_arrays(keyword)
        profile = sim.platform.profile
        self.timeline_cap = profile.timeline_cap
        self.timeline_page = profile.timeline_page_size
        self.calls_for_items = profile.calls_for_items
        self.slow_timeline_detours = 0
        """Per-user fallbacks to the layered timeline fetch (capped
        timelines / unknown users).  These are *correct* slow-path trips,
        charged identically; the counter exists so benches can report how
        often the batch resolution actually applied."""
        self._metrics = metrics

    # ------------------------------------------------------------------
    # timelines / first mentions
    # ------------------------------------------------------------------
    def note_slow_detour(self) -> None:
        """Count one per-user fallback to the layered timeline fetch.

        Shared with the compiled kernel's capped-window resolution
        (:mod:`repro.core.kernels`), which replaces the detour's *work*
        but deliberately replays its counter and metric so kernel-on and
        kernel-off runs report identical telemetry."""
        self.slow_timeline_detours += 1
        if self._metrics is not None:
            self._metrics.counter("fastpath.slow_detour", api="timeline").inc()

    def _slow_first_mention(self, user_id: int) -> Optional[float]:
        """Ordinary layered fetch — identical charges, trace and cache
        effects; used for users the columns cannot answer exactly."""
        self.note_slow_detour()
        view = self.cache.user_timeline(user_id)
        return view.first_mention_time(self.keyword)

    def first_mention_into(
        self, user_id: int, memo: Dict[int, Optional[float]]
    ) -> None:
        """Resolve one user's first mention into *memo* (scalar path)."""
        store = self.store
        try:
            length = store.timeline_length(user_id)
        except PlatformError:
            # Unknown user: route through the layered path so the caller
            # sees the exact same APIError as without the fast path.
            memo[user_id] = self._slow_first_mention(user_id)
            return
        cap = self.timeline_cap
        if cap is not None and length > cap:
            memo[user_id] = self._slow_first_mention(user_id)
            return
        self.cache.prepay_timeline(
            user_id, self.sim, self.calls_for_items(length, self.timeline_page)
        )
        memo[user_id] = store.first_mention_time(self.keyword, user_id)

    def first_mentions_into(
        self, user_ids: Sequence[int], memo: Dict[int, Optional[float]]
    ) -> None:
        """Batched :meth:`first_mention_into` over *user_ids*.

        Lengths, call counts and first-mention timestamps are resolved
        for the whole batch in vectorised ``searchsorted`` lookups; the
        *charges* then replay in sequence order, one per uncached user —
        the same charges, in the same order, as sequential slow-path
        calls would issue (a mid-batch ``BudgetExhaustedError`` therefore
        leaves exactly the prefix state the slow path would).
        """
        missing = [u for u in user_ids if u not in memo]
        if not missing:
            return
        arr = np.asarray(missing, dtype=np.int64)
        try:
            lengths = self.store.timeline_lengths(arr)
        except PlatformError:
            for user_id in missing:
                self.first_mention_into(user_id, memo)
            return
        kw_users = self.kw_users
        if kw_users.size:
            pos = np.minimum(
                np.searchsorted(kw_users, arr), kw_users.size - 1
            )
            mentioned = kw_users[pos] == arr
            times = self.kw_times[pos]
        else:
            mentioned = np.zeros(arr.size, dtype=bool)
            times = np.zeros(arr.size, dtype=np.float64)
        cap = self.timeline_cap
        page = self.timeline_page
        calls_for_items = self.calls_for_items
        cache = self.cache
        sim = self.sim
        lengths_list = lengths.tolist()
        mentioned_list = mentioned.tolist()
        times_list = times.tolist()
        for i, user_id in enumerate(missing):
            length = lengths_list[i]
            if cap is not None and length > cap:
                memo[user_id] = self._slow_first_mention(user_id)
                continue
            cache.prepay_timeline(user_id, sim, calls_for_items(length, page))
            memo[user_id] = times_list[i] if mentioned_list[i] else None

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    def connections(self, user_id: int) -> Tuple[int, ...]:
        """Flattened connections fetch: one lock acquisition, no
        delegation hops; identical cache counters and charges."""
        return self.cache.connections_via(user_id, self.sim)


def resolve_fast_path(
    client,
    keyword: str,
    obs: Optional[Observability] = None,
) -> Optional[FastPathOps]:
    """Resolve *client*'s stack to flattened ops, or None for slow path.

    Emits ``fastpath.resolved`` / ``fastpath.plane{plane}`` /
    ``fastpath.fallback{reason}`` counters
    when a metrics registry is attached, so CI's perf-smoke guard can
    fail a run whose stack silently stopped resolving.
    """
    obs = obs if obs is not None else NULL_OBS
    metrics = obs.metrics

    def fallback(reason: str) -> None:
        if metrics is not None:
            metrics.counter("fastpath.fallback", reason=reason).inc()

    if not _ENABLED:
        fallback("disabled")
        return None
    if not isinstance(client, CachingClient):
        fallback("no-cache")
        return None
    inner = client.inner
    if not isinstance(inner, SimulatedMicroblogClient):
        # Fault-injection / resilient layers (or a non-simulated client):
        # chaos runs must exercise the layered clients they are testing.
        fallback("layered-stack")
        return None
    store = inner.platform.store
    if not isinstance(store, FrozenStore):
        fallback("legacy-store")
        return None
    if metrics is not None:
        metrics.counter("fastpath.resolved").inc()
        metrics.counter(
            "fastpath.plane", plane=getattr(store, "storage", "ram")
        ).inc()
    return FastPathOps(client, inner, store, keyword, metrics=metrics)


__all__: List[str] = [
    "FastPathOps",
    "fast_path_enabled",
    "resolve_fast_path",
    "set_fast_path_enabled",
]
