"""Query-cost accounting.

The paper's efficiency measure is "the number of queries and/or API calls
(on SEARCH, USER CONNECTIONS, and USER TIMELINE) the algorithm issues"
(§2), where one logical request may cost several calls due to pagination
("multiple API calls could be required to obtain the result of a single
query", §6.1).  :class:`CostMeter` charges every page individually and
optionally enforces a hard budget, which is how the MICROBLOG-ANALYZER
"query budget" system input (§3.1) is implemented.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import BudgetExhaustedError, ReproError

SEARCH = "search"
CONNECTIONS = "connections"
TIMELINE = "timeline"
CALL_KINDS = (SEARCH, CONNECTIONS, TIMELINE)


class CostMeter:
    """Counts API calls by kind, optionally against a hard budget."""

    def __init__(self, budget: Optional[int] = None) -> None:
        if budget is not None and budget < 0:
            raise ReproError("budget must be non-negative")
        self.budget = budget
        self._by_kind: Dict[str, int] = {kind: 0 for kind in CALL_KINDS}

    @property
    def total(self) -> int:
        return sum(self._by_kind.values())

    @property
    def remaining(self) -> Optional[int]:
        """Calls left before the budget trips (None when unbudgeted)."""
        if self.budget is None:
            return None
        return max(self.budget - self.total, 0)

    def by_kind(self) -> Dict[str, int]:
        return dict(self._by_kind)

    def charge(self, kind: str, calls: int = 1) -> None:
        """Record *calls* API calls of *kind*.

        Raises :class:`BudgetExhaustedError` *before* recording when the
        charge would cross the budget — a budgeted client never issues the
        request it cannot afford.
        """
        if kind not in self._by_kind:
            raise ReproError(f"unknown call kind {kind!r}; expected one of {CALL_KINDS}")
        if calls < 0:
            raise ReproError("calls must be non-negative")
        if self.budget is not None and self.total + calls > self.budget:
            raise BudgetExhaustedError(spent=self.total, budget=self.budget)
        self._by_kind[kind] += calls

    def reset(self) -> None:
        for kind in self._by_kind:
            self._by_kind[kind] = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{kind}={count}" for kind, count in self._by_kind.items())
        budget = f", budget={self.budget}" if self.budget is not None else ""
        return f"CostMeter({parts}{budget})"
