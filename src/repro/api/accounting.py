"""Query-cost accounting.

The paper's efficiency measure is "the number of queries and/or API calls
(on SEARCH, USER CONNECTIONS, and USER TIMELINE) the algorithm issues"
(§2), where one logical request may cost several calls due to pagination
("multiple API calls could be required to obtain the result of a single
query", §6.1).  :class:`CostMeter` charges every page individually and
optionally enforces a hard budget, which is how the MICROBLOG-ANALYZER
"query budget" system input (§3.1) is implemented.

Charging is thread-safe (a lock serialises the check-then-record), so a
meter shared by concurrently executing pilot walks keeps an exact count;
the parallel walk engine instead gives each walk shard its *own* meter
and merges the final per-kind tallies with :func:`merge_cost_by_kind`.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, Optional

from repro.errors import BudgetExhaustedError, ReproError

SEARCH = "search"
CONNECTIONS = "connections"
TIMELINE = "timeline"
RETRIES = "retries"
QUERY_KINDS = (SEARCH, CONNECTIONS, TIMELINE)
"""The paper's query-cost metric (§2): successful logical API spend.
Only these kinds count against a client's hard budget."""
CALL_KINDS = QUERY_KINDS + (RETRIES,)
"""Everything chargeable.  ``retries`` records calls burned on failed
attempts (transient errors, timeouts, truncated transfers) — real
overhead a crawl pays, tracked separately so fault injection never
distorts the budget trajectory of the run it wraps."""


class CostMeter:
    """Counts API calls by kind, optionally against a hard budget."""

    def __init__(self, budget: Optional[int] = None) -> None:
        if budget is not None and budget < 0:
            raise ReproError("budget must be non-negative")
        self.budget = budget
        # The retries column is created lazily on first charge so that
        # fault-free accounting dictionaries stay byte-identical to the
        # pre-fault-injection era (and to each other across data planes).
        self._by_kind: Dict[str, int] = {kind: 0 for kind in QUERY_KINDS}
        self._query_total = 0
        """Running sum of the budgeted kinds, maintained by every mutator
        so :attr:`query_total` — probed once per walk step for stall
        detection and cost traces — is one attribute read instead of a
        per-probe sum over the tally dict."""
        self._lock = threading.Lock()

    @property
    def total(self) -> int:
        """All API calls issued, including retry waste."""
        return sum(self._by_kind.values())

    @property
    def query_total(self) -> int:
        """The paper's cost metric: successful logical spend only.

        Excludes the ``retries`` column, so a run that heals transient
        faults reports the same query cost as its fault-free twin."""
        return self._query_total

    @property
    def remaining(self) -> Optional[int]:
        """Calls left before the budget trips (None when unbudgeted)."""
        if self.budget is None:
            return None
        return max(self.budget - self.query_total, 0)

    def by_kind(self) -> Dict[str, int]:
        return dict(self._by_kind)

    def charge(self, kind: str, calls: int = 1) -> None:
        """Record *calls* API calls of *kind*.

        Raises :class:`BudgetExhaustedError` *before* recording when the
        charge would cross the budget — a budgeted client never issues the
        request it cannot afford.  Retry waste (``kind="retries"``) is
        recorded but exempt from the budget: the budget models the
        operator's cap on *productive* query spend, and charging failures
        against it would let the fault injector starve the estimators it
        is supposed to leave bit-identical.
        """
        if kind not in CALL_KINDS:
            raise ReproError(f"unknown call kind {kind!r}; expected one of {CALL_KINDS}")
        if calls < 0:
            raise ReproError("calls must be non-negative")
        with self._lock:
            if kind != RETRIES:
                if (
                    self.budget is not None
                    and self._query_total + calls > self.budget
                ):
                    raise BudgetExhaustedError(
                        spent=self._query_total, budget=self.budget
                    )
                self._query_total += calls
            self._by_kind[kind] = self._by_kind.get(kind, 0) + calls

    def reset(self) -> None:
        with self._lock:
            for kind in self._by_kind:
                self._by_kind[kind] = 0
            self._query_total = 0

    # pickling drops the lock (a fresh one is created on restore) so
    # meters can ride along in results shipped across process workers
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def merge_from(self, other: "CostMeter") -> None:
        """Fold another meter's tallies into this one (budget unchecked).

        Used when independent per-shard meters are folded into a parent
        run's accounting after the fact — the shards' own budgets already
        enforced the spend, so merging must not re-trip this meter.
        """
        for kind, count in other.by_kind().items():
            with self._lock:
                self._by_kind[kind] = self._by_kind.get(kind, 0) + count
                if kind in QUERY_KINDS:
                    self._query_total += count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{kind}={count}" for kind, count in self._by_kind.items())
        budget = f", budget={self.budget}" if self.budget is not None else ""
        return f"CostMeter({parts}{budget})"


def merge_cost_by_kind(tallies: Iterable[Dict[str, int]]) -> Dict[str, int]:
    """Sum per-kind call tallies from independent walk shards.

    Pure addition over already-final dictionaries, so the result is
    deterministic in any merge order and safe to compute after the
    shards' meters stopped moving.
    """
    merged: Dict[str, int] = {kind: 0 for kind in QUERY_KINDS}
    for tally in tallies:
        for kind, count in tally.items():
            merged[kind] = merged.get(kind, 0) + count
    return merged
