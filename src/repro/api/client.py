"""The simulated rate-limited microblog client.

:class:`SimulatedMicroblogClient` implements :class:`MicroblogAPI` over the
authoritative store while enforcing the platform profile's restrictions:

* SEARCH sees only posts newer than ``now - search_window`` (Twitter's
  one-week search horizon, §2) and pays one call per result page;
* USER TIMELINE returns only the most recent ``timeline_cap`` posts and
  pays one call per ``timeline_page_size`` posts;
* USER CONNECTIONS pays one call per ``connections_page_size`` neighbors;
* every call passes through the rate limiter and the cost meter.

:class:`CachingClient` adds a client-side cache: repeated fetches of the
same timeline or connection list are free, exactly as a real crawler would
memoise responses.  Estimators always run behind a caching client.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Sequence, Tuple

from repro.api import accounting
from repro.api.accounting import CostMeter
from repro.api.interface import (
    ConnectionsPage,
    MicroblogAPI,
    ProfileView,
    SearchHit,
    TimelineView,
)
from repro.api.ratelimit import RateLimiter
from repro.errors import APIError
from repro.obs import NULL_OBS, Observability
from repro.platform.clock import SimulatedClock
from repro.platform.simulator import SimulatedPlatform


class SimulatedMicroblogClient(MicroblogAPI):
    """Rate-limited, cost-metered API access to a simulated platform."""

    def __init__(
        self,
        platform: SimulatedPlatform,
        budget: Optional[int] = None,
        rate_limit_policy: str = "sleep",
        latency: float = 0.0,
        obs: Optional[Observability] = None,
    ) -> None:
        self.platform = platform
        self.latency = latency
        """Real (wall-clock) seconds slept per charged API call, emulating
        network round-trip time.  0 (the default) keeps runs pure-CPU;
        benchmarks set a small value to study how the parallel engine
        overlaps per-call latency across concurrent walkers ("Walk, Not
        Wait").  Distinct from the rate limiter, whose waits advance only
        the *simulated* clock."""
        self.obs = obs if obs is not None else NULL_OBS
        self.meter = CostMeter(budget=budget)
        # Each client gets a private clock forked from the platform's:
        # rate-limit sleeps advance only this client's view of time, so one
        # estimation run cannot shift another's search-recency window.
        self.clock = SimulatedClock(platform.clock.now())
        self.limiter = RateLimiter(platform.profile, self.clock, policy=rate_limit_policy)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _charge(self, kind: str, calls: int) -> None:
        # Budget check happens first: a client that cannot afford the
        # request must not consume rate-limit quota for it.
        self.meter.charge(kind, calls)
        self.limiter.acquire(calls)
        obs = self.obs
        if obs.enabled:
            # Telemetry mirrors the meter exactly: emitted only after the
            # charge succeeded, so budget-rejected requests never count.
            if obs.metrics is not None:
                obs.metrics.counter("api.calls", kind=kind).inc(calls)
            if obs.trace is not None:
                obs.trace.event("api.call", api=kind, calls=calls)
        if self.latency > 0.0 and calls > 0:
            time.sleep(self.latency * calls)

    def _profile_view(self, user_id: int) -> ProfileView:
        profile = self.platform.store.profile(user_id)
        exposes_gender = self.platform.profile.exposes_gender
        return ProfileView(
            user_id=profile.user_id,
            display_name=profile.display_name,
            followers=profile.followers,
            gender=profile.gender if exposes_gender else None,
            age=profile.age if exposes_gender else None,
        )

    def profile_view(self, user_id: int) -> ProfileView:
        """The profile header a timeline view would carry, uncharged.

        Kernel support (see :mod:`repro.core.kernels`): a columnar
        condition view for a prepaid user needs exactly the header that
        materialising the timeline would have attached — same privacy
        masking, same field values."""
        return self._profile_view(user_id)

    # ------------------------------------------------------------------
    # MicroblogAPI
    # ------------------------------------------------------------------
    def search(self, keyword: str, max_results: Optional[int] = None) -> Sequence[SearchHit]:
        """Posts mentioning *keyword* within the platform's search window.

        Results are newest-first, as real search APIs return them, and
        capped at *max_results* — callers pay only for the pages they pull.
        """
        profile = self.platform.profile
        # Recency is measured from the platform's frozen "now" (the end of
        # the simulated horizon); the client's private clock only tracks
        # rate-limit waiting.
        now = self.platform.clock.now()
        window_start = now - profile.search_window
        hits = [
            SearchHit(user_id=user_id, post_id=post_id, timestamp=timestamp)
            for timestamp, user_id, post_id in self.platform.store.keyword_posts(
                keyword, start=window_start, end=now
            )
        ]
        hits.reverse()  # newest first
        if profile.search_results_cap is not None:
            hits = hits[: profile.search_results_cap]  # top-k microblogs (§2)
        if max_results is not None:
            hits = hits[:max_results]
        calls = profile.calls_for_items(len(hits), profile.search_page_size)
        self._charge(accounting.SEARCH, calls)
        return hits

    def user_connections(self, user_id: int) -> Sequence[int]:
        store = self.platform.store
        if not store.has_user(user_id):
            raise APIError(f"unknown user {user_id}")
        graph = store.graph
        if hasattr(graph, "sorted_neighbors"):
            # CSR graphs keep adjacency pre-sorted: serve the compiled
            # tuple without re-sorting (or allocating) per request.
            neighbors: Sequence[int] = graph.sorted_neighbors(user_id)
        else:
            neighbors = sorted(graph.neighbors_unsafe(user_id))
        profile = self.platform.profile
        calls = profile.calls_for_items(len(neighbors), profile.connections_page_size)
        self._charge(accounting.CONNECTIONS, calls)
        return neighbors

    def _timeline_posts(self, user_id: int):
        store = self.platform.store
        if not store.has_user(user_id):
            raise APIError(f"unknown user {user_id}")
        posts = store.timeline(user_id)  # oldest first
        cap = self.platform.profile.timeline_cap
        truncated = cap is not None and len(posts) > cap
        if truncated:
            posts = posts[-cap:]  # most recent `cap` posts survive
        return posts, truncated

    def user_timeline(self, user_id: int) -> TimelineView:
        posts, truncated = self._timeline_posts(user_id)
        profile = self.platform.profile
        calls = profile.calls_for_items(len(posts), profile.timeline_page_size)
        self._charge(accounting.TIMELINE, calls)
        return TimelineView(
            profile=self._profile_view(user_id),
            posts=tuple(posts),
            truncated=truncated,
        )

    def timeline_view(self, user_id: int) -> TimelineView:
        """Assemble a timeline view *without* charging for it.

        Fast-path support (see :mod:`repro.api.fastpath`): when a
        timeline was prepaid via :meth:`charge_timeline`, the caching
        client materialises the identical view through this method.
        """
        posts, truncated = self._timeline_posts(user_id)
        return TimelineView(
            profile=self._profile_view(user_id),
            posts=tuple(posts),
            truncated=truncated,
        )

    def charge_timeline(self, user_id: int, calls: int) -> None:
        """Charge a timeline fetch without serving it (fast-path prepay).

        *user_id* is not needed for the charge itself; it is the seam
        through which tests attribute per-user fetch accounting.
        """
        self._charge(accounting.TIMELINE, calls)

    def charge_connections(self, user_id: int, calls: int) -> None:
        """Charge a connections fetch (flattened fast-path serving)."""
        self._charge(accounting.CONNECTIONS, calls)

    # ------------------------------------------------------------------
    # bookkeeping helpers
    # ------------------------------------------------------------------
    @property
    def total_cost(self) -> int:
        """Budgeted query spend (the paper's cost metric, retry-free).

        Estimators read this for stall detection and cost traces;
        keeping retry waste out of it is what lets a faulted run follow
        the exact budget trajectory of its fault-free twin."""
        return self.meter.query_total

    @property
    def simulated_wait(self) -> float:
        """Seconds of simulated sleeping imposed by the rate limiter."""
        return self.limiter.total_wait


class CachingClient(MicroblogAPI):
    """Memoising wrapper: repeated identical requests are free.

    Mirrors a real crawler's local cache.  Cache hits do not touch the
    meter or the rate limiter; the underlying client is only consulted on
    misses.  Search results are cached per (keyword, max_results) because
    the simulated "now" is frozen during an estimation run.

    Responses are cached — and served — as immutable tuples, so a cache hit
    is allocation-free: random walks revisiting a node get the exact cached
    object back instead of a defensive copy per request.

    A lock serialises fill-on-miss so a client shared by concurrently
    executing pilot walks (see ``select_time_interval(n_workers=...)``)
    never double-pays for the same response.  Per-shard clients in the
    parallel walk engine are single-threaded and pay no contention.
    """

    def __init__(self, inner: MicroblogAPI, obs: Optional[Observability] = None) -> None:
        self.inner = inner
        self.obs = obs if obs is not None else NULL_OBS
        self._timelines: Dict[int, TimelineView] = {}
        self._prepaid_timelines: set = set()
        """Users whose timeline fetch the fast path already charged but
        whose view has not been materialised (see ``prepay_timeline``)."""
        self._connections: Dict[int, Tuple[int, ...]] = {}
        self._searches: Dict[Tuple[str, Optional[int]], Tuple[SearchHit, ...]] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.uncacheable = 0
        """Responses served but deliberately *not* memoised because the
        inner client flagged them as degraded (a circuit-breaker fallback
        or a partial page recovered from a truncated transfer).  Caching
        one would poison every later request for the same key with stale
        or incomplete data even after the platform recovers."""

    def _cacheable(self) -> bool:
        # Read under the cache lock, immediately after the inner call
        # returned, so the flag cannot belong to another request.
        return not getattr(self.inner, "last_response_degraded", False)

    def _count(self, outcome: str) -> None:
        if self.obs.metrics is not None:
            self.obs.metrics.counter("cache." + outcome).inc()

    def search(self, keyword: str, max_results: Optional[int] = None) -> Tuple[SearchHit, ...]:
        key = (keyword.lower(), max_results)
        with self._lock:
            if key not in self._searches:
                self.misses += 1
                self._count("misses")
                response = tuple(self.inner.search(keyword, max_results))
                if not self._cacheable():
                    self.uncacheable += 1
                    self._count("uncacheable")
                    return response
                self._searches[key] = response
            else:
                self.hits += 1
                self._count("hits")
            return self._searches[key]

    def user_connections(self, user_id: int) -> Tuple[int, ...]:
        with self._lock:
            if user_id not in self._connections:
                self.misses += 1
                self._count("misses")
                response = tuple(self.inner.user_connections(user_id))
                if not self._cacheable():
                    self.uncacheable += 1
                    self._count("uncacheable")
                    return response
                self._connections[user_id] = response
            else:
                self.hits += 1
                self._count("hits")
            return self._connections[user_id]

    def user_timeline(self, user_id: int) -> TimelineView:
        with self._lock:
            if user_id not in self._timelines:
                if user_id in self._prepaid_timelines:
                    # The fast path already paid for this timeline when it
                    # resolved the user's first mention from the frozen
                    # columns; materialise the identical view now,
                    # uncharged, and count the ordinary cache hit.
                    self.hits += 1
                    self._count("hits")
                    view = self.inner.timeline_view(user_id)  # type: ignore[attr-defined]
                    self._timelines[user_id] = view
                    self._prepaid_timelines.discard(user_id)
                    return view
                self.misses += 1
                self._count("misses")
                response = self.inner.user_timeline(user_id)
                if not self._cacheable():
                    self.uncacheable += 1
                    self._count("uncacheable")
                    return response
                self._timelines[user_id] = response
            else:
                self.hits += 1
                self._count("hits")
            return self._timelines[user_id]

    # ------------------------------------------------------------------
    # fast-path support (see repro.api.fastpath)
    # ------------------------------------------------------------------
    def prepay_timeline(
        self, user_id: int, inner: SimulatedMicroblogClient, calls: int
    ) -> None:
        """Charge a timeline fetch now, defer materialisation.

        Counter and charge behaviour is identical to an ordinary
        :meth:`user_timeline` miss/hit — a cached or already-prepaid user
        counts a hit and charges nothing; otherwise a miss is counted and
        *calls* charged before the user enters the prepaid set (so a
        budget rejection leaves exactly the slow-path state).
        """
        with self._lock:
            if user_id in self._timelines or user_id in self._prepaid_timelines:
                self.hits += 1
                self._count("hits")
                return
            self.misses += 1
            self._count("misses")
            inner.charge_timeline(user_id, calls)
            self._prepaid_timelines.add(user_id)

    def note_timeline_hit(self, user_id: int) -> Optional[TimelineView]:
        """Count a cache hit for a paid-for timeline without materialising.

        Kernel support (see :mod:`repro.core.kernels`): returns the cached
        view when one exists, or ``None`` for a *prepaid* user — counting
        the same hit :meth:`user_timeline` would, but leaving the user
        prepaid so the columns can serve the read.  Raises ``KeyError``
        (no counters touched) when the timeline was never paid for: the
        caller must take the ordinary charging path.
        """
        with self._lock:
            view = self._timelines.get(user_id)
            if view is not None:
                self.hits += 1
                self._count("hits")
                return view
            if user_id in self._prepaid_timelines:
                self.hits += 1
                self._count("hits")
                return None
            raise KeyError(user_id)

    def connections_via(
        self, user_id: int, inner: SimulatedMicroblogClient
    ) -> Tuple[int, ...]:
        """Flattened connections serving: cache probe, CSR adjacency and
        charge under a single lock acquisition, skipping the delegation
        hops of the layered path.  Identical counters, charges, errors
        and (object-identical) responses."""
        with self._lock:
            cached = self._connections.get(user_id)
            if cached is not None:
                self.hits += 1
                self._count("hits")
                return cached
            self.misses += 1
            self._count("misses")
            store = inner.platform.store
            if not store.has_user(user_id):
                raise APIError(f"unknown user {user_id}")
            neighbors = store.graph.sorted_neighbors(user_id)
            profile = inner.platform.profile
            inner.charge_connections(
                user_id,
                profile.calls_for_items(len(neighbors), profile.connections_page_size),
            )
            self._connections[user_id] = neighbors
            return neighbors

    @property
    def meter(self) -> CostMeter:
        """Expose the underlying meter (for cost reporting)."""
        return self.inner.meter  # type: ignore[attr-defined]

    @property
    def total_cost(self) -> int:
        return self.meter.query_total
